fn main() {
    let t = std::time::Instant::now();
    let w = opeer_topology::WorldConfig::paper(1).generate();
    println!("{} in {:?}", w.summary(), t.elapsed());
    let problems = w.check_consistency();
    println!("consistency problems: {}", problems.len());
}
