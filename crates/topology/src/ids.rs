//! Typed arena indices.
//!
//! Every entity in the [`crate::world::World`] lives in a dense `Vec` arena
//! and is referred to by a typed index. The newtypes prevent the classic
//! "indexed the router table with a facility id" bug without any runtime
//! cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning arena.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs from an arena index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Index of a city in [`crate::world::World::cities`].
    CityId,
    "city"
);
define_id!(
    /// Index of a colocation facility in [`crate::world::World::facilities`].
    FacilityId,
    "fac"
);
define_id!(
    /// Index of an AS in [`crate::world::World::ases`].
    AsId,
    "as#"
);
define_id!(
    /// Index of an IXP in [`crate::world::World::ixps`].
    IxpId,
    "ixp"
);
define_id!(
    /// Index of a router in [`crate::world::World::routers`].
    RouterId,
    "rtr"
);
define_id!(
    /// Index of an interface in [`crate::world::World::interfaces`].
    IfaceId,
    "if"
);
define_id!(
    /// Index of an IXP membership in [`crate::world::World::memberships`].
    MembershipId,
    "mem"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let r = RouterId::from_index(42);
        assert_eq!(r.index(), 42);
        assert_eq!(format!("{r}"), "rtr42");
        assert_eq!(format!("{r:?}"), "rtr42");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(AsId(1) < AsId(2));
        assert_eq!(FacilityId(7), FacilityId::from_index(7));
    }
}
