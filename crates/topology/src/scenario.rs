//! What-if scenario transforms over a generated [`World`].
//!
//! A [`Scenario`] is a *pure* function `World -> World`: clone the
//! baseline, perturb the ground truth, rebuild the derived indexes.
//! Crucially every transform preserves the measurement plane — the
//! interface set, addresses, router IP-ID behaviour and the IXP roster
//! are untouched — so a scenario world can also be expressed as an
//! `InputDelta` (fresh registry snapshot + re-measured campaign/corpus)
//! against the baseline's assembled input, and the incremental pipeline
//! reproduces the one-shot result byte for byte (the fleet's identity
//! gate checks exactly this).
//!
//! The four transforms mirror the what-if axes of ROADMAP's sweep-fleet
//! item, in the spirit of Loye et al.'s complex-network analysis of
//! public peering capacity:
//!
//! * [`Scenario::IxpOutage`] — one IXP's memberships all lapse before
//!   the observation month (facility failure / fabric decommission).
//! * [`Scenario::PortMigration`] — remote members of one IXP buy real
//!   colocation: their truth flips to `Local` at the anchor facility.
//! * [`Scenario::ResellerConsolidation`] — the biggest reseller absorbs
//!   every competitor's customer base.
//! * [`Scenario::CapacityScaling`] — all physical port capacities (and
//!   the IXPs' `Cmin`) scale by a common factor.

use crate::ids::{AsId, MembershipId};
use crate::world::{AccessTruth, IfaceKind, PortKind, RouterLoc, World};
use std::collections::BTreeMap;
use std::fmt;

/// A pure world perturbation, applied per sweep cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scenario {
    /// The named IXP suffers a fabric outage: every membership becomes
    /// inactive at the observation month (early joiners depart, late
    /// joiners are pushed past the window).
    IxpOutage {
        /// Name of the IXP (e.g. `"AMS-IX"`).
        ixp: String,
    },
    /// Up to `count` remote members of the named IXP migrate onto
    /// physical ports at the IXP's anchor facility and become local.
    PortMigration {
        /// Name of the IXP.
        ixp: String,
        /// Maximum number of members migrated (membership-index order).
        count: usize,
    },
    /// The reseller with the most customers acquires every competitor:
    /// all resold memberships move to the winner, onto the winner's own
    /// port where it already sells and onto the acquired (former
    /// competitor's) port elsewhere.
    ResellerConsolidation,
    /// Every physical port capacity — and each IXP's advertised minimum
    /// and option list — is multiplied by `factor_permille / 1000`.
    CapacityScaling {
        /// Scale factor in permille (500 = halve, 2000 = double).
        factor_permille: u32,
    },
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl Scenario {
    /// Stable label used in grid specs, reports and snapshot keys.
    pub fn label(&self) -> String {
        match self {
            Scenario::IxpOutage { ixp } => format!("ixp-outage:{ixp}"),
            Scenario::PortMigration { ixp, count } => {
                format!("port-migration:{ixp}:{count}")
            }
            Scenario::ResellerConsolidation => "reseller-consolidation".to_string(),
            Scenario::CapacityScaling { factor_permille } => {
                format!("capacity-scaling:{factor_permille}")
            }
        }
    }

    /// Checks the scenario is meaningful for `world` (IXP names resolve,
    /// factors are non-zero). [`Scenario::apply`] itself is total — an
    /// unknown name degrades to a no-op — but sweeps want loud failures.
    pub fn validate(&self, world: &World) -> Result<(), String> {
        match self {
            Scenario::IxpOutage { ixp } | Scenario::PortMigration { ixp, .. } => {
                if world.ixps.iter().any(|x| x.name == *ixp) {
                    Ok(())
                } else {
                    Err(format!("scenario `{self}`: no IXP named `{ixp}` in world"))
                }
            }
            Scenario::ResellerConsolidation => Ok(()),
            Scenario::CapacityScaling { factor_permille } => {
                if *factor_permille == 0 {
                    Err(format!("scenario `{self}`: factor must be > 0"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Applies the transform, returning a fresh world with rebuilt
    /// indexes. The baseline is untouched.
    pub fn apply(&self, world: &World) -> World {
        let mut w = world.clone();
        match self {
            Scenario::IxpOutage { ixp } => apply_outage(&mut w, ixp),
            Scenario::PortMigration { ixp, count } => apply_migration(&mut w, ixp, *count),
            Scenario::ResellerConsolidation => apply_consolidation(&mut w),
            Scenario::CapacityScaling { factor_permille } => {
                apply_scaling(&mut w, *factor_permille)
            }
        }
        w.rebuild_indexes();
        w
    }
}

fn ixp_index_by_name(w: &World, name: &str) -> Option<usize> {
    w.ixps.iter().position(|x| x.name == name)
}

/// Outage: make every membership of the IXP inactive at the observation
/// month without violating the `left > joined` consistency rule.
fn apply_outage(w: &mut World, name: &str) {
    let Some(ixp) = ixp_index_by_name(w, name) else {
        return;
    };
    let obs = w.observation_month;
    for m in w.memberships.iter_mut() {
        if m.ixp.index() != ixp {
            continue;
        }
        if m.joined_month < obs {
            // Departs at the outage (or earlier, if it already had).
            let left = m.left_month.map_or(obs, |l| l.min(obs));
            m.left_month = Some(left.max(m.joined_month + 1));
        } else {
            // Joined at/after the outage month: push the join past the
            // window so the membership never overlaps the observation.
            m.joined_month = obs + 1;
            m.left_month = None;
        }
    }
}

/// Port migration: flip up to `count` active remote members of the IXP
/// to local physical ports at the anchor facility. Only members whose
/// border router carries no *other* IXP LAN (so relocating the router
/// cannot invalidate sibling memberships) are eligible.
fn apply_migration(w: &mut World, name: &str, count: usize) {
    let Some(ixp) = ixp_index_by_name(w, name) else {
        return;
    };
    let obs = w.observation_month;
    let anchor = w.ixps[ixp].anchor_facility;
    let cmin = w.ixps[ixp].min_physical_capacity_mbps;
    let mut migrated = 0usize;
    for mid in 0..w.memberships.len() {
        if migrated >= count {
            break;
        }
        let m = &w.memberships[mid];
        if m.ixp.index() != ixp || !m.truth.is_remote() || !m.active_at(obs) {
            continue;
        }
        let router = m.router;
        let movable = w.routers[router.index()].interfaces.iter().all(|&ifc| {
            match w.interfaces[ifc.index()].kind {
                IfaceKind::IxpLan { membership, .. } => membership == MembershipId(mid as u32),
                IfaceKind::Internal => true,
                IfaceKind::PrivatePeering { .. } => false,
            }
        });
        if !movable {
            continue;
        }
        let m = &mut w.memberships[mid];
        m.truth = AccessTruth::Local { facility: anchor };
        m.port = PortKind::Physical;
        m.port_mbps = m.port_mbps.max(cmin);
        w.routers[router.index()].loc = RouterLoc::Facility(anchor);
        let owner = w.routers[router.index()].owner;
        let facs = &mut w.ases[owner.index()].facilities;
        if !facs.contains(&anchor) {
            facs.push(anchor);
        }
        migrated += 1;
    }
}

/// Consolidation: the reseller serving the most memberships (ties break
/// to the lowest AS id) acquires every other reseller outright. Resold
/// customers move onto the winner's port where it already sells at that
/// IXP; elsewhere the winner takes over the competitor's port facility,
/// so the customer's physical seat is unchanged and only the contract
/// flips.
fn apply_consolidation(w: &mut World) {
    // Count served memberships and record, per (reseller, IXP), the port
    // facility of the first served membership in index order.
    let mut served: BTreeMap<AsId, usize> = BTreeMap::new();
    let mut port_fac: BTreeMap<(AsId, usize), crate::ids::FacilityId> = BTreeMap::new();
    for m in &w.memberships {
        if let AccessTruth::RemoteReseller {
            reseller,
            reseller_port_facility,
        } = m.truth
        {
            *served.entry(reseller).or_insert(0) += 1;
            port_fac
                .entry((reseller, m.ixp.index()))
                .or_insert(reseller_port_facility);
        }
    }
    // BTreeMap iteration is ascending by AsId, so `>` keeps the lowest
    // id among equal counts.
    let Some((winner, _)) = served.iter().fold(None, |best, (&r, &n)| match best {
        Some((_, bn)) if n <= bn => best,
        _ => Some((r, n)),
    }) else {
        return;
    };
    for m in w.memberships.iter_mut() {
        let AccessTruth::RemoteReseller {
            reseller,
            reseller_port_facility,
        } = m.truth
        else {
            continue;
        };
        if reseller == winner {
            continue;
        }
        // Winner's own port where it sells at this IXP, the acquired
        // competitor's port otherwise.
        let fac = port_fac
            .get(&(winner, m.ixp.index()))
            .copied()
            .unwrap_or(reseller_port_facility);
        m.truth = AccessTruth::RemoteReseller {
            reseller: winner,
            reseller_port_facility: fac,
        };
        if let PortKind::VirtualReseller { ref mut reseller } = m.port {
            *reseller = winner;
        }
    }
}

/// Capacity scaling: multiply by `permille/1000`, min 1 Mbps.
fn scale_cap(cap: u32, permille: u32) -> u32 {
    ((cap as u64 * permille as u64) / 1000).max(1) as u32
}

fn apply_scaling(w: &mut World, permille: u32) {
    if permille == 0 {
        return;
    }
    for ixp in w.ixps.iter_mut() {
        ixp.min_physical_capacity_mbps = scale_cap(ixp.min_physical_capacity_mbps, permille);
        for c in ixp.capacity_options_mbps.iter_mut() {
            *c = scale_cap(*c, permille);
        }
    }
    for m in w.memberships.iter_mut() {
        match m.port {
            PortKind::Physical | PortKind::LegacyPhysicalSubMin => {
                m.port_mbps = scale_cap(m.port_mbps, permille);
            }
            // Reseller VLAN rate limits are contractual, not physical.
            PortKind::VirtualReseller { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;

    fn world() -> World {
        WorldConfig::small(11).generate()
    }

    #[test]
    fn outage_empties_ixp_and_stays_consistent() {
        let base = world();
        let ixp = base.ixps.iter().position(|x| x.studied).unwrap();
        let name = base.ixps[ixp].name.clone();
        let sc = Scenario::IxpOutage { ixp: name };
        sc.validate(&base).unwrap();
        let w = sc.apply(&base);
        assert!(w.check_consistency().is_empty(), "outage world consistent");
        let obs = w.observation_month;
        let active = w
            .memberships
            .iter()
            .filter(|m| m.ixp.index() == ixp && m.active_at(obs))
            .count();
        assert_eq!(active, 0, "no membership survives the outage");
        // Baseline untouched.
        assert!(base
            .memberships
            .iter()
            .any(|m| m.ixp.index() == ixp && m.active_at(obs)));
        // Measurement plane preserved.
        assert_eq!(base.interfaces.len(), w.interfaces.len());
    }

    #[test]
    fn migration_flips_remote_to_local() {
        let base = world();
        let obs = base.observation_month;
        let ixp = base
            .ixps
            .iter()
            .position(|x| {
                x.studied
                    && base.memberships.iter().any(|m| {
                        m.ixp.index() == base.ixps.iter().position(|y| y.name == x.name).unwrap()
                            && m.truth.is_remote()
                            && m.active_at(obs)
                    })
            })
            .unwrap();
        let name = base.ixps[ixp].name.clone();
        let remote_before = base
            .memberships
            .iter()
            .filter(|m| m.ixp.index() == ixp && m.truth.is_remote() && m.active_at(obs))
            .count();
        let sc = Scenario::PortMigration {
            ixp: name,
            count: 3,
        };
        sc.validate(&base).unwrap();
        let w = sc.apply(&base);
        assert!(
            w.check_consistency().is_empty(),
            "migration world consistent"
        );
        let remote_after = w
            .memberships
            .iter()
            .filter(|m| m.ixp.index() == ixp && m.truth.is_remote() && m.active_at(obs))
            .count();
        assert!(remote_after < remote_before, "some member migrated");
        assert_eq!(base.interfaces.len(), w.interfaces.len());
    }

    #[test]
    fn consolidation_leaves_at_most_one_grown_reseller() {
        let base = world();
        let count_resellers = |w: &World| {
            let mut set = std::collections::BTreeSet::new();
            for m in &w.memberships {
                if let AccessTruth::RemoteReseller { reseller, .. } = m.truth {
                    set.insert(reseller);
                }
            }
            set.len()
        };
        let before = count_resellers(&base);
        let w = Scenario::ResellerConsolidation.apply(&base);
        assert!(w.check_consistency().is_empty());
        let after = count_resellers(&w);
        assert!(before > 1, "world must exercise the transform");
        assert_eq!(after, 1, "acquisition leaves exactly the winner");
    }

    #[test]
    fn capacity_scaling_scales_physical_only() {
        let base = world();
        let sc = Scenario::CapacityScaling {
            factor_permille: 2000,
        };
        sc.validate(&base).unwrap();
        let w = sc.apply(&base);
        assert!(w.check_consistency().is_empty());
        for (b, s) in base.memberships.iter().zip(&w.memberships) {
            match b.port {
                PortKind::VirtualReseller { .. } => assert_eq!(b.port_mbps, s.port_mbps),
                _ => assert_eq!(b.port_mbps * 2, s.port_mbps),
            }
        }
        for (b, s) in base.ixps.iter().zip(&w.ixps) {
            assert_eq!(
                b.min_physical_capacity_mbps * 2,
                s.min_physical_capacity_mbps
            );
        }
    }

    #[test]
    fn validate_rejects_unknown_ixp_and_zero_factor() {
        let base = world();
        assert!(Scenario::IxpOutage {
            ixp: "NO-SUCH-IXP".into()
        }
        .validate(&base)
        .is_err());
        assert!(Scenario::CapacityScaling { factor_permille: 0 }
            .validate(&base)
            .is_err());
    }

    #[test]
    fn labels_round_trip_visually() {
        assert_eq!(
            Scenario::IxpOutage {
                ixp: "AMS-IX".into()
            }
            .label(),
            "ixp-outage:AMS-IX"
        );
        assert_eq!(
            Scenario::PortMigration {
                ixp: "LINX".into(),
                count: 5
            }
            .label(),
            "port-migration:LINX:5"
        );
        assert_eq!(
            Scenario::CapacityScaling {
                factor_permille: 500
            }
            .label(),
            "capacity-scaling:500"
        );
    }
}
