//! Static specification of the named IXPs the paper studies.
//!
//! The world generator instantiates these 37 exchanges with realistic
//! geography and the member-count / validation-role structure of Table 2:
//! the 8 "test" IXPs (colocated VPs available), the 7 "control" IXPs
//! (validation lists but no VP), and 22 further large IXPs that complete
//! the paper's "30 largest IXPs with usable VPs" study set. Member-count
//! targets for the 15 validation IXPs follow Table 2; the rest are sized
//! plausibly from public member lists of the period.

use crate::world::{ValidationRole, ValidationSource};

/// Specification of one named IXP.
#[derive(Debug, Clone, Copy)]
pub struct IxpSpec {
    /// Exchange name.
    pub name: &'static str,
    /// Cities with switching fabric; the first is the anchor (core,
    /// route server, LG). More than one *distant* city ⇒ wide-area IXP.
    pub cities: &'static [&'static str],
    /// Total facility count across those cities (Table 2 column 2 for the
    /// validation IXPs).
    pub facilities: usize,
    /// Target number of member ASes at the observation month.
    pub members: usize,
    /// Target fraction of members that are remote (Definition 1).
    pub remote_fraction: f64,
    /// Whether a reseller programme exists (HKIX famously has none).
    pub allows_resellers: bool,
    /// Whether the IXP runs a public looking glass usable as a VP.
    pub has_looking_glass: bool,
    /// Whether that LG rounds RTTs up to whole milliseconds (§6.1).
    pub lg_rounds_up: bool,
    /// Among the 30 studied IXPs (has usable VPs).
    pub studied: bool,
    /// Validation subset (Table 2) and provenance.
    pub validation: ValidationRole,
    /// Where the validation list comes from.
    pub validation_source: Option<ValidationSource>,
}

const OP: Option<ValidationSource> = Some(ValidationSource::Operators);
const WEB: Option<ValidationSource> = Some(ValidationSource::Websites);

/// The named IXP table.
pub const NAMED_IXPS: &[IxpSpec] = &[
    // ---- Test subset (colocated VPs; Table 2 superscript T) ----
    IxpSpec {
        name: "AMS-IX",
        cities: &["Amsterdam"],
        facilities: 14,
        members: 878,
        remote_fraction: 0.40,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: OP,
    },
    IxpSpec {
        name: "DE-CIX FRA",
        cities: &["Frankfurt"],
        facilities: 28,
        members: 795,
        remote_fraction: 0.40,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: OP,
    },
    IxpSpec {
        name: "LINX LON",
        cities: &["London"],
        facilities: 15,
        members: 770,
        remote_fraction: 0.36,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: OP,
    },
    IxpSpec {
        name: "LINX MAN",
        cities: &["Manchester"],
        facilities: 3,
        members: 99,
        remote_fraction: 0.45,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: OP,
    },
    IxpSpec {
        name: "LINX NoVA",
        cities: &["Ashburn"],
        facilities: 4,
        members: 48,
        remote_fraction: 0.42,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: OP,
    },
    IxpSpec {
        name: "France-IX PAR",
        cities: &["Paris"],
        facilities: 9,
        members: 402,
        remote_fraction: 0.41,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: WEB,
    },
    // Seattle IX extends to Portland through remote switches: wide-area.
    IxpSpec {
        name: "Seattle IX",
        cities: &["Seattle", "Portland"],
        facilities: 11,
        members: 296,
        remote_fraction: 0.27,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: WEB,
    },
    // Any2 spans Los Angeles and the Bay Area: wide-area.
    IxpSpec {
        name: "Any2 LA",
        cities: &["Los Angeles", "San Jose"],
        facilities: 4,
        members: 299,
        remote_fraction: 0.22,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::Test,
        validation_source: WEB,
    },
    // ---- Control subset (validation lists, no public VP; superscript C) ----
    IxpSpec {
        name: "DE-CIX NYC",
        cities: &["New York"],
        facilities: 25,
        members: 162,
        remote_fraction: 0.26,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: OP,
    },
    IxpSpec {
        name: "EPIX KAT",
        cities: &["Katowice"],
        facilities: 3,
        members: 465,
        remote_fraction: 0.42,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: WEB,
    },
    IxpSpec {
        name: "EPIX WAR",
        cities: &["Warsaw"],
        facilities: 6,
        members: 308,
        remote_fraction: 0.45,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: WEB,
    },
    IxpSpec {
        name: "D.Realty ATL",
        cities: &["Atlanta"],
        facilities: 3,
        members: 142,
        remote_fraction: 0.50,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: WEB,
    },
    IxpSpec {
        name: "France-IX MRS",
        cities: &["Marseille"],
        facilities: 2,
        members: 77,
        remote_fraction: 0.39,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: WEB,
    },
    IxpSpec {
        name: "AMS-IX HK",
        cities: &["Hong Kong"],
        facilities: 2,
        members: 46,
        remote_fraction: 0.42,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: WEB,
    },
    IxpSpec {
        name: "AMS-IX SF",
        cities: &["San Francisco"],
        facilities: 4,
        members: 36,
        remote_fraction: 0.30,
        allows_resellers: true,
        has_looking_glass: false,
        lg_rounds_up: false,
        studied: false,
        validation: ValidationRole::Control,
        validation_source: WEB,
    },
    // ---- Other studied IXPs (complete the 30 with usable VPs) ----
    IxpSpec {
        name: "MSK-IX",
        cities: &["Moscow"],
        facilities: 9,
        members: 420,
        remote_fraction: 0.25,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    // DATA-IX federates fabric across Russia/Ukraine: wide-area.
    IxpSpec {
        name: "DATA-IX",
        cities: &["Moscow", "St Petersburg", "Kyiv"],
        facilities: 8,
        members: 480,
        remote_fraction: 0.35,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "IX.br SP",
        cities: &["Sao Paulo"],
        facilities: 12,
        members: 850,
        remote_fraction: 0.18,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "HKIX",
        cities: &["Hong Kong"],
        facilities: 3,
        members: 290,
        remote_fraction: 0.12,
        allows_resellers: false,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "LONAP",
        cities: &["London"],
        facilities: 5,
        members: 190,
        remote_fraction: 0.30,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    // NL-IX: the canonical wide-area IXP, fabric across Europe (§4.2).
    IxpSpec {
        name: "NL-IX",
        cities: &[
            "The Hague",
            "Amsterdam",
            "Rotterdam",
            "Brussels",
            "London",
            "Frankfurt",
            "Paris",
            "Vienna",
            "Copenhagen",
            "Bucharest",
        ],
        facilities: 17,
        members: 520,
        remote_fraction: 0.30,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    // NET-IX: Sofia-anchored fabric in many countries (§4.2, Fig. 2a).
    IxpSpec {
        name: "NET-IX",
        cities: &[
            "Sofia",
            "Frankfurt",
            "Amsterdam",
            "London",
            "Prague",
            "Bucharest",
            "Istanbul",
            "Moscow",
            "Vienna",
            "Warsaw",
            "Belgrade",
            "Athens",
            "Budapest",
            "Zagreb",
            "Milan",
            "Madrid",
        ],
        facilities: 16,
        members: 130,
        remote_fraction: 0.55,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "THINX",
        cities: &["Warsaw"],
        facilities: 3,
        members: 140,
        remote_fraction: 0.33,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "UA-IX",
        cities: &["Kyiv"],
        facilities: 2,
        members: 150,
        remote_fraction: 0.20,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "JPNAP",
        cities: &["Tokyo"],
        facilities: 4,
        members: 130,
        remote_fraction: 0.17,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "ESPANIX",
        cities: &["Madrid"],
        facilities: 3,
        members: 110,
        remote_fraction: 0.24,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "SwissIX",
        cities: &["Zurich"],
        facilities: 6,
        members: 170,
        remote_fraction: 0.26,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "VIX",
        cities: &["Vienna"],
        facilities: 4,
        members: 150,
        remote_fraction: 0.28,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "PLIX",
        cities: &["Warsaw"],
        facilities: 5,
        members: 260,
        remote_fraction: 0.38,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "Netnod STH",
        cities: &["Stockholm"],
        facilities: 4,
        members: 170,
        remote_fraction: 0.22,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "BCIX",
        cities: &["Berlin"],
        facilities: 4,
        members: 95,
        remote_fraction: 0.23,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "TorIX",
        cities: &["Toronto"],
        facilities: 3,
        members: 240,
        remote_fraction: 0.16,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "DE-CIX MUC",
        cities: &["Munich"],
        facilities: 4,
        members: 90,
        remote_fraction: 0.30,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "DE-CIX HAM",
        cities: &["Hamburg"],
        facilities: 3,
        members: 70,
        remote_fraction: 0.31,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "MIX Milan",
        cities: &["Milan"],
        facilities: 3,
        members: 230,
        remote_fraction: 0.27,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: true,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "ECIX DUS",
        cities: &["Dusseldorf"],
        facilities: 3,
        members: 85,
        remote_fraction: 0.29,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
    IxpSpec {
        name: "InterLAN",
        cities: &["Bucharest"],
        facilities: 2,
        members: 105,
        remote_fraction: 0.21,
        allows_resellers: true,
        has_looking_glass: true,
        lg_rounds_up: false,
        studied: true,
        validation: ValidationRole::None,
        validation_source: None,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::city_index;

    #[test]
    fn table_shape() {
        assert_eq!(NAMED_IXPS.len(), 37);
        let studied = NAMED_IXPS.iter().filter(|s| s.studied).count();
        assert_eq!(studied, 30, "the paper studies 30 IXPs with usable VPs");
        let test = NAMED_IXPS
            .iter()
            .filter(|s| s.validation == ValidationRole::Test)
            .count();
        let control = NAMED_IXPS
            .iter()
            .filter(|s| s.validation == ValidationRole::Control)
            .count();
        assert_eq!(test, 8);
        assert_eq!(control, 7);
        assert_eq!(test + control, 15, "Table 2 has 15 validation IXPs");
    }

    #[test]
    fn validation_ixps_have_source() {
        for s in NAMED_IXPS {
            match s.validation {
                ValidationRole::None => assert!(s.validation_source.is_none(), "{}", s.name),
                _ => assert!(s.validation_source.is_some(), "{}", s.name),
            }
        }
    }

    #[test]
    fn cities_exist_in_catalog() {
        for s in NAMED_IXPS {
            for c in s.cities {
                let _ = city_index(c); // panics if absent
            }
            assert!(!s.cities.is_empty());
            assert!(
                s.facilities >= s.cities.len(),
                "{}: fewer facilities than cities",
                s.name
            );
        }
    }

    #[test]
    fn test_subset_has_vps_control_has_none() {
        for s in NAMED_IXPS {
            match s.validation {
                ValidationRole::Test => {
                    assert!(s.has_looking_glass, "{}: test IXPs need a VP", s.name)
                }
                ValidationRole::Control => {
                    assert!(
                        !s.has_looking_glass,
                        "{}: control IXPs must lack VPs",
                        s.name
                    )
                }
                ValidationRole::None => {}
            }
        }
    }

    #[test]
    fn sane_fractions_and_members() {
        for s in NAMED_IXPS {
            assert!((0.0..=1.0).contains(&s.remote_fraction), "{}", s.name);
            assert!(s.members >= 20, "{}", s.name);
        }
        // Studied IXPs must include the two giants with ~40% remote.
        let ams = NAMED_IXPS.iter().find(|s| s.name == "AMS-IX").unwrap();
        assert!(ams.remote_fraction >= 0.38);
    }
}
