//! # opeer-topology — the synthetic Internet/IXP world
//!
//! The paper measured the live Internet; this crate builds the stand-in:
//! a deterministic, seeded world of cities, colocation facilities, ASes,
//! IXPs with peering LANs, port resellers, routers and private
//! interconnects, together with Gao–Rexford policy routing and a
//! fourteen-month membership timeline.
//!
//! The world holds *ground truth* (who is actually local or remote at each
//! IXP, Definition 1 of the paper). The measurement and registry crates
//! deliberately expose only noisy projections of it; the inference
//! pipeline in `opeer-core` never reads the truth — it is scored against
//! it, exactly as the paper's methodology was scored against operator
//! validation lists.
//!
//! ## Quick tour
//!
//! ```
//! use opeer_topology::{WorldConfig, RoutingOracle};
//!
//! let world = WorldConfig::small(42).generate();
//! assert!(world.check_consistency().is_empty());
//!
//! // AMS-IX exists with its Table-2 validation role.
//! let ams = world.ixps.iter().find(|x| x.name == "AMS-IX").unwrap();
//! assert!(ams.has_looking_glass);
//!
//! // Policy routing between two member ASes.
//! let oracle = RoutingOracle::new(&world);
//! let src = world.memberships[0].member;
//! let dst = world.memberships[1].member;
//! let table = oracle.routes_to(dst);
//! assert!(table.entry(src).is_some());
//! ```

pub mod builder;
pub mod cities;
pub mod evolution;
pub mod gen;
pub mod ids;
pub mod routing;
pub mod scenario;
pub mod spec;
pub mod world;

pub use builder::{WorldConfigBuilder, WorldConfigError};
pub use cities::{CityRecord, Region, CITY_CATALOG};
pub use gen::{capacity, PortCapacityDist, RemoteMix, WorldConfig};
pub use ids::{AsId, CityId, FacilityId, IfaceId, IxpId, MembershipId, RouterId};
pub use routing::{EdgeKind, RouteKind, RouteTable, RoutingOracle, TraceHop};
pub use scenario::Scenario;
pub use spec::{IxpSpec, NAMED_IXPS};
pub use world::{
    AccessTruth, AsKind, AsNode, City, Facility, IfaceKind, Interface, IpIdMode, Ixp, Membership,
    PortKind, PrivateLink, Router, RouterLoc, ValidationRole, ValidationSource, World,
};
