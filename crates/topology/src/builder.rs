//! Validating construction of [`WorldConfig`] values.
//!
//! Sweep grids build many hand-tweaked configs; a typo'd probability or
//! an inverted capacity bound would otherwise generate a silently
//! degenerate world (or panic deep inside the generator). The builder
//! funnels every hand-built config through [`WorldConfig::validate`],
//! which rejects out-of-range knobs with a typed [`WorldConfigError`].

use std::fmt;

use crate::gen::WorldConfig;

/// Why a [`WorldConfig`] was rejected by [`WorldConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum WorldConfigError {
    /// A probability field lies outside `[0, 1]` (or is NaN).
    ProbabilityOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The remote-distance mixture has a weight outside `[0, 1]` or the
    /// first three weights sum past 1 (the fourth is the remainder).
    RemoteMixInvalid {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The port-capacity tier weights are outside `[0, 1]` or
    /// `p_local_ge + p_local_10ge` exceeds 1.
    PortWeightsInvalid {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// `min_physical_mbps` exceeds `max_physical_mbps`.
    InvertedCapacityBounds {
        /// Configured lower bound (Mbps).
        min: u32,
        /// Configured upper bound (Mbps).
        max: u32,
    },
    /// `scale` is not a finite positive number.
    ScaleInvalid {
        /// The rejected value.
        value: f64,
    },
    /// A member/population count that must be at least 1 is zero.
    ZeroMemberCount {
        /// Name of the offending field.
        field: &'static str,
    },
    /// `observation_month` falls outside `1..=timeline_months`, or the
    /// timeline is empty.
    ObservationOutOfWindow {
        /// Configured observation month.
        observation_month: u32,
        /// Configured timeline length in months.
        timeline_months: u32,
    },
    /// A mean-count field is negative or non-finite.
    MeanInvalid {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for WorldConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "probability `{field}` = {value} is outside [0, 1]")
            }
            WorldConfigError::RemoteMixInvalid { detail } => {
                write!(f, "remote_mix invalid: {detail}")
            }
            WorldConfigError::PortWeightsInvalid { detail } => {
                write!(f, "port_capacity weights invalid: {detail}")
            }
            WorldConfigError::InvertedCapacityBounds { min, max } => write!(
                f,
                "port_capacity bounds inverted: min {min} Mbps > max {max} Mbps"
            ),
            WorldConfigError::ScaleInvalid { value } => {
                write!(f, "scale = {value} must be finite and > 0")
            }
            WorldConfigError::ZeroMemberCount { field } => {
                write!(f, "`{field}` must be at least 1")
            }
            WorldConfigError::ObservationOutOfWindow {
                observation_month,
                timeline_months,
            } => write!(
                f,
                "observation_month {observation_month} outside timeline 1..={timeline_months}"
            ),
            WorldConfigError::MeanInvalid { field, value } => {
                write!(f, "mean `{field}` = {value} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for WorldConfigError {}

fn check_prob(field: &'static str, value: f64) -> Result<(), WorldConfigError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(WorldConfigError::ProbabilityOutOfRange { field, value })
    }
}

impl WorldConfig {
    /// Starts a validating builder seeded with [`WorldConfig::default`].
    pub fn builder() -> WorldConfigBuilder {
        WorldConfigBuilder {
            cfg: WorldConfig::default(),
        }
    }

    /// Checks every knob for internal consistency.
    ///
    /// The stock constructors (`default`/`small`/`paper`/…) always pass;
    /// hand-edited configs — sweep-grid cells in particular — should be
    /// funnelled through this (or built via [`WorldConfig::builder`]) so
    /// degenerate worlds fail loudly at construction time.
    pub fn validate(&self) -> Result<(), WorldConfigError> {
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(WorldConfigError::ScaleInvalid { value: self.scale });
        }
        if self.n_background_ases == 0 {
            return Err(WorldConfigError::ZeroMemberCount {
                field: "n_background_ases",
            });
        }
        if self.timeline_months == 0
            || self.observation_month == 0
            || self.observation_month > self.timeline_months
        {
            return Err(WorldConfigError::ObservationOutOfWindow {
                observation_month: self.observation_month,
                timeline_months: self.timeline_months,
            });
        }

        for (field, value) in [
            ("p_small_wide_area", self.p_small_wide_area),
            ("p_reseller_given_remote", self.p_reseller_given_remote),
            ("p_submin_given_reseller", self.p_submin_given_reseller),
            ("p_colocated_reseller", self.p_colocated_reseller),
            ("p_legacy_submin_local", self.p_legacy_submin_local),
            ("p_local_share_router", self.p_local_share_router),
            ("p_remote_share_router", self.p_remote_share_router),
            ("p_hybrid_attach_facility", self.p_hybrid_attach_facility),
            ("p_ipid_shared", self.p_ipid_shared),
            ("p_ipid_random", self.p_ipid_random),
            ("p_iface_responds", self.p_iface_responds),
            ("p_join_window_local", self.p_join_window_local),
            ("p_join_window_remote", self.p_join_window_remote),
        ] {
            check_prob(field, value)?;
        }
        if self.p_ipid_shared + self.p_ipid_random > 1.0 + 1e-9 {
            return Err(WorldConfigError::ProbabilityOutOfRange {
                field: "p_ipid_shared + p_ipid_random",
                value: self.p_ipid_shared + self.p_ipid_random,
            });
        }

        let mix = self.remote_mix;
        for (name, w) in [
            ("same_metro", mix.same_metro),
            ("regional", mix.regional),
            ("continental", mix.continental),
            ("intercontinental", mix.intercontinental),
        ] {
            if !(w.is_finite() && (0.0..=1.0).contains(&w)) {
                return Err(WorldConfigError::RemoteMixInvalid {
                    detail: format!("weight `{name}` = {w} is outside [0, 1]"),
                });
            }
        }
        let head = mix.same_metro + mix.regional + mix.continental;
        if head > 1.0 + 1e-9 {
            return Err(WorldConfigError::RemoteMixInvalid {
                detail: format!("same_metro + regional + continental = {head} exceeds 1"),
            });
        }

        let ports = self.port_capacity;
        for (name, w) in [
            ("p_local_ge", ports.p_local_ge),
            ("p_local_10ge", ports.p_local_10ge),
            ("p_cable_ge", ports.p_cable_ge),
        ] {
            if !(w.is_finite() && (0.0..=1.0).contains(&w)) {
                return Err(WorldConfigError::PortWeightsInvalid {
                    detail: format!("weight `{name}` = {w} is outside [0, 1]"),
                });
            }
        }
        if ports.p_local_ge + ports.p_local_10ge > 1.0 + 1e-9 {
            return Err(WorldConfigError::PortWeightsInvalid {
                detail: format!(
                    "p_local_ge + p_local_10ge = {} exceeds 1",
                    ports.p_local_ge + ports.p_local_10ge
                ),
            });
        }
        if ports.min_physical_mbps > ports.max_physical_mbps {
            return Err(WorldConfigError::InvertedCapacityBounds {
                min: ports.min_physical_mbps,
                max: ports.max_physical_mbps,
            });
        }

        for (field, value) in [
            ("mean_pnis_per_local", self.mean_pnis_per_local),
            ("departures_per_join", self.departures_per_join),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(WorldConfigError::MeanInvalid { field, value });
            }
        }
        Ok(())
    }
}

/// Fluent, validating constructor for [`WorldConfig`].
///
/// Starts from an existing config ([`WorldConfigBuilder::from_config`])
/// or the defaults ([`WorldConfig::builder`]); [`WorldConfigBuilder::build`]
/// runs [`WorldConfig::validate`] and hands back either the config or a
/// typed [`WorldConfigError`].
#[derive(Debug, Clone)]
pub struct WorldConfigBuilder {
    cfg: WorldConfig,
}

impl WorldConfigBuilder {
    /// Starts from an existing config (e.g. `WorldConfig::small(seed)`).
    pub fn from_config(cfg: WorldConfig) -> Self {
        WorldConfigBuilder { cfg }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the member-target multiplier (1.0 = paper scale).
    pub fn scale(mut self, scale: f64) -> Self {
        self.cfg.scale = scale;
        self
    }

    /// Sets the number of generated small IXPs.
    pub fn n_small_ixps(mut self, n: usize) -> Self {
        self.cfg.n_small_ixps = n;
        self
    }

    /// Sets the background AS pool size.
    pub fn n_background_ases(mut self, n: usize) -> Self {
        self.cfg.n_background_ases = n;
        self
    }

    /// Sets the number of planted remote→local switchers.
    pub fn n_switchers(mut self, n: usize) -> Self {
        self.cfg.n_switchers = n;
        self
    }

    /// Sets the remote-distance mixture.
    pub fn remote_mix(mut self, mix: crate::gen::RemoteMix) -> Self {
        self.cfg.remote_mix = mix;
        self
    }

    /// Sets the physical port-capacity distribution.
    pub fn port_capacity(mut self, ports: crate::gen::PortCapacityDist) -> Self {
        self.cfg.port_capacity = ports;
        self
    }

    /// Sets P(remote peer connects via reseller).
    pub fn p_reseller_given_remote(mut self, p: f64) -> Self {
        self.cfg.p_reseller_given_remote = p;
        self
    }

    /// Sets the timeline length in months.
    pub fn timeline_months(mut self, m: u32) -> Self {
        self.cfg.timeline_months = m;
        self
    }

    /// Sets the observation month.
    pub fn observation_month(mut self, m: u32) -> Self {
        self.cfg.observation_month = m;
        self
    }

    /// Applies an arbitrary tweak to the underlying config.
    ///
    /// Escape hatch for knobs without a dedicated setter; the tweak is
    /// still validated by [`WorldConfigBuilder::build`].
    pub fn tweak(mut self, f: impl FnOnce(&mut WorldConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<WorldConfig, WorldConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{capacity, PortCapacityDist, RemoteMix};

    #[test]
    fn stock_constructors_validate() {
        for cfg in [
            WorldConfig::default(),
            WorldConfig::small(7),
            WorldConfig::paper(7),
            WorldConfig::large(7),
            WorldConfig::xlarge(7),
        ] {
            cfg.validate().expect("stock config must validate");
        }
    }

    #[test]
    fn builder_happy_path() {
        let cfg = WorldConfig::builder()
            .seed(99)
            .scale(0.5)
            .n_small_ixps(10)
            .p_reseller_given_remote(0.4)
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.p_reseller_given_remote, 0.4);
    }

    #[test]
    fn rejects_out_of_range_probability() {
        let err = WorldConfig::builder()
            .p_reseller_given_remote(1.3)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            WorldConfigError::ProbabilityOutOfRange {
                field: "p_reseller_given_remote",
                ..
            }
        ));
        let err = WorldConfig::builder()
            .tweak(|c| c.p_ipid_shared = f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            WorldConfigError::ProbabilityOutOfRange {
                field: "p_ipid_shared",
                ..
            }
        ));
    }

    #[test]
    fn rejects_zero_member_count() {
        let err = WorldConfig::builder()
            .n_background_ases(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            WorldConfigError::ZeroMemberCount {
                field: "n_background_ases"
            }
        ));
    }

    #[test]
    fn rejects_inverted_capacity_bounds() {
        let ports = PortCapacityDist {
            min_physical_mbps: capacity::TEN_GE,
            max_physical_mbps: capacity::GE,
            ..PortCapacityDist::default()
        };
        let err = WorldConfig::builder()
            .port_capacity(ports)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            WorldConfigError::InvertedCapacityBounds {
                min: capacity::TEN_GE,
                max: capacity::GE,
            }
        );
    }

    #[test]
    fn rejects_bad_remote_mix_and_port_weights() {
        let err = WorldConfig::builder()
            .remote_mix(RemoteMix {
                same_metro: 0.6,
                regional: 0.5,
                continental: 0.2,
                intercontinental: 0.0,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, WorldConfigError::RemoteMixInvalid { .. }));

        let err = WorldConfig::builder()
            .port_capacity(PortCapacityDist {
                p_local_ge: 0.8,
                p_local_10ge: 0.4,
                ..PortCapacityDist::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, WorldConfigError::PortWeightsInvalid { .. }));
    }

    #[test]
    fn rejects_bad_scale_and_window() {
        assert!(matches!(
            WorldConfig::builder().scale(0.0).build().unwrap_err(),
            WorldConfigError::ScaleInvalid { .. }
        ));
        assert!(matches!(
            WorldConfig::builder()
                .observation_month(20)
                .build()
                .unwrap_err(),
            WorldConfigError::ObservationOutOfWindow { .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let msg = WorldConfigError::InvertedCapacityBounds {
            min: 10_000,
            max: 1_000,
        }
        .to_string();
        assert!(msg.contains("10000") && msg.contains("1000"));
    }
}
