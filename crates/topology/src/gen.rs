//! Deterministic world generation.
//!
//! [`WorldConfig::generate`] builds a ground-truth [`World`] whose marginal
//! statistics match the populations reported in the paper: 37 named IXPs
//! (the Table 2 validation set plus the other studied exchanges, see
//! [`crate::spec`]), a few hundred generated smaller IXPs (~14 % of the
//! multi-member ones wide-area, §4.2), a heavy-tailed AS population with
//! PDB-like colocation footprints (Fig. 1a), remote peers drawn from the
//! distance mixture implied by Fig. 1b, reseller virtual ports below the
//! IXPs' minimum physical capacity (Fig. 4), and the router-sharing
//! behaviour that produces multi-IXP routers (Fig. 3 / Fig. 9d).
//!
//! Everything is derived from a single `u64` seed; the same seed always
//! produces the same world, byte for byte.

use crate::cities::{Region, CITY_CATALOG};
use crate::ids::*;
use crate::spec::{IxpSpec, NAMED_IXPS};
use crate::world::*;
use opeer_geo::GeoPoint;
use opeer_net::{Asn, Ipv4Prefix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Distance classes for remote peers, with the paper-implied mixture
/// (Fig. 1b: ~18 % of remote peers within 1 ms ≈ same metro, ~40 % within
/// 10 ms ≈ ≲1300 km).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(crate = "serde")]
pub struct RemoteMix {
    /// Same metropolitan area as the IXP (reseller in town).
    pub same_metro: f64,
    /// 100–1200 km.
    pub regional: f64,
    /// 1200–3500 km.
    pub continental: f64,
    /// Beyond 3500 km.
    pub intercontinental: f64,
}

use serde::{Deserialize, Serialize};

impl Default for RemoteMix {
    fn default() -> Self {
        RemoteMix {
            same_metro: 0.18,
            regional: 0.25,
            continental: 0.37,
            intercontinental: 0.20,
        }
    }
}

/// Distribution of freshly sold *physical* port capacities — the
/// port-capacity knob of the sweep fleet. The weights pick the tier of a
/// new physical port; the bounds clamp whatever tier was drawn, so whole
/// worlds can be pushed toward rich (all-100GE) or lean (all-GE) port
/// markets. Reseller virtual ports and legacy sub-`Cmin` ports are
/// deliberately outside its reach: resellers stay rate-limited below the
/// IXP minimum and legacy ports stay legacy, whatever the market does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(crate = "serde")]
pub struct PortCapacityDist {
    /// P(local physical port = GE).
    pub p_local_ge: f64,
    /// P(local physical port = 10GE); the remainder is 100GE.
    pub p_local_10ge: f64,
    /// P(remote long-cable port = GE); the remainder is 10GE.
    pub p_cable_ge: f64,
    /// Lower clamp applied to tier-drawn physical capacities, Mbps.
    pub min_physical_mbps: u32,
    /// Upper clamp applied to tier-drawn physical capacities, Mbps.
    pub max_physical_mbps: u32,
}

impl Default for PortCapacityDist {
    fn default() -> Self {
        PortCapacityDist {
            p_local_ge: 0.55,
            p_local_10ge: 0.35,
            p_cable_ge: 0.70,
            min_physical_mbps: capacity::GE,
            max_physical_mbps: capacity::HUNDRED_GE,
        }
    }
}

impl PortCapacityDist {
    /// A capacity-rich market: most physical ports 10GE or 100GE.
    pub fn rich() -> Self {
        PortCapacityDist {
            p_local_ge: 0.15,
            p_local_10ge: 0.45,
            p_cable_ge: 0.30,
            ..Default::default()
        }
    }

    /// A lean market: nearly everything at the GE minimum.
    pub fn lean() -> Self {
        PortCapacityDist {
            p_local_ge: 0.90,
            p_local_10ge: 0.09,
            p_cable_ge: 0.95,
            ..Default::default()
        }
    }

    /// Clamps a tier-drawn capacity into the configured bounds. `max`
    /// wins over an inverted `min` (the builder rejects inverted bounds
    /// up front; a hand-built struct degrades instead of panicking).
    pub fn bound(&self, cap: u32) -> u32 {
        cap.max(self.min_physical_mbps).min(self.max_physical_mbps)
    }
}

/// Configuration of the world generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Multiplier on the named IXPs' member targets (1.0 = paper scale).
    pub scale: f64,
    /// Number of generated small IXPs beyond the named ones.
    pub n_small_ixps: usize,
    /// Pre-created AS pool beyond what memberships require.
    pub n_background_ases: usize,
    /// Probability that a generated multi-member small IXP is wide-area
    /// (the paper finds 14.4 % of multi-member IXPs wide-area).
    pub p_small_wide_area: f64,
    /// Months in the simulated timeline (the paper's longitudinal window
    /// 2017-07 … 2018-09 is 14 months).
    pub timeline_months: u32,
    /// The month used as "now" by the main experiments.
    pub observation_month: u32,
    /// Distance mixture of remote peers.
    pub remote_mix: RemoteMix,
    /// Distribution (and bounds) of freshly sold physical port
    /// capacities.
    pub port_capacity: PortCapacityDist,
    /// P(remote peer connects via reseller | IXP allows resellers).
    pub p_reseller_given_remote: f64,
    /// P(virtual port below Cmin | reseller port).
    pub p_submin_given_reseller: f64,
    /// P(remote-via-reseller member is nevertheless colocated with the
    /// IXP) — the 5 % artifact of Fig. 5.
    pub p_colocated_reseller: f64,
    /// P(local member holds a legacy physical port below Cmin) — Step 1's
    /// precision cost (footnote 6).
    pub p_legacy_submin_local: f64,
    /// P(local member reuses an existing router in the same facility for
    /// an additional IXP) — Fig. 3a.
    pub p_local_share_router: f64,
    /// P(remote member reuses its premises border router for an
    /// additional remote IXP) — Fig. 3b.
    pub p_remote_share_router: f64,
    /// P(remote membership attaches to an existing colocation router of
    /// the member instead of premises) — the hybrid case, Fig. 3c.
    pub p_hybrid_attach_facility: f64,
    /// Router IP-ID behaviour: P(shared counter) and P(random); the
    /// remainder send zero.
    pub p_ipid_shared: f64,
    /// See [`WorldConfig::p_ipid_shared`].
    pub p_ipid_random: f64,
    /// P(an IXP-LAN interface answers ping).
    pub p_iface_responds: f64,
    /// Mean number of private interconnects per local membership.
    pub mean_pnis_per_local: f64,
    /// Probability that a local member joined during the observation
    /// window rather than before it.
    pub p_join_window_local: f64,
    /// Same for remote members. Calibrated so that in-window remote joins
    /// outnumber local joins ≈2:1 despite remote members being ~¼ of the
    /// population (Fig. 12a).
    pub p_join_window_remote: f64,
    /// Extra departed memberships per in-window join.
    pub departures_per_join: f64,
    /// Number of remote→local switchers to plant at the evolution IXPs.
    pub n_switchers: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0xBEE5,
            scale: 1.0,
            n_small_ixps: 670,
            n_background_ases: 1500,
            p_small_wide_area: 0.144,
            timeline_months: 14,
            observation_month: 12,
            remote_mix: RemoteMix::default(),
            port_capacity: PortCapacityDist::default(),
            p_reseller_given_remote: 0.62,
            p_submin_given_reseller: 0.60,
            p_colocated_reseller: 0.05,
            p_legacy_submin_local: 0.006,
            p_local_share_router: 0.80,
            p_remote_share_router: 0.85,
            p_hybrid_attach_facility: 0.25,
            p_ipid_shared: 0.75,
            p_ipid_random: 0.15,
            p_iface_responds: 0.95,
            mean_pnis_per_local: 1.6,
            p_join_window_local: 0.08,
            p_join_window_remote: 0.48,
            departures_per_join: 0.45,
            n_switchers: 18,
        }
    }
}

impl WorldConfig {
    /// Full paper-scale world (~15 k memberships). Takes a few seconds.
    pub fn paper(seed: u64) -> Self {
        WorldConfig {
            seed,
            ..Default::default()
        }
    }

    /// A small world for unit tests: same structure, ~5 % of the scale.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 0.06,
            n_small_ixps: 20,
            n_background_ases: 120,
            n_switchers: 4,
            ..Default::default()
        }
    }

    /// A large world for scaling studies: full paper scale on the named
    /// IXPs' member targets, with a trimmed long tail of generated small
    /// IXPs and background ASes so world *generation* stays a fraction
    /// of measurement time. Sized for the parallel engine era — both
    /// measurement assembly and inference now shard across the worker
    /// pool, so the scaling study runs at the member scale the paper
    /// measured instead of the half-scale world the sequential
    /// assembler could afford.
    pub fn large(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 1.0,
            n_small_ixps: 400,
            n_background_ases: 1000,
            n_switchers: 14,
            ..Default::default()
        }
    }

    /// An extra-large world for saturation studies: roughly double the
    /// membership scale of [`WorldConfig::large`] with a deeper long
    /// tail of small IXPs and background ASes. Sized to keep the
    /// per-thread shards of the pipeline phase busy well past 8
    /// workers, so the scaling curve measures the engine rather than
    /// shard-scheduling overhead. Expensive — minutes of assembly on a
    /// laptop-class core; the CI bench runs it only on schedule.
    pub fn xlarge(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 2.0,
            n_small_ixps: 900,
            n_background_ases: 2500,
            n_switchers: 24,
            ..Default::default()
        }
    }

    /// Generates the world.
    pub fn generate(&self) -> World {
        Gen::new(self.clone()).run()
    }
}

// ---------------------------------------------------------------------
// generator internals
// ---------------------------------------------------------------------

struct Gen {
    cfg: WorldConfig,
    rng: StdRng,
    w: World,
    /// Facilities per city.
    city_facilities: Vec<Vec<FacilityId>>,
    /// (AS, facility) → routers there.
    facility_routers: HashMap<(AsId, FacilityId), Vec<RouterId>>,
    /// AS → premises border router.
    premises_router: HashMap<AsId, RouterId>,
    /// Next host index inside each AS's /16.
    as_next_host: Vec<u32>,
    /// Next member slot on each IXP LAN.
    lan_next_slot: Vec<u32>,
    /// Reseller → IXPs served (with the reseller's port facility there).
    reseller_ixps: HashMap<AsId, HashMap<IxpId, FacilityId>>,
    /// City-pair distances, km (symmetric, indexed by catalog order).
    city_dist: Vec<Vec<f64>>,
}

/// Capacity constants, Mbps.
pub mod capacity {
    /// Fast Ethernet.
    pub const FE: u32 = 100;
    /// Gigabit Ethernet — the usual minimum physical port (`Cmin`).
    pub const GE: u32 = 1_000;
    /// 10GE.
    pub const TEN_GE: u32 = 10_000;
    /// 100GE.
    pub const HUNDRED_GE: u32 = 100_000;
}

impl Gen {
    fn new(cfg: WorldConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Gen {
            cfg,
            rng,
            w: World::default(),
            city_facilities: Vec::new(),
            facility_routers: HashMap::new(),
            premises_router: HashMap::new(),
            as_next_host: Vec::new(),
            lan_next_slot: Vec::new(),
            reseller_ixps: HashMap::new(),
            city_dist: Vec::new(),
        }
    }

    fn run(mut self) -> World {
        self.make_cities();
        self.make_background_ases();
        self.make_named_ixps();
        self.make_small_ixps();
        self.make_resellers();
        self.populate_memberships();
        self.make_private_links();
        self.ensure_premises_routers();
        self.assign_timeline();
        // Transit is wired last so every minted member/ghost AS gets
        // providers too.
        self.make_transit_edges();
        self.colocate_providers();
        self.w.observation_month = self.cfg.observation_month;
        self.w.seed = self.cfg.seed;
        self.w.rebuild_indexes();
        self.w
    }

    // ---- phase 1: cities & facility pools ----

    fn make_cities(&mut self) {
        for c in CITY_CATALOG {
            self.w.cities.push(City {
                name: c.name.to_string(),
                country: c.country.to_string(),
                region: c.region,
                location: GeoPoint::new(c.lat, c.lon).expect("catalog coords valid"),
            });
        }
        self.city_facilities = vec![Vec::new(); self.w.cities.len()];
        // Pre-compute city-pair distances.
        let n = self.w.cities.len();
        self.city_dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.w.cities[i]
                    .location
                    .distance_km(&self.w.cities[j].location);
                self.city_dist[i][j] = d;
                self.city_dist[j][i] = d;
            }
        }
        // A base stock of neutral colo facilities per city (1–5).
        for city_idx in 0..n {
            let count = self.rng.gen_range(1..=5);
            for k in 0..count {
                self.new_facility(CityId::from_index(city_idx), &format!("Colo {k}"));
            }
        }
    }

    fn new_facility(&mut self, city: CityId, label: &str) -> FacilityId {
        // Jitter within ~15 km of the centre: 0.1° lat ≈ 11 km.
        let base = self.w.cities[city.index()].location;
        let lat = (base.lat() + self.rng.gen_range(-0.12..0.12)).clamp(-89.9, 89.9);
        let lon = base.lon() + self.rng.gen_range(-0.18..0.18);
        let id = FacilityId::from_index(self.w.facilities.len());
        self.w.facilities.push(Facility {
            name: format!("{} {} #{}", self.w.cities[city.index()].name, label, id.0),
            city,
            location: GeoPoint::new(lat, lon).expect("jittered coords valid"),
        });
        self.city_facilities[city.index()].push(id);
        id
    }

    // ---- phase 2: the AS population ----

    fn make_background_ases(&mut self) {
        // Global transit clique.
        let majors = [
            "Frankfurt",
            "London",
            "New York",
            "Tokyo",
            "Amsterdam",
            "Paris",
            "Singapore",
            "Los Angeles",
            "Ashburn",
            "Hong Kong",
            "Stockholm",
            "Madrid",
        ];
        for (i, home) in majors.iter().enumerate() {
            let home = self.city_id(home);
            let asid = self.new_as(&format!("GlobalBackbone{i}"), AsKind::TransitGlobal, home);
            // Present in many facilities worldwide.
            let n_fac = self.rng.gen_range(15..35);
            self.add_random_facilities(asid, n_fac, None);
        }
        // Regional transit.
        let n_regional = (self.cfg.n_background_ases / 12).max(8);
        for i in 0..n_regional {
            let home = self.random_city_weighted();
            let asid = self.new_as(
                &format!("RegionalTransit{i}"),
                AsKind::TransitRegional,
                home,
            );
            let n_fac = self.rng.gen_range(2..8);
            self.add_random_facilities(asid, n_fac, Some(self.w.cities[home.index()].region));
        }
        // Carriers (reseller pool).
        for i in 0..40usize.min(self.cfg.n_background_ases / 4).max(10) {
            let home = self.random_city_weighted();
            let asid = self.new_as(&format!("Carrier{i}"), AsKind::Carrier, home);
            let n_fac = self.rng.gen_range(2..10);
            self.add_random_facilities(asid, n_fac, None);
        }
        // Content providers with heavy-tailed footprints.
        let n_content = self.cfg.n_background_ases / 5;
        for i in 0..n_content {
            let home = self.random_city_weighted();
            let asid = self.new_as(&format!("Content{i}"), AsKind::Content, home);
            let n_fac = self.heavy_tail_facility_count();
            self.add_random_facilities(asid, n_fac, None);
        }
        // The rest: eyeballs & enterprises, mostly single-facility or none.
        let remaining = self
            .cfg
            .n_background_ases
            .saturating_sub(majors.len() + n_regional + 40 + n_content);
        for i in 0..remaining {
            let home = self.random_city_weighted();
            let kind = if self.rng.gen_bool(0.6) {
                AsKind::Eyeball
            } else {
                AsKind::Enterprise
            };
            let asid = self.new_as(&format!("Net{i}"), kind, home);
            if self.rng.gen_bool(0.5) {
                let n_fac = if self.rng.gen_bool(0.75) {
                    1
                } else {
                    self.rng.gen_range(2..4)
                };
                self.add_random_facilities(asid, n_fac, Some(self.w.cities[home.index()].region));
            }
        }
    }

    /// Fig. 1a-compatible facility-count tail: ~60 % single, ~5 % > 10.
    fn heavy_tail_facility_count(&mut self) -> usize {
        let r: f64 = self.rng.gen();
        if r < 0.60 {
            1
        } else if r < 0.85 {
            self.rng.gen_range(2..5)
        } else if r < 0.95 {
            self.rng.gen_range(5..11)
        } else {
            self.rng.gen_range(11..40)
        }
    }

    fn new_as(&mut self, name: &str, kind: AsKind, home: CityId) -> AsId {
        let idx = self.w.ases.len();
        let asn = public_asn(idx);
        let traffic = self.traffic_for(kind);
        let users = match kind {
            AsKind::Eyeball => traffic * self.rng.gen_range(5..40),
            _ => traffic / 10,
        };
        let open = match kind {
            AsKind::Content | AsKind::Eyeball => self.rng.gen_bool(0.85),
            AsKind::Enterprise | AsKind::Carrier => self.rng.gen_bool(0.7),
            AsKind::TransitRegional => self.rng.gen_bool(0.5),
            AsKind::TransitGlobal => self.rng.gen_bool(0.15),
        };
        // Originated prefixes: the AS /16 plus a few more-specifics.
        let base = as_block(idx);
        let n_subs = match kind {
            AsKind::TransitGlobal | AsKind::TransitRegional => self.rng.gen_range(4..16),
            AsKind::Content | AsKind::Eyeball => self.rng.gen_range(1..8),
            _ => self.rng.gen_range(0..3),
        };
        let mut prefixes = vec![base];
        for _ in 0..n_subs {
            let third = self.rng.gen_range(0..256) as u32;
            let sub = Ipv4Prefix::new(Ipv4Addr::from(u32::from(base.network()) + third * 256), 24)
                .expect("within /16");
            if !prefixes.contains(&sub) {
                prefixes.push(sub);
            }
        }
        self.w.ases.push(AsNode {
            asn,
            name: name.to_string(),
            kind,
            home_city: home,
            facilities: Vec::new(),
            prefixes,
            traffic_mbps: traffic,
            user_population: users,
            is_reseller: false,
            open_peering: open,
        });
        self.as_next_host.push(1);
        AsId::from_index(idx)
    }

    fn traffic_for(&mut self, kind: AsKind) -> u64 {
        let (lo, hi) = match kind {
            AsKind::TransitGlobal => (4.0, 5.8),
            AsKind::TransitRegional => (3.0, 5.0),
            AsKind::Content => (2.5, 5.5),
            AsKind::Eyeball => (2.0, 5.0),
            AsKind::Enterprise => (1.0, 3.5),
            AsKind::Carrier => (2.5, 4.5),
        };
        10f64.powf(self.rng.gen_range(lo..hi)) as u64
    }

    fn add_random_facilities(&mut self, asid: AsId, count: usize, region: Option<Region>) {
        let mut candidates: Vec<FacilityId> = Vec::new();
        for (ci, facs) in self.city_facilities.iter().enumerate() {
            if let Some(r) = region {
                if self.w.cities[ci].region != r {
                    continue;
                }
            }
            candidates.extend_from_slice(facs);
        }
        candidates.shuffle(&mut self.rng);
        let list = &mut self.w.ases[asid.index()].facilities;
        for f in candidates.into_iter().take(count) {
            if !list.contains(&f) {
                list.push(f);
            }
        }
    }

    fn city_id(&self, name: &str) -> CityId {
        CityId::from_index(crate::cities::city_index(name))
    }

    fn random_city_weighted(&mut self) -> CityId {
        // RIPE-heavy weighting, matching IXP-ecosystem geography.
        let region = match self.rng.gen_range(0..100) {
            0..=54 => Region::Ripe,
            55..=74 => Region::Arin,
            75..=89 => Region::Apnic,
            90..=96 => Region::Lacnic,
            _ => Region::Afrinic,
        };
        let in_region: Vec<usize> = (0..self.w.cities.len())
            .filter(|&i| self.w.cities[i].region == region)
            .collect();
        CityId::from_index(*in_region.choose(&mut self.rng).expect("region has cities"))
    }

    // ---- phase 3: IXPs ----

    fn make_named_ixps(&mut self) {
        let specs: Vec<IxpSpec> = NAMED_IXPS.to_vec();
        for spec in &specs {
            let mut facilities = Vec::new();
            // Anchor city gets the lion's share of facilities.
            let anchor_city = self.city_id(spec.cities[0]);
            let per_extra_city = 1usize;
            let anchor_count = spec
                .facilities
                .saturating_sub(per_extra_city * (spec.cities.len() - 1))
                .max(1);
            for k in 0..anchor_count {
                facilities.push(self.new_facility(anchor_city, &format!("{} site {k}", spec.name)));
            }
            for city in &spec.cities[1..] {
                let cid = self.city_id(city);
                facilities.push(self.new_facility(cid, &format!("{} site", spec.name)));
            }
            self.push_ixp(
                spec.name.to_string(),
                facilities,
                spec.allows_resellers,
                spec.has_looking_glass,
                spec.lg_rounds_up,
                spec.studied,
                spec.validation,
                spec.validation_source,
            );
        }
    }

    fn make_small_ixps(&mut self) {
        for i in 0..self.cfg.n_small_ixps {
            let city = self.random_city_weighted();
            let mut facilities = Vec::new();
            let n_local_fac = self.rng.gen_range(1..=2);
            for _ in 0..n_local_fac {
                // Reuse an existing neutral facility or build a new one.
                let existing = self.city_facilities[city.index()].clone();
                let f = if !existing.is_empty() && self.rng.gen_bool(0.7) {
                    *existing.choose(&mut self.rng).expect("non-empty")
                } else {
                    self.new_facility(city, "IX site")
                };
                if !facilities.contains(&f) {
                    facilities.push(f);
                }
            }
            // Some small multi-member IXPs are wide-area.
            if self.rng.gen_bool(self.cfg.p_small_wide_area) {
                let other = self.random_city_weighted();
                if other != city {
                    facilities.push(self.new_facility(other, "IX remote site"));
                }
            }
            let name = format!("IX-{}-{}", self.w.cities[city.index()].country, i);
            let resellers_ok = self.rng.gen_bool(0.5);
            self.push_ixp(
                name,
                facilities,
                resellers_ok,
                false,
                false,
                false,
                ValidationRole::None,
                None,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_ixp(
        &mut self,
        name: String,
        facilities: Vec<FacilityId>,
        allows_resellers: bool,
        has_lg: bool,
        lg_rounds_up: bool,
        studied: bool,
        validation: ValidationRole,
        validation_source: Option<ValidationSource>,
    ) {
        let idx = self.w.ixps.len();
        let lan = lan_block(idx);
        let anchor = facilities[0];
        let anchor_city = self.w.facilities[anchor.index()].city;
        // NOC AS operating the route server.
        let noc = self.new_as(&format!("{name} NOC"), AsKind::Enterprise, anchor_city);
        self.w.ases[noc.index()].facilities.push(anchor);
        let rs_ip = lan.addr_at(1).expect("LAN holds route server");
        let rs_router = self.new_router(noc, RouterLoc::Facility(anchor));
        self.new_iface(rs_router, rs_ip, IfaceKind::Internal, true);
        self.w.ixps.push(Ixp {
            name,
            peering_lan: lan,
            route_server_ip: rs_ip,
            route_server_asn: self.w.ases[noc.index()].asn,
            facilities,
            anchor_facility: anchor,
            min_physical_capacity_mbps: capacity::GE,
            capacity_options_mbps: vec![capacity::GE, capacity::TEN_GE, capacity::HUNDRED_GE],
            allows_resellers,
            has_looking_glass: has_lg,
            lg_rounds_up,
            studied,
            validation,
            validation_source,
        });
        self.lan_next_slot.push(10);
    }

    // ---- phase 4: transit edges ----

    fn make_transit_edges(&mut self) {
        let globals: Vec<AsId> = self.as_ids_of_kind(AsKind::TransitGlobal);
        let regionals: Vec<AsId> = self.as_ids_of_kind(AsKind::TransitRegional);
        // Regionals buy transit from 1–2 globals.
        for &r in &regionals {
            let n = self.rng.gen_range(1..=2);
            let mut gs = globals.clone();
            gs.shuffle(&mut self.rng);
            for &g in gs.iter().take(n) {
                self.w.transit_rels.push((g, r));
            }
        }
        // Everyone else buys from regionals in-region (or a global).
        let n_as = self.w.ases.len();
        for i in 0..n_as {
            let kind = self.w.ases[i].kind;
            if matches!(kind, AsKind::TransitGlobal | AsKind::TransitRegional) {
                continue;
            }
            let asid = AsId::from_index(i);
            let my_region = self.w.cities[self.w.ases[i].home_city.index()].region;
            let candidates: Vec<AsId> = regionals
                .iter()
                .copied()
                .filter(|r| {
                    self.w.cities[self.w.ases[r.index()].home_city.index()].region == my_region
                })
                .collect();
            let n_prov = self.rng.gen_range(1..=2);
            let mut picked = 0;
            let mut pool = if candidates.is_empty() {
                regionals.clone()
            } else {
                candidates
            };
            pool.shuffle(&mut self.rng);
            for &p in pool.iter() {
                if picked == n_prov {
                    break;
                }
                self.w.transit_rels.push((p, asid));
                picked += 1;
            }
            if picked == 0 && !globals.is_empty() {
                let g = globals[self.rng.gen_range(0..globals.len())];
                self.w.transit_rels.push((g, asid));
            }
        }
    }

    fn as_ids_of_kind(&self, kind: AsKind) -> Vec<AsId> {
        self.w
            .ases
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == kind)
            .map(|(i, _)| AsId::from_index(i))
            .collect()
    }

    // ---- phase 5: resellers ----

    fn make_resellers(&mut self) {
        let carriers = self.as_ids_of_kind(AsKind::Carrier);
        let reseller_count = (carriers.len() * 2 / 3).max(1);
        let reseller_friendly: Vec<IxpId> = (0..self.w.ixps.len())
            .filter(|&i| self.w.ixps[i].allows_resellers)
            .map(IxpId::from_index)
            .collect();
        for &carrier in carriers.iter().take(reseller_count) {
            self.w.ases[carrier.index()].is_reseller = true;
            let n_served = self.rng.gen_range(3..=15).min(reseller_friendly.len());
            let mut served = reseller_friendly.clone();
            served.shuffle(&mut self.rng);
            let mut map = HashMap::new();
            for &ixp in served.iter().take(n_served) {
                let facs = self.w.ixps[ixp.index()].facilities.clone();
                let port_fac = *facs.choose(&mut self.rng).expect("IXP has facilities");
                // The reseller is colocated at its port facility.
                if !self.w.ases[carrier.index()].facilities.contains(&port_fac) {
                    self.w.ases[carrier.index()].facilities.push(port_fac);
                }
                map.insert(ixp, port_fac);
            }
            self.reseller_ixps.insert(carrier, map);
        }
    }

    // ---- phase 6: memberships ----

    fn populate_memberships(&mut self) {
        let n_named = NAMED_IXPS.len();
        for (i, spec) in NAMED_IXPS.iter().enumerate() {
            let target = ((spec.members as f64) * self.cfg.scale).round().max(4.0) as usize;
            self.fill_ixp(IxpId::from_index(i), target, spec.remote_fraction);
        }
        for i in n_named..self.w.ixps.len() {
            // Small IXPs: mostly tiny; a Zipf-ish tail up to ~60 members.
            let r: f64 = self.rng.gen();
            let base = if r < 0.35 {
                self.rng.gen_range(1..=2) // sub-threshold (PDB lists 703 total, 446 with ≥2)
            } else if r < 0.85 {
                self.rng.gen_range(3..=20)
            } else {
                self.rng.gen_range(21..=60)
            };
            let target = ((base as f64) * self.cfg.scale.max(0.3)).round().max(1.0) as usize;
            let remote_fraction = self.rng.gen_range(0.05..0.35);
            self.fill_ixp(IxpId::from_index(i), target, remote_fraction);
        }
    }

    fn fill_ixp(&mut self, ixp: IxpId, target: usize, remote_fraction: f64) {
        let mut members_here: Vec<AsId> = Vec::new();
        for _ in 0..target {
            let remote = self.rng.gen_bool(remote_fraction);
            let m = if remote {
                self.add_remote_member(ixp, &members_here)
            } else {
                self.add_local_member(ixp, &members_here)
            };
            if let Some(asid) = m {
                members_here.push(asid);
            }
        }
    }

    /// Creates a local membership: member router patched in an IXP facility.
    fn add_local_member(&mut self, ixp: IxpId, exclude: &[AsId]) -> Option<AsId> {
        let facs = self.w.ixps[ixp.index()].facilities.clone();
        let anchor_city = self.w.facilities[self.w.ixps[ixp.index()].anchor_facility.index()].city;
        // Metro IXPs concentrate locals at the anchor site; the whole
        // point of a wide-area fabric (NL-IX, NET-IX, §4.2) is members
        // patching in at whichever distant site is nearest to them, so
        // there locals spread uniformly — this is what defeats plain
        // RTT thresholds.
        let wide_area = facs.iter().any(|&f| {
            self.w
                .facility_point(f)
                .distance_km(&self.w.facility_point(facs[0]))
                > opeer_geo::metro::DEFAULT_METRO_THRESHOLD_KM
        });
        let facility = if !wide_area && self.rng.gen_bool(0.75) {
            facs[0]
        } else {
            *facs.choose(&mut self.rng).expect("IXP has facilities")
        };
        // Members patch in near home: pick/mint an AS around the chosen
        // facility's metro (for wide-area fabrics this is the distant
        // site's city, not the anchor's).
        let member_city = self.w.facilities[facility.index()].city;
        let member = if self.rng.gen_bool(0.45) {
            self.pick_as_near(member_city, 0.0, 300.0, exclude)
                .unwrap_or_else(|| self.mint_member_as(member_city))
        } else {
            self.mint_member_as(member_city)
        };
        let _ = anchor_city;
        if exclude.contains(&member) {
            return None;
        }
        // Ground truth: the member is present at the chosen facility.
        if !self.w.ases[member.index()].facilities.contains(&facility) {
            self.w.ases[member.index()].facilities.push(facility);
        }
        let router = self.local_router_for(member, facility);
        let (port_mbps, port) = self.local_port(ixp);
        self.push_membership(
            ixp,
            member,
            router,
            port_mbps,
            port,
            AccessTruth::Local { facility },
        );
        Some(member)
    }

    /// Creates a remote membership per the distance mixture.
    fn add_remote_member(&mut self, ixp: IxpId, exclude: &[AsId]) -> Option<AsId> {
        let anchor = self.w.ixps[ixp.index()].anchor_facility;
        let anchor_city = self.w.facilities[anchor.index()].city;
        let mix = self.cfg.remote_mix;
        let r: f64 = self.rng.gen();
        let (lo_km, hi_km) = if r < mix.same_metro {
            (0.0, 50.0)
        } else if r < mix.same_metro + mix.regional {
            (100.0, 1200.0)
        } else if r < mix.same_metro + mix.regional + mix.continental {
            (1200.0, 3500.0)
        } else {
            (3500.0, 20000.0)
        };
        let member = if self.rng.gen_bool(0.5) {
            self.pick_as_near(anchor_city, lo_km, hi_km, exclude)
        } else {
            None
        }
        .unwrap_or_else(|| {
            let city = self
                .pick_city_in_band(anchor_city, lo_km, hi_km)
                .unwrap_or(anchor_city);
            self.mint_member_as(city)
        });
        if exclude.contains(&member) {
            return None;
        }

        let allows = self.w.ixps[ixp.index()].allows_resellers;
        let via_reseller = allows && self.rng.gen_bool(self.cfg.p_reseller_given_remote);
        let (truth, port_mbps, port) = if via_reseller {
            let reseller = self.pick_reseller(ixp);
            match reseller {
                Some((res, port_fac)) => {
                    // The 5% artifact: reseller customer colocated with the IXP.
                    if self.rng.gen_bool(self.cfg.p_colocated_reseller) {
                        let f = self.w.ixps[ixp.index()].facilities[0];
                        if !self.w.ases[member.index()].facilities.contains(&f) {
                            self.w.ases[member.index()].facilities.push(f);
                        }
                    }
                    let submin = self.rng.gen_bool(self.cfg.p_submin_given_reseller);
                    let cap = if submin {
                        *[
                            capacity::FE,
                            2 * capacity::FE,
                            3 * capacity::FE,
                            5 * capacity::FE,
                        ]
                        .choose(&mut self.rng)
                        .expect("non-empty")
                    } else {
                        *[capacity::GE, 2 * capacity::GE]
                            .choose(&mut self.rng)
                            .expect("non-empty")
                    };
                    (
                        AccessTruth::RemoteReseller {
                            reseller: res,
                            reseller_port_facility: port_fac,
                        },
                        cap,
                        PortKind::VirtualReseller { reseller: res },
                    )
                }
                None => {
                    // No reseller actually serves this IXP: fall back to a cable.
                    let landing = self.w.ixps[ixp.index()].facilities[0];
                    (
                        AccessTruth::RemoteLongCable {
                            landing_facility: landing,
                        },
                        capacity::GE,
                        PortKind::Physical,
                    )
                }
            }
        } else {
            let facs = self.w.ixps[ixp.index()].facilities.clone();
            let landing = *facs.choose(&mut self.rng).expect("IXP has facilities");
            let ports = self.cfg.port_capacity;
            let cap = if self.rng.gen_bool(ports.p_cable_ge) {
                capacity::GE
            } else {
                capacity::TEN_GE
            };
            (
                AccessTruth::RemoteLongCable {
                    landing_facility: landing,
                },
                ports.bound(cap),
                PortKind::Physical,
            )
        };

        let router = self.remote_router_for(member);
        self.push_membership(ixp, member, router, port_mbps, port, truth);
        Some(member)
    }

    fn pick_reseller(&mut self, ixp: IxpId) -> Option<(AsId, FacilityId)> {
        let serving: Vec<(AsId, FacilityId)> = self
            .reseller_ixps
            .iter()
            .filter_map(|(&res, map)| map.get(&ixp).map(|&f| (res, f)))
            .collect();
        serving.choose(&mut self.rng).copied()
    }

    fn local_port(&mut self, _ixp: IxpId) -> (u32, PortKind) {
        if self.rng.gen_bool(self.cfg.p_legacy_submin_local) {
            return (5 * capacity::FE, PortKind::LegacyPhysicalSubMin);
        }
        let ports = self.cfg.port_capacity;
        let r: f64 = self.rng.gen();
        let cap = if r < ports.p_local_ge {
            capacity::GE
        } else if r < ports.p_local_ge + ports.p_local_10ge {
            capacity::TEN_GE
        } else {
            capacity::HUNDRED_GE
        };
        (ports.bound(cap), PortKind::Physical)
    }

    /// Mints a fresh member AS homed in `city` (single-facility bias).
    fn mint_member_as(&mut self, city: CityId) -> AsId {
        let idx = self.w.ases.len();
        let kind = match self.rng.gen_range(0..100) {
            0..=44 => AsKind::Eyeball,
            45..=69 => AsKind::Enterprise,
            70..=92 => AsKind::Content,
            _ => AsKind::TransitRegional,
        };
        self.new_as(&format!("Member{idx}"), kind, city)
    }

    fn pick_as_near(
        &mut self,
        from_city: CityId,
        lo_km: f64,
        hi_km: f64,
        exclude: &[AsId],
    ) -> Option<AsId> {
        let from = from_city.index();
        let candidates: Vec<AsId> = (0..self.w.ases.len())
            .filter(|&i| {
                let a = &self.w.ases[i];
                if matches!(a.kind, AsKind::Carrier) && a.is_reseller {
                    return false;
                }
                let d = self.city_dist[from][a.home_city.index()];
                d >= lo_km && d <= hi_km
            })
            .map(AsId::from_index)
            .filter(|a| !exclude.contains(a))
            .collect();
        candidates.choose(&mut self.rng).copied()
    }

    fn pick_city_in_band(&mut self, from: CityId, lo_km: f64, hi_km: f64) -> Option<CityId> {
        let f = from.index();
        let band: Vec<usize> = (0..self.w.cities.len())
            .filter(|&i| {
                let d = self.city_dist[f][i];
                (i == f && lo_km == 0.0) || (d >= lo_km && d <= hi_km && i != f)
            })
            .collect();
        band.choose(&mut self.rng).map(|&i| CityId::from_index(i))
    }

    // ---- routers & interfaces ----

    fn new_router(&mut self, owner: AsId, loc: RouterLoc) -> RouterId {
        let id = RouterId::from_index(self.w.routers.len());
        let r: f64 = self.rng.gen();
        let ip_id = if r < self.cfg.p_ipid_shared {
            IpIdMode::SharedCounter {
                init: self.rng.gen(),
                rate_per_s: self.rng.gen_range(5.0..2000.0),
            }
        } else if r < self.cfg.p_ipid_shared + self.cfg.p_ipid_random {
            IpIdMode::Random
        } else {
            IpIdMode::Zero
        };
        self.w.routers.push(Router {
            owner,
            loc,
            ip_id,
            interfaces: Vec::new(),
        });
        // Every router gets one internal interface for traceroute hops.
        let host = self.next_host_addr(owner);
        self.new_iface(id, host, IfaceKind::Internal, true);
        if let RouterLoc::Facility(f) = loc {
            self.facility_routers
                .entry((owner, f))
                .or_default()
                .push(id);
        }
        id
    }

    fn next_host_addr(&mut self, asid: AsId) -> Ipv4Addr {
        let block = as_block(asid.index());
        let slot = self.as_next_host[asid.index()];
        self.as_next_host[asid.index()] = slot + 1;
        block
            .addr_at(u64::from(slot))
            .unwrap_or_else(|| panic!("AS {asid} exhausted its /16"))
    }

    fn new_iface(
        &mut self,
        router: RouterId,
        addr: Ipv4Addr,
        kind: IfaceKind,
        responds: bool,
    ) -> IfaceId {
        let id = IfaceId::from_index(self.w.interfaces.len());
        self.w.interfaces.push(Interface {
            addr,
            router,
            kind,
            responds_to_ping: responds,
        });
        self.w.routers[router.index()].interfaces.push(id);
        id
    }

    fn local_router_for(&mut self, member: AsId, facility: FacilityId) -> RouterId {
        let existing = self
            .facility_routers
            .get(&(member, facility))
            .and_then(|v| v.last().copied());
        match existing {
            Some(r) if self.rng.gen_bool(self.cfg.p_local_share_router) => r,
            _ => self.new_router(member, RouterLoc::Facility(facility)),
        }
    }

    fn remote_router_for(&mut self, member: AsId) -> RouterId {
        // Hybrid case: reuse a colocation router the member already has.
        if self.rng.gen_bool(self.cfg.p_hybrid_attach_facility) {
            let facs = self.w.ases[member.index()].facilities.clone();
            for f in facs {
                if let Some(r) = self
                    .facility_routers
                    .get(&(member, f))
                    .and_then(|v| v.last().copied())
                {
                    return r;
                }
            }
        }
        match self.premises_router.get(&member).copied() {
            Some(r) if self.rng.gen_bool(self.cfg.p_remote_share_router) => r,
            _ => {
                let home = self.w.ases[member.index()].home_city;
                let r = self.new_router(member, RouterLoc::Premises(home));
                self.premises_router.insert(member, r);
                r
            }
        }
    }

    fn push_membership(
        &mut self,
        ixp: IxpId,
        member: AsId,
        router: RouterId,
        port_mbps: u32,
        port: PortKind,
        truth: AccessTruth,
    ) {
        let lan = self.w.ixps[ixp.index()].peering_lan;
        let slot = self.lan_next_slot[ixp.index()];
        self.lan_next_slot[ixp.index()] = slot + 1;
        let addr = lan
            .addr_at(u64::from(slot))
            .unwrap_or_else(|| panic!("IXP {ixp} LAN exhausted"));
        let mid = MembershipId::from_index(self.w.memberships.len());
        let responds = self.rng.gen_bool(self.cfg.p_iface_responds);
        let iface = self.new_iface(
            router,
            addr,
            IfaceKind::IxpLan {
                ixp,
                membership: mid,
            },
            responds,
        );
        self.w.memberships.push(Membership {
            ixp,
            member,
            router,
            iface,
            port_mbps,
            port,
            truth,
            joined_month: 0,
            left_month: None,
        });
    }

    // ---- phase 7: private links ----

    fn make_private_links(&mut self) {
        // PNIs between colocated members at IXP facilities (feeds Step 5),
        // plus the tier-1 clique.
        let n_members = self.w.memberships.len();
        for mi in 0..n_members {
            let m = self.w.memberships[mi].clone();
            if !matches!(m.truth, AccessTruth::Local { .. }) {
                continue;
            }
            let AccessTruth::Local { facility } = m.truth else {
                continue;
            };
            let n_pnis = poisson_like(&mut self.rng, self.cfg.mean_pnis_per_local);
            for _ in 0..n_pnis {
                let tenants: Vec<AsId> = self
                    .w
                    .ases
                    .iter()
                    .enumerate()
                    .filter(|(i, a)| {
                        AsId::from_index(*i) != m.member && a.facilities.contains(&facility)
                    })
                    .map(|(i, _)| AsId::from_index(i))
                    .collect();
                if let Some(&peer) = tenants.choose(&mut self.rng) {
                    self.add_private_link(m.member, peer, facility);
                }
            }
        }
        // Tier-1 clique over shared facilities.
        let globals = self.as_ids_of_kind(AsKind::TransitGlobal);
        for i in 0..globals.len() {
            for j in (i + 1)..globals.len() {
                let (a, b) = (globals[i], globals[j]);
                let fa = self.w.ases[a.index()].facilities.clone();
                let shared: Vec<FacilityId> = fa
                    .into_iter()
                    .filter(|f| self.w.ases[b.index()].facilities.contains(f))
                    .collect();
                let fac = shared
                    .choose(&mut self.rng)
                    .copied()
                    .unwrap_or_else(|| self.w.ases[a.index()].facilities[0]);
                self.add_private_link(a, b, fac);
            }
        }
    }

    fn add_private_link(&mut self, a: AsId, b: AsId, facility: FacilityId) {
        // Skip duplicates.
        if self
            .w
            .private_links
            .iter()
            .any(|l| (l.a == a && l.b == b || l.a == b && l.b == a) && l.facility == facility)
        {
            return;
        }
        let ra = self.pni_router(a, facility);
        let rb = self.pni_router(b, facility);
        let addr_a = self.next_host_addr(a);
        let addr_b = self.next_host_addr(b);
        let ia = self.new_iface(
            ra,
            addr_a,
            IfaceKind::PrivatePeering {
                facility,
                peer_as: b,
            },
            true,
        );
        let ib = self.new_iface(
            rb,
            addr_b,
            IfaceKind::PrivatePeering {
                facility,
                peer_as: a,
            },
            true,
        );
        self.w.private_links.push(PrivateLink {
            a,
            b,
            facility,
            a_iface: ia,
            b_iface: ib,
        });
    }

    /// Router for a PNI endpoint; reuses the AS's router at the facility.
    fn pni_router(&mut self, asid: AsId, facility: FacilityId) -> RouterId {
        if let Some(r) = self
            .facility_routers
            .get(&(asid, facility))
            .and_then(|v| v.last().copied())
        {
            return r;
        }
        if !self.w.ases[asid.index()].facilities.contains(&facility) {
            self.w.ases[asid.index()].facilities.push(facility);
        }
        self.new_router(asid, RouterLoc::Facility(facility))
    }

    /// Transit providers deploy PoPs inside the colocation facilities
    /// where their customers sit — carrier-dense colos are the norm, and
    /// this is precisely the signal that makes facility-vote heuristics
    /// (CFS, §5.2 step 5) work in the wild.
    fn colocate_providers(&mut self) {
        let mut additions: Vec<(AsId, FacilityId)> = Vec::new();
        for m in &self.w.memberships {
            let AccessTruth::Local { facility } = m.truth else {
                continue;
            };
            for &(p, c) in &self.w.transit_rels {
                if c == m.member && !self.w.ases[p.index()].facilities.contains(&facility) {
                    additions.push((p, facility));
                }
            }
        }
        for (p, f) in additions {
            if self.rng.gen_bool(0.55) && !self.w.ases[p.index()].facilities.contains(&f) {
                self.w.ases[p.index()].facilities.push(f);
            }
        }
    }

    /// Every AS needs at least one router so transit traceroute hops have
    /// real interfaces to show.
    fn ensure_premises_routers(&mut self) {
        let mut has_router = vec![false; self.w.ases.len()];
        for r in &self.w.routers {
            has_router[r.owner.index()] = true;
        }
        for (i, has) in has_router.into_iter().enumerate() {
            if !has {
                let asid = AsId::from_index(i);
                let home = self.w.ases[i].home_city;
                let r = self.new_router(asid, RouterLoc::Premises(home));
                self.premises_router.insert(asid, r);
            }
        }
    }

    // ---- phase 8: timeline ----

    fn assign_timeline(&mut self) {
        let months = self.cfg.timeline_months;
        let n = self.w.memberships.len();
        // In-window joins: remote at twice the local rate (Fig. 12a).
        for i in 0..n {
            let remote = self.w.memberships[i].truth.is_remote();
            let p = if remote {
                self.cfg.p_join_window_remote
            } else {
                self.cfg.p_join_window_local
            };
            if self.rng.gen_bool(p) {
                self.w.memberships[i].joined_month = self.rng.gen_range(1..=months);
            }
        }
        // Departures: extra memberships that left during the window; the
        // remote departure *rate* is 1.25× the local one.
        let joins = self
            .w
            .memberships
            .iter()
            .filter(|m| m.joined_month > 0)
            .count();
        let n_departures = ((joins as f64) * self.cfg.departures_per_join) as usize;
        let base: Vec<usize> = (0..n).collect();
        for k in 0..n_departures {
            let &src = base
                .get(self.rng.gen_range(0..n.max(1)))
                .expect("non-empty world");
            let template = self.w.memberships[src].clone();
            let remote = template.truth.is_remote();
            // Accept with probability shaped by the 1.25 rate ratio.
            let accept = if remote { 1.0 } else { 0.8 };
            if !self.rng.gen_bool(accept) {
                continue;
            }
            let left = self.rng.gen_range(1..=months);
            let joined = 0;
            // A departed twin of an existing member class, on a fresh AS so
            // the active world is untouched.
            let city = self.w.ases[template.member.index()].home_city;
            let ghost = self.mint_member_as(city);
            let router = match template.truth {
                AccessTruth::Local { facility } => {
                    if !self.w.ases[ghost.index()].facilities.contains(&facility) {
                        self.w.ases[ghost.index()].facilities.push(facility);
                    }
                    self.new_router(ghost, RouterLoc::Facility(facility))
                }
                _ => {
                    let home = self.w.ases[ghost.index()].home_city;
                    self.new_router(ghost, RouterLoc::Premises(home))
                }
            };
            self.push_membership(
                template.ixp,
                ghost,
                router,
                template.port_mbps,
                template.port,
                template.truth,
            );
            let mid = self.w.memberships.len() - 1;
            self.w.memberships[mid].joined_month = joined;
            self.w.memberships[mid].left_month = Some(left);
            let _ = k;
        }
        // Remote→local switchers at the evolution IXPs (§6.3).
        let evo_names = ["LINX LON", "HKIX", "LONAP", "THINX", "UA-IX"];
        let evo_ixps: Vec<IxpId> = self
            .w
            .ixps
            .iter()
            .enumerate()
            .filter(|(_, x)| evo_names.contains(&x.name.as_str()))
            .map(|(i, _)| IxpId::from_index(i))
            .collect();
        let mut switched = 0;
        for i in 0..n {
            if switched >= self.cfg.n_switchers {
                break;
            }
            let m = self.w.memberships[i].clone();
            if !evo_ixps.contains(&m.ixp) || !m.truth.is_remote() || m.joined_month != 0 {
                continue;
            }
            let month = self.rng.gen_range(2..=months.saturating_sub(1).max(2));
            self.w.memberships[i].left_month = Some(month);
            // The same AS rejoins locally in the same month.
            let facility = self.w.ixps[m.ixp.index()].facilities[0];
            if !self.w.ases[m.member.index()].facilities.contains(&facility) {
                self.w.ases[m.member.index()].facilities.push(facility);
            }
            let router = self.new_router(m.member, RouterLoc::Facility(facility));
            let (port_mbps, port) = self.local_port(m.ixp);
            self.push_membership(
                m.ixp,
                m.member,
                router,
                port_mbps,
                port,
                AccessTruth::Local { facility },
            );
            let mid = self.w.memberships.len() - 1;
            self.w.memberships[mid].joined_month = month;
            switched += 1;
        }
    }
}

// ---------------------------------------------------------------------
// address plan
// ---------------------------------------------------------------------

/// The /16 block owned by the `i`-th AS: carved sequentially from
/// 20.0.0.0 upward (synthetic, collision-free with the 185/8 LAN space).
pub fn as_block(i: usize) -> Ipv4Prefix {
    let base = u32::from(Ipv4Addr::new(20, 0, 0, 0)) + (i as u32) * 65536;
    Ipv4Prefix::new(Ipv4Addr::from(base), 16).expect("valid /16")
}

/// The /21 peering LAN of the `i`-th IXP, carved from 185.0.0.0/8.
pub fn lan_block(i: usize) -> Ipv4Prefix {
    let base = u32::from(Ipv4Addr::new(185, 0, 0, 0)) + (i as u32) * 2048;
    Ipv4Prefix::new(Ipv4Addr::from(base), 21).expect("valid /21")
}

/// Public ASN for the `i`-th AS, skipping reserved/private ranges.
pub fn public_asn(i: usize) -> Asn {
    let mut v = 1000 + i as u32;
    // Hop over AS_TRANS and the 64496..65551 reserved/private band.
    if v >= 23456 {
        v += 1;
    }
    if v >= 64496 {
        v += 65552 - 64496;
    }
    Asn::new(v)
}

fn poisson_like(rng: &mut StdRng, mean: f64) -> usize {
    // Knuth's method is fine for small means.
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 50 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        WorldConfig::small(7).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorldConfig::small(42).generate();
        let b = WorldConfig::small(42).generate();
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.memberships.len(), b.memberships.len());
        for (x, y) in a.interfaces.iter().zip(&b.interfaces) {
            assert_eq!(x.addr, y.addr);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldConfig::small(1).generate();
        let b = WorldConfig::small(2).generate();
        assert_ne!(
            a.memberships.len(),
            b.memberships.len(),
            "suspiciously identical worlds"
        );
    }

    #[test]
    fn world_is_consistent() {
        let w = small_world();
        let problems = w.check_consistency();
        assert!(problems.is_empty(), "problems: {problems:?}");
    }

    #[test]
    fn named_ixps_present_with_roles() {
        let w = small_world();
        let ams = w
            .ixps
            .iter()
            .find(|x| x.name == "AMS-IX")
            .expect("AMS-IX exists");
        assert_eq!(ams.validation, ValidationRole::Test);
        assert!(ams.has_looking_glass);
        let nyc = w
            .ixps
            .iter()
            .find(|x| x.name == "DE-CIX NYC")
            .expect("DE-CIX NYC exists");
        assert_eq!(nyc.validation, ValidationRole::Control);
        assert!(!nyc.has_looking_glass);
        assert_eq!(w.ixps.iter().filter(|x| x.studied).count(), 30);
    }

    #[test]
    fn wide_area_ixps_detected() {
        let w = small_world();
        let nlix = w
            .ixps
            .iter()
            .position(|x| x.name == "NL-IX")
            .expect("NL-IX exists");
        assert!(w.is_wide_area_ixp(IxpId::from_index(nlix)));
        let ams = w
            .ixps
            .iter()
            .position(|x| x.name == "AMS-IX")
            .expect("AMS-IX exists");
        assert!(!w.is_wide_area_ixp(IxpId::from_index(ams)));
    }

    #[test]
    fn membership_truth_and_ports_align() {
        let w = small_world();
        let mut submin_local_physical = 0usize;
        let mut remote = 0usize;
        for m in &w.memberships {
            match m.port {
                PortKind::VirtualReseller { .. } => {
                    assert!(m.truth.is_remote(), "reseller port must be remote truth")
                }
                PortKind::LegacyPhysicalSubMin => {
                    submin_local_physical += 1;
                    assert!(!m.truth.is_remote());
                }
                PortKind::Physical => {}
            }
            if m.truth.is_remote() {
                remote += 1;
            }
            assert!(m.port_mbps >= 100);
        }
        assert!(remote > 0, "no remote members generated");
        // Legacy sub-min locals are rare but should exist at paper scale;
        // in a small world they may be absent.
        let _ = submin_local_physical;
    }

    #[test]
    fn remote_share_is_plausible() {
        let w = small_world();
        let month = w.observation_month;
        let (mut remote, mut total) = (0usize, 0usize);
        for m in &w.memberships {
            if m.active_at(month) {
                total += 1;
                if m.truth.is_remote() {
                    remote += 1;
                }
            }
        }
        let share = remote as f64 / total as f64;
        assert!(
            (0.12..=0.45).contains(&share),
            "remote share {share} out of plausible band"
        );
    }

    #[test]
    fn lan_addresses_within_lan() {
        let w = small_world();
        for m in &w.memberships {
            let ixp = &w.ixps[m.ixp.index()];
            let addr = w.interfaces[m.iface.index()].addr;
            assert!(ixp.peering_lan.contains(addr));
            assert_eq!(w.ixp_of_lan_addr(addr), Some(m.ixp));
        }
    }

    #[test]
    fn multi_ixp_routers_exist() {
        let w = small_world();
        let mut per_router: HashMap<RouterId, std::collections::HashSet<IxpId>> = HashMap::new();
        for m in &w.memberships {
            per_router.entry(m.router).or_default().insert(m.ixp);
        }
        let multi = per_router.values().filter(|s| s.len() > 1).count();
        assert!(multi > 0, "no multi-IXP routers generated");
    }

    #[test]
    fn private_links_reference_colocated_ases() {
        let w = small_world();
        assert!(!w.private_links.is_empty());
        for l in &w.private_links {
            assert!(w.ases[l.a.index()].facilities.contains(&l.facility));
            assert!(w.ases[l.b.index()].facilities.contains(&l.facility));
        }
    }

    #[test]
    fn timeline_switchers_exist() {
        let w = small_world();
        // Each switcher is a (member, ixp) with a remote membership that
        // ended the month a local one started.
        let mut switches = 0;
        for a in &w.memberships {
            if !a.truth.is_remote() || a.left_month.is_none() {
                continue;
            }
            let left = a.left_month.expect("checked");
            for b in &w.memberships {
                if b.member == a.member
                    && b.ixp == a.ixp
                    && !b.truth.is_remote()
                    && b.joined_month == left
                {
                    switches += 1;
                }
            }
        }
        assert!(switches >= 1, "no remote→local switchers");
    }

    #[test]
    fn address_plan_no_overlap() {
        // AS blocks and LAN blocks must never collide.
        let a = as_block(0);
        let z = as_block(9000);
        let l = lan_block(0);
        let l2 = lan_block(800);
        assert!(!a.overlaps(&l));
        assert!(!z.overlaps(&l2));
        assert!(u32::from(z.network()) < u32::from(Ipv4Addr::new(185, 0, 0, 0)));
    }

    #[test]
    fn public_asn_skips_reserved() {
        for i in 0..70000 {
            let asn = public_asn(i);
            assert!(asn.is_public(), "index {i} → {asn}");
        }
    }

    #[test]
    fn active_membership_filter() {
        let m = Membership {
            ixp: IxpId(0),
            member: AsId(0),
            router: RouterId(0),
            iface: IfaceId(0),
            port_mbps: 1000,
            port: PortKind::Physical,
            truth: AccessTruth::Local {
                facility: FacilityId(0),
            },
            joined_month: 3,
            left_month: Some(7),
        };
        assert!(!m.active_at(2));
        assert!(m.active_at(3));
        assert!(m.active_at(6));
        assert!(!m.active_at(7));
    }
}
