//! The ground-truth world model.
//!
//! A [`World`] is the synthetic Internet against which everything else
//! runs: the measurement engines probe it, the registries publish noisy
//! views of it, and the inference pipeline is scored against its hidden
//! truth — exactly the role the real Internet played for the paper.
//!
//! Entities live in dense arenas indexed by the typed ids of
//! [`crate::ids`]; cross-references are ids, never pointers, so the whole
//! world is `Clone + Send` and trivially serialisable.

use crate::cities::Region;
use crate::ids::*;
use opeer_geo::GeoPoint;
use opeer_net::{Asn, Ipv4Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A city hosting facilities and network premises.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// Human-readable name, unique in the world.
    pub name: String,
    /// ISO country code.
    pub country: String,
    /// RIR region.
    pub region: Region,
    /// Coordinates of the city centre.
    pub location: GeoPoint,
}

/// A colocation facility (data centre).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Facility {
    /// Facility name, e.g. `"Equinix AM3-like #12"`.
    pub name: String,
    /// City the facility is in.
    pub city: CityId,
    /// Exact coordinates (jittered within the metro area of the city).
    pub location: GeoPoint,
}

/// Broad classification of an AS's business, which drives its peering
/// and colocation behaviour in the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// Global transit backbone (tier-1-like, settlement-free core).
    TransitGlobal,
    /// Regional transit provider.
    TransitRegional,
    /// Content provider / CDN.
    Content,
    /// Access / eyeball network.
    Eyeball,
    /// Enterprise or hosting network.
    Enterprise,
    /// Layer-2 carrier; the pool from which IXP port resellers are drawn.
    Carrier,
}

/// An autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    /// Public ASN.
    pub asn: Asn,
    /// Synthetic operator name.
    pub name: String,
    /// Business type.
    pub kind: AsKind,
    /// Headquarters city (premises routers live here).
    pub home_city: CityId,
    /// Ground-truth colocation: facilities where the AS has equipment.
    pub facilities: Vec<FacilityId>,
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Ipv4Prefix>,
    /// Aggregate traffic level (PeeringDB-style self-reported scale), Mbps.
    pub traffic_mbps: u64,
    /// Estimated served user population (APNIC-style).
    pub user_population: u64,
    /// Whether this AS sells IXP ports as a reseller.
    pub is_reseller: bool,
    /// Whether the AS peers openly (multilateral, route-server) or
    /// selectively.
    pub open_peering: bool,
}

/// Inter-AS business relationship, Gao–Rexford style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rel {
    /// First AS is provider of the second (p2c).
    ProviderCustomer,
    /// Settlement-free peers (p2p) over a private interconnect.
    PeerPeer,
}

/// Validation-data provenance for an IXP (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationRole {
    /// No validation data available.
    None,
    /// Control subset: operator/website lists but no public VP; used to
    /// study inference challenges (§4).
    Control,
    /// Test subset: has colocated VPs; used to validate the methodology
    /// (§5.3).
    Test,
}

/// Where a validation list came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationSource {
    /// Provided directly by the IXP operator.
    Operators,
    /// Scraped from the IXP website (port-type pages).
    Websites,
}

/// An Internet exchange point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ixp {
    /// IXP name, e.g. `"AMS-IX"`.
    pub name: String,
    /// The IPv4 peering LAN.
    pub peering_lan: Ipv4Prefix,
    /// Route server address inside the peering LAN.
    pub route_server_ip: Ipv4Addr,
    /// ASN of the IXP's route server / NOC.
    pub route_server_asn: Asn,
    /// Facilities where the switching fabric is deployed.
    pub facilities: Vec<FacilityId>,
    /// The facility hosting the IXP core (route server, looking glass).
    pub anchor_facility: FacilityId,
    /// Minimum capacity of a *physical* port sold by the IXP, Mbps
    /// (the paper's `Cmin` from the pricing page).
    pub min_physical_capacity_mbps: u32,
    /// Physical port capacity options, Mbps.
    pub capacity_options_mbps: Vec<u32>,
    /// Whether the IXP has a reseller programme.
    pub allows_resellers: bool,
    /// Whether a public looking glass exists.
    pub has_looking_glass: bool,
    /// Whether the LG rounds RTTs up to integer milliseconds (§6.1).
    pub lg_rounds_up: bool,
    /// Among the "largest IXPs with usable VPs" studied in §6.
    pub studied: bool,
    /// Validation subset membership (Table 2).
    pub validation: ValidationRole,
    /// Provenance of validation data, if any.
    pub validation_source: Option<ValidationSource>,
}

/// Physical placement of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterLoc {
    /// Inside a colocation facility.
    Facility(FacilityId),
    /// On the owner's own premises in a city (typical for remote peers'
    /// border routers).
    Premises(CityId),
}

/// How a router generates IP-ID values — the signal MIDAR-style alias
/// resolution keys on (`opeer-alias`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IpIdMode {
    /// One shared, monotonically increasing counter across all interfaces
    /// (classic router behaviour; resolvable).
    SharedCounter {
        /// Counter value at simulation epoch.
        init: u16,
        /// Mean increments per second (traffic-driven).
        rate_per_s: f64,
    },
    /// Pseudo-random IP-ID per packet (unresolvable).
    Random,
    /// Always-zero IP-ID (common on modern stacks; unresolvable).
    Zero,
}

/// A router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Router {
    /// Owning AS.
    pub owner: AsId,
    /// Physical location.
    pub loc: RouterLoc,
    /// IP-ID behaviour.
    pub ip_id: IpIdMode,
    /// Interfaces on this router.
    pub interfaces: Vec<IfaceId>,
}

/// What an interface is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IfaceKind {
    /// Address on an IXP peering LAN, tied to a membership.
    IxpLan {
        /// The IXP whose LAN the address belongs to.
        ixp: IxpId,
        /// The membership this interface realises.
        membership: MembershipId,
    },
    /// Internal/backbone interface of the owning AS.
    Internal,
    /// Interface on a private interconnect (PNI) at a facility.
    PrivatePeering {
        /// Facility where the PNI is patched.
        facility: FacilityId,
        /// The AS on the other end.
        peer_as: AsId,
    },
}

/// A router interface with an IPv4 address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interface {
    /// The interface address (unique in the world).
    pub addr: Ipv4Addr,
    /// Owning router.
    pub router: RouterId,
    /// Attachment kind.
    pub kind: IfaceKind,
    /// Whether the interface answers ICMP echo (some routers filter it).
    pub responds_to_ping: bool,
}

/// How a member's port at the IXP was bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortKind {
    /// A physical port bought directly from the IXP.
    Physical,
    /// A virtual (VLAN) port bought from a reseller, typically
    /// rate-limited below the IXP's minimum physical capacity.
    VirtualReseller {
        /// The reseller AS.
        reseller: AsId,
    },
    /// A legacy physical port below today's `Cmin` (the paper's footnote 6:
    /// rare old members / stale entries) — the precision cost of Step 1.
    LegacyPhysicalSubMin,
}

/// Ground truth of how the member reaches the IXP (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessTruth {
    /// Own router patched in an IXP facility: a local peer.
    Local {
        /// The facility where the member's router is patched.
        facility: FacilityId,
    },
    /// Reached through a port reseller: remote by definition, even when
    /// the member is colocated with the IXP (§5.1.2).
    RemoteReseller {
        /// The reseller AS.
        reseller: AsId,
        /// Facility where the reseller's physical port is patched.
        reseller_port_facility: FacilityId,
    },
    /// A "long cable" (owned or carrier-provided L2 circuit) into the IXP.
    RemoteLongCable {
        /// Facility where the cable lands on the IXP fabric.
        landing_facility: FacilityId,
    },
    /// Access through an IXP federation partner (e.g. GlobePeer-style).
    RemoteFederation {
        /// Facility of the partner fabric where traffic enters.
        gateway_facility: FacilityId,
    },
}

impl AccessTruth {
    /// Whether this access is remote under the paper's Definition 1.
    pub fn is_remote(&self) -> bool {
        !matches!(self, AccessTruth::Local { .. })
    }

    /// The facility where the member's traffic enters the IXP fabric.
    pub fn attachment_facility(&self) -> FacilityId {
        match *self {
            AccessTruth::Local { facility } => facility,
            AccessTruth::RemoteReseller {
                reseller_port_facility,
                ..
            } => reseller_port_facility,
            AccessTruth::RemoteLongCable { landing_facility } => landing_facility,
            AccessTruth::RemoteFederation { gateway_facility } => gateway_facility,
        }
    }
}

/// One AS's connection to one IXP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Membership {
    /// The IXP.
    pub ixp: IxpId,
    /// The member AS.
    pub member: AsId,
    /// The member's border router carrying this peering.
    pub router: RouterId,
    /// The member's interface on the peering LAN.
    pub iface: IfaceId,
    /// Port capacity in Mbps.
    pub port_mbps: u32,
    /// How the port was bought.
    pub port: PortKind,
    /// Ground-truth access type.
    pub truth: AccessTruth,
    /// Month (since simulation start) the member joined.
    pub joined_month: u32,
    /// Month the member left, if it did.
    pub left_month: Option<u32>,
}

impl Membership {
    /// Whether the membership is active at `month`.
    pub fn active_at(&self, month: u32) -> bool {
        self.joined_month <= month && self.left_month.is_none_or(|l| l > month)
    }
}

/// A private network interconnect between two ASes at a facility.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivateLink {
    /// First endpoint AS.
    pub a: AsId,
    /// Second endpoint AS.
    pub b: AsId,
    /// Facility where the cross-connect is patched. For the rare tethered
    /// case the endpoints' routers sit in different facilities.
    pub facility: FacilityId,
    /// Interface of `a` on the link.
    pub a_iface: IfaceId,
    /// Interface of `b` on the link.
    pub b_iface: IfaceId,
}

/// The complete ground-truth world.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct World {
    /// Cities (facility and premises locations).
    pub cities: Vec<City>,
    /// Colocation facilities.
    pub facilities: Vec<Facility>,
    /// Autonomous systems.
    pub ases: Vec<AsNode>,
    /// Internet exchange points.
    pub ixps: Vec<Ixp>,
    /// Routers.
    pub routers: Vec<Router>,
    /// Interfaces.
    pub interfaces: Vec<Interface>,
    /// IXP memberships.
    pub memberships: Vec<Membership>,
    /// Private interconnects.
    pub private_links: Vec<PrivateLink>,
    /// Transit relationships (provider, customer).
    pub transit_rels: Vec<(AsId, AsId)>,
    /// The month index of "now" — the snapshot the main experiments use.
    pub observation_month: u32,
    /// Seed the world was generated from (for reproducibility records).
    pub seed: u64,

    // ---- derived indexes (rebuilt by `rebuild_indexes`) ----
    #[serde(skip)]
    iface_by_addr: HashMap<Ipv4Addr, IfaceId>,
    #[serde(skip)]
    ixp_lan_trie: PrefixTrie<IxpId>,
    #[serde(skip)]
    memberships_by_ixp: Vec<Vec<MembershipId>>,
    #[serde(skip)]
    memberships_by_as: Vec<Vec<MembershipId>>,
    #[serde(skip)]
    facility_tenants: Vec<Vec<AsId>>,
    #[serde(skip)]
    providers_of: Vec<Vec<AsId>>,
    #[serde(skip)]
    customers_of: Vec<Vec<AsId>>,
    #[serde(skip)]
    private_peers_of: Vec<Vec<AsId>>,
    #[serde(skip)]
    routers_by_as: Vec<Vec<RouterId>>,
    #[serde(skip)]
    origin_trie: PrefixTrie<AsId>,
}

impl World {
    /// Rebuilds all derived lookup indexes. Must be called after any
    /// structural mutation (the generator calls it once at the end).
    pub fn rebuild_indexes(&mut self) {
        self.iface_by_addr = self
            .interfaces
            .iter()
            .enumerate()
            .map(|(i, ifc)| (ifc.addr, IfaceId::from_index(i)))
            .collect();

        self.ixp_lan_trie = PrefixTrie::new();
        for (i, ixp) in self.ixps.iter().enumerate() {
            self.ixp_lan_trie
                .insert(ixp.peering_lan, IxpId::from_index(i));
        }

        self.memberships_by_ixp = vec![Vec::new(); self.ixps.len()];
        self.memberships_by_as = vec![Vec::new(); self.ases.len()];
        for (i, m) in self.memberships.iter().enumerate() {
            self.memberships_by_ixp[m.ixp.index()].push(MembershipId::from_index(i));
            self.memberships_by_as[m.member.index()].push(MembershipId::from_index(i));
        }

        self.facility_tenants = vec![Vec::new(); self.facilities.len()];
        for (i, a) in self.ases.iter().enumerate() {
            for f in &a.facilities {
                self.facility_tenants[f.index()].push(AsId::from_index(i));
            }
        }

        self.providers_of = vec![Vec::new(); self.ases.len()];
        self.customers_of = vec![Vec::new(); self.ases.len()];
        for &(p, c) in &self.transit_rels {
            self.providers_of[c.index()].push(p);
            self.customers_of[p.index()].push(c);
        }

        self.private_peers_of = vec![Vec::new(); self.ases.len()];
        for l in &self.private_links {
            self.private_peers_of[l.a.index()].push(l.b);
            self.private_peers_of[l.b.index()].push(l.a);
        }

        self.routers_by_as = vec![Vec::new(); self.ases.len()];
        for (i, r) in self.routers.iter().enumerate() {
            self.routers_by_as[r.owner.index()].push(RouterId::from_index(i));
        }

        self.origin_trie = PrefixTrie::new();
        for (i, a) in self.ases.iter().enumerate() {
            for p in &a.prefixes {
                self.origin_trie.insert(*p, AsId::from_index(i));
            }
        }
    }

    // ---- geometry ----

    /// Coordinates of a city.
    pub fn city_point(&self, c: CityId) -> GeoPoint {
        self.cities[c.index()].location
    }

    /// Coordinates of a facility.
    pub fn facility_point(&self, f: FacilityId) -> GeoPoint {
        self.facilities[f.index()].location
    }

    /// Physical coordinates of a router.
    pub fn router_point(&self, r: RouterId) -> GeoPoint {
        match self.routers[r.index()].loc {
            RouterLoc::Facility(f) => self.facility_point(f),
            RouterLoc::Premises(c) => self.city_point(c),
        }
    }

    /// Geodesic distance between two facilities, km.
    pub fn facility_distance_km(&self, a: FacilityId, b: FacilityId) -> f64 {
        self.facility_point(a).distance_km(&self.facility_point(b))
    }

    // ---- lookups ----

    /// Interface by address.
    pub fn iface_by_addr(&self, addr: Ipv4Addr) -> Option<IfaceId> {
        self.iface_by_addr.get(&addr).copied()
    }

    /// The IXP whose peering LAN contains `addr`, if any.
    pub fn ixp_of_lan_addr(&self, addr: Ipv4Addr) -> Option<IxpId> {
        self.ixp_lan_trie.longest_match(addr).map(|(_, v)| *v)
    }

    /// Memberships of an IXP (all months; filter with
    /// [`Membership::active_at`]).
    pub fn memberships_of_ixp(&self, ixp: IxpId) -> &[MembershipId] {
        &self.memberships_by_ixp[ixp.index()]
    }

    /// Memberships of an AS across IXPs.
    pub fn memberships_of_as(&self, asid: AsId) -> &[MembershipId] {
        &self.memberships_by_as[asid.index()]
    }

    /// Memberships of an IXP active at the observation month.
    pub fn active_memberships_of_ixp(&self, ixp: IxpId) -> Vec<MembershipId> {
        self.memberships_of_ixp(ixp)
            .iter()
            .copied()
            .filter(|&m| self.memberships[m.index()].active_at(self.observation_month))
            .collect()
    }

    /// ASes with equipment in a facility.
    pub fn tenants_of_facility(&self, f: FacilityId) -> &[AsId] {
        &self.facility_tenants[f.index()]
    }

    /// Transit providers of an AS.
    pub fn providers_of(&self, a: AsId) -> &[AsId] {
        &self.providers_of[a.index()]
    }

    /// Transit customers of an AS.
    pub fn customers_of(&self, a: AsId) -> &[AsId] {
        &self.customers_of[a.index()]
    }

    /// Private (PNI) peers of an AS.
    pub fn private_peers_of(&self, a: AsId) -> &[AsId] {
        &self.private_peers_of[a.index()]
    }

    /// All routers owned by an AS.
    pub fn routers_of_as(&self, a: AsId) -> &[RouterId] {
        &self.routers_by_as[a.index()]
    }

    /// The AS's premises border router if it has one, else any router.
    pub fn representative_router(&self, a: AsId) -> Option<RouterId> {
        let routers = self.routers_of_as(a);
        routers
            .iter()
            .copied()
            .find(|&r| matches!(self.routers[r.index()].loc, RouterLoc::Premises(_)))
            .or_else(|| routers.first().copied())
    }

    /// The internal interface of a router (its first `Internal` one).
    pub fn internal_iface_of(&self, r: RouterId) -> Option<IfaceId> {
        self.routers[r.index()]
            .interfaces
            .iter()
            .copied()
            .find(|&i| matches!(self.interfaces[i.index()].kind, IfaceKind::Internal))
    }

    /// Origin AS of an address per the ground-truth announcements
    /// (longest prefix match over all originated prefixes).
    pub fn origin_of_addr(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.origin_trie.longest_match(addr).map(|(_, v)| *v)
    }

    /// The membership behind an IXP-LAN interface, if the interface is one.
    pub fn membership_of_iface(&self, ifc: IfaceId) -> Option<MembershipId> {
        match self.interfaces[ifc.index()].kind {
            IfaceKind::IxpLan { membership, .. } => Some(membership),
            _ => None,
        }
    }

    /// Whether two ASes share at least one IXP (active memberships).
    pub fn share_ixp(&self, a: AsId, b: AsId) -> bool {
        self.common_ixps(a, b).next().is_some()
    }

    /// IXPs where both ASes are active members.
    pub fn common_ixps<'w>(&'w self, a: AsId, b: AsId) -> impl Iterator<Item = IxpId> + 'w {
        let month = self.observation_month;
        let b_ixps: std::collections::HashSet<IxpId> = self
            .memberships_of_as(b)
            .iter()
            .map(|&m| &self.memberships[m.index()])
            .filter(|m| m.active_at(month))
            .map(|m| m.ixp)
            .collect();
        self.memberships_of_as(a)
            .iter()
            .map(move |&m| &self.memberships[m.index()])
            .filter(move |m| m.active_at(month))
            .map(|m| m.ixp)
            .filter(move |i| b_ixps.contains(i))
    }

    /// Whether the IXP's fabric spans multiple metro areas (the paper's
    /// wide-area test, §4.2): any two facilities more than 50 km apart.
    pub fn is_wide_area_ixp(&self, ixp: IxpId) -> bool {
        let facs = &self.ixps[ixp.index()].facilities;
        for (i, &fa) in facs.iter().enumerate() {
            for &fb in &facs[i + 1..] {
                if self.facility_distance_km(fa, fb) > opeer_geo::metro::DEFAULT_METRO_THRESHOLD_KM
                {
                    return true;
                }
            }
        }
        false
    }

    // ---- consistency checking ----

    /// Validates internal referential integrity; returns human-readable
    /// problems (empty = consistent). The generator's tests assert this.
    pub fn check_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, f) in self.facilities.iter().enumerate() {
            if f.city.index() >= self.cities.len() {
                problems.push(format!("facility {i} has dangling city {:?}", f.city));
            }
        }
        for (i, r) in self.routers.iter().enumerate() {
            if r.owner.index() >= self.ases.len() {
                problems.push(format!("router {i} has dangling owner"));
            }
            for &ifc in &r.interfaces {
                if ifc.index() >= self.interfaces.len() {
                    problems.push(format!("router {i} has dangling interface"));
                } else if self.interfaces[ifc.index()].router.index() != i {
                    problems.push(format!("router {i} interface back-reference broken"));
                }
            }
        }
        for (i, m) in self.memberships.iter().enumerate() {
            if m.ixp.index() >= self.ixps.len() || m.member.index() >= self.ases.len() {
                problems.push(format!("membership {i} dangling ixp/member"));
                continue;
            }
            let iface = &self.interfaces[m.iface.index()];
            if !self.ixps[m.ixp.index()].peering_lan.contains(iface.addr) {
                problems.push(format!(
                    "membership {i}: iface {} outside peering LAN {}",
                    iface.addr,
                    self.ixps[m.ixp.index()].peering_lan
                ));
            }
            if self.routers[m.router.index()].owner != m.member {
                problems.push(format!("membership {i}: router not owned by member"));
            }
            // Local truth requires the member's router in an IXP facility.
            if let AccessTruth::Local { facility } = m.truth {
                if !self.ixps[m.ixp.index()].facilities.contains(&facility) {
                    problems.push(format!("membership {i}: 'local' at non-IXP facility"));
                }
                match self.routers[m.router.index()].loc {
                    RouterLoc::Facility(f) if f == facility => {}
                    other => problems.push(format!(
                        "membership {i}: local member router at {other:?}, expected {facility:?}"
                    )),
                }
            }
            if let Some(left) = m.left_month {
                if left <= m.joined_month {
                    problems.push(format!("membership {i}: left before joining"));
                }
            }
        }
        for (i, l) in self.private_links.iter().enumerate() {
            for ifc in [l.a_iface, l.b_iface] {
                if ifc.index() >= self.interfaces.len() {
                    problems.push(format!("private link {i} dangling interface"));
                }
            }
        }
        let mut seen = HashMap::new();
        for (i, ifc) in self.interfaces.iter().enumerate() {
            if let Some(prev) = seen.insert(ifc.addr, i) {
                problems.push(format!(
                    "duplicate interface address {} ({} and {})",
                    ifc.addr, prev, i
                ));
            }
        }
        problems
    }

    // ---- summary ----

    /// One-line summary used by examples and logs.
    pub fn summary(&self) -> String {
        format!(
            "world: {} cities, {} facilities, {} ASes, {} IXPs, {} routers, {} interfaces, {} memberships, {} private links",
            self.cities.len(),
            self.facilities.len(),
            self.ases.len(),
            self.ixps.len(),
            self.routers.len(),
            self.interfaces.len(),
            self.memberships.len(),
            self.private_links.len()
        )
    }
}
