//! Longitudinal views of the membership timeline (§6.3, Fig. 12a).
//!
//! The generator stamps every membership with a join month and an optional
//! leave month. This module derives the time series the paper reports:
//! per-month local/remote member counts, join and departure rates per
//! peering type, and the remote→local switchers.

use crate::ids::{AsId, IxpId};
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Counts for one month of the timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonthlyCounts {
    /// Month index (0 = start of the window).
    pub month: u32,
    /// Active local members.
    pub local: usize,
    /// Active remote members.
    pub remote: usize,
    /// Local members that joined this month.
    pub local_joins: usize,
    /// Remote members that joined this month.
    pub remote_joins: usize,
    /// Local members that left this month.
    pub local_departures: usize,
    /// Remote members that left this month.
    pub remote_departures: usize,
}

/// Aggregated growth statistics over a window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GrowthStats {
    /// Total in-window local joins.
    pub local_joins: usize,
    /// Total in-window remote joins.
    pub remote_joins: usize,
    /// Total in-window local departures.
    pub local_departures: usize,
    /// Total in-window remote departures.
    pub remote_departures: usize,
    /// `remote_joins / local_joins` (∞-safe: `None` when no local joins).
    pub join_ratio: Option<f64>,
    /// Remote departure *rate* relative to local departure rate,
    /// normalised by the month-0 populations.
    pub departure_rate_ratio: Option<f64>,
}

/// Per-month member counts for the given IXPs over the whole timeline.
pub fn monthly_series(world: &World, ixps: &[IxpId], months: u32) -> Vec<MonthlyCounts> {
    let mut out = Vec::with_capacity(months as usize + 1);
    for month in 0..=months {
        let mut c = MonthlyCounts {
            month,
            ..Default::default()
        };
        for &ixp in ixps {
            for &mid in world.memberships_of_ixp(ixp) {
                let m = &world.memberships[mid.index()];
                let remote = m.truth.is_remote();
                if m.active_at(month) {
                    if remote {
                        c.remote += 1;
                    } else {
                        c.local += 1;
                    }
                }
                if m.joined_month == month && month > 0 {
                    if remote {
                        c.remote_joins += 1;
                    } else {
                        c.local_joins += 1;
                    }
                }
                if m.left_month == Some(month) {
                    if remote {
                        c.remote_departures += 1;
                    } else {
                        c.local_departures += 1;
                    }
                }
            }
        }
        out.push(c);
    }
    out
}

/// Aggregates a monthly series into growth statistics.
pub fn growth_stats(series: &[MonthlyCounts]) -> GrowthStats {
    let local_joins: usize = series.iter().map(|c| c.local_joins).sum();
    let remote_joins: usize = series.iter().map(|c| c.remote_joins).sum();
    let local_departures: usize = series.iter().map(|c| c.local_departures).sum();
    let remote_departures: usize = series.iter().map(|c| c.remote_departures).sum();
    let (l0, r0) = series
        .first()
        .map(|c| (c.local.max(1), c.remote.max(1)))
        .unwrap_or((1, 1));
    let join_ratio = if local_joins > 0 {
        Some(remote_joins as f64 / local_joins as f64)
    } else {
        None
    };
    let departure_rate_ratio = if local_departures > 0 {
        let local_rate = local_departures as f64 / l0 as f64;
        let remote_rate = remote_departures as f64 / r0 as f64;
        Some(remote_rate / local_rate)
    } else {
        None
    };
    GrowthStats {
        local_joins,
        remote_joins,
        local_departures,
        remote_departures,
        join_ratio,
        departure_rate_ratio,
    }
}

/// A member that switched from remote to local at the same IXP: its remote
/// membership ended exactly when a local one began (§6.3 found 18 such
/// cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Switcher {
    /// The member AS.
    pub member: AsId,
    /// The IXP where the switch happened.
    pub ixp: IxpId,
    /// The switch month.
    pub month: u32,
}

/// Finds all remote→local switchers at the given IXPs.
pub fn find_switchers(world: &World, ixps: &[IxpId]) -> Vec<Switcher> {
    let mut out = Vec::new();
    for &ixp in ixps {
        let mids = world.memberships_of_ixp(ixp);
        for &a in mids {
            let ma = &world.memberships[a.index()];
            let Some(left) = ma.left_month else { continue };
            if !ma.truth.is_remote() {
                continue;
            }
            for &b in mids {
                let mb = &world.memberships[b.index()];
                if mb.member == ma.member && !mb.truth.is_remote() && mb.joined_month == left {
                    out.push(Switcher {
                        member: ma.member,
                        ixp,
                        month: left,
                    });
                }
            }
        }
    }
    out.sort_by_key(|s| (s.month, s.member, s.ixp));
    out.dedup();
    out
}

/// The IXPs the paper tracks longitudinally (those of §6.3 present in the
/// named spec table).
pub fn evolution_ixps(world: &World) -> Vec<IxpId> {
    const NAMES: [&str; 5] = ["LINX LON", "HKIX", "LONAP", "THINX", "UA-IX"];
    world
        .ixps
        .iter()
        .enumerate()
        .filter(|(_, x)| NAMES.contains(&x.name.as_str()))
        .map(|(i, _)| IxpId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;

    #[test]
    fn series_is_consistent() {
        let w = WorldConfig::small(3).generate();
        let ixps = evolution_ixps(&w);
        assert_eq!(ixps.len(), 5);
        let series = monthly_series(&w, &ixps, 14);
        assert_eq!(series.len(), 15);
        // Counts never negative, members grow or shrink by the join/leave
        // deltas.
        for win in series.windows(2) {
            let (a, b) = (win[0], win[1]);
            let delta_local = b.local as i64 - a.local as i64;
            assert_eq!(
                delta_local,
                b.local_joins as i64 - b.local_departures as i64
            );
            let delta_remote = b.remote as i64 - a.remote as i64;
            assert_eq!(
                delta_remote,
                b.remote_joins as i64 - b.remote_departures as i64
            );
        }
    }

    #[test]
    fn remote_joins_dominate() {
        // Paper-scale bias: remote joins ≈ 2× local joins. Use the whole
        // world to smooth small-sample noise.
        let w = WorldConfig::small(5).generate();
        let all: Vec<IxpId> = (0..w.ixps.len()).map(IxpId::from_index).collect();
        let stats = growth_stats(&monthly_series(&w, &all, 14));
        let ratio = stats.join_ratio.expect("joins exist");
        assert!(
            ratio > 1.2,
            "remote/local join ratio {ratio} too low (want ≈2)"
        );
    }

    #[test]
    fn switchers_found() {
        let w = WorldConfig::small(3).generate();
        let sw = find_switchers(&w, &evolution_ixps(&w));
        assert!(!sw.is_empty(), "generator plants switchers");
        for s in &sw {
            assert!(s.month > 0);
        }
    }
}
