//! Static catalog of world cities used to place facilities and networks.
//!
//! Coordinates are approximate city centres; what matters for the
//! reproduction is that inter-city geodesic distances are realistic, since
//! every latency in the simulated world derives from them. Regions follow
//! the RIR service areas, which the paper uses to describe vantage point
//! coverage (§3.1: good coverage in RIPE and APNIC, little in ARIN/LACNIC,
//! none in AFRINIC).

use serde::{Deserialize, Serialize};

/// Regional Internet Registry service regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Europe, Middle East, Central Asia.
    Ripe,
    /// Asia-Pacific.
    Apnic,
    /// North America.
    Arin,
    /// Latin America and the Caribbean.
    Lacnic,
    /// Africa.
    Afrinic,
}

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct CityRecord {
    /// City name (unique within the catalog).
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// RIR region of the country.
    pub region: Region,
    /// Latitude, decimal degrees.
    pub lat: f64,
    /// Longitude, decimal degrees.
    pub lon: f64,
}

/// The city catalog. Weighted towards Europe, matching the geography of
/// the IXP ecosystem the paper studies.
#[allow(clippy::approx_constant)] // Kuala Lumpur really is at 3.14° N
pub const CITY_CATALOG: &[CityRecord] = &[
    // --- RIPE: Western Europe ---
    CityRecord {
        name: "Amsterdam",
        country: "NL",
        region: Region::Ripe,
        lat: 52.37,
        lon: 4.90,
    },
    CityRecord {
        name: "Rotterdam",
        country: "NL",
        region: Region::Ripe,
        lat: 51.92,
        lon: 4.48,
    },
    CityRecord {
        name: "The Hague",
        country: "NL",
        region: Region::Ripe,
        lat: 52.08,
        lon: 4.31,
    },
    CityRecord {
        name: "Eindhoven",
        country: "NL",
        region: Region::Ripe,
        lat: 51.44,
        lon: 5.47,
    },
    CityRecord {
        name: "Frankfurt",
        country: "DE",
        region: Region::Ripe,
        lat: 50.11,
        lon: 8.68,
    },
    CityRecord {
        name: "Berlin",
        country: "DE",
        region: Region::Ripe,
        lat: 52.52,
        lon: 13.40,
    },
    CityRecord {
        name: "Munich",
        country: "DE",
        region: Region::Ripe,
        lat: 48.14,
        lon: 11.58,
    },
    CityRecord {
        name: "Hamburg",
        country: "DE",
        region: Region::Ripe,
        lat: 53.55,
        lon: 9.99,
    },
    CityRecord {
        name: "Dusseldorf",
        country: "DE",
        region: Region::Ripe,
        lat: 51.23,
        lon: 6.77,
    },
    CityRecord {
        name: "London",
        country: "GB",
        region: Region::Ripe,
        lat: 51.51,
        lon: -0.13,
    },
    CityRecord {
        name: "Manchester",
        country: "GB",
        region: Region::Ripe,
        lat: 53.48,
        lon: -2.24,
    },
    CityRecord {
        name: "Edinburgh",
        country: "GB",
        region: Region::Ripe,
        lat: 55.95,
        lon: -3.19,
    },
    CityRecord {
        name: "Leeds",
        country: "GB",
        region: Region::Ripe,
        lat: 53.80,
        lon: -1.55,
    },
    CityRecord {
        name: "Paris",
        country: "FR",
        region: Region::Ripe,
        lat: 48.85,
        lon: 2.35,
    },
    CityRecord {
        name: "Marseille",
        country: "FR",
        region: Region::Ripe,
        lat: 43.30,
        lon: 5.37,
    },
    CityRecord {
        name: "Lyon",
        country: "FR",
        region: Region::Ripe,
        lat: 45.76,
        lon: 4.84,
    },
    CityRecord {
        name: "Toulouse",
        country: "FR",
        region: Region::Ripe,
        lat: 43.60,
        lon: 1.44,
    },
    CityRecord {
        name: "Brussels",
        country: "BE",
        region: Region::Ripe,
        lat: 50.85,
        lon: 4.35,
    },
    CityRecord {
        name: "Antwerp",
        country: "BE",
        region: Region::Ripe,
        lat: 51.22,
        lon: 4.40,
    },
    CityRecord {
        name: "Luxembourg",
        country: "LU",
        region: Region::Ripe,
        lat: 49.61,
        lon: 6.13,
    },
    CityRecord {
        name: "Dublin",
        country: "IE",
        region: Region::Ripe,
        lat: 53.35,
        lon: -6.26,
    },
    CityRecord {
        name: "Zurich",
        country: "CH",
        region: Region::Ripe,
        lat: 47.37,
        lon: 8.54,
    },
    CityRecord {
        name: "Geneva",
        country: "CH",
        region: Region::Ripe,
        lat: 46.20,
        lon: 6.14,
    },
    CityRecord {
        name: "Vienna",
        country: "AT",
        region: Region::Ripe,
        lat: 48.21,
        lon: 16.37,
    },
    CityRecord {
        name: "Madrid",
        country: "ES",
        region: Region::Ripe,
        lat: 40.42,
        lon: -3.70,
    },
    CityRecord {
        name: "Barcelona",
        country: "ES",
        region: Region::Ripe,
        lat: 41.39,
        lon: 2.17,
    },
    CityRecord {
        name: "Lisbon",
        country: "PT",
        region: Region::Ripe,
        lat: 38.72,
        lon: -9.14,
    },
    CityRecord {
        name: "Milan",
        country: "IT",
        region: Region::Ripe,
        lat: 45.46,
        lon: 9.19,
    },
    CityRecord {
        name: "Rome",
        country: "IT",
        region: Region::Ripe,
        lat: 41.90,
        lon: 12.50,
    },
    CityRecord {
        name: "Turin",
        country: "IT",
        region: Region::Ripe,
        lat: 45.07,
        lon: 7.69,
    },
    // --- RIPE: Nordics & Baltics ---
    CityRecord {
        name: "Copenhagen",
        country: "DK",
        region: Region::Ripe,
        lat: 55.68,
        lon: 12.57,
    },
    CityRecord {
        name: "Oslo",
        country: "NO",
        region: Region::Ripe,
        lat: 59.91,
        lon: 10.75,
    },
    CityRecord {
        name: "Stockholm",
        country: "SE",
        region: Region::Ripe,
        lat: 59.33,
        lon: 18.07,
    },
    CityRecord {
        name: "Helsinki",
        country: "FI",
        region: Region::Ripe,
        lat: 60.17,
        lon: 24.94,
    },
    CityRecord {
        name: "Riga",
        country: "LV",
        region: Region::Ripe,
        lat: 56.95,
        lon: 24.11,
    },
    CityRecord {
        name: "Vilnius",
        country: "LT",
        region: Region::Ripe,
        lat: 54.69,
        lon: 25.28,
    },
    CityRecord {
        name: "Tallinn",
        country: "EE",
        region: Region::Ripe,
        lat: 59.44,
        lon: 24.75,
    },
    // --- RIPE: Central & Eastern Europe ---
    CityRecord {
        name: "Warsaw",
        country: "PL",
        region: Region::Ripe,
        lat: 52.23,
        lon: 21.01,
    },
    CityRecord {
        name: "Katowice",
        country: "PL",
        region: Region::Ripe,
        lat: 50.26,
        lon: 19.02,
    },
    CityRecord {
        name: "Krakow",
        country: "PL",
        region: Region::Ripe,
        lat: 50.06,
        lon: 19.94,
    },
    CityRecord {
        name: "Poznan",
        country: "PL",
        region: Region::Ripe,
        lat: 52.41,
        lon: 16.93,
    },
    CityRecord {
        name: "Prague",
        country: "CZ",
        region: Region::Ripe,
        lat: 50.08,
        lon: 14.44,
    },
    CityRecord {
        name: "Bratislava",
        country: "SK",
        region: Region::Ripe,
        lat: 48.15,
        lon: 17.11,
    },
    CityRecord {
        name: "Budapest",
        country: "HU",
        region: Region::Ripe,
        lat: 47.50,
        lon: 19.04,
    },
    CityRecord {
        name: "Bucharest",
        country: "RO",
        region: Region::Ripe,
        lat: 44.43,
        lon: 26.10,
    },
    CityRecord {
        name: "Sofia",
        country: "BG",
        region: Region::Ripe,
        lat: 42.70,
        lon: 23.32,
    },
    CityRecord {
        name: "Belgrade",
        country: "RS",
        region: Region::Ripe,
        lat: 44.79,
        lon: 20.45,
    },
    CityRecord {
        name: "Zagreb",
        country: "HR",
        region: Region::Ripe,
        lat: 45.81,
        lon: 15.98,
    },
    CityRecord {
        name: "Athens",
        country: "GR",
        region: Region::Ripe,
        lat: 37.98,
        lon: 23.73,
    },
    CityRecord {
        name: "Kyiv",
        country: "UA",
        region: Region::Ripe,
        lat: 50.45,
        lon: 30.52,
    },
    CityRecord {
        name: "Kharkiv",
        country: "UA",
        region: Region::Ripe,
        lat: 49.99,
        lon: 36.23,
    },
    CityRecord {
        name: "Moscow",
        country: "RU",
        region: Region::Ripe,
        lat: 55.76,
        lon: 37.62,
    },
    CityRecord {
        name: "St Petersburg",
        country: "RU",
        region: Region::Ripe,
        lat: 59.93,
        lon: 30.34,
    },
    CityRecord {
        name: "Istanbul",
        country: "TR",
        region: Region::Ripe,
        lat: 41.01,
        lon: 28.98,
    },
    // --- RIPE: Middle East ---
    CityRecord {
        name: "Tel Aviv",
        country: "IL",
        region: Region::Ripe,
        lat: 32.09,
        lon: 34.78,
    },
    CityRecord {
        name: "Dubai",
        country: "AE",
        region: Region::Ripe,
        lat: 25.20,
        lon: 55.27,
    },
    // --- ARIN ---
    CityRecord {
        name: "New York",
        country: "US",
        region: Region::Arin,
        lat: 40.71,
        lon: -74.01,
    },
    CityRecord {
        name: "Newark",
        country: "US",
        region: Region::Arin,
        lat: 40.74,
        lon: -74.17,
    },
    CityRecord {
        name: "Ashburn",
        country: "US",
        region: Region::Arin,
        lat: 39.04,
        lon: -77.49,
    },
    CityRecord {
        name: "Washington",
        country: "US",
        region: Region::Arin,
        lat: 38.91,
        lon: -77.04,
    },
    CityRecord {
        name: "Boston",
        country: "US",
        region: Region::Arin,
        lat: 42.36,
        lon: -71.06,
    },
    CityRecord {
        name: "Philadelphia",
        country: "US",
        region: Region::Arin,
        lat: 39.95,
        lon: -75.17,
    },
    CityRecord {
        name: "Atlanta",
        country: "US",
        region: Region::Arin,
        lat: 33.75,
        lon: -84.39,
    },
    CityRecord {
        name: "Miami",
        country: "US",
        region: Region::Arin,
        lat: 25.76,
        lon: -80.19,
    },
    CityRecord {
        name: "Chicago",
        country: "US",
        region: Region::Arin,
        lat: 41.88,
        lon: -87.63,
    },
    CityRecord {
        name: "Dallas",
        country: "US",
        region: Region::Arin,
        lat: 32.78,
        lon: -96.80,
    },
    CityRecord {
        name: "Houston",
        country: "US",
        region: Region::Arin,
        lat: 29.76,
        lon: -95.37,
    },
    CityRecord {
        name: "Denver",
        country: "US",
        region: Region::Arin,
        lat: 39.74,
        lon: -104.99,
    },
    CityRecord {
        name: "Phoenix",
        country: "US",
        region: Region::Arin,
        lat: 33.45,
        lon: -112.07,
    },
    CityRecord {
        name: "Las Vegas",
        country: "US",
        region: Region::Arin,
        lat: 36.17,
        lon: -115.14,
    },
    CityRecord {
        name: "Los Angeles",
        country: "US",
        region: Region::Arin,
        lat: 34.05,
        lon: -118.24,
    },
    CityRecord {
        name: "San Jose",
        country: "US",
        region: Region::Arin,
        lat: 37.34,
        lon: -121.89,
    },
    CityRecord {
        name: "San Francisco",
        country: "US",
        region: Region::Arin,
        lat: 37.77,
        lon: -122.42,
    },
    CityRecord {
        name: "Seattle",
        country: "US",
        region: Region::Arin,
        lat: 47.61,
        lon: -122.33,
    },
    CityRecord {
        name: "Portland",
        country: "US",
        region: Region::Arin,
        lat: 45.52,
        lon: -122.68,
    },
    CityRecord {
        name: "Toronto",
        country: "CA",
        region: Region::Arin,
        lat: 43.65,
        lon: -79.38,
    },
    CityRecord {
        name: "Montreal",
        country: "CA",
        region: Region::Arin,
        lat: 45.50,
        lon: -73.57,
    },
    CityRecord {
        name: "Vancouver",
        country: "CA",
        region: Region::Arin,
        lat: 49.28,
        lon: -123.12,
    },
    // --- LACNIC ---
    CityRecord {
        name: "Mexico City",
        country: "MX",
        region: Region::Lacnic,
        lat: 19.43,
        lon: -99.13,
    },
    CityRecord {
        name: "Sao Paulo",
        country: "BR",
        region: Region::Lacnic,
        lat: -23.55,
        lon: -46.63,
    },
    CityRecord {
        name: "Rio de Janeiro",
        country: "BR",
        region: Region::Lacnic,
        lat: -22.91,
        lon: -43.17,
    },
    CityRecord {
        name: "Buenos Aires",
        country: "AR",
        region: Region::Lacnic,
        lat: -34.60,
        lon: -58.38,
    },
    CityRecord {
        name: "Santiago",
        country: "CL",
        region: Region::Lacnic,
        lat: -33.45,
        lon: -70.67,
    },
    CityRecord {
        name: "Bogota",
        country: "CO",
        region: Region::Lacnic,
        lat: 4.71,
        lon: -74.07,
    },
    CityRecord {
        name: "Lima",
        country: "PE",
        region: Region::Lacnic,
        lat: -12.05,
        lon: -77.04,
    },
    // --- APNIC ---
    CityRecord {
        name: "Tokyo",
        country: "JP",
        region: Region::Apnic,
        lat: 35.68,
        lon: 139.69,
    },
    CityRecord {
        name: "Osaka",
        country: "JP",
        region: Region::Apnic,
        lat: 34.69,
        lon: 135.50,
    },
    CityRecord {
        name: "Seoul",
        country: "KR",
        region: Region::Apnic,
        lat: 37.57,
        lon: 126.98,
    },
    CityRecord {
        name: "Hong Kong",
        country: "HK",
        region: Region::Apnic,
        lat: 22.32,
        lon: 114.17,
    },
    CityRecord {
        name: "Taipei",
        country: "TW",
        region: Region::Apnic,
        lat: 25.03,
        lon: 121.57,
    },
    CityRecord {
        name: "Singapore",
        country: "SG",
        region: Region::Apnic,
        lat: 1.35,
        lon: 103.82,
    },
    CityRecord {
        name: "Kuala Lumpur",
        country: "MY",
        region: Region::Apnic,
        lat: 3.14,
        lon: 101.69,
    },
    CityRecord {
        name: "Jakarta",
        country: "ID",
        region: Region::Apnic,
        lat: -6.21,
        lon: 106.85,
    },
    CityRecord {
        name: "Bangkok",
        country: "TH",
        region: Region::Apnic,
        lat: 13.76,
        lon: 100.50,
    },
    CityRecord {
        name: "Manila",
        country: "PH",
        region: Region::Apnic,
        lat: 14.60,
        lon: 120.98,
    },
    CityRecord {
        name: "Sydney",
        country: "AU",
        region: Region::Apnic,
        lat: -33.87,
        lon: 151.21,
    },
    CityRecord {
        name: "Melbourne",
        country: "AU",
        region: Region::Apnic,
        lat: -37.81,
        lon: 144.96,
    },
    CityRecord {
        name: "Auckland",
        country: "NZ",
        region: Region::Apnic,
        lat: -36.85,
        lon: 174.76,
    },
    CityRecord {
        name: "Mumbai",
        country: "IN",
        region: Region::Apnic,
        lat: 19.08,
        lon: 72.88,
    },
    CityRecord {
        name: "Delhi",
        country: "IN",
        region: Region::Apnic,
        lat: 28.70,
        lon: 77.10,
    },
    CityRecord {
        name: "Chennai",
        country: "IN",
        region: Region::Apnic,
        lat: 13.08,
        lon: 80.27,
    },
    // --- AFRINIC ---
    CityRecord {
        name: "Johannesburg",
        country: "ZA",
        region: Region::Afrinic,
        lat: -26.20,
        lon: 28.05,
    },
    CityRecord {
        name: "Cape Town",
        country: "ZA",
        region: Region::Afrinic,
        lat: -33.92,
        lon: 18.42,
    },
    CityRecord {
        name: "Nairobi",
        country: "KE",
        region: Region::Afrinic,
        lat: -1.29,
        lon: 36.82,
    },
    CityRecord {
        name: "Lagos",
        country: "NG",
        region: Region::Afrinic,
        lat: 6.52,
        lon: 3.38,
    },
    CityRecord {
        name: "Cairo",
        country: "EG",
        region: Region::Afrinic,
        lat: 30.04,
        lon: 31.24,
    },
];

/// Looks up a catalog entry by name. Panics if absent — the generator's
/// IXP specification table references only catalog cities, so a miss is a
/// programming error, not a data error.
pub fn city_index(name: &str) -> usize {
    CITY_CATALOG
        .iter()
        .position(|c| c.name == name)
        .unwrap_or_else(|| panic!("city {name:?} not in catalog"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_geo::GeoPoint;

    #[test]
    fn catalog_has_unique_names_and_valid_coords() {
        let mut names = std::collections::HashSet::new();
        for c in CITY_CATALOG {
            assert!(names.insert(c.name), "duplicate city {}", c.name);
            assert!(
                GeoPoint::new(c.lat, c.lon).is_some(),
                "bad coords for {}",
                c.name
            );
            assert_eq!(c.country.len(), 2);
        }
        assert!(CITY_CATALOG.len() >= 100, "catalog too small");
    }

    #[test]
    fn lookup_by_name() {
        let i = city_index("Amsterdam");
        assert_eq!(CITY_CATALOG[i].country, "NL");
    }

    #[test]
    #[should_panic(expected = "not in catalog")]
    fn lookup_missing_panics() {
        city_index("Atlantis");
    }

    #[test]
    fn sanity_distances() {
        let ams = &CITY_CATALOG[city_index("Amsterdam")];
        let fra = &CITY_CATALOG[city_index("Frankfurt")];
        let a = GeoPoint::new(ams.lat, ams.lon).unwrap();
        let f = GeoPoint::new(fra.lat, fra.lon).unwrap();
        let d = a.distance_km(&f);
        assert!((d - 360.0).abs() < 20.0, "AMS-FRA got {d}");
    }

    #[test]
    fn regions_present() {
        for region in [
            Region::Ripe,
            Region::Apnic,
            Region::Arin,
            Region::Lacnic,
            Region::Afrinic,
        ] {
            assert!(
                CITY_CATALOG.iter().any(|c| c.region == region),
                "no city in {region:?}"
            );
        }
    }
}
