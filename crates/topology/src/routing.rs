//! Policy routing over the synthetic AS graph.
//!
//! AS-level paths follow the Gao–Rexford model: every AS prefers
//! customer-learned routes over peer-learned over provider-learned, then
//! shorter AS paths; routes learned from peers or providers are exported
//! only to customers (valley-free). Peer edges exist over private
//! interconnects and over IXPs where both ASes are members with open
//! policies; the IXP used for a peer hop is chosen hot-potato (closest
//! interconnect to the deciding AS) with a deterministic minority of
//! policy-driven exceptions — §6.4 measures exactly this mixture in the
//! wild (66 % nearest-exit, 34 % policy quirks).
//!
//! Router-level expansion turns an AS path into the interface sequence a
//! traceroute would show (ingress-interface convention): crossing into an
//! AS over an IXP surfaces that member's peering-LAN address — the signal
//! `opeer-traix` detects — and multi-IXP routers appear naturally when one
//! router carries several memberships.

use crate::ids::*;
use crate::world::{AccessTruth, IfaceKind, RouterLoc, World};
use opeer_geo::GeoPoint;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// How a path enters the next AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Over a transit (p2c/c2p) adjacency.
    Transit,
    /// Crossing the given IXP's peering LAN.
    Ixp(IxpId),
    /// Over the given private interconnect
    /// (index into [`World::private_links`]).
    Private(usize),
}

/// Gao–Rexford route class, in preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteKind {
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// A routing table entry towards one destination AS.
#[derive(Debug, Clone, Copy)]
pub struct RouteEntry {
    /// Route class.
    pub kind: RouteKind,
    /// AS-path length in hops.
    pub len: u32,
    /// Next hop AS (`None` at the destination itself).
    pub next: Option<AsId>,
    /// Edge used towards the next hop.
    pub via: Option<EdgeKind>,
}

/// All best routes towards one destination AS.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// The destination.
    pub dst: AsId,
    entries: HashMap<AsId, RouteEntry>,
}

impl RouteTable {
    /// The entry for `src`, if `src` can reach the destination.
    pub fn entry(&self, src: AsId) -> Option<&RouteEntry> {
        self.entries.get(&src)
    }

    /// Number of ASes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.entries.len()
    }

    /// Reconstructs the AS-level path `src → dst` with the edges used.
    /// `hops[i].1` is the edge from `hops[i]` into `hops[i+1]`.
    pub fn as_path(&self, src: AsId) -> Option<Vec<(AsId, Option<EdgeKind>)>> {
        let mut path = Vec::new();
        let mut cur = src;
        let mut guard = 0;
        loop {
            let e = self.entries.get(&cur)?;
            path.push((cur, e.via));
            match e.next {
                Some(n) => cur = n,
                None => return Some(path),
            }
            guard += 1;
            if guard > 64 {
                return None; // defensive: corrupt table
            }
        }
    }
}

/// One hop of an expanded router-level path.
#[derive(Debug, Clone, Copy)]
pub struct TraceHop {
    /// Address the hop answers with (its ingress interface).
    pub addr: Ipv4Addr,
    /// Owning AS of the responding interface (by assignment).
    pub asid: AsId,
    /// The responding router (if the address belongs to a modelled
    /// interface; synthesized destination hosts have none).
    pub router: Option<RouterId>,
    /// The modelled interface.
    pub iface: Option<IfaceId>,
    /// How the path entered this AS (None for the source hop and
    /// intra-AS hops).
    pub entered_via: Option<EdgeKind>,
    /// Physical location of the hop, for delay computation.
    pub location: GeoPoint,
}

/// Policy-routing oracle over a [`World`].
pub struct RoutingOracle<'w> {
    world: &'w World,
    /// Fraction (percent) of peer-edge decisions that ignore hot-potato
    /// and pick a farther interconnect (policy quirk).
    policy_quirk_pct: u64,
    /// Peer lists per AS (open-peering co-members + private-link peers),
    /// sorted and deduplicated. Built **eagerly** so the oracle holds no
    /// interior mutability and is `Sync` — corpus shards on different
    /// worker threads share one oracle (and its one-time index cost)
    /// instead of re-memoising per shard.
    peers: Vec<Vec<AsId>>,
    /// Active IXPs per AS, sorted (intersection gives common IXPs fast).
    ixps_of: Vec<Vec<IxpId>>,
    /// Private links per unordered AS pair.
    pni_index: HashMap<(AsId, AsId), Vec<usize>>,
    /// Reference point per AS for hot-potato decisions.
    as_points: Vec<GeoPoint>,
}

impl<'w> RoutingOracle<'w> {
    /// Creates an oracle with the default 1/3 policy-quirk rate implied by
    /// §6.4's findings. Builds its lookup indexes once (O(world size)).
    pub fn new(world: &'w World) -> Self {
        let month = world.observation_month;
        let mut ixps_of: Vec<Vec<IxpId>> = vec![Vec::new(); world.ases.len()];
        for m in &world.memberships {
            if m.active_at(month) {
                ixps_of[m.member.index()].push(m.ixp);
            }
        }
        for v in &mut ixps_of {
            v.sort();
            v.dedup();
        }
        let mut pni_index: HashMap<(AsId, AsId), Vec<usize>> = HashMap::new();
        for (i, l) in world.private_links.iter().enumerate() {
            let key = (l.a.min(l.b), l.a.max(l.b));
            pni_index.entry(key).or_default().push(i);
        }
        let as_points: Vec<GeoPoint> = (0..world.ases.len())
            .map(|i| {
                let a = AsId::from_index(i);
                match world.representative_router(a) {
                    Some(r) => world.router_point(r),
                    None => world.city_point(world.ases[i].home_city),
                }
            })
            .collect();
        // Eager peer index, IXP-major: every pair of active open-peering
        // co-members peers, plus private links. Produces exactly the
        // sorted/deduplicated lists the old per-AS lazy memo computed,
        // at a fraction of the lookups.
        let mut peers: Vec<Vec<AsId>> = (0..world.ases.len())
            .map(|i| world.private_peers_of(AsId::from_index(i)).to_vec())
            .collect();
        for xi in 0..world.ixps.len() {
            let mut open_members: Vec<AsId> = world
                .memberships_of_ixp(IxpId::from_index(xi))
                .iter()
                .map(|&mid| &world.memberships[mid.index()])
                .filter(|m| m.active_at(month) && world.ases[m.member.index()].open_peering)
                .map(|m| m.member)
                .collect();
            open_members.sort();
            open_members.dedup();
            for &y in &open_members {
                peers[y.index()].extend(open_members.iter().copied().filter(|&o| o != y));
            }
        }
        for p in &mut peers {
            p.sort();
            p.dedup();
        }
        RoutingOracle {
            world,
            policy_quirk_pct: 34,
            peers,
            ixps_of,
            pni_index,
            as_points,
        }
    }

    /// Overrides the policy-quirk rate (percent of peer decisions).
    pub fn with_policy_quirk_pct(mut self, pct: u64) -> Self {
        self.policy_quirk_pct = pct.min(100);
        self
    }

    /// Whether `a` and `b` would peer over IXP co-membership: both need
    /// open policies (multilateral/route-server peering); private links
    /// peer unconditionally.
    fn open_peering_pair(&self, a: AsId, b: AsId) -> bool {
        self.world.ases[a.index()].open_peering && self.world.ases[b.index()].open_peering
    }

    /// All interconnect options between `x` and `y`: common IXPs and
    /// private links.
    pub fn interconnect_options(&self, x: AsId, y: AsId) -> Vec<EdgeKind> {
        let mut out: Vec<EdgeKind> = Vec::new();
        if self.open_peering_pair(x, y) {
            // Sorted-list intersection of the two IXP sets.
            let (mut i, mut j) = (0usize, 0usize);
            let (xs, ys) = (&self.ixps_of[x.index()], &self.ixps_of[y.index()]);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(EdgeKind::Ixp(xs[i]));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        if let Some(links) = self.pni_index.get(&(x.min(y), x.max(y))) {
            out.extend(links.iter().map(|&l| EdgeKind::Private(l)));
        }
        out
    }

    /// Location of an interconnect for hot-potato distance computation.
    fn edge_point(&self, e: EdgeKind) -> GeoPoint {
        match e {
            EdgeKind::Ixp(i) => self
                .world
                .facility_point(self.world.ixps[i.index()].anchor_facility),
            EdgeKind::Private(l) => self
                .world
                .facility_point(self.world.private_links[l].facility),
            EdgeKind::Transit => unreachable!("transit edges have no interconnect point"),
        }
    }

    /// Reference location of an AS for exit decisions (premises router or
    /// home city).
    fn as_point(&self, a: AsId) -> GeoPoint {
        self.as_points[a.index()]
    }

    /// Picks the interconnect `x` uses towards peer `y`: hot-potato
    /// (closest to `x`) for most pairs, a deterministic "policy" choice of
    /// a farther interconnect for the quirky minority.
    pub fn pick_interconnect(&self, x: AsId, y: AsId) -> Option<EdgeKind> {
        let mut opts = self.interconnect_options(x, y);
        if opts.is_empty() {
            return None;
        }
        let xp = self.as_point(x);
        opts.sort_by(|&ea, &eb| {
            let da = self.edge_point(ea).distance_km(&xp);
            let db = self.edge_point(eb).distance_km(&xp);
            da.partial_cmp(&db).expect("distances are finite")
        });
        let quirky = stable_hash(&[x.0 as u64, y.0 as u64, 0xC0FFEE]) % 100 < self.policy_quirk_pct;
        if quirky && opts.len() > 1 {
            // Deterministically pick a non-nearest option.
            let pick = 1 + (stable_hash(&[y.0 as u64, x.0 as u64]) as usize) % (opts.len() - 1);
            Some(opts[pick])
        } else {
            Some(opts[0])
        }
    }

    /// Computes best routes from every AS towards `dst` (Gao–Rexford
    /// three-wave construction).
    pub fn routes_to(&self, dst: AsId) -> RouteTable {
        let mut entries: HashMap<AsId, RouteEntry> = HashMap::new();
        entries.insert(
            dst,
            RouteEntry {
                kind: RouteKind::Customer,
                len: 0,
                next: None,
                via: None,
            },
        );

        // Wave 1 — customer routes: BFS up the provider DAG from dst.
        let mut queue = VecDeque::new();
        queue.push_back(dst);
        while let Some(x) = queue.pop_front() {
            let xlen = entries[&x].len;
            for &p in self.world.providers_of(x) {
                let better = match entries.get(&p) {
                    None => true,
                    Some(e) => e.kind == RouteKind::Customer && xlen + 1 < e.len,
                };
                if better {
                    entries.insert(
                        p,
                        RouteEntry {
                            kind: RouteKind::Customer,
                            len: xlen + 1,
                            next: Some(x),
                            via: Some(EdgeKind::Transit),
                        },
                    );
                    queue.push_back(p);
                }
            }
        }

        // Wave 2 — peer routes: single peer hop into the customer cone.
        // (Sorted for determinism: HashMap iteration order is random.)
        let mut cone: Vec<(AsId, u32)> = entries.iter().map(|(&a, e)| (a, e.len)).collect();
        cone.sort_by_key(|&(a, l)| (l, a));
        for (y, ylen) in cone {
            for x in self.peers_of(y).iter().copied() {
                if entries
                    .get(&x)
                    .is_some_and(|e| e.kind == RouteKind::Customer)
                {
                    continue; // customer route wins
                }
                // The interconnect is picked lazily after the table settles:
                // computing it per candidate dominated table construction.
                let cand = RouteEntry {
                    kind: RouteKind::Peer,
                    len: ylen + 1,
                    next: Some(y),
                    via: None,
                };
                let replace = match entries.get(&x) {
                    None => true,
                    Some(e) => {
                        cand.len < e.len
                            || (cand.len == e.len && cand.next.map(|n| n.0) < e.next.map(|n| n.0))
                    }
                };
                if replace {
                    entries.insert(x, cand);
                }
            }
        }

        // Wave 3 — provider routes: everything with a route advertises to
        // its customers; customers prefer the shortest.
        // (Sorted seeding keeps tie-breaking deterministic.)
        let mut seeds: Vec<AsId> = entries.keys().copied().collect();
        seeds.sort_by_key(|a| (entries[a].len, *a));
        let mut queue: VecDeque<AsId> = seeds.into();
        while let Some(z) = queue.pop_front() {
            let zlen = entries[&z].len;
            for &c in self.world.customers_of(z) {
                let better = match entries.get(&c) {
                    None => true,
                    Some(e) => e.kind == RouteKind::Provider && zlen + 1 < e.len,
                };
                if better {
                    entries.insert(
                        c,
                        RouteEntry {
                            kind: RouteKind::Provider,
                            len: zlen + 1,
                            next: Some(z),
                            via: Some(EdgeKind::Transit),
                        },
                    );
                    queue.push_back(c);
                }
            }
        }

        // Fill peer-route interconnects now that winners are settled.
        let peer_routes: Vec<(AsId, AsId)> = entries
            .iter()
            .filter(|(_, e)| e.kind == RouteKind::Peer)
            .filter_map(|(&x, e)| e.next.map(|y| (x, y)))
            .collect();
        for (x, y) in peer_routes {
            let via = self.pick_interconnect(x, y);
            match via {
                Some(v) => {
                    entries.get_mut(&x).expect("entry exists").via = Some(v);
                }
                None => {
                    // Defensive: adjacency came from peers_of, so an
                    // interconnect must exist; drop the entry otherwise.
                    entries.remove(&x);
                }
            }
        }

        RouteTable { dst, entries }
    }

    /// Peers of `y`: private-link neighbors plus open co-members at its
    /// IXPs (active memberships only), sorted. Precomputed at oracle
    /// construction.
    pub fn peers_of(&self, y: AsId) -> &[AsId] {
        &self.peers[y.index()]
    }

    /// AS-level path from `src` to `dst`.
    pub fn as_path(&self, src: AsId, dst: AsId) -> Option<Vec<(AsId, Option<EdgeKind>)>> {
        self.routes_to(dst).as_path(src)
    }

    /// Expands an AS path to the traceroute hop sequence towards
    /// `dst_addr`. `table` must be the route table of the destination AS
    /// owning `dst_addr` (dst-major callers reuse one table for many
    /// sources).
    pub fn trace_hops(
        &self,
        table: &RouteTable,
        src: AsId,
        dst_addr: Ipv4Addr,
    ) -> Option<Vec<TraceHop>> {
        let w = self.world;
        let as_path = table.as_path(src)?;
        let mut hops: Vec<TraceHop> = Vec::new();

        // Source hop: the source AS's representative router.
        let src_router = w.representative_router(src)?;
        if let Some(ifc) = w.internal_iface_of(src_router) {
            hops.push(TraceHop {
                addr: w.interfaces[ifc.index()].addr,
                asid: src,
                router: Some(src_router),
                iface: Some(ifc),
                entered_via: None,
                location: w.router_point(src_router),
            });
        }

        let mut last_router: Option<RouterId> = Some(src_router);
        for win in as_path.windows(2) {
            let (cur, edge) = win[0];
            let (next_as, _) = win[1];
            let edge = edge?;
            // The current AS leaves through a specific border router (its
            // membership router for IXP edges, its PNI router for private
            // edges). If that is a different box than the one that carried
            // the previous hop, the traceroute shows it — this egress hop
            // is exactly what step 4's `{IPx, IPixp}` pairs key on.
            if let Some((egress_router, egress_iface)) = self.egress_of(cur, edge) {
                if Some(egress_router) != last_router {
                    hops.push(TraceHop {
                        addr: w.interfaces[egress_iface.index()].addr,
                        asid: cur,
                        router: Some(egress_router),
                        iface: Some(egress_iface),
                        entered_via: None,
                        location: w.router_point(egress_router),
                    });
                    last_router = Some(egress_router);
                }
            }
            let (router, iface) = self.ingress_of(next_as, edge)?;
            if Some(router) == last_router {
                // Same physical box (multi-IXP router): the previous hop
                // already represented it; a real traceroute shows one TTL.
                continue;
            }
            hops.push(TraceHop {
                addr: w.interfaces[iface.index()].addr,
                asid: next_as,
                router: Some(router),
                iface: Some(iface),
                entered_via: Some(edge),
                location: w.router_point(router),
            });
            last_router = Some(router);
        }

        // Destination hop: the echo reply always carries the probed
        // address. If the last ingress hop was the same physical router,
        // it is replaced (one box answers once, with the target address).
        if hops.last().map(|h| h.addr) != Some(dst_addr) {
            let dst_as = table.dst;
            // If the target is a modelled interface, answer from its router;
            // otherwise synthesize a host at the destination AS's premises.
            match w.iface_by_addr(dst_addr) {
                Some(ifc) => {
                    let r = w.interfaces[ifc.index()].router;
                    if Some(r) == last_router {
                        hops.pop();
                    }
                    hops.push(TraceHop {
                        addr: dst_addr,
                        asid: dst_as,
                        router: Some(r),
                        iface: Some(ifc),
                        entered_via: None,
                        location: w.router_point(r),
                    });
                }
                None => {
                    let loc = match w.representative_router(dst_as) {
                        Some(r) => w.router_point(r),
                        None => w.city_point(w.ases[dst_as.index()].home_city),
                    };
                    hops.push(TraceHop {
                        addr: dst_addr,
                        asid: dst_as,
                        router: None,
                        iface: None,
                        entered_via: None,
                        location: loc,
                    });
                }
            }
        }
        Some(hops)
    }

    /// The border router through which `cur` leaves over `edge`, with its
    /// internal interface (the address a traceroute shows for the egress
    /// hop). For IXP edges this is the membership router — the physical
    /// box whose other interfaces include the member's peering-LAN
    /// addresses, which is what makes multi-IXP routers discoverable.
    fn egress_of(&self, cur: AsId, edge: EdgeKind) -> Option<(RouterId, IfaceId)> {
        let w = self.world;
        let router = match edge {
            EdgeKind::Ixp(ixp) => {
                let month = w.observation_month;
                let mid = w.memberships_of_as(cur).iter().copied().find(|&m| {
                    let mm = &w.memberships[m.index()];
                    mm.ixp == ixp && mm.active_at(month)
                })?;
                w.memberships[mid.index()].router
            }
            EdgeKind::Private(l) => {
                let link = &w.private_links[l];
                let ifc = if link.a == cur {
                    link.a_iface
                } else {
                    link.b_iface
                };
                w.interfaces[ifc.index()].router
            }
            EdgeKind::Transit => w.representative_router(cur)?,
        };
        let ifc = w.internal_iface_of(router)?;
        Some((router, ifc))
    }

    /// The ingress (responding) interface when entering `next_as` over
    /// `edge`: its peering-LAN interface for IXP crossings, its PNI
    /// interface for private links, an internal interface for transit.
    fn ingress_of(&self, next_as: AsId, edge: EdgeKind) -> Option<(RouterId, IfaceId)> {
        let w = self.world;
        match edge {
            EdgeKind::Ixp(ixp) => {
                let month = w.observation_month;
                let mid = w.memberships_of_as(next_as).iter().copied().find(|&m| {
                    let mm = &w.memberships[m.index()];
                    mm.ixp == ixp && mm.active_at(month)
                })?;
                let m = &w.memberships[mid.index()];
                Some((m.router, m.iface))
            }
            EdgeKind::Private(l) => {
                let link = &w.private_links[l];
                let ifc = if link.a == next_as {
                    link.a_iface
                } else {
                    link.b_iface
                };
                Some((w.interfaces[ifc.index()].router, ifc))
            }
            EdgeKind::Transit => {
                let r = w.representative_router(next_as)?;
                let ifc = w.internal_iface_of(r)?;
                Some((r, ifc))
            }
        }
    }
}

/// A small deterministic 64-bit hash (FNV-1a over the words); used for
/// stable pseudo-random decisions that must not depend on `rand` state.
pub fn stable_hash(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Ground-truth access truth of a membership (convenience for tests and
/// experiments that need to know which memberships the expansion used).
pub fn edge_uses_remote_access(world: &World, hop_as: AsId, edge: EdgeKind) -> Option<bool> {
    if let EdgeKind::Ixp(ixp) = edge {
        let month = world.observation_month;
        let m = world
            .memberships_of_as(hop_as)
            .iter()
            .map(|&mid| &world.memberships[mid.index()])
            .find(|m| m.ixp == ixp && m.active_at(month))?;
        Some(matches!(
            m.truth,
            AccessTruth::RemoteReseller { .. }
                | AccessTruth::RemoteLongCable { .. }
                | AccessTruth::RemoteFederation { .. }
        ))
    } else {
        None
    }
}

/// Convenience: is the interface an IXP-LAN interface?
pub fn is_ixp_lan_iface(world: &World, ifc: IfaceId) -> bool {
    matches!(world.interfaces[ifc.index()].kind, IfaceKind::IxpLan { .. })
}

/// Convenience: location string of a router for reports.
pub fn router_loc_name(world: &World, r: RouterId) -> String {
    match world.routers[r.index()].loc {
        RouterLoc::Facility(f) => world.facilities[f.index()].name.clone(),
        RouterLoc::Premises(c) => format!("{} (premises)", world.cities[c.index()].name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;

    fn world() -> World {
        WorldConfig::small(11).generate()
    }

    #[test]
    fn destination_reachable_from_most_ases() {
        let w = world();
        let oracle = RoutingOracle::new(&w);
        // A well-connected destination: first member of the first IXP.
        let dst = w.memberships[0].member;
        let table = oracle.routes_to(dst);
        let frac = table.reachable_count() as f64 / w.ases.len() as f64;
        assert!(frac > 0.95, "only {frac} of ASes reach {dst}");
    }

    #[test]
    fn paths_are_valley_free() {
        let w = world();
        let oracle = RoutingOracle::new(&w);
        let dst = w.memberships[0].member;
        let table = oracle.routes_to(dst);
        // Walk several sources; after the route leaves the "up" phase it
        // must never go up again: kinds along the path must be
        // monotonically... simpler: route kind of each suffix entry is
        // non-increasing in preference as we near dst? Verify no provider
        // edge follows a customer edge downstream.
        let mut checked = 0;
        for src_idx in (0..w.ases.len()).step_by(7) {
            let src = AsId::from_index(src_idx);
            let Some(path) = table.as_path(src) else {
                continue;
            };
            // Reconstruct phases: while entries are Provider we are going up;
            // a Peer step may occur once; then Customer steps go down.
            let mut phase = 0; // 0 = up, 1 = after peer, 2 = down
            for (asid, _) in &path {
                let kind = table.entry(*asid).expect("on path").kind;
                let p = match kind {
                    RouteKind::Provider => 0,
                    RouteKind::Peer => 1,
                    RouteKind::Customer => 2,
                };
                assert!(p >= phase, "valley in path at {asid:?}");
                phase = p;
            }
            checked += 1;
        }
        assert!(checked > 10, "too few paths checked");
    }

    #[test]
    fn as_path_terminates_at_destination() {
        let w = world();
        let oracle = RoutingOracle::new(&w);
        let dst = w.memberships[2].member;
        let table = oracle.routes_to(dst);
        let src = w.memberships.last().expect("memberships exist").member;
        if let Some(path) = table.as_path(src) {
            assert_eq!(path.last().expect("non-empty").0, dst);
            assert!(path.len() <= 12, "suspiciously long path {}", path.len());
        }
    }

    #[test]
    fn peer_edge_prefers_common_ixp() {
        let w = world();
        let oracle = RoutingOracle::new(&w).with_policy_quirk_pct(0);
        // Find two open ASes sharing an IXP.
        let mut found = false;
        'outer: for m1 in &w.memberships {
            for m2 in &w.memberships {
                if m1.ixp == m2.ixp
                    && m1.member != m2.member
                    && w.ases[m1.member.index()].open_peering
                    && w.ases[m2.member.index()].open_peering
                    && m1.active_at(w.observation_month)
                    && m2.active_at(w.observation_month)
                {
                    let e = oracle.pick_interconnect(m1.member, m2.member);
                    assert!(e.is_some(), "no interconnect for co-members");
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no open co-member pair in world");
    }

    #[test]
    fn policy_quirk_changes_some_choices() {
        let w = world();
        let hot = RoutingOracle::new(&w).with_policy_quirk_pct(0);
        let quirky = RoutingOracle::new(&w).with_policy_quirk_pct(100);
        let month = w.observation_month;
        let mut diffs = 0;
        let mut comparable = 0;
        for m1 in w.memberships.iter().take(200) {
            for m2 in w.memberships.iter().take(200) {
                if m1.member == m2.member || !m1.active_at(month) || !m2.active_at(month) {
                    continue;
                }
                let o1 = hot.interconnect_options(m1.member, m2.member);
                if o1.len() < 2 {
                    continue;
                }
                comparable += 1;
                if hot.pick_interconnect(m1.member, m2.member)
                    != quirky.pick_interconnect(m1.member, m2.member)
                {
                    diffs += 1;
                }
            }
        }
        if comparable > 0 {
            assert!(diffs > 0, "quirk rate had no effect on {comparable} pairs");
        }
    }

    #[test]
    fn trace_hops_cross_ixps_visibly() {
        let w = world();
        let oracle = RoutingOracle::new(&w);
        let month = w.observation_month;
        // Find a pair of co-members with open peering; trace src → dst's
        // LAN interface and require an IXP-LAN ingress hop.
        let mut seen_lan_hop = false;
        for mid in 0..w.memberships.len().min(400) {
            let m2 = &w.memberships[mid];
            if !m2.active_at(month) {
                continue;
            }
            let dst = m2.member;
            let dst_addr = w.interfaces[m2.iface.index()].addr;
            let table = oracle.routes_to(dst);
            for m1 in w.memberships.iter().take(100) {
                if m1.member == dst || !m1.active_at(month) {
                    continue;
                }
                if let Some(hops) = oracle.trace_hops(&table, m1.member, dst_addr) {
                    assert!(!hops.is_empty());
                    assert_eq!(hops.last().expect("non-empty").addr, dst_addr);
                    if hops
                        .iter()
                        .any(|h| h.iface.is_some_and(|i| is_ixp_lan_iface(&w, i)))
                    {
                        seen_lan_hop = true;
                    }
                }
            }
            if seen_lan_hop {
                break;
            }
        }
        assert!(seen_lan_hop, "no traceroute crossed an IXP LAN");
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash(&[1, 2, 3]), stable_hash(&[1, 2, 3]));
        assert_ne!(stable_hash(&[1, 2, 3]), stable_hash(&[3, 2, 1]));
    }
}
