//! End-to-end sweep-fleet example: a tiny seed × knob grid with one
//! what-if scenario, printed as confidence-banded figures.
//!
//! ```text
//! cargo run --release -p opeer-bench --example fleet_sweep
//! ```
//!
//! The grid below is the same shape CI's sweep-smoke step runs: two
//! seeds crossed with two reseller rates, each cell re-run under an
//! `AMS-IX` outage scenario — 4 baseline cells + 4 scenario cells.
//! The report is byte-identical for any `OPEER_THREADS`, which the
//! example asserts by running the fleet on 1 and 4 workers.

use opeer_bench::{run_sweep, SweepGrid};
use opeer_core::engine::ParallelConfig;

fn main() {
    let spec = "base=tiny;seeds=1,2;reseller=0.3,0.62;scenario=ixp-outage:AMS-IX";
    let grid = SweepGrid::parse(spec).expect("grid spec parses");
    eprintln!("canonical spec: {}", grid.spec);
    eprintln!(
        "{} knobs × {} seeds × (1 + {} scenarios) = {} cells",
        grid.knobs.len(),
        grid.seeds.len(),
        grid.scenarios.len(),
        grid.n_cells()
    );

    let t = std::time::Instant::now();
    let report = run_sweep(&grid, &ParallelConfig::new(4)).expect("sweep runs");
    eprintln!(
        "fleet done in {:?} (identity={})",
        t.elapsed(),
        report.identity
    );

    for band in &report.bands {
        let scenario = band.scenario.as_deref().unwrap_or("baseline");
        println!("knob={} scenario={scenario}", band.knob);
        println!(
            "  remote share {:.4} in [{:.4}, {:.4}]  accuracy {:.4}  coverage {:.4}",
            band.remote_share.mean,
            band.remote_share.lo,
            band.remote_share.hi,
            band.accuracy.mean,
            band.coverage.mean
        );
        if let Some(delta) = &band.share_delta {
            println!(
                "  scenario share delta {:+.4} in [{:+.4}, {:+.4}]",
                delta.mean, delta.lo, delta.hi
            );
        }
    }
    for cell in report.cells.iter().filter(|c| c.shift.is_some()) {
        let shift = cell.shift.expect("scenario cell has a shift");
        println!(
            "cell #{} knob={} seed={} scenario={}: Δshare {:+.4}, churn {}→R/{}→L, affected ASNs {}",
            cell.index,
            cell.knob,
            cell.seed,
            cell.scenario.as_deref().unwrap_or("?"),
            shift.remote_share_delta,
            shift.local_to_remote,
            shift.remote_to_local,
            shift.affected_asns
        );
    }

    // The fleet contract: the scrubbed report bytes do not depend on
    // the worker-pool width.
    let single = run_sweep(&grid, &ParallelConfig::new(1)).expect("sweep runs on one worker");
    assert_eq!(
        report.stats_bytes(),
        single.stats_bytes(),
        "fleet report must be byte-identical across thread counts"
    );
    assert!(report.identity, "identity gate must hold");
    println!("OK: report byte-identical on 1 and 4 workers, identity gate holds");
}
