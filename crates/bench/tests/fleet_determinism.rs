//! Fleet determinism gates: the sweep report must be byte-identical
//! across worker-pool widths and grid-spec permutations, the pinned
//! 2×2×(1+1) grid must reproduce exact figures, and the band math must
//! agree with an independent two-pass reference.

use opeer_bench::{run_sweep, Band, FleetReport, SweepGrid};
use opeer_core::engine::ParallelConfig;
use proptest::prelude::*;

/// The CI-smoke grid: 2 knobs × 2 seeds baselines + the same 4 cells
/// under an AMS-IX outage.
const SPEC: &str = "base=tiny;seeds=1,2;reseller=0.3,0.62;scenario=ixp-outage:AMS-IX";

/// Same grid with every axis and value list permuted.
const PERMUTED_SPEC: &str = "scenario=ixp-outage:AMS-IX;reseller=0.62,0.3;seeds=2,1;base=tiny";

fn fleet(spec: &str, threads: usize) -> FleetReport {
    let grid = SweepGrid::parse(spec).expect("grid spec parses");
    run_sweep(&grid, &ParallelConfig::new(threads)).expect("sweep runs")
}

#[test]
fn fleet_report_is_thread_and_permutation_invariant_and_pinned() {
    let original = SweepGrid::parse(SPEC).expect("grid spec parses");
    let permuted = SweepGrid::parse(PERMUTED_SPEC).expect("permuted spec parses");
    assert_eq!(
        original.spec, permuted.spec,
        "permuted axes must normalise to one canonical spec"
    );
    assert_eq!(original.seeds, permuted.seeds);
    assert_eq!(
        original.knobs.iter().map(|k| &k.label).collect::<Vec<_>>(),
        permuted.knobs.iter().map(|k| &k.label).collect::<Vec<_>>()
    );
    assert_eq!(original.scenarios, permuted.scenarios);

    // Three full fleet runs: two pool widths on the original spec, a
    // third width on the permuted spec (the canonical grids are equal,
    // so one run serves both invariance claims).
    let one = fleet(SPEC, 1);
    let two = fleet(SPEC, 2);
    let eight = fleet(PERMUTED_SPEC, 8);
    assert_eq!(
        one.stats_bytes(),
        two.stats_bytes(),
        "report must not depend on worker-pool width"
    );
    assert_eq!(
        one.stats_bytes(),
        eight.stats_bytes(),
        "report must not depend on pool width or axis order"
    );
    assert!(one.identity, "identity gate must hold");
    assert_eq!(one.threads, 1);
    assert_eq!(eight.threads, 8, "threads is reported but scrubbed");

    // Pinned snapshot: exact figures for the canonical grid. Cells run
    // internally sequential and bands accumulate left-to-right, so
    // these are bit-stable — any drift is a real behaviour change.
    assert_eq!(
        one.spec,
        "base=tiny;seeds=1,2;knobs=reseller=0.3,reseller=0.62;scenario=ixp-outage:AMS-IX"
    );
    assert_eq!(one.seeds, vec![1, 2]);
    assert_eq!(one.knobs, vec!["reseller=0.3", "reseller=0.62"]);
    assert_eq!(one.scenarios, vec!["ixp-outage:AMS-IX"]);
    assert_eq!(one.cells.len(), 8);
    assert_eq!(one.bands.len(), 4);

    let c0 = &one.cells[0];
    assert_eq!(
        (c0.knob.as_str(), c0.seed, c0.scenario.as_deref()),
        ("reseller=0.3", 1, None)
    );
    assert_eq!(c0.stats.interfaces, 240);
    assert_eq!(c0.stats.classified, 164);
    assert_eq!(c0.stats.local, 103);
    assert_eq!(c0.stats.remote, 61);
    assert_eq!(c0.stats.remote_share, 0.3719512195121951);
    assert_eq!(c0.stats.accuracy, 0.9634146341463414);

    let c7 = &one.cells[7];
    assert_eq!(
        (c7.knob.as_str(), c7.seed, c7.scenario.as_deref()),
        ("reseller=0.62", 2, Some("ixp-outage:AMS-IX"))
    );
    let shift = c7.shift.expect("scenario cell carries a shift");
    assert_eq!(shift.remote_share_delta, -0.021150278293135427);
    assert_eq!(shift.affected_asns, 20);

    let b0 = &one.bands[0];
    assert_eq!(
        (b0.knob.as_str(), b0.scenario.as_deref()),
        ("reseller=0.3", None)
    );
    assert_eq!(b0.remote_share.n, 2);
    assert_eq!(b0.remote_share.mean, 0.35785060975609756);
    assert_eq!(b0.remote_share.stddev, 0.01994127355480355);
    assert_eq!(b0.accuracy.mean, 0.9504573170731707);
    assert_eq!(b0.coverage.mean, 0.6578722002635047);
    assert!(
        b0.share_delta.is_none(),
        "baseline groups have no delta band"
    );

    let b3 = &one.bands[3];
    assert_eq!(
        (b3.knob.as_str(), b3.scenario.as_deref()),
        ("reseller=0.62", Some("ixp-outage:AMS-IX"))
    );
    assert_eq!(b3.remote_share.mean, 0.3145519077196096);
    let delta = b3.share_delta.expect("scenario groups carry a delta band");
    assert_eq!(delta.mean, -0.022379910462208608);
}

/// Independent two-pass reference for the band math.
fn naive_band(samples: &[f64]) -> (f64, f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().copied().sum::<f64>() / n;
    let var = if samples.len() < 2 {
        0.0
    } else {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    let stddev = var.sqrt();
    let half = 1.96 * stddev / n.sqrt();
    (mean, stddev, mean - half, mean + half)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #[test]
    fn band_matches_naive_reference(samples in proptest::collection::vec(-1.0e6f64..1.0e6, 1..40)) {
        let band = Band::from_samples(&samples);
        let (mean, stddev, lo, hi) = naive_band(&samples);
        prop_assert_eq!(band.n, samples.len());
        prop_assert!(close(band.mean, mean), "mean {} vs {}", band.mean, mean);
        prop_assert!(close(band.stddev, stddev), "stddev {} vs {}", band.stddev, stddev);
        prop_assert!(close(band.lo, lo), "lo {} vs {}", band.lo, lo);
        prop_assert!(close(band.hi, hi), "hi {} vs {}", band.hi, hi);
    }

    #[test]
    fn band_brackets_its_mean(samples in proptest::collection::vec(-1.0e3f64..1.0e3, 1..40)) {
        let band = Band::from_samples(&samples);
        prop_assert!(band.lo <= band.mean && band.mean <= band.hi);
        prop_assert!(band.width() >= 0.0);
        prop_assert!(band.stddev >= 0.0);
    }

    #[test]
    fn singleton_band_has_zero_width(x in -1.0e6f64..1.0e6) {
        let band = Band::from_samples(&[x]);
        prop_assert_eq!(band.n, 1);
        prop_assert_eq!(band.mean, x);
        prop_assert_eq!(band.stddev, 0.0);
        prop_assert_eq!(band.width(), 0.0);
    }

    #[test]
    fn constant_samples_have_negligible_spread(x in -1.0e3f64..1.0e3, n in 2usize..20) {
        let band = Band::from_samples(&vec![x; n]);
        prop_assert!(close(band.mean, x), "mean {} vs {}", band.mean, x);
        prop_assert!(band.stddev <= 1e-9 * x.abs().max(1.0));
        prop_assert!(band.width() <= 1e-8 * x.abs().max(1.0));
    }
}
