//! Criterion benchmarks for the pipeline stages at test scale: world
//! generation, registry fusion, campaign, corpus, and the five-step
//! inference itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::InferenceInput;
use opeer_measure::campaign::{run_campaign, CampaignConfig};
use opeer_measure::traceroute::{build_corpus, CorpusConfig};
use opeer_measure::vp::discover_vps;
use opeer_registry::{build_observed_world, RegistryConfig};
use opeer_topology::{RoutingOracle, WorldConfig};

fn bench_world_gen(c: &mut Criterion) {
    c.bench_function("world_generate_small", |b| {
        b.iter(|| WorldConfig::small(black_box(7)).generate())
    });
}

fn bench_registry(c: &mut Criterion) {
    let world = WorldConfig::small(7).generate();
    c.bench_function("registry_fusion", |b| {
        b.iter(|| build_observed_world(black_box(&world), &RegistryConfig::default()))
    });
}

fn bench_campaign(c: &mut Criterion) {
    let world = WorldConfig::small(7).generate();
    let vps = discover_vps(&world, 7);
    c.bench_function("ping_campaign", |b| {
        b.iter(|| run_campaign(black_box(&world), &vps, CampaignConfig::study(7)))
    });
}

fn bench_corpus(c: &mut Criterion) {
    let world = WorldConfig::small(7).generate();
    c.bench_function("traceroute_corpus", |b| {
        b.iter(|| {
            build_corpus(
                black_box(&world),
                CorpusConfig {
                    n_random: 200,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_routes(c: &mut Criterion) {
    let world = WorldConfig::small(7).generate();
    let oracle = RoutingOracle::new(&world);
    let dst = world.memberships[0].member;
    c.bench_function("routes_to_one_destination", |b| {
        b.iter(|| oracle.routes_to(black_box(dst)))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let world = WorldConfig::small(7).generate();
    let input = InferenceInput::assemble(&world, 7);
    c.bench_function("inference_pipeline", |b| {
        b.iter(|| run_pipeline(black_box(&input), &PipelineConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_world_gen, bench_registry, bench_campaign, bench_corpus, bench_routes, bench_full_pipeline
}
criterion_main!(benches);
