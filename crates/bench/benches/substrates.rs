//! Criterion benchmarks for the substrate hot paths: prefix-trie LPM,
//! geodesics, the speed model, BGP/MRT codecs, traIXroute detection and
//! MIDAR-style MBT.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opeer_geo::{GeoPoint, SpeedModel};
use opeer_net::{Asn, IpToAsMap, Ipv4Prefix, PrefixTrie};
use std::net::Ipv4Addr;

fn bench_trie(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    for i in 0..50_000u32 {
        let addr = Ipv4Addr::from(0x0A00_0000u32 + i * 64);
        let len = 18 + (i % 14) as u8;
        trie.insert(Ipv4Prefix::new(addr, len).expect("valid"), i);
    }
    let probes: Vec<Ipv4Addr> = (0..1024u32)
        .map(|i| Ipv4Addr::from(0x0A00_0000u32 + i * 3001))
        .collect();
    c.bench_function("trie_lpm_50k_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &p in &probes {
                if trie.longest_match(black_box(p)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_ip2as(c: &mut Criterion) {
    let mut map = IpToAsMap::new();
    for i in 0..20_000u32 {
        let addr = Ipv4Addr::from(0x1400_0000u32 + i * 256);
        map.insert(
            Ipv4Prefix::new(addr, 24).expect("valid"),
            Asn::new(1000 + i),
        );
    }
    c.bench_function("ip2as_lookup", |b| {
        b.iter(|| map.lookup(black_box(Ipv4Addr::new(20, 50, 60, 7))))
    });
}

fn bench_geodesic(c: &mut Criterion) {
    let ams = GeoPoint::new(52.37, 4.9).expect("valid");
    let sin = GeoPoint::new(1.35, 103.82).expect("valid");
    c.bench_function("vincenty_inverse", |b| {
        b.iter(|| opeer_geo::vincenty_inverse_m(black_box(ams), black_box(sin)))
    });
    c.bench_function("haversine", |b| {
        b.iter(|| opeer_geo::haversine_m(black_box(ams), black_box(sin)))
    });
}

fn bench_speed_model(c: &mut Criterion) {
    let model = SpeedModel::default();
    c.bench_function("feasible_annulus", |b| {
        b.iter(|| model.feasible_annulus_ms(black_box(7.3)))
    });
}

fn bench_bgp_codec(c: &mut Criterion) {
    let update = opeer_bgp::BgpUpdate::announce(
        (0..32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr::from(0xCB00_0000u32 + i * 256), 24).expect("valid"))
            .collect(),
        vec![Asn::new(64500), Asn::new(3356), Asn::new(65001)],
        "192.0.2.1".parse().expect("valid"),
    );
    let bytes = update.encode();
    c.bench_function("bgp_update_encode", |b| {
        b.iter(|| black_box(&update).encode())
    });
    c.bench_function("bgp_update_decode", |b| {
        b.iter(|| opeer_bgp::BgpUpdate::decode(black_box(&bytes)).expect("valid"))
    });
}

fn bench_traix(c: &mut Criterion) {
    let mut data = opeer_traix::IxpData::new();
    data.add_ixp(0, &["185.1.0.0/21".parse().expect("valid")]);
    for i in 0..512u32 {
        data.add_interface(
            0,
            Ipv4Addr::from(u32::from(Ipv4Addr::new(185, 1, 0, 0)) + 10 + i),
            Asn::new(1000 + i),
        );
    }
    let mut ip2as = IpToAsMap::new();
    for i in 0..512u32 {
        ip2as.insert(
            Ipv4Prefix::new(Ipv4Addr::from(0x1400_0000 + i * 65536), 16).expect("valid"),
            Asn::new(1000 + i),
        );
    }
    let hops: Vec<Option<Ipv4Addr>> = vec![
        Some(Ipv4Addr::new(20, 1, 0, 1)),
        Some(Ipv4Addr::new(185, 1, 0, 10)),
        Some(Ipv4Addr::new(20, 0, 0, 5)),
        Some(Ipv4Addr::new(20, 0, 0, 6)),
        None,
        Some(Ipv4Addr::new(20, 2, 0, 9)),
    ];
    c.bench_function("traix_detect_crossings", |b| {
        b.iter(|| opeer_traix::detect_crossings(black_box(&hops), &data, &ip2as))
    });
}

fn bench_mbt(c: &mut Criterion) {
    let mk = |offset: f64| -> Vec<opeer_measure::ipid::IpIdSample> {
        (0..12)
            .map(|k| opeer_measure::ipid::IpIdSample {
                t_s: offset + k as f64 * 2.0,
                ip_id: (1000 + k * 200) as u16,
            })
            .collect()
    };
    let a = mk(0.0);
    let b = mk(0.5);
    c.bench_function("alias_mbt", |b2| {
        b2.iter(|| opeer_alias::mbt_shared_counter(black_box(&a), black_box(&b), 3000.0))
    });
}

criterion_group!(
    benches,
    bench_trie,
    bench_ip2as,
    bench_geodesic,
    bench_speed_model,
    bench_bgp_codec,
    bench_traix,
    bench_mbt
);
criterion_main!(benches);
