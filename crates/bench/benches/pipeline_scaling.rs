//! Thread-scaling benchmark for the sharded parallel inference engine:
//! the five-step pipeline at 1/2/4/8 worker threads against the
//! sequential reference, on the small world (fast smoke numbers) and on
//! `WorldConfig::large` (the scenario sized so fan-out is measurable).
//!
//! For the machine-readable report (speedups + identity check) use
//! `run_experiments --bench-pipeline`, which writes `BENCH_pipeline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opeer_bench::DEFAULT_THREAD_SWEEP;
use opeer_core::engine::{run_pipeline_parallel, ParallelConfig};
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::InferenceInput;
use opeer_topology::{World, WorldConfig};

fn sweep(c: &mut Criterion, label: &str, world: &World, seed: u64, samples: usize) {
    let input = InferenceInput::assemble(world, seed);
    let cfg = PipelineConfig::default();
    let mut group = c.benchmark_group(label);
    group.sample_size(samples);
    group.bench_function("sequential", |b| {
        b.iter(|| run_pipeline(black_box(&input), &cfg))
    });
    for &threads in DEFAULT_THREAD_SWEEP {
        let par = ParallelConfig::new(threads);
        group.bench_function(&format!("threads/{threads}"), |b| {
            b.iter(|| run_pipeline_parallel(black_box(&input), &cfg, &par))
        });
    }
    group.finish();
}

fn bench_scaling_small(c: &mut Criterion) {
    let world = WorldConfig::small(42).generate();
    sweep(c, "pipeline_scaling_small", &world, 42, 10);
}

fn bench_scaling_large(c: &mut Criterion) {
    let world = WorldConfig::large(42).generate();
    sweep(c, "pipeline_scaling_large", &world, 42, 5);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling_small, bench_scaling_large
}
criterion_main!(benches);
