//! One criterion benchmark per table/figure experiment (test scale):
//! regenerating each paper artifact is itself a measured operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opeer_bench::experiments::{fig_analysis, fig_datasets, fig_inference, tables};
use opeer_bench::Session;
use opeer_topology::{World, WorldConfig};

fn session() -> (&'static World, Session<'static>) {
    let world: &'static World = Box::leak(Box::new(WorldConfig::small(17).generate()));
    let session = Session::new(world, 17);
    (world, session)
}

fn bench_experiments(c: &mut Criterion) {
    let (_w, s) = session();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| tables::table1(black_box(&s))));
    g.bench_function("table2", |b| b.iter(|| tables::table2(black_box(&s))));
    g.bench_function("table4", |b| b.iter(|| tables::table4(black_box(&s))));
    g.bench_function("table5", |b| b.iter(|| tables::table5(black_box(&s))));
    g.bench_function("fig1a", |b| b.iter(|| fig_datasets::fig1a(black_box(&s))));
    g.bench_function("fig1b", |b| b.iter(|| fig_datasets::fig1b(black_box(&s))));
    g.bench_function("fig2a", |b| b.iter(|| fig_datasets::fig2a(black_box(&s))));
    g.bench_function("fig2b", |b| b.iter(|| fig_datasets::fig2b(black_box(&s))));
    g.bench_function("fig4", |b| b.iter(|| fig_datasets::fig4(black_box(&s))));
    g.bench_function("fig5", |b| b.iter(|| fig_datasets::fig5(black_box(&s))));
    g.bench_function("fig6", |b| b.iter(|| fig_datasets::fig6(black_box(&s))));
    g.bench_function("fig8", |b| b.iter(|| fig_inference::fig8(black_box(&s))));
    g.bench_function("fig9a", |b| b.iter(|| fig_inference::fig9a(black_box(&s))));
    g.bench_function("fig9b", |b| b.iter(|| fig_inference::fig9b(black_box(&s))));
    g.bench_function("fig9c", |b| b.iter(|| fig_inference::fig9c(black_box(&s))));
    g.bench_function("fig9d", |b| b.iter(|| fig_inference::fig9d(black_box(&s))));
    g.bench_function("fig10a", |b| {
        b.iter(|| fig_inference::fig10a(black_box(&s)))
    });
    g.bench_function("fig10b", |b| {
        b.iter(|| fig_inference::fig10b(black_box(&s)))
    });
    g.bench_function("fig11a", |b| b.iter(|| fig_analysis::fig11a(black_box(&s))));
    g.bench_function("fig11b", |b| b.iter(|| fig_analysis::fig11b(black_box(&s))));
    g.bench_function("fig12a", |b| b.iter(|| fig_analysis::fig12a(black_box(&s))));
    g.bench_function("fig12b", |b| b.iter(|| fig_analysis::fig12b(black_box(&s))));
    g.bench_function("sec64", |b| b.iter(|| fig_analysis::sec64(black_box(&s))));
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
