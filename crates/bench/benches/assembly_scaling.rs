//! Thread-scaling benchmark for parallel measurement assembly:
//! `InferenceInput::assemble` (sequential) vs `assemble_parallel` at
//! 1/2/4/8 worker threads, plus the overlapped
//! `assemble_and_run_parallel` end-to-end path, on the small world
//! (fast smoke numbers) and on `WorldConfig::large` (full paper member
//! scale, where corpus tracing dominates and the fan-out pays off).
//!
//! For the machine-readable report (speedups + identity gates) use
//! `run_experiments --bench-pipeline`, which writes
//! `BENCH_pipeline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opeer_bench::DEFAULT_THREAD_SWEEP;
use opeer_core::engine::{assemble_and_run_parallel, ParallelConfig};
use opeer_core::pipeline::PipelineConfig;
use opeer_core::InferenceInput;
use opeer_topology::{World, WorldConfig};

fn sweep(c: &mut Criterion, label: &str, world: &World, seed: u64, samples: usize) {
    let cfg = PipelineConfig::default();
    let mut group = c.benchmark_group(label);
    group.sample_size(samples);
    group.bench_function("sequential", |b| {
        b.iter(|| InferenceInput::assemble(black_box(world), seed))
    });
    for &threads in DEFAULT_THREAD_SWEEP {
        let par = ParallelConfig::new(threads);
        group.bench_function(&format!("threads/{threads}"), |b| {
            b.iter(|| InferenceInput::assemble_parallel(black_box(world), seed, &par))
        });
    }
    // The overlapped path folds inference in; bench it at the sweep's
    // widest pool so the corpus/steps-1–3 overlap is visible.
    let par = ParallelConfig::new(*DEFAULT_THREAD_SWEEP.last().expect("non-empty sweep"));
    group.bench_function("overlapped_e2e/8", |b| {
        b.iter(|| assemble_and_run_parallel(black_box(world), seed, &cfg, &par))
    });
    group.finish();
}

fn bench_assembly_small(c: &mut Criterion) {
    let world = WorldConfig::small(42).generate();
    sweep(c, "assembly_scaling_small", &world, 42, 10);
}

fn bench_assembly_large(c: &mut Criterion) {
    let world = WorldConfig::large(42).generate();
    sweep(c, "assembly_scaling_large", &world, 42, 5);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_assembly_small, bench_assembly_large
}
criterion_main!(benches);
