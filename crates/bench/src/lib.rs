//! # opeer-bench — the experiment harness
//!
//! One experiment per table and figure of the paper's evaluation, each
//! regenerating the corresponding rows/series from a simulated world
//! (see DESIGN.md §4 for the complete index and EXPERIMENTS.md for
//! paper-vs-measured numbers). Run them all with:
//!
//! ```text
//! cargo run --release -p opeer-bench --bin run_experiments -- --scale paper --out target/experiments
//! ```
//!
//! Criterion benchmarks (`cargo bench -p opeer-bench`) time the substrate
//! hot paths, the pipeline stages, measurement assembly, and every
//! experiment at test scale.
//!
//! ## Key types and entry points
//!
//! * [`Session`] — one world's assembled inputs, control campaign,
//!   pipeline result, and baseline, shared by every experiment.
//! * [`run_all`] — renders each experiment into a [`Rendered`]
//!   (`.txt` + `.json` pair) for the `run_experiments` binary.
//! * [`run_scaling_study`] / [`ScalingReport`] — the engine scaling
//!   study behind `run_experiments --bench-pipeline`: assembly,
//!   pipeline, overlapped end-to-end, and streaming epoch-replay sweeps
//!   with byte-identity gates, serialised as `BENCH_pipeline.json`
//!   (schema documented in the README).
//! * [`run_streaming_session`] / [`StreamingReport`] — the epoch replay
//!   behind `run_experiments --epochs N`: measurements delivered in
//!   batches through the incremental pipeline, per-epoch dirty-shard
//!   accounting, byte-identity audit against the one-shot run.
//! * [`run_serving_study`] / [`ServingReport`] — the serving-throughput
//!   sweep of the `serving` section: reader threads issuing batched
//!   snapshot queries while a writer streams epoch deltas into the
//!   [`opeer_core::service::PeeringService`].
//! * [`run_gateway_study`] / [`GatewayReport`] — the wire-level load
//!   study of the `gateway` section (and the `loadgen` binary): real
//!   HTTP clients over loopback sockets against an
//!   [`opeer_gateway::Gateway`], with expected-status, epoch-monotonic,
//!   taxonomy, and zero-panic gates.
//! * [`run_archive_study`] / [`ArchiveReport`] — the longitudinal
//!   archive replay of the `archive` section (and `run_experiments
//!   --archive-months N`): monthly world revisions streamed through a
//!   [`opeer_core::archive::SnapshotArchive`], per-month dirty
//!   accounting, time-travel query throughput, retained-bytes
//!   estimate, and a byte-identity gate against the one-shot pipeline.
//! * [`run_memory_study`] / [`MemoryReport`] — the structural-sharing
//!   memory study of the `memory` section (and `run_experiments
//!   --memory-study`): epoch streams through a retention-capped
//!   archive, per-epoch publish dirty sets and deduplicated retained
//!   bytes, with flat-ceiling, zero-dirty-speedup, and byte-identity
//!   gates.
//! * [`run_sweep`] / [`SweepGrid`] / [`FleetReport`] — the multi-world
//!   sweep fleet behind `run_experiments --sweep GRIDSPEC`: seed ×
//!   `WorldConfig`-knob grids fanned one world per shard, optional
//!   what-if [`opeer_topology::Scenario`] cells scored incrementally
//!   against their baselines, aggregated into mean ± 95 % confidence
//!   bands, serialised as `BENCH_sweep.json` (the v9 `sweep` section)
//!   with an identity gate and thread/permutation-invariant bytes.
//! * [`compare_reports`] / [`Comparison`] — the schema-tolerant
//!   regression diff behind `run_experiments --compare-bench`: two
//!   `BENCH_pipeline.json` files compared phase by phase, failing on
//!   any >20 % mean wall-clock regression (CI's perf gate).

#![warn(missing_docs)]

pub mod archive;
pub mod compare;
pub mod experiments;
pub mod fleet;
pub mod gateway;
pub mod memory;
pub mod scaling;
pub mod serving;
pub mod session;
pub mod streaming;

pub use archive::{run_archive_study, ArchiveReport, MonthCost, DEFAULT_ARCHIVE_MONTHS};
pub use compare::{compare_reports, Comparison, Regression, DEFAULT_TOLERANCE};
pub use experiments::{run_all, Rendered};
pub use fleet::{
    run_sweep, Band, BandGroup, CellReport, CellStats, FleetReport, KnobPoint, SweepBenchReport,
    SweepGrid, FLEET_SCHEMA,
};
pub use gateway::{run_gateway_study, GatewayPoint, GatewayReport, DEFAULT_CONNECTION_SWEEP};
pub use memory::{
    memory_gates_hold, run_memory_study, MemoryEpoch, MemoryReport, DEFAULT_MEMORY_EPOCHS,
    DEFAULT_MEMORY_RETAIN,
};
pub use scaling::{
    run_scaling_study, PhaseScaling, ScalingReport, DEFAULT_STREAMING_EPOCHS, DEFAULT_THREAD_SWEEP,
};
pub use serving::{run_serving_study, ServingPoint, ServingReport, DEFAULT_READER_SWEEP};
pub use session::Session;
pub use streaming::{run_streaming_session, EpochCost, StreamingReport};
