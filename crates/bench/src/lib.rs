//! # opeer-bench — the experiment harness
//!
//! One experiment per table and figure of the paper's evaluation, each
//! regenerating the corresponding rows/series from a simulated world
//! (see DESIGN.md §4 for the complete index and EXPERIMENTS.md for
//! paper-vs-measured numbers). Run them all with:
//!
//! ```text
//! cargo run --release -p opeer-bench --bin run_experiments -- --scale paper --out target/experiments
//! ```
//!
//! Criterion benchmarks (`cargo bench -p opeer-bench`) time the substrate
//! hot paths, the pipeline stages, and every experiment at test scale.

pub mod experiments;
pub mod scaling;
pub mod session;

pub use experiments::{run_all, Rendered};
pub use scaling::{run_scaling_study, ScalingReport, DEFAULT_THREAD_SWEEP};
pub use session::Session;
