//! The streaming ingestion study: replay a world's measurements in N
//! epoch batches through the incremental pipeline
//! ([`opeer_core::incremental`]) and record what each epoch cost —
//! wall-clock plus the dirty-shard counts along every step axis — next
//! to the cost of a full re-run over the same final input.
//!
//! This is the schema-v3 `streaming` section of `BENCH_pipeline.json`
//! and the engine behind `run_experiments --epochs N` (which exits
//! non-zero if the incremental replay diverges from the one-shot
//! pipeline, the same contract as `--bench-pipeline`).

use opeer_core::engine::ParallelConfig;
use opeer_core::incremental::{DirtyCounts, IncrementalPipeline, InputDelta, ShardTotals};
use opeer_core::input::default_configs;
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::InferenceInput;
use opeer_measure::campaign::campaign_batches;
use opeer_measure::traceroute::corpus_batches;
use opeer_topology::World;
use serde::Serialize;
use std::time::Instant;

/// What one epoch's delta application cost.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EpochCost {
    /// Epoch index (1-based; epoch 0 is the measurement-free base).
    pub epoch: usize,
    /// New campaign observations delivered this epoch.
    pub campaign_observations: usize,
    /// New corpus traceroutes delivered this epoch.
    pub corpus_traces: usize,
    /// Wall-clock of the `apply` call, ms (inference only — batch
    /// generation happens outside the clock).
    pub wall_ms: f64,
    /// Shard units the apply actually recomputed, per step axis.
    pub dirty: DirtyCounts,
}

/// The full streaming study, serialised into `BENCH_pipeline.json`'s
/// `streaming` section (schema v3).
#[derive(Debug, Clone, Serialize)]
pub struct StreamingReport {
    /// Epoch batches actually replayed (may be fewer than requested on
    /// worlds with fewer VPs / corpus destinations than epochs).
    pub epochs: usize,
    /// Wall-clock of the epoch-0 base build (registry fusion, VP
    /// discovery, `prefix2as`, first — empty — pipeline pass), ms.
    pub base_ms: f64,
    /// Per-epoch application costs, in replay order.
    pub per_epoch: Vec<EpochCost>,
    /// The final shard population along every axis — the denominator
    /// for the dirty counts above.
    pub totals: ShardTotals,
    /// Total dirty shard units of the **last** epoch (what a one-epoch
    /// delta re-run costs on a warm state).
    pub last_epoch_dirty: usize,
    /// Total shard units of a from-scratch run over the final input.
    pub total_shards: usize,
    /// Wall-clock of the last epoch's apply, ms.
    pub last_epoch_ms: f64,
    /// Wall-clock of a one-shot `run_pipeline` over the final input, ms
    /// — the full re-run the last epoch's delta replaces.
    pub full_rerun_ms: f64,
    /// Whether the accumulated input and the final incremental result
    /// were byte-identical to the one-shot assembly + pipeline. This is
    /// the gate `run_experiments --epochs` enforces with its exit code.
    pub identical: bool,
}

/// Replays `(world, seed)`'s measurements in `epochs` batches through a
/// retained [`IncrementalPipeline`] and audits the final state against
/// the one-shot path byte for byte.
///
/// The epoch batches come from the `opeer-measure` emitters
/// ([`campaign_batches`] / [`corpus_batches`]), so the accumulated
/// input is — by their contract — the same bytes
/// [`InferenceInput::assemble`] produces; the audit verifies it anyway.
pub fn run_streaming_session(
    world: &World,
    seed: u64,
    epochs: usize,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> StreamingReport {
    let epochs = epochs.max(1);
    let (_registry, campaign_cfg, corpus_cfg) = default_configs(seed);

    // Epoch 0: the measurement-free substrate.
    let t0 = Instant::now();
    let base = InferenceInput::assemble_base(world, seed);
    let mut pipe = IncrementalPipeline::new(base, cfg, par);
    let base_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Batch generation happens outside the timed windows: the study
    // measures incremental *inference*, not measurement emission.
    let camp = campaign_batches(world, &pipe.input().vps, campaign_cfg, epochs);
    let corp = corpus_batches(world, corpus_cfg, epochs);

    // The emitters cap at the item counts, so tiny worlds may yield
    // fewer batches than requested; an empty delta keeps the replay
    // non-degenerate either way.
    let mut deltas = InputDelta::zip_batches(camp, corp);
    if deltas.is_empty() {
        deltas.push(InputDelta::default());
    }
    let mut per_epoch = Vec::with_capacity(deltas.len());
    for (e, delta) in deltas.into_iter().enumerate() {
        let campaign_observations = delta.campaign.as_ref().map_or(0, |c| c.observations.len());
        let corpus_traces = delta.corpus.len();
        let t = Instant::now();
        pipe.apply(delta);
        per_epoch.push(EpochCost {
            epoch: e + 1,
            campaign_observations,
            corpus_traces,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
            dirty: pipe.last_dirty(),
        });
    }

    // The one-shot reference and the byte-identity audit.
    let full = InferenceInput::assemble(world, seed);
    let t = Instant::now();
    let one_shot = run_pipeline(&full, cfg);
    let full_rerun_ms = t.elapsed().as_secs_f64() * 1e3;
    let identical = pipe.input().content_eq(&full) && *pipe.result() == one_shot;

    let totals = pipe.totals();
    let last = per_epoch.last().expect("at least one epoch ran");
    StreamingReport {
        epochs: per_epoch.len(),
        base_ms,
        last_epoch_dirty: last.dirty.total(),
        total_shards: totals.total(),
        last_epoch_ms: last.wall_ms,
        full_rerun_ms,
        per_epoch,
        totals,
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn streaming_replay_is_identical_and_incremental() {
        let world = WorldConfig::small(7).generate();
        let report = run_streaming_session(
            &world,
            7,
            3,
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        assert!(report.identical, "incremental replay diverged");
        assert_eq!(report.per_epoch.len(), 3);
        assert!(
            report.last_epoch_dirty < report.total_shards,
            "last epoch ({}) recomputed no less than a full run ({})",
            report.last_epoch_dirty,
            report.total_shards
        );
        // Without registry revisions, step 1 never re-runs after epoch 0.
        for cost in &report.per_epoch {
            assert_eq!(cost.dirty.step1_ixps, 0, "epoch {}", cost.epoch);
        }
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"per_epoch\":"));
        assert!(json.contains("\"identical\":true"));
    }
}
