//! The multi-world sweep fleet: seed × knob grids, what-if scenarios,
//! confidence-banded figures.
//!
//! Every other experiment in this crate runs **one** world. The fleet
//! runs a [`SweepGrid`] of them — the cross product of seeds and
//! `WorldConfig` knob points (remote mix, reseller rate, port-capacity
//! distribution, scale), optionally extended with what-if
//! [`Scenario`]s — fanning one world per shard over the engine's
//! heterogeneous [`map_indexed`] and aggregating per-cell remote
//! shares, verdict tallies and accuracy into mean ± 95 % confidence
//! bands.
//!
//! ## Determinism
//!
//! Cells run the *sequential* assemble + pipeline internally
//! (`ParallelConfig::new(1)`), so the outer thread count only changes
//! which worker computes which cell; [`map_indexed`]'s index-ordered
//! merge and the canonical grid order (knob label ↑, seed ↑, scenario
//! label ↑) make [`FleetReport::stats_bytes`] byte-identical across
//! `OPEER_THREADS` and across grid-spec permutations
//! (`crates/bench/tests/fleet_determinism.rs` proptests both).
//! Wall-clock fields are the only nondeterministic content and
//! `stats_bytes` scrubs them.
//!
//! ## Identity gate
//!
//! Scenario cells take the cheap path — one `InputDelta` (registry
//! revision + re-measured campaign/corpus) applied over the baseline's
//! measurement-free input via
//! [`run_scenario_epoch`].
//! The report's `identity` flag re-runs the first baseline cell and
//! recomputes the first scenario cell as a **one-shot** assemble +
//! pipeline on the scenario world, requiring both to match the fleet's
//! results exactly; CI's `sweep-smoke` step gates on it.
//!
//! ## Grid-spec syntax
//!
//! `;`-separated axes, each `key=value[,value…]`:
//!
//! | axis | values |
//! |---|---|
//! | `base` | `tiny` \| `small` \| `paper` (default `tiny`) |
//! | `seeds` | comma-separated u64 list (default `42`) |
//! | `scale` | member-target multipliers, e.g. `0.02,0.05` |
//! | `remote` | `paper` \| `near` \| `far` remote-distance mixes |
//! | `reseller` | `p_reseller_given_remote` values, e.g. `0.3,0.62` |
//! | `ports` | `default` \| `rich` \| `lean` port-capacity mixes |
//! | `scenario` | `ixp-outage:NAME`, `port-migration:NAME:COUNT`, `reseller-consolidation`, `capacity-scaling:PERMILLE` |
//!
//! Knob axes cross-multiply; e.g.
//! `base=tiny;seeds=1,2;reseller=0.3,0.62;scenario=ixp-outage:AMS-IX`
//! is 2 seeds × 2 knobs × (baseline + 1 scenario) = 8 cells.

use opeer_core::engine::{map_indexed, ParallelConfig};
use opeer_core::input::{default_configs, InferenceInput};
use opeer_core::pipeline::{run_pipeline, PipelineConfig, PipelineResult, StepCounts};
use opeer_core::scenario::{run_scenario_epoch, score_shift, ScenarioShift};
use opeer_core::types::Verdict;
use opeer_registry::{build_observed_world, ObservedWorld};
use opeer_topology::{PortCapacityDist, RemoteMix, Scenario, World, WorldConfig, NAMED_IXPS};
use serde::Serialize;
use serde_json::Value;
use std::time::Instant;

/// Schema tag of the standalone [`FleetReport`].
pub const FLEET_SCHEMA: &str = "opeer-fleet/1";

/// One knob point of the grid: a label (stable across runs, used for
/// ordering and band grouping) and the world configuration it denotes.
#[derive(Debug, Clone)]
pub struct KnobPoint {
    /// Canonical label, e.g. `reseller=0.3|ports=lean` or `default`.
    pub label: String,
    /// The world configuration (seed overwritten per cell).
    pub config: WorldConfig,
}

/// A parsed, normalised sweep grid.
///
/// Normalisation sorts seeds ascending, knob points and scenarios by
/// label, and rebuilds `spec` canonically — two specs naming the same
/// grid in different axis/value order parse to identical grids (and
/// therefore identical reports).
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Canonical spec string (reconstructed, not the raw input).
    pub spec: String,
    /// Seeds, ascending and deduplicated.
    pub seeds: Vec<u64>,
    /// Knob points, sorted by label.
    pub knobs: Vec<KnobPoint>,
    /// Scenarios, sorted by label and deduplicated.
    pub scenarios: Vec<Scenario>,
}

fn base_config(label: &str) -> Result<WorldConfig, String> {
    match label {
        // The CI-smoke scale: a handful of small IXPs over the named
        // roster, a few hundred interfaces, sub-second per cell.
        "tiny" => {
            let mut cfg = WorldConfig::small(0);
            cfg.scale = 0.02;
            cfg.n_small_ixps = 6;
            cfg.n_background_ases = 50;
            cfg.n_switchers = 2;
            Ok(cfg)
        }
        "small" => Ok(WorldConfig::small(0)),
        "paper" => Ok(WorldConfig::paper(0)),
        other => Err(format!(
            "unknown base `{other}` (expected tiny|small|paper)"
        )),
    }
}

fn remote_mix(label: &str) -> Result<RemoteMix, String> {
    match label {
        "paper" => Ok(RemoteMix::default()),
        // Remote members cluster close to the IXP (reseller-in-town
        // heavy) …
        "near" => Ok(RemoteMix {
            same_metro: 0.45,
            regional: 0.30,
            continental: 0.15,
            intercontinental: 0.10,
        }),
        // … or sit oceans away (long-cable heavy).
        "far" => Ok(RemoteMix {
            same_metro: 0.05,
            regional: 0.15,
            continental: 0.30,
            intercontinental: 0.50,
        }),
        other => Err(format!(
            "unknown remote mix `{other}` (expected paper|near|far)"
        )),
    }
}

fn port_dist(label: &str) -> Result<PortCapacityDist, String> {
    match label {
        "default" => Ok(PortCapacityDist::default()),
        "rich" => Ok(PortCapacityDist::rich()),
        "lean" => Ok(PortCapacityDist::lean()),
        other => Err(format!(
            "unknown ports mix `{other}` (expected default|rich|lean)"
        )),
    }
}

fn parse_scenario(token: &str) -> Result<Scenario, String> {
    let mut parts = token.split(':');
    let kind = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let named_ixp = |name: &str| -> Result<String, String> {
        if NAMED_IXPS.iter().any(|s| s.name == name) {
            Ok(name.to_string())
        } else {
            Err(format!("scenario `{token}`: `{name}` is not a named IXP"))
        }
    };
    match (kind, rest.as_slice()) {
        ("ixp-outage", [name]) => Ok(Scenario::IxpOutage {
            ixp: named_ixp(name)?,
        }),
        ("port-migration", [name, count]) => Ok(Scenario::PortMigration {
            ixp: named_ixp(name)?,
            count: count
                .parse()
                .map_err(|_| format!("scenario `{token}`: bad count `{count}`"))?,
        }),
        ("reseller-consolidation", []) => Ok(Scenario::ResellerConsolidation),
        ("capacity-scaling", [permille]) => {
            let factor_permille: u32 = permille
                .parse()
                .map_err(|_| format!("scenario `{token}`: bad permille `{permille}`"))?;
            if factor_permille == 0 {
                return Err(format!("scenario `{token}`: permille must be > 0"));
            }
            Ok(Scenario::CapacityScaling { factor_permille })
        }
        _ => Err(format!(
            "unknown scenario `{token}` (expected ixp-outage:NAME, \
             port-migration:NAME:COUNT, reseller-consolidation, \
             capacity-scaling:PERMILLE)"
        )),
    }
}

fn parse_f64_axis(axis: &str, raw: &[String]) -> Result<Vec<f64>, String> {
    let mut vals = Vec::new();
    for v in raw {
        let f: f64 = v
            .parse()
            .map_err(|_| format!("axis `{axis}`: bad number `{v}`"))?;
        if !f.is_finite() {
            return Err(format!("axis `{axis}`: `{v}` is not finite"));
        }
        vals.push(f);
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    vals.dedup();
    Ok(vals)
}

impl SweepGrid {
    /// Parses and normalises a grid spec (syntax in the module docs).
    pub fn parse(spec: &str) -> Result<SweepGrid, String> {
        let mut axes: Vec<(String, Vec<String>)> = Vec::new();
        for seg in spec.split(';') {
            let seg = seg.trim();
            if seg.is_empty() {
                continue;
            }
            let (key, vals) = seg
                .split_once('=')
                .ok_or_else(|| format!("bad axis `{seg}` (expected key=value,…)"))?;
            let key = key.trim();
            if axes.iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate axis `{key}`"));
            }
            let vals: Vec<String> = vals
                .split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect();
            if vals.is_empty() {
                return Err(format!("axis `{key}` has no values"));
            }
            axes.push((key.to_string(), vals));
        }

        let take = |name: &str| -> Option<Vec<String>> {
            axes.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
        };
        for (k, _) in &axes {
            if !matches!(
                k.as_str(),
                "base" | "seeds" | "scale" | "remote" | "reseller" | "ports" | "scenario"
            ) {
                return Err(format!("unknown axis `{k}`"));
            }
        }

        let base_label = match take("base") {
            Some(v) if v.len() == 1 => v[0].clone(),
            Some(_) => return Err("axis `base` takes exactly one value".to_string()),
            None => "tiny".to_string(),
        };
        let base = base_config(&base_label)?;

        let mut seeds: Vec<u64> = match take("seeds") {
            Some(v) => v
                .iter()
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|_| format!("axis `seeds`: bad seed `{s}`"))
                })
                .collect::<Result<_, _>>()?,
            None => vec![42],
        };
        seeds.sort_unstable();
        seeds.dedup();

        // Knob axes in canonical order; each axis' values sorted so the
        // cross product (and thus the report) is permutation-invariant.
        let scales = take("scale")
            .map(|v| parse_f64_axis("scale", &v))
            .transpose()?;
        let remotes = take("remote")
            .map(|mut v| {
                v.sort();
                v.dedup();
                v.iter()
                    .map(|l| remote_mix(l).map(|m| (l.clone(), m)))
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?;
        let resellers = take("reseller")
            .map(|v| parse_f64_axis("reseller", &v))
            .transpose()?;
        let ports = take("ports")
            .map(|mut v| {
                v.sort();
                v.dedup();
                v.iter()
                    .map(|l| port_dist(l).map(|d| (l.clone(), d)))
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?;

        /// One knob-axis value: display label plus the config edit it
        /// applies.
        type KnobValue = (String, Box<dyn Fn(&mut WorldConfig)>);

        let mut knobs: Vec<KnobPoint> = vec![KnobPoint {
            label: String::new(),
            config: base.clone(),
        }];
        let extend =
            |knobs: Vec<KnobPoint>, axis: &str, values: Vec<KnobValue>| -> Vec<KnobPoint> {
                let mut out = Vec::with_capacity(knobs.len() * values.len());
                for k in &knobs {
                    for (vlabel, apply) in &values {
                        let mut config = k.config.clone();
                        apply(&mut config);
                        let label = if k.label.is_empty() {
                            format!("{axis}={vlabel}")
                        } else {
                            format!("{}|{axis}={vlabel}", k.label)
                        };
                        out.push(KnobPoint { label, config });
                    }
                }
                out
            };
        if let Some(scales) = scales {
            let values = scales
                .into_iter()
                .map(|s| {
                    let f: Box<dyn Fn(&mut WorldConfig)> = Box::new(move |c| c.scale = s);
                    (format!("{s}"), f)
                })
                .collect();
            knobs = extend(knobs, "scale", values);
        }
        if let Some(remotes) = remotes {
            let values = remotes
                .into_iter()
                .map(|(l, m)| {
                    let f: Box<dyn Fn(&mut WorldConfig)> = Box::new(move |c| c.remote_mix = m);
                    (l, f)
                })
                .collect();
            knobs = extend(knobs, "remote", values);
        }
        if let Some(resellers) = resellers {
            let values = resellers
                .into_iter()
                .map(|p| {
                    let f: Box<dyn Fn(&mut WorldConfig)> =
                        Box::new(move |c| c.p_reseller_given_remote = p);
                    (format!("{p}"), f)
                })
                .collect();
            knobs = extend(knobs, "reseller", values);
        }
        if let Some(ports) = ports {
            let values = ports
                .into_iter()
                .map(|(l, d)| {
                    let f: Box<dyn Fn(&mut WorldConfig)> = Box::new(move |c| c.port_capacity = d);
                    (l, f)
                })
                .collect();
            knobs = extend(knobs, "ports", values);
        }
        for k in knobs.iter_mut() {
            if k.label.is_empty() {
                k.label = "default".to_string();
            }
            k.config
                .validate()
                .map_err(|e| format!("knob `{}`: {e}", k.label))?;
        }
        knobs.sort_by(|a, b| a.label.cmp(&b.label));

        let mut scenarios: Vec<Scenario> = match take("scenario") {
            Some(v) => v
                .iter()
                .map(|t| parse_scenario(t))
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        scenarios.sort_by_key(|s| s.label());
        scenarios.dedup();

        let mut spec_parts = vec![
            format!("base={base_label}"),
            format!(
                "seeds={}",
                seeds
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ];
        if knobs.len() > 1 || knobs[0].label != "default" {
            spec_parts.push(format!(
                "knobs={}",
                knobs
                    .iter()
                    .map(|k| k.label.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        if !scenarios.is_empty() {
            spec_parts.push(format!(
                "scenario={}",
                scenarios
                    .iter()
                    .map(|s| s.label())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }

        Ok(SweepGrid {
            spec: spec_parts.join(";"),
            seeds,
            knobs,
            scenarios,
        })
    }

    /// Total cell count: baseline cells plus one scenario cell per
    /// (knob, seed, scenario) triple.
    pub fn n_cells(&self) -> usize {
        self.knobs.len() * self.seeds.len() * (1 + self.scenarios.len())
    }
}

/// Mean ± 95 % confidence interval over a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
#[serde(crate = "serde")]
pub struct Band {
    /// Sample count.
    pub n: usize,
    /// Sample mean (0 when empty).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when n < 2).
    pub stddev: f64,
    /// `mean − 1.96·stddev/√n`.
    pub lo: f64,
    /// `mean + 1.96·stddev/√n`.
    pub hi: f64,
}

impl Band {
    /// Computes the band in a fixed left-to-right accumulation order —
    /// callers pass samples in canonical (seed-ascending) order so the
    /// float results are bit-stable.
    pub fn from_samples(samples: &[f64]) -> Band {
        let n = samples.len();
        if n == 0 {
            return Band {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                lo: 0.0,
                hi: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let ss = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>();
            (ss / (n - 1) as f64).sqrt()
        };
        let half = 1.96 * stddev / (n as f64).sqrt();
        Band {
            n,
            mean,
            stddev,
            lo: mean - half,
            hi: mean + half,
        }
    }

    /// Width of the confidence interval (`hi − lo`).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Per-IXP remote share within one cell (studied IXPs only).
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(crate = "serde")]
pub struct IxpShare {
    /// IXP name.
    pub ixp: String,
    /// Inferences at this IXP.
    pub classified: usize,
    /// Remote fraction among them.
    pub remote_share: f64,
}

/// The paper-table statistics of one cell, scored against the cell
/// world's ground truth.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(crate = "serde")]
pub struct CellStats {
    /// Member interfaces in the observed (registry) world.
    pub interfaces: usize,
    /// Interfaces the pipeline classified.
    pub classified: usize,
    /// Interfaces no step could classify.
    pub unclassified: usize,
    /// Local verdicts.
    pub local: usize,
    /// Remote verdicts.
    pub remote: usize,
    /// Remote fraction among classified interfaces.
    pub remote_share: f64,
    /// Ground-truth remote fraction among classified interfaces.
    pub truth_remote_share: f64,
    /// Fraction of classified interfaces whose verdict matches truth.
    pub accuracy: f64,
    /// Verdicts per inference step (Fig. 10a's data).
    pub steps: StepCounts,
    /// Remote share per studied IXP (Fig. 9's data).
    pub ixp_shares: Vec<IxpShare>,
}

fn cell_stats(world: &World, observed: &ObservedWorld, result: &PipelineResult) -> CellStats {
    let classified = result.inferences.len();
    let remote = result
        .inferences
        .iter()
        .filter(|i| i.verdict == Verdict::Remote)
        .count();
    let mut truth_known = 0usize;
    let mut truth_remote = 0usize;
    let mut correct = 0usize;
    for inf in &result.inferences {
        let Some(t) = world
            .iface_by_addr(inf.addr)
            .and_then(|ifc| world.membership_of_iface(ifc))
            .map(|mid| world.memberships[mid.index()].truth.is_remote())
        else {
            continue;
        };
        truth_known += 1;
        if t {
            truth_remote += 1;
        }
        if t == (inf.verdict == Verdict::Remote) {
            correct += 1;
        }
    }
    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let ixp_shares = observed
        .ixps
        .iter()
        .enumerate()
        .filter(|(_, x)| x.studied)
        .map(|(idx, x)| {
            let cell: Vec<&opeer_core::types::Inference> =
                result.inferences.iter().filter(|i| i.ixp == idx).collect();
            let rem = cell.iter().filter(|i| i.verdict == Verdict::Remote).count();
            IxpShare {
                ixp: x.name.clone(),
                classified: cell.len(),
                remote_share: frac(rem, cell.len()),
            }
        })
        .collect();
    CellStats {
        interfaces: observed.total_interfaces(),
        classified,
        unclassified: result.unclassified.len(),
        local: classified - remote,
        remote,
        remote_share: frac(remote, classified),
        truth_remote_share: frac(truth_remote, truth_known),
        accuracy: frac(correct, truth_known),
        steps: result.counts,
        ixp_shares,
    }
}

/// One cell of the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(crate = "serde")]
pub struct CellReport {
    /// Position in the canonical cell order.
    pub index: usize,
    /// Knob label.
    pub knob: String,
    /// World seed.
    pub seed: u64,
    /// Scenario label, `None` for baseline cells.
    pub scenario: Option<String>,
    /// Cell wall-clock, milliseconds (scrubbed from `stats_bytes`).
    pub wall_ms: f64,
    /// Paper-table statistics.
    pub stats: CellStats,
    /// Shift vs the baseline cell, `None` for baseline cells.
    pub shift: Option<ScenarioShift>,
}

/// Confidence bands over the seed axis for one (knob, scenario) group.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(crate = "serde")]
pub struct BandGroup {
    /// Knob label.
    pub knob: String,
    /// Scenario label, `None` for the baseline group.
    pub scenario: Option<String>,
    /// Remote share across seeds.
    pub remote_share: Band,
    /// Truth accuracy across seeds.
    pub accuracy: Band,
    /// Classified / observed-interface coverage across seeds.
    pub coverage: Band,
    /// Scenario remote-share delta across seeds (scenario groups only).
    pub share_delta: Option<Band>,
}

/// The full fleet result: every cell, every band, the identity gate.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(crate = "serde")]
pub struct FleetReport {
    /// Report schema tag ([`FLEET_SCHEMA`]).
    pub schema: &'static str,
    /// Canonical grid spec.
    pub spec: String,
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// Knob labels swept.
    pub knobs: Vec<String>,
    /// Scenario labels swept.
    pub scenarios: Vec<String>,
    /// Outer worker threads the fleet ran on (scrubbed from
    /// `stats_bytes`; the results must not depend on it).
    pub threads: usize,
    /// Every cell in canonical order: baselines (knob ↑, seed ↑), then
    /// scenario cells (knob ↑, seed ↑, scenario ↑).
    pub cells: Vec<CellReport>,
    /// Confidence bands per (knob, scenario) group, same order.
    pub bands: Vec<BandGroup>,
    /// Identity gate: first baseline cell reproduces on a fresh re-run
    /// AND the first scenario cell's delta-path result equals a
    /// one-shot assemble + pipeline on the scenario world.
    pub identity: bool,
    /// Total fleet wall-clock, ms (scrubbed from `stats_bytes`).
    pub total_wall_ms: f64,
    /// Mean per-cell wall-clock, ms (scrubbed from `stats_bytes`).
    pub mean_cell_wall_ms: f64,
}

fn scrub_nondeterministic(v: &mut Value) {
    match v {
        Value::Object(members) => {
            members.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "wall_ms" | "total_wall_ms" | "mean_cell_wall_ms" | "threads"
                )
            });
            for (_, m) in members.iter_mut() {
                scrub_nondeterministic(m);
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                scrub_nondeterministic(item);
            }
        }
        _ => {}
    }
}

impl FleetReport {
    /// The deterministic projection of the report: serialised JSON with
    /// every wall-clock (and thread-count) key scrubbed. Byte-identical
    /// across `OPEER_THREADS` and grid-spec permutations.
    pub fn stats_bytes(&self) -> Vec<u8> {
        let mut v = serde_json::to_value(self).expect("report to value");
        scrub_nondeterministic(&mut v);
        serde_json::to_string(&v)
            .expect("report serialises")
            .into_bytes()
    }
}

/// What one baseline cell leaves behind for the scenario phase.
struct BaseCell {
    world: World,
    result: PipelineResult,
    stats: CellStats,
    wall_ms: f64,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Runs the whole grid and aggregates the [`FleetReport`].
///
/// `par.threads` is the outer fan-out over cells; each cell runs its
/// assemble + pipeline sequentially so results cannot depend on the
/// thread count.
pub fn run_sweep(grid: &SweepGrid, par: &ParallelConfig) -> Result<FleetReport, String> {
    let pipe_cfg = PipelineConfig::default();
    let inner = ParallelConfig::new(1);
    let n_seeds = grid.seeds.len();
    let n_base = grid.knobs.len() * n_seeds;
    let t_total = Instant::now();

    // Phase 1: baseline cells, one world per shard.
    let base_cells: Vec<BaseCell> = map_indexed(n_base, par.threads, |i| {
        let knob = &grid.knobs[i / n_seeds];
        let seed = grid.seeds[i % n_seeds];
        let mut cfg = knob.config.clone();
        cfg.seed = seed;
        let t = Instant::now();
        let world = cfg.generate();
        let result = {
            let input = InferenceInput::assemble(&world, seed);
            run_pipeline(&input, &pipe_cfg)
        };
        let (registry_cfg, _, _) = default_configs(seed);
        let (observed, _table1) = build_observed_world(&world, &registry_cfg);
        let stats = cell_stats(&world, &observed, &result);
        BaseCell {
            wall_ms: ms(t),
            world,
            result,
            stats,
        }
    });

    // Validate scenarios against the worlds they will perturb before
    // paying for phase 2.
    for sc in &grid.scenarios {
        sc.validate(&base_cells[0].world)?;
    }

    // Phase 2: scenario cells over the delta path.
    struct ScenCell {
        result: PipelineResult,
        stats: CellStats,
        shift: ScenarioShift,
        wall_ms: f64,
    }
    let n_scen = n_base * grid.scenarios.len();
    let scen_cells: Vec<ScenCell> = map_indexed(n_scen, par.threads, |i| {
        let base = &base_cells[i / grid.scenarios.len()];
        let sc = &grid.scenarios[i % grid.scenarios.len()];
        let seed = grid.seeds[(i / grid.scenarios.len()) % n_seeds];
        let t = Instant::now();
        let sworld = sc.apply(&base.world);
        let result = run_scenario_epoch(&base.world, &sworld, seed, &pipe_cfg, &inner);
        let (registry_cfg, _, _) = default_configs(seed);
        let (observed, _table1) = build_observed_world(&sworld, &registry_cfg);
        let stats = cell_stats(&sworld, &observed, &result);
        let shift = score_shift(&base.result, &result);
        ScenCell {
            wall_ms: ms(t),
            result,
            stats,
            shift,
        }
    });

    // Identity gate. Leg 1: the first baseline cell reproduces from
    // scratch. Leg 2: the first scenario cell's delta path equals a
    // one-shot assemble + pipeline on the scenario world.
    let identity = {
        let seed = grid.seeds[0];
        let mut cfg = grid.knobs[0].config.clone();
        cfg.seed = seed;
        let world = cfg.generate();
        let fresh = run_pipeline(&InferenceInput::assemble(&world, seed), &pipe_cfg);
        let baseline_ok = fresh == base_cells[0].result;
        let scenario_ok = grid.scenarios.first().is_none_or(|sc| {
            let sworld = sc.apply(&base_cells[0].world);
            let one_shot = run_pipeline(&InferenceInput::assemble(&sworld, seed), &pipe_cfg);
            one_shot == scen_cells[0].result
        });
        baseline_ok && scenario_ok
    };

    // Canonical cell order: baselines first, then scenario cells.
    let mut cells = Vec::with_capacity(n_base + n_scen);
    for (i, c) in base_cells.iter().enumerate() {
        cells.push(CellReport {
            index: cells.len(),
            knob: grid.knobs[i / n_seeds].label.clone(),
            seed: grid.seeds[i % n_seeds],
            scenario: None,
            wall_ms: c.wall_ms,
            stats: c.stats.clone(),
            shift: None,
        });
    }
    for (i, c) in scen_cells.iter().enumerate() {
        let b = i / grid.scenarios.len();
        cells.push(CellReport {
            index: cells.len(),
            knob: grid.knobs[b / n_seeds].label.clone(),
            seed: grid.seeds[b % n_seeds],
            scenario: Some(grid.scenarios[i % grid.scenarios.len()].label()),
            wall_ms: c.wall_ms,
            stats: c.stats.clone(),
            shift: Some(c.shift),
        });
    }

    // Bands: per knob, the baseline group then one group per scenario,
    // samples in seed-ascending order.
    let mut bands = Vec::new();
    for (k, knob) in grid.knobs.iter().enumerate() {
        let base_of = |s: usize| &base_cells[k * n_seeds + s];
        bands.push(BandGroup {
            knob: knob.label.clone(),
            scenario: None,
            remote_share: Band::from_samples(
                &(0..n_seeds)
                    .map(|s| base_of(s).stats.remote_share)
                    .collect::<Vec<_>>(),
            ),
            accuracy: Band::from_samples(
                &(0..n_seeds)
                    .map(|s| base_of(s).stats.accuracy)
                    .collect::<Vec<_>>(),
            ),
            coverage: Band::from_samples(
                &(0..n_seeds)
                    .map(|s| {
                        let st = &base_of(s).stats;
                        if st.interfaces == 0 {
                            0.0
                        } else {
                            st.classified as f64 / st.interfaces as f64
                        }
                    })
                    .collect::<Vec<_>>(),
            ),
            share_delta: None,
        });
        for (c, sc) in grid.scenarios.iter().enumerate() {
            let cell_of = |s: usize| &scen_cells[(k * n_seeds + s) * grid.scenarios.len() + c];
            bands.push(BandGroup {
                knob: knob.label.clone(),
                scenario: Some(sc.label()),
                remote_share: Band::from_samples(
                    &(0..n_seeds)
                        .map(|s| cell_of(s).stats.remote_share)
                        .collect::<Vec<_>>(),
                ),
                accuracy: Band::from_samples(
                    &(0..n_seeds)
                        .map(|s| cell_of(s).stats.accuracy)
                        .collect::<Vec<_>>(),
                ),
                coverage: Band::from_samples(
                    &(0..n_seeds)
                        .map(|s| {
                            let st = &cell_of(s).stats;
                            if st.interfaces == 0 {
                                0.0
                            } else {
                                st.classified as f64 / st.interfaces as f64
                            }
                        })
                        .collect::<Vec<_>>(),
                ),
                share_delta: Some(Band::from_samples(
                    &(0..n_seeds)
                        .map(|s| cell_of(s).shift.remote_share_delta)
                        .collect::<Vec<_>>(),
                )),
            });
        }
    }

    let total_wall_ms = ms(t_total);
    let mean_cell_wall_ms = if cells.is_empty() {
        0.0
    } else {
        cells.iter().map(|c| c.wall_ms).sum::<f64>() / cells.len() as f64
    };
    Ok(FleetReport {
        schema: FLEET_SCHEMA,
        spec: grid.spec.clone(),
        seeds: grid.seeds.clone(),
        knobs: grid.knobs.iter().map(|k| k.label.clone()).collect(),
        scenarios: grid.scenarios.iter().map(|s| s.label()).collect(),
        threads: par.threads,
        cells,
        bands,
        identity,
        total_wall_ms,
        mean_cell_wall_ms,
    })
}

/// The BENCH-file wrapper: schema v9's `sweep` section.
#[derive(Debug, Clone, Serialize)]
#[serde(crate = "serde")]
pub struct SweepBenchReport {
    /// BENCH schema tag (shared with `BENCH_pipeline.json`).
    pub schema: &'static str,
    /// The fleet result.
    pub sweep: FleetReport,
}

impl SweepBenchReport {
    /// Wraps a fleet report under the v9 BENCH schema.
    pub fn new(sweep: FleetReport) -> Self {
        SweepBenchReport {
            schema: crate::scaling::BENCH_SCHEMA,
            sweep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_parse_normalises_and_crosses() {
        let g = SweepGrid::parse("seeds=7,3,7;reseller=0.62,0.3;ports=lean,rich").unwrap();
        assert_eq!(g.seeds, vec![3, 7]);
        assert_eq!(g.knobs.len(), 4);
        let labels: Vec<&str> = g.knobs.iter().map(|k| k.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "reseller=0.3|ports=lean",
                "reseller=0.3|ports=rich",
                "reseller=0.62|ports=lean",
                "reseller=0.62|ports=rich",
            ]
        );
        assert_eq!(g.n_cells(), 8);
        // Permuted spec → identical grid.
        let h = SweepGrid::parse("ports=rich,lean;seeds=3,7,3;reseller=0.3,0.62").unwrap();
        assert_eq!(g.spec, h.spec);
        assert_eq!(g.seeds, h.seeds);
    }

    #[test]
    fn grid_parse_rejects_bad_specs() {
        for bad in [
            "bogus=1",
            "seeds=1;seeds=2",
            "base=tiny;base=small",
            "seeds=x",
            "scale=NaN",
            "remote=weird",
            "ports=gold",
            "scenario=ixp-outage:NOPE",
            "scenario=capacity-scaling:0",
            "scenario=port-migration:AMS-IX:many",
            "base=tiny,small",
            "seeds=",
            "base",
        ] {
            assert!(SweepGrid::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn grid_parse_scenarios_sorted_and_deduped() {
        let g = SweepGrid::parse(
            "scenario=reseller-consolidation,capacity-scaling:500,reseller-consolidation",
        )
        .unwrap();
        assert_eq!(
            g.scenarios,
            vec![
                Scenario::CapacityScaling {
                    factor_permille: 500
                },
                Scenario::ResellerConsolidation,
            ]
        );
        assert_eq!(g.knobs.len(), 1);
        assert_eq!(g.knobs[0].label, "default");
    }

    #[test]
    fn band_math_basics() {
        let b = Band::from_samples(&[]);
        assert_eq!((b.n, b.mean, b.stddev), (0, 0.0, 0.0));
        let b = Band::from_samples(&[0.5]);
        assert_eq!((b.n, b.mean, b.stddev, b.lo, b.hi), (1, 0.5, 0.0, 0.5, 0.5));
        let b = Band::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(b.mean, 2.0);
        assert_eq!(b.stddev, 1.0);
        assert!(b.lo < 2.0 && b.hi > 2.0);
        assert!((b.width() - 2.0 * 1.96 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_bytes_scrubs_wall_clock_keys() {
        let report = FleetReport {
            schema: FLEET_SCHEMA,
            spec: "base=tiny;seeds=1".into(),
            seeds: vec![1],
            knobs: vec!["default".into()],
            scenarios: vec![],
            threads: 8,
            cells: vec![],
            bands: vec![],
            identity: true,
            total_wall_ms: 123.456,
            mean_cell_wall_ms: 7.89,
        };
        let s = String::from_utf8(report.stats_bytes()).unwrap();
        assert!(!s.contains("wall_ms") && !s.contains("threads"), "{s}");
        assert!(s.contains("\"identity\":true"));
    }
}
