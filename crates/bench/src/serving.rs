//! The serving-throughput study: queries/sec against a live
//! [`PeeringService`] under N reader threads racing a streaming writer.
//!
//! The write side replays the world's measurements in epoch batches
//! (the same emitters as the streaming study) while reader threads
//! hammer the published snapshot with batched point/report/explain
//! queries. Each reader records how many queries it answered and the
//! epoch range it observed; the study audits that every reader saw
//! **monotonically non-decreasing** epochs and that the final snapshot
//! equals the one-shot pipeline over the fully accumulated input.
//!
//! This is the schema-v4 `serving` section of `BENCH_pipeline.json`.
//! Throughput numbers are host-dependent (they are a CI artifact, not a
//! determinism gate); the `identical`, `epochs_monotonic`, and
//! `tags_consistent` flags are gates and feed
//! `run_experiments --bench-pipeline`'s exit code.

use opeer_core::engine::ParallelConfig;
use opeer_core::incremental::InputDelta;
use opeer_core::input::default_configs;
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::service::{PeeringService, QueryRequest, QueryResponse};
use opeer_core::InferenceInput;
use opeer_measure::campaign::campaign_batches;
use opeer_measure::traceroute::corpus_batches;
use opeer_topology::World;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Reader-thread counts the serving study sweeps by default.
pub const DEFAULT_READER_SWEEP: &[usize] = &[1, 2, 4];

/// How many requests each reader packs into one batched `query` call.
const BATCH_SIZE: usize = 64;

/// One reader-count's measurements.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServingPoint {
    /// Concurrent reader threads.
    pub readers: usize,
    /// Total queries answered across all readers (batch items, not
    /// batch calls).
    pub queries: u64,
    /// Wall-clock of the run, ms (readers start with the writer and
    /// stop when the replay ends).
    pub wall_ms: f64,
    /// Queries per second across all readers.
    pub qps: f64,
    /// Epochs the writer published during the run.
    pub epochs_published: u64,
    /// Lowest epoch tag any reader observed.
    pub min_epoch_seen: u64,
    /// Highest epoch tag any reader observed.
    pub max_epoch_seen: u64,
    /// Whether every reader observed non-decreasing epoch tags.
    pub epochs_monotonic: bool,
    /// Whether every answer carried the epoch of the snapshot that
    /// produced it (the tag audit, distinct from ordering).
    pub tags_consistent: bool,
}

/// The serving study, serialised into `BENCH_pipeline.json`'s
/// `serving` section (schema v4).
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// Epoch batches the writer replays per point.
    pub epochs: usize,
    /// One point per swept reader count.
    pub points: Vec<ServingPoint>,
    /// Whether every point's readers saw monotonic epochs.
    pub epochs_monotonic: bool,
    /// Whether every point's answers were tagged with their own
    /// snapshot's epoch.
    pub tags_consistent: bool,
    /// Whether the final snapshot (after the last point's replay)
    /// matched the one-shot pipeline over the fully accumulated input
    /// byte for byte.
    pub identical: bool,
}

/// What one reader thread saw while racing the writer.
struct ReaderTally {
    queries: u64,
    min_epoch: u64,
    max_epoch: u64,
    monotonic: bool,
    tags_consistent: bool,
}

/// Runs one reader loop until `done` flips: grabs the current snapshot,
/// answers one batch of mixed queries from it, and checks the epoch tag
/// never goes backwards.
fn reader_loop(service: &PeeringService<'_>, done: &AtomicBool, salt: usize) -> ReaderTally {
    let mut tally = ReaderTally {
        queries: 0,
        min_epoch: u64::MAX,
        max_epoch: 0,
        monotonic: true,
        tags_consistent: true,
    };
    let mut last_epoch = 0u64;
    let mut cursor = salt;
    loop {
        // Sample the stop flag *before* grabbing the snapshot: when the
        // writer raises it (after its final publish, Release), the
        // snapshot read below (Acquire) is guaranteed to observe the
        // final epoch, so the exit iteration still counts it.
        let stop_after_this = done.load(Ordering::Acquire);
        let snapshot = service.snapshot();
        let epoch = snapshot.epoch();
        if epoch < last_epoch {
            tally.monotonic = false;
        }
        last_epoch = epoch;
        tally.min_epoch = tally.min_epoch.min(epoch);
        tally.max_epoch = tally.max_epoch.max(epoch);

        // A mixed batch over real keys of this snapshot: point verdicts
        // and explains over the inference set, rollups over the IXPs.
        let result = snapshot.result();
        let n_inf = result.inferences.len();
        let n_ixp = snapshot.ixp_count();
        let mut batch = Vec::with_capacity(BATCH_SIZE);
        for k in 0..BATCH_SIZE {
            let pick = cursor.wrapping_add(k.wrapping_mul(7919));
            match k % 4 {
                0 | 1 if n_inf > 0 => {
                    let inf = &result.inferences[pick % n_inf];
                    batch.push(QueryRequest::Verdict {
                        ixp: inf.ixp,
                        iface: inf.addr,
                    });
                }
                2 if n_inf > 0 => {
                    let inf = &result.inferences[pick % n_inf];
                    batch.push(QueryRequest::Explain { iface: inf.addr });
                }
                _ if n_ixp > 0 => batch.push(QueryRequest::IxpReport { ixp: pick % n_ixp }),
                _ => {}
            }
        }
        cursor = cursor.wrapping_add(BATCH_SIZE);
        if !batch.is_empty() {
            let responses = snapshot.query(&batch).expect("valid batch shape");
            // Answers must come from the snapshot they were asked of.
            if responses.iter().any(|r| match r {
                QueryResponse::Verdict(a) => a.epoch != epoch,
                QueryResponse::Explain(e) => e.epoch != epoch,
                QueryResponse::Ixp(i) => i.epoch != epoch,
                QueryResponse::Asn(a) => a.epoch != epoch,
                QueryResponse::Error(_) => false,
            }) {
                tally.tags_consistent = false;
            }
            tally.queries += responses.len() as u64;
        }
        if stop_after_this {
            return tally;
        }
    }
}

/// Runs the serving study: for each reader count, a fresh service over
/// the measurement-free base, a writer replaying `epochs` batches, and
/// N readers querying throughout. Ends with the byte-identity audit of
/// the final state against the one-shot pipeline.
pub fn run_serving_study(
    world: &World,
    seed: u64,
    epochs: usize,
    reader_sweep: &[usize],
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> ServingReport {
    let epochs = epochs.max(1);
    let (_registry, campaign_cfg, corpus_cfg) = default_configs(seed);
    // The one-shot reference is shared by every point's audit.
    let full = InferenceInput::assemble(world, seed);
    let one_shot = run_pipeline(&full, cfg);

    let mut points = Vec::with_capacity(reader_sweep.len());
    let mut identical = true;
    for &readers in reader_sweep {
        let service = PeeringService::build(InferenceInput::assemble_base(world, seed), cfg, par);
        // Batch generation stays outside the timed window: the study
        // measures the serving plane, not measurement emission.
        let camp = campaign_batches(world, &service.input().vps, campaign_cfg, epochs);
        let corp = corpus_batches(world, corpus_cfg, epochs);
        let deltas = InputDelta::zip_batches(camp, corp);
        let epochs_published = deltas.len() as u64;

        let done = AtomicBool::new(false);
        let t0 = Instant::now();
        let tallies = std::thread::scope(|scope| {
            let service = &service;
            let done = &done;
            let handles: Vec<_> = (0..readers.max(1))
                .map(|r| scope.spawn(move || reader_loop(service, done, r * 104729)))
                .collect();
            for delta in deltas {
                service.apply(delta);
            }
            done.store(true, Ordering::Release);
            handles
                .into_iter()
                .map(|h| h.join().expect("reader panicked"))
                .collect::<Vec<_>>()
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let queries: u64 = tallies.iter().map(|t| t.queries).sum();
        let point = ServingPoint {
            readers: readers.max(1),
            queries,
            wall_ms,
            qps: queries as f64 / (wall_ms / 1e3).max(f64::EPSILON),
            epochs_published,
            min_epoch_seen: tallies.iter().map(|t| t.min_epoch).min().unwrap_or(0),
            max_epoch_seen: tallies.iter().map(|t| t.max_epoch).max().unwrap_or(0),
            epochs_monotonic: tallies.iter().all(|t| t.monotonic),
            tags_consistent: tallies.iter().all(|t| t.tags_consistent),
        };
        points.push(point);

        // Audit the final state of this point's service.
        identical &= service.input().content_eq(&full);
        identical &= *service.snapshot().result() == one_shot;
    }

    ServingReport {
        epochs,
        epochs_monotonic: points.iter().all(|p| p.epochs_monotonic),
        tags_consistent: points.iter().all(|p| p.tags_consistent),
        identical,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn serving_study_is_identical_and_monotonic() {
        let world = WorldConfig::small(7).generate();
        let report = run_serving_study(
            &world,
            7,
            3,
            &[1, 2],
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        assert!(report.identical, "serving replay diverged from one-shot");
        assert!(report.epochs_monotonic, "a reader saw epochs go backwards");
        assert!(
            report.tags_consistent,
            "an answer carried a foreign epoch tag"
        );
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.queries > 0, "{} readers answered nothing", p.readers);
            assert!(p.qps > 0.0);
            assert_eq!(p.max_epoch_seen, p.epochs_published);
        }
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"points\":"));
        assert!(json.contains("\"epochs_monotonic\":true"));
    }
}
