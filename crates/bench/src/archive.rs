//! The longitudinal archive study: replay N monthly world revisions
//! ([`opeer_core::evolution::monthly_deltas`]) through a
//! [`SnapshotArchive`] over a live [`PeeringService`] and record what
//! the history cost — per-month wall-clock and dirty-shard counts,
//! archive time-travel query throughput, and the retained-bytes
//! estimate of keeping every epoch alive.
//!
//! This is the `archive` section of `BENCH_pipeline.json` (schema v7)
//! and the engine behind `run_experiments --archive-months N`. Like
//! every other section it carries its own byte-identity gate: the final
//! archived state must equal a one-shot [`run_pipeline`] over the
//! accumulated input, or the binary exits non-zero.

use opeer_core::archive::SnapshotArchive;
use opeer_core::engine::ParallelConfig;
use opeer_core::evolution::monthly_deltas;
use opeer_core::incremental::DirtyCounts;
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::service::PeeringService;
use opeer_core::InferenceInput;
use opeer_topology::World;
use serde::Serialize;
use std::net::Ipv4Addr;
use std::time::Instant;

/// Months the archive section of the scaling study replays by default.
pub const DEFAULT_ARCHIVE_MONTHS: u32 = 6;

/// Time-travel queries issued by the throughput leg.
const QUERY_COUNT: usize = 5_000;

/// What one month's replay cost.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MonthCost {
    /// The month replayed (0-based observation month).
    pub month: u32,
    /// The epoch the month published into the archive.
    pub epoch: u64,
    /// Whether the month carried a registry revision (membership or
    /// fusion change ⇒ full recompute).
    pub registry_revision: bool,
    /// New campaign observations delivered this month.
    pub campaign_observations: usize,
    /// New corpus traceroutes delivered this month.
    pub corpus_traces: usize,
    /// Wall-clock of the archive `apply`, ms (delta generation happens
    /// outside the clock).
    pub wall_ms: f64,
    /// Shard units the apply recomputed, per step axis.
    pub dirty: DirtyCounts,
}

/// The archive study, serialised into `BENCH_pipeline.json`'s
/// `archive` section (schema v7).
#[derive(Debug, Clone, Serialize)]
pub struct ArchiveReport {
    /// Months replayed (epochs published on top of the base epoch).
    pub months: u32,
    /// Wall-clock of the epoch-0 base build, ms.
    pub base_ms: f64,
    /// Total wall-clock of all monthly applies, ms.
    pub replay_ms: f64,
    /// Per-month replay costs, in month order.
    pub per_month: Vec<MonthCost>,
    /// Epochs held by the archive after the replay (months + base).
    pub epochs_archived: usize,
    /// Time-travel queries issued by the throughput leg.
    pub queries: usize,
    /// Archive point-query throughput: `verdict_at` calls/sec,
    /// round-robin over every archived epoch.
    pub query_qps: f64,
    /// [`SnapshotArchive::retained_bytes`] after the replay (deep
    /// size, shared partitions counted once).
    pub retained_bytes: usize,
    /// Whether the final archived state was byte-identical to a
    /// one-shot [`run_pipeline`] over the accumulated input, the
    /// archive indexed every epoch exactly once, and the epoch sequence
    /// is strictly monotonic. The gate `run_experiments
    /// --archive-months` enforces with its exit code.
    pub identical: bool,
}

/// Replays `months` monthly world revisions through an archive-backed
/// service and audits the final state against the one-shot path.
pub fn run_archive_study(
    world: &World,
    seed: u64,
    months: u32,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> ArchiveReport {
    let months = months.max(1);

    let t0 = Instant::now();
    let service = PeeringService::build(InferenceInput::assemble_base(world, seed), cfg, par);
    let archive = SnapshotArchive::attach(&service);
    let base_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Delta emission (world evolution + monthly measurement campaigns)
    // happens outside the timed windows: the study measures archive
    // ingestion, not measurement generation.
    let deltas = monthly_deltas(world, seed, 0..=months - 1);

    let mut per_month = Vec::with_capacity(deltas.len());
    let mut replay_ms = 0.0;
    for (m, delta) in deltas.into_iter().enumerate() {
        let registry_revision = delta.registry.is_some();
        let campaign_observations = delta.campaign.as_ref().map_or(0, |c| c.observations.len());
        let corpus_traces = delta.corpus.len();
        let t = Instant::now();
        let epoch = archive.apply(delta);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        replay_ms += wall_ms;
        per_month.push(MonthCost {
            month: m as u32,
            epoch,
            registry_revision,
            campaign_observations,
            corpus_traces,
            wall_ms,
            dirty: service.last_dirty(),
        });
    }

    // The identity gate: the final archived snapshot must equal a
    // one-shot pipeline over the accumulated input, the archive must
    // hold base + one epoch per month, and epochs must be strictly
    // ascending.
    let one_shot = {
        let input = service.input();
        run_pipeline(&input, cfg)
    };
    let latest = archive.latest();
    let epochs_archived = archive.len();
    let log = archive.dirty_log();
    let identical = *latest.result() == one_shot
        && epochs_archived == per_month.len() + 1
        && log.windows(2).all(|w| w[0].epoch < w[1].epoch);

    // Throughput: point time-travel queries round-robin across every
    // archived epoch and a fixed working set of interfaces.
    let targets: Vec<(usize, Ipv4Addr)> = latest
        .result()
        .inferences
        .iter()
        .take(64)
        .map(|i| (i.ixp, i.addr))
        .collect();
    let (queries, query_qps) = if targets.is_empty() {
        (0, 0.0)
    } else {
        let mut hits = 0usize;
        let t = Instant::now();
        for q in 0..QUERY_COUNT {
            let (ixp, addr) = targets[q % targets.len()];
            let epoch = (q % epochs_archived) as u64;
            if archive.verdict_at(ixp, addr, epoch).is_ok() {
                hits += 1;
            }
        }
        let secs = t.elapsed().as_secs_f64();
        assert!(hits > 0, "no archive query resolved");
        (QUERY_COUNT, QUERY_COUNT as f64 / secs.max(f64::EPSILON))
    };

    ArchiveReport {
        months,
        base_ms,
        replay_ms,
        per_month,
        epochs_archived,
        queries,
        query_qps,
        retained_bytes: archive.retained_bytes(),
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn archive_replay_is_identical_and_accounted() {
        let world = WorldConfig::small(7).generate();
        let report = run_archive_study(
            &world,
            7,
            3,
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        assert!(report.identical, "archive replay diverged");
        assert_eq!(report.months, 3);
        assert_eq!(report.per_month.len(), 3);
        assert_eq!(report.epochs_archived, 4);
        assert!(
            report.per_month[0].registry_revision,
            "month 0 must establish the registry"
        );
        assert!(report.per_month.iter().all(|m| m.dirty.total() > 0));
        assert!(report.query_qps > 0.0);
        assert!(report.retained_bytes > 0);
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"per_month\":"));
        assert!(json.contains("\"identical\":true"));
    }
}
