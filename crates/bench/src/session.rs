//! A measurement/inference session shared by all experiments.
//!
//! Building the observable inputs (registry fusion, ping campaigns,
//! traceroute corpus) and running the pipeline dominate runtime, so the
//! experiments share one [`Session`] instead of rebuilding per figure.
//!
//! Since the serving-layer redesign the session *is* a
//! [`PeeringService`]: the assembled input moves into the service's
//! write side, the pipeline runs once on the engine's worker pool, and
//! every experiment reads through the published epoch-0 [`Snapshot`]
//! ([`Session::result`], [`Session::snapshot`]) or the write-side input
//! guard ([`Session::input`]).

use opeer_core::baseline::{run_baseline, DEFAULT_THRESHOLD_MS};
use opeer_core::engine::{assemble_and_run_parallel, ParallelConfig};
use opeer_core::pipeline::{PipelineConfig, PipelineResult};
use opeer_core::service::{InputGuard, PeeringService, Snapshot};
use opeer_core::types::Inference;
use opeer_measure::campaign::{run_control_campaign, CampaignConfig, CampaignResult};
use opeer_topology::World;
use std::sync::Arc;

/// Everything the experiments read.
pub struct Session<'w> {
    /// The ground-truth world (experiments may consult it for
    /// truth-vs-inference comparisons; the pipeline itself never did).
    pub world: &'w World,
    /// Master seed.
    pub seed: u64,
    /// The query service over the assembled inputs.
    service: PeeringService<'w>,
    /// The snapshot published at session build (epoch 0).
    snapshot: Arc<Snapshot>,
    /// The §4.1 control-subset campaign (operator-internal pings).
    pub control: CampaignResult,
    /// The Castro et al. baseline output.
    pub baseline: Vec<Inference>,
}

impl<'w> Session<'w> {
    /// Builds the session: assembles the inputs on the engine's worker
    /// pool via the overlapped path (`OPEER_THREADS` sizes it; corpus
    /// tracing — the dominant assembly cost — runs under inference
    /// steps 1–3), runs the baseline over them, then moves them into a
    /// [`PeeringService`] whose construction re-runs the five-step
    /// pipeline once as a warm incremental start. That re-run is ~1 %
    /// of assembly at scale and is byte-identical to the overlapped
    /// result (and to the sequential one-shot), so every experiment
    /// sees the exact artifacts a sequential session would — the
    /// debug assertion below cross-checks it on every test build.
    pub fn new(world: &'w World, seed: u64) -> Self {
        let par = ParallelConfig::from_env();
        let cfg = PipelineConfig::default();
        let (input, overlapped) = assemble_and_run_parallel(world, seed, &cfg, &par);
        let baseline = run_baseline(&input, DEFAULT_THRESHOLD_MS);
        let control = run_control_campaign(world, CampaignConfig::control(seed));
        let service = PeeringService::build(input, &cfg, &par);
        let snapshot = service.snapshot();
        debug_assert_eq!(
            *snapshot.result(),
            overlapped,
            "warm service start diverged from the overlapped pipeline"
        );
        Session {
            world,
            seed,
            service,
            snapshot,
            control,
            baseline,
        }
    }

    /// The query service the session reads through. Live: experiments
    /// (or tests) may `apply` further deltas, but [`Session::snapshot`]
    /// stays pinned to the build-time epoch so the figures are
    /// internally consistent.
    pub fn service(&self) -> &PeeringService<'w> {
        &self.service
    }

    /// The snapshot every experiment reads (epoch 0 of the session).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The pipeline output behind the session snapshot.
    pub fn result(&self) -> &PipelineResult {
        self.snapshot.result()
    }

    /// The assembled observable inputs, read through the service's
    /// write side. Holds the writer lock until dropped.
    pub fn input(&self) -> InputGuard<'_, 'w> {
        self.service.input()
    }

    /// Ground-truth remoteness of a peering-LAN interface (experiments
    /// only — used to label control-set figures the way operator lists
    /// labelled the paper's).
    pub fn truth_remote(&self, addr: std::net::Ipv4Addr) -> Option<bool> {
        let ifc = self.world.iface_by_addr(addr)?;
        let mid = self.world.membership_of_iface(ifc)?;
        Some(self.world.memberships[mid.index()].truth.is_remote())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_core::pipeline::run_pipeline;
    use opeer_core::InferenceInput;
    use opeer_topology::WorldConfig;

    #[test]
    fn session_builds_once_and_is_complete() {
        let w = WorldConfig::small(131).generate();
        let s = Session::new(&w, 3);
        assert!(!s.result().inferences.is_empty());
        assert!(!s.baseline.is_empty());
        assert!(!s.control.observations.is_empty());
        let addr = s.result().inferences[0].addr;
        assert!(s.truth_remote(addr).is_some());
        assert_eq!(s.snapshot().epoch(), 0);
    }

    #[test]
    fn session_reads_equal_the_one_shot_pipeline() {
        // The service migration must not change what experiments see:
        // the snapshot result is byte-identical to a sequential
        // one-shot over the same assembly.
        let w = WorldConfig::small(131).generate();
        let s = Session::new(&w, 3);
        let reference = {
            let input = s.input();
            assert!(input.content_eq(&InferenceInput::assemble(&w, 3)));
            run_pipeline(&input, &PipelineConfig::default())
        };
        assert_eq!(*s.result(), reference);
    }
}
