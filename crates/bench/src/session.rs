//! A measurement/inference session shared by all experiments.
//!
//! Building the observable inputs (registry fusion, ping campaigns,
//! traceroute corpus) and running the pipeline dominate runtime, so the
//! experiments share one [`Session`] instead of rebuilding per figure.

use opeer_core::baseline::{run_baseline, DEFAULT_THRESHOLD_MS};
use opeer_core::engine::{assemble_and_run_parallel, ParallelConfig};
use opeer_core::pipeline::{PipelineConfig, PipelineResult};
use opeer_core::types::Inference;
use opeer_core::InferenceInput;
use opeer_measure::campaign::{run_control_campaign, CampaignConfig, CampaignResult};
use opeer_topology::World;

/// Everything the experiments read.
pub struct Session<'w> {
    /// The ground-truth world (experiments may consult it for
    /// truth-vs-inference comparisons; the pipeline itself never did).
    pub world: &'w World,
    /// Master seed.
    pub seed: u64,
    /// The observable inputs.
    pub input: InferenceInput<'w>,
    /// The §4.1 control-subset campaign (operator-internal pings).
    pub control: CampaignResult,
    /// The pipeline output.
    pub result: PipelineResult,
    /// The Castro et al. baseline output.
    pub baseline: Vec<Inference>,
}

impl<'w> Session<'w> {
    /// Builds the session: assembles inputs and runs the pipeline on the
    /// engine's worker pool (`OPEER_THREADS` sizes it; the overlapped
    /// path is byte-identical to the sequential one, so every experiment
    /// sees the exact artifacts a sequential session would), then the
    /// control campaign and the baseline.
    pub fn new(world: &'w World, seed: u64) -> Self {
        let (input, result) = assemble_and_run_parallel(
            world,
            seed,
            &PipelineConfig::default(),
            &ParallelConfig::from_env(),
        );
        let control = run_control_campaign(world, CampaignConfig::control(seed));
        let baseline = run_baseline(&input, DEFAULT_THRESHOLD_MS);
        Session {
            world,
            seed,
            input,
            control,
            result,
            baseline,
        }
    }

    /// Ground-truth remoteness of a peering-LAN interface (experiments
    /// only — used to label control-set figures the way operator lists
    /// labelled the paper's).
    pub fn truth_remote(&self, addr: std::net::Ipv4Addr) -> Option<bool> {
        let ifc = self.world.iface_by_addr(addr)?;
        let mid = self.world.membership_of_iface(ifc)?;
        Some(self.world.memberships[mid.index()].truth.is_remote())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn session_builds_once_and_is_complete() {
        let w = WorldConfig::small(131).generate();
        let s = Session::new(&w, 3);
        assert!(!s.result.inferences.is_empty());
        assert!(!s.baseline.is_empty());
        assert!(!s.control.observations.is_empty());
        let addr = s.result.inferences[0].addr;
        assert!(s.truth_remote(addr).is_some());
    }
}
