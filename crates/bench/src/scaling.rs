//! The engine scaling study: sequential vs the sharded parallel engine
//! at several thread counts — for the inference pipeline, for
//! measurement assembly, and for the overlapped end-to-end path — plus
//! the streaming epoch replay, the serving-throughput sweep, the
//! wire-level gateway load study, the longitudinal archive replay, and
//! the structural-sharing memory study, with byte-identity checks and
//! a machine-readable report (`BENCH_pipeline.json`, schema
//! `opeer-bench-pipeline/9`).
//!
//! Used by the `pipeline_scaling` / `assembly_scaling` criterion
//! benches and by `run_experiments --bench-pipeline` (which is what
//! CI's bench-smoke job runs and archives). The README documents the
//! report schema field by field.

use crate::archive::{run_archive_study, ArchiveReport};
use crate::gateway::{run_gateway_study, GatewayReport, DEFAULT_CONNECTION_SWEEP};
use crate::memory::{run_memory_study, MemoryReport, DEFAULT_MEMORY_EPOCHS, DEFAULT_MEMORY_RETAIN};
use crate::serving::{run_serving_study, ServingReport, DEFAULT_READER_SWEEP};
use crate::streaming::{run_streaming_session, StreamingReport};
use opeer_core::engine::{assemble_and_run_parallel, run_pipeline_parallel, ParallelConfig};
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::InferenceInput;
use opeer_topology::World;
use serde::Serialize;
use std::time::Instant;

/// Thread counts the study sweeps by default.
pub const DEFAULT_THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Wall-clock statistics over the timed samples, milliseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TimingMs {
    /// Fastest sample.
    pub min: f64,
    /// Mean of all samples.
    pub mean: f64,
    /// Slowest sample.
    pub max: f64,
}

impl TimingMs {
    fn from_samples(samples: &[f64]) -> TimingMs {
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        TimingMs { min, mean, max }
    }
}

/// One thread count's measurements for one studied phase.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock stats of the parallel run.
    pub timing_ms: TimingMs,
    /// `min(sequential) / min(parallel)` — the conventional best-vs-best
    /// scaling ratio.
    pub speedup: f64,
    /// Whether the parallel result was byte-identical to sequential.
    pub identical: bool,
}

/// One studied phase: its sequential reference and the thread sweep.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseScaling {
    /// Sequential reference stats.
    pub sequential_ms: TimingMs,
    /// One point per swept thread count.
    pub points: Vec<ThreadPoint>,
    /// Whether every parallel run of this phase matched sequential.
    pub all_identical: bool,
}

impl PhaseScaling {
    /// Speedup at a given thread count, if it was swept.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.speedup)
    }
}

/// BENCH schema tag shared by every report this crate writes
/// (`BENCH_pipeline.json`, `BENCH_sweep.json`). v9 added the optional
/// `sweep` section ([`crate::fleet::SweepBenchReport`]).
pub const BENCH_SCHEMA: &str = "opeer-bench-pipeline/9";

/// The full study report, serialised as `BENCH_pipeline.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// Report schema tag, bumped on layout changes.
    pub schema: &'static str,
    /// World scale label (`small` / `large` / `paper`).
    pub world: String,
    /// Seed the world and input were built from.
    pub seed: u64,
    /// Observed IXPs in the assembled input.
    pub ixps: usize,
    /// Member interfaces across them.
    pub interfaces: usize,
    /// Inferences the pipeline produced.
    pub inferences: usize,
    /// Timed samples per configuration.
    pub samples: usize,
    /// The machine's available parallelism when the study ran.
    pub host_parallelism: usize,
    /// Best pipeline-phase speedup across the thread sweep — the number
    /// CI's perf gate floors (new in schema 6).
    pub best_pipeline_speedup: f64,
    /// Measurement assembly: `InferenceInput::assemble` vs
    /// `assemble_parallel` (registry fusion + campaign + corpus +
    /// `prefix2as` sharded over the pool).
    pub assembly: PhaseScaling,
    /// The five-step inference: `run_pipeline` vs
    /// `run_pipeline_parallel`.
    pub pipeline: PhaseScaling,
    /// End to end: sequential `assemble` + `run_pipeline` vs the
    /// overlapped `assemble_and_run_parallel` (corpus tracing runs
    /// under steps 1–3).
    pub end_to_end: PhaseScaling,
    /// Streaming epoch replay through the incremental pipeline:
    /// per-epoch wall-clock and dirty-shard counts, plus the cost of the
    /// full re-run the last epoch's delta replaces.
    pub streaming: StreamingReport,
    /// Serving throughput: queries/sec against the `PeeringService`
    /// under N reader threads racing the streaming writer, with epoch
    /// monotonicity and final byte-identity audits.
    pub serving: ServingReport,
    /// The wire-level gateway load study: real HTTP clients over
    /// loopback sockets against the gateway fronting a live service,
    /// with expected-status, epoch-monotonic, error-taxonomy, and
    /// zero-panic audits.
    pub gateway: GatewayReport,
    /// The longitudinal archive replay: monthly world revisions
    /// streamed through a `SnapshotArchive`, with per-month dirty
    /// accounting, time-travel query throughput, the retained-bytes
    /// estimate, and its own byte-identity gate (new in schema 7).
    pub archive: ArchiveReport,
    /// The structural-sharing memory study: an epoch stream through a
    /// retention-capped archive, per-epoch publish dirty sets and
    /// deduplicated retained bytes, the zero-dirty vs full publish
    /// cost comparison, and a byte-identity audit against a non-shared
    /// snapshot baseline (new in schema 8).
    pub memory: MemoryReport,
    /// Whether every parallel run in every phase — and the final states
    /// of the streaming replay, the serving sweep, and the archive
    /// replay — matched their sequential references byte for byte, plus
    /// the serving epoch monotonicity audit and the gateway study's
    /// `ok` gate: the gate `run_experiments --bench-pipeline` enforces
    /// with its exit code.
    pub all_identical: bool,
}

impl ScalingReport {
    /// Pipeline speedup at a given thread count, if it was swept.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.pipeline.speedup_at(threads)
    }
}

/// Times `samples` runs of `f`, keeping the last result. `audit` runs
/// on every sample's result **outside** the timed window — identity
/// checks (a deep walk of the whole artifact set) must not be charged
/// to the parallel runs they audit, or every reported speedup would be
/// biased downward. The previous sample is likewise dropped before the
/// clock starts.
fn timed_audited<R>(
    samples: usize,
    mut f: impl FnMut() -> R,
    mut audit: impl FnMut(&R) -> bool,
) -> (TimingMs, bool, R) {
    let mut times = Vec::with_capacity(samples);
    let mut ok = true;
    let mut last = None;
    for _ in 0..samples {
        drop(last.take());
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        ok &= audit(&r);
        last = Some(r);
    }
    (
        TimingMs::from_samples(&times),
        ok,
        last.expect("samples >= 1"),
    )
}

/// Times `samples` runs of `f` with no audit.
fn timed<R>(samples: usize, f: impl FnMut() -> R) -> (TimingMs, R) {
    let (timing, _, last) = timed_audited(samples, f, |_| true);
    (timing, last)
}

/// Epoch count the streaming section of the study replays by default.
pub const DEFAULT_STREAMING_EPOCHS: usize = 4;

/// Runs the study: for each of the three phases (assembly, pipeline,
/// end-to-end), `samples` timed sequential runs, then `samples` timed
/// parallel runs per thread count, each checked byte-for-byte against
/// the sequential reference — plus one streaming replay of the same
/// world in `epochs` batches through the incremental pipeline.
pub fn run_scaling_study(
    world_label: &str,
    world: &World,
    seed: u64,
    thread_sweep: &[usize],
    samples: usize,
    epochs: usize,
    archive_months: u32,
) -> ScalingReport {
    let samples = samples.max(1);
    let cfg = PipelineConfig::default();

    // ---- assembly ----
    let (assembly_seq_ms, input) = timed(samples, || InferenceInput::assemble(world, seed));
    let mut assembly_points = Vec::with_capacity(thread_sweep.len());
    for &threads in thread_sweep {
        let par = ParallelConfig::new(threads);
        let (timing_ms, identical, _) = timed_audited(
            samples,
            || InferenceInput::assemble_parallel(world, seed, &par),
            |r| r.content_eq(&input),
        );
        assembly_points.push(ThreadPoint {
            threads,
            timing_ms,
            speedup: assembly_seq_ms.min / timing_ms.min.max(f64::EPSILON),
            identical,
        });
    }
    let assembly = PhaseScaling {
        sequential_ms: assembly_seq_ms,
        all_identical: assembly_points.iter().all(|p| p.identical),
        points: assembly_points,
    };

    // ---- pipeline ----
    let (pipeline_seq_ms, sequential) = timed(samples, || run_pipeline(&input, &cfg));
    let mut pipeline_points = Vec::with_capacity(thread_sweep.len());
    for &threads in thread_sweep {
        let par = ParallelConfig::new(threads);
        let (timing_ms, identical, _) = timed_audited(
            samples,
            || run_pipeline_parallel(&input, &cfg, &par),
            |r| *r == sequential,
        );
        pipeline_points.push(ThreadPoint {
            threads,
            timing_ms,
            speedup: pipeline_seq_ms.min / timing_ms.min.max(f64::EPSILON),
            identical,
        });
    }
    let pipeline = PhaseScaling {
        sequential_ms: pipeline_seq_ms,
        all_identical: pipeline_points.iter().all(|p| p.identical),
        points: pipeline_points,
    };

    // ---- end to end (overlapped) ----
    // Sequential reference = assemble + infer back to back; its timing
    // is the sum of the phases already measured.
    let e2e_seq_ms = TimingMs {
        min: assembly.sequential_ms.min + pipeline.sequential_ms.min,
        mean: assembly.sequential_ms.mean + pipeline.sequential_ms.mean,
        max: assembly.sequential_ms.max + pipeline.sequential_ms.max,
    };
    let mut e2e_points = Vec::with_capacity(thread_sweep.len());
    for &threads in thread_sweep {
        let par = ParallelConfig::new(threads);
        let (timing_ms, identical, _) = timed_audited(
            samples,
            || assemble_and_run_parallel(world, seed, &cfg, &par),
            |(i, r)| i.content_eq(&input) && *r == sequential,
        );
        e2e_points.push(ThreadPoint {
            threads,
            timing_ms,
            speedup: e2e_seq_ms.min / timing_ms.min.max(f64::EPSILON),
            identical,
        });
    }
    let end_to_end = PhaseScaling {
        sequential_ms: e2e_seq_ms,
        all_identical: e2e_points.iter().all(|p| p.identical),
        points: e2e_points,
    };

    // ---- streaming epoch replay (incremental pipeline) ----
    // One replay, not a thread sweep: the per-epoch dirty counts are
    // schedule-independent, and the determinism CI matrix already
    // re-runs the replay at 1/2/8 threads.
    let streaming = run_streaming_session(
        world,
        seed,
        epochs,
        &cfg,
        &ParallelConfig::new(thread_sweep.last().copied().unwrap_or(1)),
    );

    // ---- serving throughput (readers racing the streaming writer) ----
    let serving = run_serving_study(
        world,
        seed,
        epochs,
        DEFAULT_READER_SWEEP,
        &cfg,
        &ParallelConfig::new(thread_sweep.last().copied().unwrap_or(1)),
    );

    // ---- gateway wire-level load (HTTP clients racing the writer) ----
    let gateway = run_gateway_study(
        world,
        seed,
        epochs,
        DEFAULT_CONNECTION_SWEEP,
        &cfg,
        &ParallelConfig::new(thread_sweep.last().copied().unwrap_or(1)),
    );

    // ---- longitudinal archive replay (monthly revisions, time travel) ----
    let archive = run_archive_study(
        world,
        seed,
        archive_months,
        &cfg,
        &ParallelConfig::new(thread_sweep.last().copied().unwrap_or(1)),
    );

    // ---- structural-sharing memory study (bounded-retention stream) ----
    let memory = run_memory_study(
        world,
        seed,
        DEFAULT_MEMORY_EPOCHS,
        DEFAULT_MEMORY_RETAIN,
        &cfg,
        &ParallelConfig::new(thread_sweep.last().copied().unwrap_or(1)),
    );

    let all_identical = assembly.all_identical
        && pipeline.all_identical
        && end_to_end.all_identical
        && streaming.identical
        && serving.identical
        && serving.epochs_monotonic
        && serving.tags_consistent
        && gateway.ok
        && archive.identical
        && memory.identical;
    let best_pipeline_speedup = pipeline
        .points
        .iter()
        .map(|p| p.speedup)
        .fold(0.0, f64::max);
    ScalingReport {
        schema: BENCH_SCHEMA,
        world: world_label.to_string(),
        seed,
        ixps: input.observed.ixps.len(),
        interfaces: input.observed.total_interfaces(),
        inferences: sequential.inferences.len(),
        samples,
        host_parallelism: ParallelConfig::available_parallelism(),
        best_pipeline_speedup,
        assembly,
        pipeline,
        end_to_end,
        streaming,
        serving,
        gateway,
        archive,
        memory,
        all_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn study_reports_identical_results_on_small_world() {
        let world = WorldConfig::small(7).generate();
        let report = run_scaling_study("small", &world, 7, &[1, 2], 1, 3, 2);
        assert!(report.all_identical, "a parallel phase diverged");
        assert!(report.assembly.all_identical);
        assert!(report.pipeline.all_identical);
        assert!(report.end_to_end.all_identical);
        assert!(report.streaming.identical);
        assert!(report.serving.identical);
        assert!(report.serving.epochs_monotonic);
        assert!(report.serving.tags_consistent);
        assert!(!report.serving.points.is_empty());
        assert!(report.gateway.ok, "gateway study gate failed");
        assert_eq!(report.gateway.panics, 0);
        assert!(!report.gateway.points.is_empty());
        assert!(report.archive.identical, "archive replay diverged");
        assert_eq!(report.archive.months, 2);
        assert_eq!(report.archive.epochs_archived, 3);
        assert!(report.archive.retained_bytes > 0);
        assert_eq!(report.pipeline.points.len(), 2);
        assert_eq!(report.assembly.points.len(), 2);
        assert_eq!(report.end_to_end.points.len(), 2);
        assert_eq!(report.streaming.per_epoch.len(), 3);
        assert!(
            report.streaming.last_epoch_dirty < report.streaming.total_shards,
            "streaming replay is not incremental"
        );
        assert!(report.speedup_at(2).is_some());
        assert!(report.assembly.speedup_at(2).is_some());
        assert!(report.pipeline.sequential_ms.min > 0.0);
        assert!(report.assembly.sequential_ms.min > 0.0);
        assert!(
            (report.best_pipeline_speedup
                - report
                    .pipeline
                    .points
                    .iter()
                    .map(|p| p.speedup)
                    .fold(0.0, f64::max))
            .abs()
                < 1e-12
        );
        assert!(report.memory.identical, "memory study diverged");
        assert!(report.memory.zero_dirty_shared_all);
        assert!(report.memory.retained_bytes_final > 0);
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"schema\":"));
        assert!(json.contains("opeer-bench-pipeline/9"));
        assert!(json.contains("\"best_pipeline_speedup\":"));
        assert!(json.contains("\"assembly\":"));
        assert!(json.contains("\"end_to_end\":"));
        assert!(json.contains("\"streaming\":"));
        assert!(json.contains("\"serving\":"));
        assert!(json.contains("\"gateway\":"));
        assert!(json.contains("\"archive\":"));
        assert!(json.contains("\"memory\":"));
    }
}
