//! The pipeline scaling study: sequential vs the sharded parallel
//! engine at several thread counts, with a byte-identity check and a
//! machine-readable report (`BENCH_pipeline.json`).
//!
//! Used by the `pipeline_scaling` criterion bench and by
//! `run_experiments --bench-pipeline` (which is what CI's bench-smoke
//! job runs and archives).

use opeer_core::engine::{run_pipeline_parallel, ParallelConfig};
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::InferenceInput;
use opeer_topology::World;
use serde::Serialize;
use std::time::Instant;

/// Thread counts the study sweeps by default.
pub const DEFAULT_THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Wall-clock statistics over the timed samples, milliseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TimingMs {
    /// Fastest sample.
    pub min: f64,
    /// Mean of all samples.
    pub mean: f64,
    /// Slowest sample.
    pub max: f64,
}

impl TimingMs {
    fn from_samples(samples: &[f64]) -> TimingMs {
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        TimingMs { min, mean, max }
    }
}

/// One thread count's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock stats of `run_pipeline_parallel`.
    pub timing_ms: TimingMs,
    /// `min(sequential) / min(parallel)` — the conventional best-vs-best
    /// scaling ratio.
    pub speedup: f64,
    /// Whether the parallel result was byte-identical to sequential.
    pub identical: bool,
}

/// The full study report, serialised as `BENCH_pipeline.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// Report schema tag, bumped on layout changes.
    pub schema: &'static str,
    /// World scale label (`small` / `large` / `paper`).
    pub world: String,
    /// Seed the world and input were built from.
    pub seed: u64,
    /// Observed IXPs in the assembled input.
    pub ixps: usize,
    /// Member interfaces across them.
    pub interfaces: usize,
    /// Inferences the pipeline produced.
    pub inferences: usize,
    /// Timed samples per configuration.
    pub samples: usize,
    /// The machine's available parallelism when the study ran.
    pub host_parallelism: usize,
    /// Sequential `run_pipeline` stats.
    pub sequential_ms: TimingMs,
    /// One point per swept thread count.
    pub points: Vec<ThreadPoint>,
    /// Whether every parallel run matched sequential byte-for-byte.
    pub all_identical: bool,
}

impl ScalingReport {
    /// Speedup at a given thread count, if it was swept.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.speedup)
    }
}

/// Runs the study: `samples` timed runs of sequential `run_pipeline`,
/// then `samples` runs of the parallel engine per thread count, each
/// checked byte-for-byte against the sequential result.
pub fn run_scaling_study(
    world_label: &str,
    world: &World,
    seed: u64,
    thread_sweep: &[usize],
    samples: usize,
) -> ScalingReport {
    let samples = samples.max(1);
    let input = InferenceInput::assemble(world, seed);
    let cfg = PipelineConfig::default();

    let mut seq_samples = Vec::with_capacity(samples);
    let mut sequential = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let r = run_pipeline(&input, &cfg);
        seq_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        sequential = Some(r);
    }
    let sequential = sequential.expect("samples >= 1");
    let sequential_ms = TimingMs::from_samples(&seq_samples);

    let mut points = Vec::with_capacity(thread_sweep.len());
    for &threads in thread_sweep {
        let par_cfg = ParallelConfig::new(threads);
        let mut par_samples = Vec::with_capacity(samples);
        let mut identical = true;
        for _ in 0..samples {
            let t0 = Instant::now();
            let r = run_pipeline_parallel(&input, &cfg, &par_cfg);
            par_samples.push(t0.elapsed().as_secs_f64() * 1e3);
            identical &= r == sequential;
        }
        let timing_ms = TimingMs::from_samples(&par_samples);
        points.push(ThreadPoint {
            threads,
            timing_ms,
            speedup: sequential_ms.min / timing_ms.min.max(f64::EPSILON),
            identical,
        });
    }

    let all_identical = points.iter().all(|p| p.identical);
    ScalingReport {
        schema: "opeer-bench-pipeline/1",
        world: world_label.to_string(),
        seed,
        ixps: input.observed.ixps.len(),
        interfaces: input.observed.total_interfaces(),
        inferences: sequential.inferences.len(),
        samples,
        host_parallelism: ParallelConfig::available_parallelism(),
        sequential_ms,
        points,
        all_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn study_reports_identical_results_on_small_world() {
        let world = WorldConfig::small(7).generate();
        let report = run_scaling_study("small", &world, 7, &[1, 2], 1);
        assert!(report.all_identical, "parallel diverged from sequential");
        assert_eq!(report.points.len(), 2);
        assert!(report.speedup_at(2).is_some());
        assert!(report.sequential_ms.min > 0.0);
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"schema\":"));
    }
}
