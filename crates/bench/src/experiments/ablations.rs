//! Ablations of the design choices DESIGN.md calls out.
//!
//! Three questions the paper's design implies but never isolates:
//!
//! 1. **Cumulative step value** — what do coverage and accuracy look
//!    like after step 1, after steps 1–3, 1–4, 1–5? (§5.2 argues the
//!    order; this measures it.)
//! 2. **Baseline threshold sweep** — is there *any* RTT threshold that
//!    fixes the baseline? (§4.1 claims no: FNR/FPR trade off.)
//! 3. **The §6.1 rounding correction** — how much accuracy does the
//!    `RTT′min = RTTmin − 1` adjustment for integer-rounding LGs buy?
//! 4. **Beyond pings (§8)** — the traceroute-derived-RTT variant of
//!    steps 2+3, needing no in-IXP vantage points at all.

use super::Rendered;
use crate::session::Session;
use opeer_core::baseline::run_baseline;
use opeer_core::metrics::score;
use opeer_core::pipeline::PipelineConfig;
use opeer_core::steps::{step1, step2, step3, step4, step5, Ledger};
use opeer_core::types::Inference;
use opeer_geo::SpeedModel;
use opeer_registry::ValidationDataset;
use opeer_topology::ValidationRole;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    variant: String,
    acc: f64,
    pre: f64,
    cov: f64,
    fpr: f64,
    fnr: f64,
}

fn row(label: &str, inferences: &[Inference], validation: &ValidationDataset) -> AblationRow {
    let m = score(inferences, validation, Some(ValidationRole::Test));
    AblationRow {
        variant: label.to_string(),
        acc: m.acc(),
        pre: m.pre(),
        cov: m.cov(),
        fpr: m.fpr(),
        fnr: m.fnr(),
    }
}

/// The ablation suite (one experiment, several variant tables).
pub fn ablations(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let validation = &input.observed.validation;
    let cfg = PipelineConfig::default();
    let mut rows: Vec<AblationRow> = Vec::new();

    // --- 1. cumulative steps ---
    let observations = step2::consolidate(&input);
    {
        let mut ledger = Ledger::new();
        step1::apply(&input, &mut ledger);
        rows.push(row(
            "steps 1",
            &ledger.all().collect::<Vec<_>>(),
            validation,
        ));

        let details_vec = step3::apply(&input, &observations, &cfg.speed, &mut ledger);
        rows.push(row(
            "steps 1–3",
            &ledger.all().collect::<Vec<_>>(),
            validation,
        ));

        let details = step4::Step3Index::build(&input.interns, details_vec.iter().copied());
        step4::apply(&input, &details, &cfg.alias, &mut ledger);
        rows.push(row(
            "steps 1–4",
            &ledger.all().collect::<Vec<_>>(),
            validation,
        ));

        step5::apply(&input, &cfg.alias, &mut ledger);
        rows.push(row(
            "steps 1–5",
            &ledger.all().collect::<Vec<_>>(),
            validation,
        ));
    }

    // --- 2. baseline threshold sweep ---
    for threshold in [2.0, 5.0, 10.0, 20.0] {
        let b = run_baseline(&input, threshold);
        rows.push(row(&format!("baseline {threshold} ms"), &b, validation));
    }

    // --- 3. rounding correction off ---
    {
        let mut ledger = Ledger::new();
        step1::apply(&input, &mut ledger);
        step3::apply_with_rounding(&input, &observations, &cfg.speed, &mut ledger, false);
        rows.push(row(
            "steps 1–3, no RTT′ correction",
            &ledger.all().collect::<Vec<_>>(),
            validation,
        ));
    }

    // --- 4. beyond pings: traceroute-derived steps 2+3 ---
    {
        let pingless = opeer_core::beyond_pings::pingless_rtt_colo(&input, &SpeedModel::default());
        rows.push(row("traceroute-RTT steps 2+3 (§8)", &pingless, validation));
    }

    let mut text = format!(
        "{:<34} {:>6} {:>6} {:>6} {:>6} {:>6}\n",
        "variant", "ACC", "PRE", "COV", "FPR", "FNR"
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<34} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%\n",
            r.variant,
            r.acc * 100.0,
            r.pre * 100.0,
            r.cov * 100.0,
            r.fpr * 100.0,
            r.fnr * 100.0
        ));
    }
    Rendered::new(
        "ablations",
        "Ablations: step value, thresholds, corrections",
        text,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn cumulative_steps_never_lose_coverage() {
        let w = WorldConfig::small(167).generate();
        let s = Session::new(&w, 12);
        let r = ablations(&s);
        let rows: Vec<serde_json::Value> = serde_json::from_value(r.json).expect("json");
        let cov = |name: &str| -> f64 {
            rows.iter()
                .find(|v| v["variant"].as_str() == Some(name))
                .and_then(|v| v["cov"].as_f64())
                .expect("variant present")
        };
        assert!(cov("steps 1") <= cov("steps 1–3") + 1e-9);
        assert!(cov("steps 1–3") <= cov("steps 1–4") + 1e-9);
        assert!(cov("steps 1–4") <= cov("steps 1–5") + 1e-9);
    }

    #[test]
    fn no_threshold_beats_the_methodology() {
        let w = WorldConfig::small(167).generate();
        let s = Session::new(&w, 12);
        let r = ablations(&s);
        let rows: Vec<serde_json::Value> = serde_json::from_value(r.json).expect("json");
        let full_acc = rows
            .iter()
            .find(|v| v["variant"].as_str() == Some("steps 1–5"))
            .and_then(|v| v["acc"].as_f64())
            .expect("present");
        for t in [
            "baseline 2 ms",
            "baseline 5 ms",
            "baseline 10 ms",
            "baseline 20 ms",
        ] {
            let acc = rows
                .iter()
                .find(|v| v["variant"].as_str() == Some(t))
                .and_then(|v| v["acc"].as_f64())
                .expect("present");
            assert!(
                full_acc > acc,
                "{t} accuracy {acc} beats the methodology {full_acc}"
            );
        }
    }
}
