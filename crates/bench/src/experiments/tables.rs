//! Tables 1, 2, 4, 5.

use super::Rendered;
use crate::session::Session;
use opeer_core::metrics::score;
use opeer_core::types::{Inference, Step};
use opeer_topology::ValidationRole;
use serde::Serialize;

/// Table 1 — overview of the fused IXP dataset and per-source
/// contributions (totals, uniques, conflicts).
pub fn table1(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let stats = &input.table1;
    Rendered::new(
        "table1",
        "Table 1: IXP dataset and contribution of each data source",
        stats.render(),
        stats,
    )
}

#[derive(Serialize)]
struct Table2Row {
    ixp: String,
    role: String,
    facilities: usize,
    total_peers: usize,
    validated: usize,
    local: usize,
    remote: usize,
}

/// Table 2 — the validation dataset (15 IXPs, control/test split).
pub fn table2(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let mut rows = Vec::new();
    for v in &input.observed.validation.ixps {
        let obs_idx = input.observed.ixp_by_name(&v.name);
        let (facilities, total) = obs_idx
            .map(|i| {
                (
                    input.observed.ixps[i].facility_idxs.len(),
                    input.observed.ixps[i].member_count(),
                )
            })
            .unwrap_or((0, 0));
        rows.push(Table2Row {
            ixp: v.name.clone(),
            role: format!("{:?}", v.role),
            facilities,
            total_peers: total,
            validated: v.entries.len(),
            local: v.locals(),
            remote: v.remotes(),
        });
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.validated));
    let mut text = format!(
        "{:<16} {:<8} {:>5} {:>7} {:>10} {:>7} {:>7}\n",
        "IXP", "role", "#fac", "#peers", "#validated", "#local", "#remote"
    );
    let (mut tl, mut tr) = (0usize, 0usize);
    for r in &rows {
        text.push_str(&format!(
            "{:<16} {:<8} {:>5} {:>7} {:>10} {:>7} {:>7}\n",
            r.ixp, r.role, r.facilities, r.total_peers, r.validated, r.local, r.remote
        ));
        tl += r.local;
        tr += r.remote;
    }
    text.push_str(&format!(
        "Total validated: {} ({} local, {} remote)\n",
        tl + tr,
        tl,
        tr
    ));
    Rendered::new(
        "table2",
        "Table 2: validation data (operators + websites)",
        text,
        &rows,
    )
}

#[derive(Serialize)]
struct Table4Row {
    method: String,
    fpr: f64,
    fnr: f64,
    pre: f64,
    acc: f64,
    cov: f64,
}

/// Table 4 — per-step (standalone semantics, as the paper validates each
/// step independently) and combined validation against the test subset,
/// with the RTT-threshold baseline.
pub fn table4(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let validation = &input.observed.validation;
    let role = Some(ValidationRole::Test);

    let standalone = opeer_core::pipeline::run_standalone_steps(
        &input,
        &opeer_core::pipeline::PipelineConfig::default(),
    );
    let empty: Vec<Inference> = Vec::new();
    let of = |step: Step| standalone.get(&step).unwrap_or(&empty);

    let rows: Vec<(String, opeer_core::Metrics)> = vec![
        (
            "RTTmin (Castro 10ms)".into(),
            score(&s.baseline, validation, role),
        ),
        (
            "Step 1: Port Capacity".into(),
            score(of(Step::PortCapacity), validation, role),
        ),
        (
            "Step 2+3: RTT+Colo".into(),
            score(of(Step::RttColo), validation, role),
        ),
        (
            "Step 4: Multi-IXP".into(),
            score(of(Step::MultiIxp), validation, role),
        ),
        (
            "Step 5: Private Links".into(),
            score(of(Step::PrivateLinks), validation, role),
        ),
        (
            "Combined".into(),
            score(&s.result().inferences, validation, role),
        ),
    ];

    let mut text = String::new();
    let mut json = Vec::new();
    for (label, m) in &rows {
        text.push_str(&m.row(label));
        text.push('\n');
        json.push(Table4Row {
            method: label.clone(),
            fpr: m.fpr(),
            fnr: m.fnr(),
            pre: m.pre(),
            acc: m.acc(),
            cov: m.cov(),
        });
    }

    // Diagnostic row: the paper's baseline-FPR mechanism is wide-area
    // IXPs (§4.2) — locals patched at distant fabric sites measured above
    // the threshold. The Table-2 test subset here is geographically
    // metro, so the rate is shown against truth labels at the wide-area
    // studied IXPs instead (experiments may consult the truth).
    let (mut wa_fp, mut wa_locals) = (0usize, 0usize);
    for b in &s.baseline {
        let ixp = &input.observed.ixps[b.ixp];
        let Some(world_idx) = s.world.ixps.iter().position(|x| x.name == ixp.name) else {
            continue;
        };
        if !s
            .world
            .is_wide_area_ixp(opeer_topology::IxpId::from_index(world_idx))
        {
            continue;
        }
        if let Some(false) = s.truth_remote(b.addr) {
            wa_locals += 1;
            if b.verdict.is_remote() {
                wa_fp += 1;
            }
        }
    }
    let wa_rate = wa_fp as f64 / wa_locals.max(1) as f64;
    text.push_str(&format!(
        "[diagnostic] RTTmin FPR at wide-area IXPs (truth-scored): {:.1}% over {} locals  (paper: wide-area IXPs drive the 17.5% FPR; excluding them it drops to 2%)\n",
        wa_rate * 100.0,
        wa_locals
    ));
    json.push(Table4Row {
        method: "RTTmin @ wide-area IXPs (diagnostic)".into(),
        fpr: wa_rate,
        fnr: 0.0,
        pre: 0.0,
        acc: 0.0,
        cov: 0.0,
    });

    Rendered::new(
        "table4",
        "Table 4: validation of each step of the algorithm (test subset)",
        text,
        &json,
    )
}

#[derive(Serialize)]
struct Table5Row {
    vp_type: String,
    vps: usize,
    queried: usize,
    responsive: usize,
    members: usize,
    ixps: usize,
}

/// Table 5 — ping-campaign interface statistics, split by VP type.
pub fn table5(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let mut rows = Vec::new();
    for atlas in [false, true] {
        let stats: Vec<_> = input
            .campaign
            .vp_stats
            .iter()
            .filter(|v| v.atlas == atlas && !v.discarded)
            .collect();
        let queried: usize = stats.iter().map(|v| v.targets).sum();
        let responsive: usize = stats.iter().map(|v| v.responsive).sum();
        let ixps: std::collections::BTreeSet<_> = stats.iter().map(|v| v.ixp).collect();
        // Distinct member ASNs behind the queried interfaces.
        let mut members = std::collections::BTreeSet::new();
        for o in &input.campaign.observations {
            if let Some(vp) = input.vp(o.vp) {
                if vp.is_atlas() == atlas {
                    if let Some((_, asn)) = input.observed.member_of_addr(o.target) {
                        members.insert(asn);
                    }
                }
            }
        }
        rows.push(Table5Row {
            vp_type: if atlas { "Atlas" } else { "LG" }.into(),
            vps: stats.len(),
            queried,
            responsive,
            members: members.len(),
            ixps: ixps.len(),
        });
    }
    let total = Table5Row {
        vp_type: "Total".into(),
        vps: rows.iter().map(|r| r.vps).sum(),
        queried: rows.iter().map(|r| r.queried).sum(),
        responsive: rows.iter().map(|r| r.responsive).sum(),
        members: rows.iter().map(|r| r.members).sum(),
        ixps: {
            let all: std::collections::BTreeSet<_> = input
                .campaign
                .vp_stats
                .iter()
                .filter(|v| !v.discarded)
                .map(|v| v.ixp)
                .collect();
            all.len()
        },
    };
    rows.push(total);

    let mut text = format!(
        "{:<7} {:>5} {:>9} {:>11} {:>9} {:>6}\n",
        "VP", "#VPs", "#queried", "#responsive", "#members", "#IXPs"
    );
    for r in &rows {
        let rate = if r.queried > 0 {
            format!(" ({:.0}%)", 100.0 * r.responsive as f64 / r.queried as f64)
        } else {
            String::new()
        };
        text.push_str(&format!(
            "{:<7} {:>5} {:>9} {:>11}{rate} {:>9} {:>6}\n",
            r.vp_type, r.vps, r.queried, r.responsive, r.members, r.ixps
        ));
    }
    Rendered::new(
        "table5",
        "Table 5: interfaces involved in the ping campaign",
        text,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn tables_render_nonempty() {
        let w = WorldConfig::small(139).generate();
        let s = Session::new(&w, 5);
        for r in [table1(&s), table2(&s), table4(&s), table5(&s)] {
            assert!(!r.text.is_empty(), "{} empty", r.id);
        }
    }

    #[test]
    fn table4_combined_beats_baseline() {
        let w = WorldConfig::small(139).generate();
        let s = Session::new(&w, 5);
        let r = table4(&s);
        let rows: Vec<serde_json::Value> = serde_json::from_value(r.json).expect("table4 json");
        let acc = |m: &str| -> f64 {
            rows.iter()
                .find(|v| v["method"].as_str() == Some(m))
                .and_then(|v| v["acc"].as_f64())
                .expect("row present")
        };
        assert!(acc("Combined") > acc("RTTmin (Castro 10ms)"));
    }
}
