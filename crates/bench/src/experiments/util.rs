//! Small statistics helpers shared by experiments.

use serde::Serialize;

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Serialize)]
pub struct Ecdf {
    /// Sorted samples.
    pub samples: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF (drops non-finite values).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ecdf { samples }
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&v| v <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0..=1).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let idx = ((self.samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.samples[idx]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders `x → F(x)` at the given probe points.
    pub fn render(&self, probes: &[f64]) -> String {
        let mut out = String::new();
        for &p in probes {
            out.push_str(&format!("  F({p:>8.2}) = {:>6.1}%\n", self.at(p) * 100.0));
        }
        out
    }
}

/// Percentage formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Median of a u64 sample set (0 when empty).
pub fn median_u64(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, f64::NAN, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(2.0), 0.5);
        assert_eq!(e.at(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.at(1.0), 0.0);
        assert!(e.quantile(0.5).is_nan());
    }

    #[test]
    fn median_and_pct() {
        assert_eq!(median_u64(vec![5, 1, 9]), 5);
        assert_eq!(median_u64(vec![]), 0);
        assert_eq!(pct(0.285), "28.5%");
    }
}
