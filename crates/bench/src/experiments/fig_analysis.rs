//! Figures 11, 12 and the §6.4 routing-implications analysis.

use super::util::median_u64;
use super::Rendered;
use crate::session::Session;
use opeer_bgp::rel::{customer_cones, AsRelationships};
use opeer_core::evolution::{evolution_report, growth_index};
use opeer_core::features::{
    classify_members, feature_table, member_info_from_world, summarize, MemberClass,
};
use opeer_core::routing_impl::{analyze, ExitChoice, RoutingImplConfig};
use opeer_measure::latency::LatencyModel;
use opeer_measure::traceroute::TracerouteEngine;
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Data {
    local_share: f64,
    remote_share: f64,
    hybrid_share: f64,
    median_cone_local: usize,
    median_cone_remote: usize,
    median_cone_hybrid: usize,
    median_traffic_local: u64,
    median_traffic_remote: u64,
    median_traffic_hybrid: u64,
    top_country_local: Option<(String, f64)>,
    top_country_remote: Option<(String, f64)>,
}

fn fig11_data(s: &Session<'_>) -> Fig11Data {
    let rels = AsRelationships::from_world(s.world);
    let cones = customer_cones(&rels);
    let info = member_info_from_world(s.world, &cones);
    let classes = classify_members(s.result());
    let rows = feature_table(&classes, &info);
    let sums = summarize(&rows);
    let get = |c: MemberClass| sums.iter().find(|x| x.class == c).expect("class present");
    let (l, r, h) = (
        get(MemberClass::LocalOnly),
        get(MemberClass::RemoteOnly),
        get(MemberClass::Hybrid),
    );
    let total = (l.count + r.count + h.count).max(1) as f64;
    Fig11Data {
        local_share: l.count as f64 / total,
        remote_share: r.count as f64 / total,
        hybrid_share: h.count as f64 / total,
        median_cone_local: l.median_cone,
        median_cone_remote: r.median_cone,
        median_cone_hybrid: h.median_cone,
        median_traffic_local: l.median_traffic_mbps,
        median_traffic_remote: r.median_traffic_mbps,
        median_traffic_hybrid: h.median_traffic_mbps,
        top_country_local: l.top_country.clone(),
        top_country_remote: r.top_country.clone(),
    }
}

/// Fig. 11a — customer cones of local / remote / hybrid members (paper:
/// 63.7 % / 23.4 % / 12.9 % of members; hybrid cones an order of
/// magnitude larger).
pub fn fig11a(s: &Session<'_>) -> Rendered {
    let d = fig11_data(s);
    let text = format!(
        "member classes: local {:.1}% (paper 63.7%), remote {:.1}% (paper 23.4%), hybrid {:.1}% (paper 12.9%)\nmedian customer cones: local {}, remote {}, hybrid {}  (paper: hybrid ≈10×)\ntop countries: local {:?}, remote {:?}\n",
        d.local_share * 100.0,
        d.remote_share * 100.0,
        d.hybrid_share * 100.0,
        d.median_cone_local,
        d.median_cone_remote,
        d.median_cone_hybrid,
        d.top_country_local,
        d.top_country_remote
    );
    Rendered::new(
        "fig11a",
        "Fig 11a: customer cones by member class",
        text,
        &d,
    )
}

/// Fig. 11b — traffic levels of local / remote / hybrid members (paper:
/// local and remote similar; hybrids reach the top levels).
pub fn fig11b(s: &Session<'_>) -> Rendered {
    let d = fig11_data(s);
    let text = format!(
        "median PDB-reported traffic (Mbps): local {}, remote {}, hybrid {}\nremote/local ratio: {:.2} (paper: similar distributions)\nhybrid/local ratio: {:.2} (paper: hybrids at the top levels)\n",
        d.median_traffic_local,
        d.median_traffic_remote,
        d.median_traffic_hybrid,
        d.median_traffic_remote as f64 / d.median_traffic_local.max(1) as f64,
        d.median_traffic_hybrid as f64 / d.median_traffic_local.max(1) as f64,
    );
    Rendered::new(
        "fig11b",
        "Fig 11b: traffic levels by member class",
        text,
        &d,
    )
}

#[derive(Serialize)]
struct Fig12aData {
    months: u32,
    join_ratio: Option<f64>,
    departure_rate_ratio: Option<f64>,
    switchers: usize,
    growth_index: Vec<(u32, f64, f64)>,
}

/// Fig. 12a — remote vs local growth at the five tracked IXPs (paper:
/// remote joins ≈2× local, departures ≈+25 %, 18 switchers).
pub fn fig12a(s: &Session<'_>) -> Rendered {
    let months = 14;
    let report = evolution_report(s.world, months);
    let idx = growth_index(&report.series);
    let data = Fig12aData {
        months,
        join_ratio: report.stats.join_ratio,
        departure_rate_ratio: report.stats.departure_rate_ratio,
        switchers: report.switchers.len(),
        growth_index: idx.clone(),
    };
    let mut text = format!(
        "tracked IXPs: {:?}\nremote/local join ratio: {:?}   (paper ≈2)\nremote/local departure-rate ratio: {:?}   (paper ≈1.25)\nremote→local switchers: {}   (paper 18)\nmonth  local-index  remote-index\n",
        report.ixps, data.join_ratio, data.departure_rate_ratio, data.switchers
    );
    for (m, l, r) in &idx {
        text.push_str(&format!("{m:>5}  {l:>11.3}  {r:>12.3}\n"));
    }
    Rendered::new("fig12a", "Fig 12a: remote vs local IXP growth", text, &data)
}

#[derive(Serialize)]
struct Fig12bData {
    interfaces_compared: usize,
    median_abs_diff_ms: f64,
    within_2ms: f64,
}

/// Fig. 12b — ping vs traceroute RTTs towards the members of a LINX-like
/// IXP (paper: the two patterns are close, motivating traceroute-based
/// scaling of the methodology).
pub fn fig12b(s: &Session<'_>) -> Rendered {
    let Some(linx_obs) = s.input().observed.ixp_by_name("LINX LON") else {
        return Rendered::new(
            "fig12b",
            "Fig 12b: ping vs traceroute RTTs",
            "LINX LON not observed\n".into(),
            &(),
        );
    };
    // Traceroutes from the IXP's NOC AS (where the LG sits) towards
    // member interfaces.
    let world_ixp = s
        .world
        .ixps
        .iter()
        .position(|x| x.name == "LINX LON")
        .expect("LINX LON in spec");
    let noc_asn = s.world.ixps[world_ixp].route_server_asn;
    let noc_id = s
        .world
        .ases
        .iter()
        .position(|a| a.asn == noc_asn)
        .map(opeer_topology::AsId::from_index)
        .expect("NOC AS exists");
    let engine = TracerouteEngine::new(s.world, LatencyModel::new(s.seed ^ 0x12b));

    let mut diffs: Vec<f64> = Vec::new();
    let mut compared = 0usize;
    for o in s.result().observations.values() {
        if o.ixp != linx_obs || compared >= 150 {
            continue;
        }
        let Some(tr) = engine.trace_fresh(noc_id, o.addr) else {
            continue;
        };
        let Some(last) = tr.responding().last() else {
            continue;
        };
        if last.addr != o.addr {
            continue;
        }
        compared += 1;
        diffs.push((last.rtt_ms - o.min_rtt_ms).abs());
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = diffs.get(diffs.len() / 2).copied().unwrap_or(f64::NAN);
    let within2 = diffs.iter().filter(|&&d| d <= 2.0).count() as f64 / diffs.len().max(1) as f64;
    let data = Fig12bData {
        interfaces_compared: compared,
        median_abs_diff_ms: median,
        within_2ms: within2,
    };
    let text = format!(
        "LINX-LON members compared: {}\nmedian |ping − traceroute| RTT: {:.2} ms\nwithin 2 ms: {:.1}%   (paper: patterns are close)\n",
        data.interfaces_compared, data.median_abs_diff_ms, data.within_2ms * 100.0
    );
    Rendered::new(
        "fig12b",
        "Fig 12b: ping vs traceroute RTTs (LINX LON)",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Sec64Data {
    pairs_examined: usize,
    crossings: usize,
    hot_potato: f64,
    remote_used_though_closer_exists: f64,
    closer_studied_unused: f64,
}

/// §6.4 — routing implications at a DE-CIX-FRA-like IXP (paper: 66 %
/// hot-potato, 18 % remote-used-though-closer-exists, 16 %
/// closer-DE-CIX-unused).
pub fn sec64(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let report = analyze(
        &input,
        s.result(),
        &RoutingImplConfig {
            max_pairs: 600,
            ..Default::default()
        },
    );
    let data = Sec64Data {
        pairs_examined: report.pairs_examined,
        crossings: report.crossings,
        hot_potato: report.share(ExitChoice::HotPotato),
        remote_used_though_closer_exists: report.share(ExitChoice::RemoteUsedThoughCloserExists),
        closer_studied_unused: report.share(ExitChoice::CloserStudiedIxpUnused),
    };
    let text = format!(
        "DE-CIX FRA remote-member pair study\npairs examined: {}  crossings observed: {}\nhot-potato exits:                {:.1}%   (paper 66%)\nremote used though closer exists: {:.1}%   (paper 18%)\ncloser DE-CIX unused:             {:.1}%   (paper 16%)\n",
        data.pairs_examined,
        data.crossings,
        data.hot_potato * 100.0,
        data.remote_used_though_closer_exists * 100.0,
        data.closer_studied_unused * 100.0
    );
    Rendered::new(
        "sec64",
        "§6.4: routing implications of remote peering",
        text,
        &data,
    )
}

/// Helper for tests: median over u64 (re-exported for the bench binary).
pub fn _median(v: Vec<u64>) -> u64 {
    median_u64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn analysis_figures_run() {
        let w = WorldConfig::small(157).generate();
        let s = Session::new(&w, 8);

        let f11a = fig11a(&s);
        let hybrid_cone = f11a.json["median_cone_hybrid"].as_u64().expect("field");
        let local_cone = f11a.json["median_cone_local"].as_u64().expect("field");
        assert!(hybrid_cone >= local_cone, "hybrids are bigger networks");

        let f12a = fig12a(&s);
        let ratio = f12a.json["join_ratio"].as_f64();
        if let Some(r) = ratio {
            assert!(r > 1.0, "remote joins dominate: {r}");
        }

        let f12b = fig12b(&s);
        assert!(f12b.json["interfaces_compared"].as_u64().expect("field") > 0);

        let s64 = sec64(&s);
        assert!(s64.json["pairs_examined"].as_u64().expect("field") > 0);
    }
}
