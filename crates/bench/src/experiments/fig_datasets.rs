//! Figures 1, 2, 4, 5, 6 — dataset and control-subset characterisation.

use super::util::Ecdf;
use super::Rendered;
use crate::session::Session;
use opeer_geo::SpeedModel;
use opeer_measure::latency::LatencyModel;
use opeer_measure::y1731::facility_delay_matrix;
use opeer_topology::IxpId;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Fig1aData {
    as_facility_counts: Vec<usize>,
    ixp_facility_counts: Vec<usize>,
    as_single_share: f64,
    as_over10_share: f64,
}

/// Fig. 1a — distribution of the number of facilities per AS and per IXP
/// (the paper: ~60 % in one facility, ~5 % in more than ten).
pub fn fig1a(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let as_counts: Vec<usize> = input
        .observed
        .as_facilities
        .values()
        .filter(|v| !v.is_empty())
        .map(Vec::len)
        .collect();
    let ixp_counts: Vec<usize> = input
        .observed
        .ixps
        .iter()
        .filter(|x| !x.facility_idxs.is_empty())
        .map(|x| x.facility_idxs.len())
        .collect();
    let single =
        as_counts.iter().filter(|&&c| c == 1).count() as f64 / as_counts.len().max(1) as f64;
    let over10 =
        as_counts.iter().filter(|&&c| c > 10).count() as f64 / as_counts.len().max(1) as f64;
    let data = Fig1aData {
        as_single_share: single,
        as_over10_share: over10,
        as_facility_counts: as_counts,
        ixp_facility_counts: ixp_counts,
    };
    let text = format!(
        "ASes with facility data: {}\n  single-facility: {:.1}%  (paper ≈60%)\n  >10 facilities:  {:.1}%  (paper ≈5%)\nIXPs with facility data: {}\n",
        data.as_facility_counts.len(),
        single * 100.0,
        over10 * 100.0,
        data.ixp_facility_counts.len(),
    );
    Rendered::new("fig1a", "Fig 1a: facilities per AS / IXP", text, &data)
}

#[derive(Serialize)]
struct Fig1bData {
    local_rtts: Vec<f64>,
    remote_rtts: Vec<f64>,
    local_under_1ms: f64,
    remote_under_1ms: f64,
    remote_under_10ms: f64,
}

/// Fig. 1b — ECDF of minimum RTTs for validated remote and local peers in
/// the control subset (paper: 99 % of locals < 1 ms; 18 % of remotes
/// < 1 ms; 40 % of remotes < 10 ms).
pub fn fig1b(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let mut local = Vec::new();
    let mut remote = Vec::new();
    for o in s.control.best_per_target() {
        match input.observed.validation.verdict(o.target) {
            Some(true) => remote.push(o.min_rtt_ms),
            Some(false) => local.push(o.min_rtt_ms),
            None => {}
        }
    }
    let le = Ecdf::new(local.clone());
    let re = Ecdf::new(remote.clone());
    let data = Fig1bData {
        local_under_1ms: le.at(1.0),
        remote_under_1ms: re.at(1.0),
        remote_under_10ms: re.at(10.0),
        local_rtts: local,
        remote_rtts: remote,
    };
    let text = format!(
        "control subset, validated peers\nlocal  (n={}):  <1ms {:.1}%   (paper 99%)\nremote (n={}):  <1ms {:.1}%   (paper 18%)\n                <10ms {:.1}%  (paper 40%)\nECDF local:\n{}ECDF remote:\n{}",
        data.local_rtts.len(),
        data.local_under_1ms * 100.0,
        data.remote_rtts.len(),
        data.remote_under_1ms * 100.0,
        data.remote_under_10ms * 100.0,
        le.render(&[0.5, 1.0, 2.0, 5.0, 10.0, 50.0]),
        re.render(&[0.5, 1.0, 2.0, 5.0, 10.0, 50.0]),
    );
    Rendered::new(
        "fig1b",
        "Fig 1b: min RTT ECDF, control validation subset",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig2aData {
    facilities: usize,
    pairs: usize,
    median_rtts_ms: Vec<f64>,
    share_above_10ms: f64,
    min_pair_ms: f64,
}

/// Fig. 2a — median RTTs between the facilities of the wide-area NET-IX
/// fabric (paper: 87 % of pairs above 10 ms, with some close pairs like
/// FRA–PRA at 7 ms).
pub fn fig2a(s: &Session<'_>) -> Rendered {
    let netix = s
        .world
        .ixps
        .iter()
        .position(|x| x.name == "NET-IX")
        .expect("NET-IX in the named spec");
    let m = facility_delay_matrix(
        s.world,
        IxpId::from_index(netix),
        &LatencyModel::new(s.seed),
        9,
    );
    let rtts: Vec<f64> = m.pairs().map(|(_, _, _, rtt)| rtt).collect();
    let data = Fig2aData {
        facilities: m.facilities.len(),
        pairs: rtts.len(),
        share_above_10ms: m.fraction_above_ms(10.0),
        min_pair_ms: rtts.iter().copied().fold(f64::INFINITY, f64::min),
        median_rtts_ms: rtts,
    };
    let text = format!(
        "NET-IX-like wide-area fabric: {} facilities, {} pairs\npairs with median RTT > 10 ms: {:.1}%  (paper 87%)\nclosest pair: {:.1} ms  (paper: FRA-PRA 7 ms)\n",
        data.facilities,
        data.pairs,
        data.share_above_10ms * 100.0,
        data.min_pair_ms
    );
    Rendered::new(
        "fig2a",
        "Fig 2a: wide-area IXP inter-facility RTTs (NET-IX)",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig2bData {
    multi_member_ixps: usize,
    wide_area: usize,
    wide_area_share: f64,
    top50_wide_area: usize,
    max_km_per_ixp: Vec<(String, f64, usize)>,
}

/// Fig. 2b — max distance between IXP facilities vs member count; the
/// wide-area census (paper: 64/446 = 14.4 % of multi-member IXPs, 10 of
/// the 50 largest).
pub fn fig2b(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let mut rows: Vec<(String, f64, usize)> = Vec::new();
    for x in &input.observed.ixps {
        let members = x.member_count();
        if members < 2 {
            continue;
        }
        let pts: Vec<opeer_geo::GeoPoint> = x
            .facility_idxs
            .iter()
            .map(|&f| input.observed.facilities[f].location)
            .collect();
        let max_km = opeer_geo::max_pairwise_distance_km(&pts);
        rows.push((x.name.clone(), max_km, members));
    }
    let wide: usize = rows.iter().filter(|(_, d, _)| *d > 50.0).count();
    let mut by_size = rows.clone();
    by_size.sort_by_key(|&(_, _, m)| std::cmp::Reverse(m));
    let top50_wide = by_size
        .iter()
        .take(50)
        .filter(|(_, d, _)| *d > 50.0)
        .count();
    let data = Fig2bData {
        multi_member_ixps: rows.len(),
        wide_area: wide,
        wide_area_share: wide as f64 / rows.len().max(1) as f64,
        top50_wide_area: top50_wide,
        max_km_per_ixp: rows,
    };
    let text = format!(
        "multi-member IXPs: {}\nwide-area (>50 km facility spread): {} ({:.1}%)   (paper 64/446 = 14.4%)\nwide-area among the 50 largest: {}   (paper 10)\n",
        data.multi_member_ixps,
        data.wide_area,
        data.wide_area_share * 100.0,
        data.top50_wide_area
    );
    Rendered::new(
        "fig2b",
        "Fig 2b: IXP facility spread vs member count",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig4Data {
    local_by_tier: BTreeMap<String, usize>,
    remote_by_tier: BTreeMap<String, usize>,
    remote_sub_1ge: f64,
    local_sub_1ge: f64,
}

fn tier(mbps: u32) -> String {
    match mbps {
        0..=999 => format!("{}FE", mbps.div_ceil(100)),
        1_000..=9_999 => format!("{}GE", mbps / 1_000),
        10_000..=99_999 => "10GE+".into(),
        _ => "100GE+".into(),
    }
}

/// Fig. 4 — port capacities of validated remote vs local peers in the
/// control subset (paper: 27 % of remotes below 1 GE; no local below
/// 1 GE; 100 GE only local).
pub fn fig4(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let mut local: BTreeMap<String, usize> = BTreeMap::new();
    let mut remote: BTreeMap<String, usize> = BTreeMap::new();
    let (mut l_sub, mut l_all, mut r_sub, mut r_all) = (0usize, 0usize, 0usize, 0usize);
    for v in &input.observed.validation.ixps {
        if v.role != opeer_topology::ValidationRole::Control {
            continue;
        }
        let Some(ixp) = input.observed.ixp_by_name(&v.name) else {
            continue;
        };
        for e in &v.entries {
            let Some(&cap) = input.observed.ixps[ixp].port_capacity.get(&e.asn) else {
                continue;
            };
            let t = tier(cap);
            if e.remote {
                *remote.entry(t).or_insert(0) += 1;
                r_all += 1;
                if cap < 1_000 {
                    r_sub += 1;
                }
            } else {
                *local.entry(t).or_insert(0) += 1;
                l_all += 1;
                if cap < 1_000 {
                    l_sub += 1;
                }
            }
        }
    }
    let data = Fig4Data {
        remote_sub_1ge: r_sub as f64 / r_all.max(1) as f64,
        local_sub_1ge: l_sub as f64 / l_all.max(1) as f64,
        local_by_tier: local,
        remote_by_tier: remote,
    };
    let mut text = format!(
        "control subset port capacities\nremote below 1GE: {:.1}%  (paper 27%)\nlocal below 1GE:  {:.1}%  (paper 0%)\n",
        data.remote_sub_1ge * 100.0,
        data.local_sub_1ge * 100.0
    );
    text.push_str("tier       local  remote\n");
    let tiers: std::collections::BTreeSet<&String> = data
        .local_by_tier
        .keys()
        .chain(data.remote_by_tier.keys())
        .collect();
    for t in tiers {
        text.push_str(&format!(
            "{:<10} {:>5}  {:>6}\n",
            t,
            data.local_by_tier.get(t).unwrap_or(&0),
            data.remote_by_tier.get(t).unwrap_or(&0)
        ));
    }
    Rendered::new(
        "fig4",
        "Fig 4: port capacity, remote vs local (control)",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig5Data {
    remote_no_record: f64,
    remote_zero_common: f64,
    remote_one_plus_common: f64,
    local_one_plus_common: f64,
}

/// Fig. 5 — number of *common* facilities with the IXP for validated
/// remote and local peers (paper: all locals ≥ 1; 95 % of remotes none;
/// ~18 % of remotes with no data at all; ~5 % apparently colocated).
pub fn fig5(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let (mut r_none, mut r_zero, mut r_some, mut r_all) = (0usize, 0usize, 0usize, 0usize);
    let (mut l_some, mut l_all) = (0usize, 0usize);
    for v in &input.observed.validation.ixps {
        if v.role != opeer_topology::ValidationRole::Control {
            continue;
        }
        let Some(ixp) = input.observed.ixp_by_name(&v.name) else {
            continue;
        };
        for e in &v.entries {
            let record = input.observed.facilities_of_as(e.asn);
            let common = input.observed.common_facilities(e.asn, ixp);
            if e.remote {
                r_all += 1;
                match record {
                    None => r_none += 1,
                    Some(_) if common.is_empty() => r_zero += 1,
                    Some(_) => r_some += 1,
                }
            } else {
                l_all += 1;
                if !common.is_empty() {
                    l_some += 1;
                }
            }
        }
    }
    let data = Fig5Data {
        remote_no_record: r_none as f64 / r_all.max(1) as f64,
        remote_zero_common: r_zero as f64 / r_all.max(1) as f64,
        remote_one_plus_common: r_some as f64 / r_all.max(1) as f64,
        local_one_plus_common: l_some as f64 / l_all.max(1) as f64,
    };
    let text = format!(
        "control subset common-facility census\nremote: no record {:.1}% (paper 18%), zero common {:.1}% (paper ~77%), ≥1 common {:.1}% (paper 5%)\nlocal: ≥1 common facility {:.1}% (paper 100%)\n",
        data.remote_no_record * 100.0,
        data.remote_zero_common * 100.0,
        data.remote_one_plus_common * 100.0,
        data.local_one_plus_common * 100.0
    );
    Rendered::new(
        "fig5",
        "Fig 5: common facilities with the IXP (control)",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig6Data {
    samples: Vec<(f64, f64)>,
    within_bounds: f64,
    below_vmin: f64,
}

/// Fig. 6 — inter-facility RTT vs distance from the wide-area fabrics
/// (NL-IX + NET-IX Y.1731 matrices) against the speed-model bounds.
pub fn fig6(s: &Session<'_>) -> Rendered {
    let speed = SpeedModel::default();
    let model = LatencyModel::new(s.seed);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for name in ["NL-IX", "NET-IX"] {
        let Some(ix) = s.world.ixps.iter().position(|x| x.name == name) else {
            continue;
        };
        let m = facility_delay_matrix(s.world, IxpId::from_index(ix), &model, 9);
        for (_, _, d, rtt) in m.pairs() {
            if d > 1.0 {
                samples.push((d, rtt));
            }
        }
    }
    let mut within = 0usize;
    let mut below = 0usize;
    for &(d, rtt) in &samples {
        let a = speed.feasible_annulus_ms(rtt);
        if a.contains(d) {
            within += 1;
        } else if d < a.min_km {
            below += 1; // slower than the vmin envelope
        }
    }
    let data = Fig6Data {
        within_bounds: within as f64 / samples.len().max(1) as f64,
        below_vmin: below as f64 / samples.len().max(1) as f64,
        samples,
    };
    let text = format!(
        "Y.1731 samples (NL-IX + NET-IX): {}\nwithin [vmin, vmax] bounds: {:.1}%\nslower than the vmin envelope: {:.1}%  (the fit is a *lower* envelope: small)\n",
        data.samples.len(),
        data.within_bounds * 100.0,
        data.below_vmin * 100.0
    );
    Rendered::new(
        "fig6",
        "Fig 6: inter-facility RTT vs distance + speed bounds",
        text,
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn dataset_figures_reproduce_shapes() {
        let w = WorldConfig::small(149).generate();
        let s = Session::new(&w, 6);

        let f1b = fig1b(&s);
        let v: serde_json::Value = f1b.json;
        let local_under = v["local_under_1ms"].as_f64().expect("field");
        assert!(local_under > 0.7, "locals should be fast: {local_under}");

        let f2b = fig2b(&s);
        let share = f2b.json["wide_area_share"].as_f64().expect("field");
        assert!((0.02..0.40).contains(&share), "wide-area share {share}");

        let f4 = fig4(&s);
        let r_sub = f4.json["remote_sub_1ge"].as_f64().expect("field");
        let l_sub = f4.json["local_sub_1ge"].as_f64().expect("field");
        assert!(r_sub > 0.05, "some remotes below 1GE: {r_sub}");
        assert!(l_sub < 0.05, "locals below 1GE rare: {l_sub}");

        let f5 = fig5(&s);
        let l_common = f5.json["local_one_plus_common"].as_f64().expect("field");
        assert!(l_common > 0.75, "locals share facilities: {l_common}");

        let f6 = fig6(&s);
        let within = f6.json["within_bounds"].as_f64().expect("field");
        assert!(within > 0.85, "Y.1731 samples inside bounds: {within}");
    }
}
