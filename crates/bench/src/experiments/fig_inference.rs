//! Figures 8, 9, 10 — validation and in-the-wild inference results.

use super::util::Ecdf;
use super::Rendered;
use crate::session::Session;
use opeer_core::metrics::score_per_ixp;
use opeer_core::steps::step4::RouterClass;
use opeer_core::types::Verdict;
use opeer_topology::ValidationRole;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Fig8Row {
    ixp: String,
    validated: usize,
    pre: f64,
    acc: f64,
}

/// Fig. 8 — per-IXP precision and accuracy on the test subset.
pub fn fig8(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let per = score_per_ixp(
        &s.result().inferences,
        &input.observed.validation,
        Some(ValidationRole::Test),
    );
    let rows: Vec<Fig8Row> = per
        .iter()
        .map(|(name, n, m)| Fig8Row {
            ixp: name.clone(),
            validated: *n,
            pre: m.pre(),
            acc: m.acc(),
        })
        .collect();
    let mut text = format!(
        "{:<16} {:>10} {:>7} {:>7}\n",
        "IXP", "#validated", "PRE", "ACC"
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<16} {:>10} {:>6.1}% {:>6.1}%\n",
            r.ixp,
            r.validated,
            r.pre * 100.0,
            r.acc * 100.0
        ));
    }
    Rendered::new(
        "fig8",
        "Fig 8: per-IXP validation (test subset)",
        text,
        &rows,
    )
}

#[derive(Serialize)]
struct Fig9aRow {
    vp: String,
    atlas: bool,
    queried: usize,
    responsive: usize,
    discarded: bool,
}

/// Fig. 9a — response rates per vantage point (LGs answer nearly always,
/// Atlas probes far less).
pub fn fig9a(s: &Session<'_>) -> Rendered {
    let input = s.input();
    let rows: Vec<Fig9aRow> = input
        .campaign
        .vp_stats
        .iter()
        .map(|v| Fig9aRow {
            vp: input
                .vp(v.vp)
                .map(|x| x.name.clone())
                .unwrap_or_else(|| format!("{:?}", v.vp)),
            atlas: v.atlas,
            queried: v.targets,
            responsive: v.responsive,
            discarded: v.discarded,
        })
        .collect();
    let rate = |atlas: bool| -> (usize, usize) {
        rows.iter()
            .filter(|r| r.atlas == atlas && !r.discarded)
            .fold((0, 0), |(q, p), r| (q + r.queried, p + r.responsive))
    };
    let (lg_q, lg_r) = rate(false);
    let (at_q, at_r) = rate(true);
    let discarded = rows.iter().filter(|r| r.discarded).count();
    let text = format!(
        "LGs:   {}/{} responsive ({:.0}%)   (paper 95%)\nAtlas: {}/{} responsive ({:.0}%)   (paper 75%)\nAtlas probes discarded (dead or mgmt-LAN): {}\n",
        lg_r,
        lg_q,
        100.0 * lg_r as f64 / lg_q.max(1) as f64,
        at_r,
        at_q,
        100.0 * at_r as f64 / at_q.max(1) as f64,
        discarded
    );
    Rendered::new("fig9a", "Fig 9a: VP response rates", text, &rows)
}

#[derive(Serialize)]
struct Fig9bData {
    rtts: Vec<f64>,
    under_2ms: f64,
    over_10ms: f64,
}

/// Fig. 9b — ECDF of `RTTmin` per responsive interface across the studied
/// IXPs (paper: 75 % within 2 ms; >20 % above 10 ms).
pub fn fig9b(s: &Session<'_>) -> Rendered {
    let rtts: Vec<f64> = s
        .result()
        .observations
        .values()
        .map(|o| o.min_rtt_ms)
        .collect();
    let e = Ecdf::new(rtts.clone());
    let data = Fig9bData {
        under_2ms: e.at(2.0),
        over_10ms: 1.0 - e.at(10.0),
        rtts,
    };
    let text = format!(
        "responsive interfaces: {}\nwithin 2 ms: {:.1}%   (paper 75%)\nabove 10 ms: {:.1}%   (paper >20%)\n{}",
        data.rtts.len(),
        data.under_2ms * 100.0,
        data.over_10ms * 100.0,
        e.render(&[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0])
    );
    Rendered::new(
        "fig9b",
        "Fig 9b: RTTmin ECDF across studied IXPs",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig9cData {
    remote_without_feasible_ixp_facility: f64,
    remote_with_feasible_ixp_facility: f64,
    scatter: Vec<(f64, usize, String)>,
}

/// Fig. 9c — inference outcome vs (RTTmin, #feasible facilities)
/// (paper: 94 % of remote interfaces have no feasible common facility).
pub fn fig9c(s: &Session<'_>) -> Rendered {
    let mut scatter = Vec::new();
    let (mut r_none, mut r_some) = (0usize, 0usize);
    for d in &s.result().step3_details {
        let verdict = match d.verdict {
            Some(Verdict::Remote) => {
                if d.feasible_ixp_facilities == 0 {
                    r_none += 1;
                } else {
                    r_some += 1;
                }
                "remote"
            }
            Some(Verdict::Local) => "local",
            None => "unknown",
        };
        scatter.push((d.min_rtt_ms, d.feasible_ixp_facilities, verdict.to_string()));
    }
    let r_all = (r_none + r_some).max(1);
    let data = Fig9cData {
        remote_without_feasible_ixp_facility: r_none as f64 / r_all as f64,
        remote_with_feasible_ixp_facility: r_some as f64 / r_all as f64,
        scatter,
    };
    let text = format!(
        "step-3 remote inferences: {}\n  without feasible IXP facility: {:.1}%  (paper 94%)\n  with ≥1 feasible IXP facility: {:.1}%  (paper 6%)\n",
        r_all,
        data.remote_without_feasible_ixp_facility * 100.0,
        data.remote_with_feasible_ixp_facility * 100.0
    );
    Rendered::new(
        "fig9c",
        "Fig 9c: inference vs feasible facilities and RTTmin",
        text,
        &data,
    )
}

#[derive(Serialize)]
struct Fig9dData {
    routers: usize,
    multi_ixp_routers: usize,
    over_10_ixps_share: f64,
    by_class: BTreeMap<String, usize>,
    ixp_count_histogram: BTreeMap<usize, usize>,
}

/// Fig. 9d — multi-IXP router types vs the number of next-hop IXPs
/// (paper: ~80 % of the relevant routers are multi-IXP, 25 % of them face
/// more than 10 IXPs; remote routers outnumber hybrids).
pub fn fig9d(s: &Session<'_>) -> Rendered {
    let findings = &s.result().multi_ixp_routers;
    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut over10 = 0usize;
    for f in findings {
        let label = match f.class {
            Some(RouterClass::Local) => "local",
            Some(RouterClass::Remote) => "remote",
            Some(RouterClass::Hybrid) => "hybrid",
            None => "unclassified",
        };
        *by_class.entry(label.into()).or_insert(0) += 1;
        *hist.entry(f.next_hop_ixps.len()).or_insert(0) += 1;
        if f.next_hop_ixps.len() > 10 {
            over10 += 1;
        }
    }
    let data = Fig9dData {
        routers: findings.len(),
        multi_ixp_routers: findings.len(),
        over_10_ixps_share: over10 as f64 / findings.len().max(1) as f64,
        by_class,
        ixp_count_histogram: hist,
    };
    let mut text = format!(
        "multi-IXP routers: {}\nfacing >10 IXPs: {:.1}%  (paper 25%)\nclasses: {:?}\n#IXPs histogram:\n",
        data.multi_ixp_routers,
        data.over_10_ixps_share * 100.0,
        data.by_class
    );
    for (k, v) in &data.ixp_count_histogram {
        text.push_str(&format!("  {k:>3} IXPs: {v}\n"));
    }
    Rendered::new("fig9d", "Fig 9d: multi-IXP router types", text, &data)
}

#[derive(Serialize)]
struct Fig10aRow {
    ixp: String,
    port_capacity: usize,
    rtt_colo: usize,
    multi_ixp: usize,
    private_links: usize,
}

/// Fig. 10a — contribution of each inference step per studied IXP
/// (paper: steps 2+3 and 4 dominate; step 1 ≈ 10 % on average; step 5
/// needed at 11 of the 30).
pub fn fig10a(s: &Session<'_>) -> Rendered {
    // Snapshot-served: the per-IXP StepCounts rollups were built once
    // at publish time, not rescanned here.
    let snap = s.snapshot();
    let contributions = snap.step_contributions();
    let input = s.input();
    let mut rows = Vec::new();
    for (ixp_idx, counts) in contributions {
        let ixp = &input.observed.ixps[*ixp_idx];
        if !ixp.studied {
            continue;
        }
        rows.push(Fig10aRow {
            ixp: ixp.name.clone(),
            port_capacity: counts.port_capacity,
            rtt_colo: counts.rtt_colo,
            multi_ixp: counts.multi_ixp,
            private_links: counts.private_links,
        });
    }
    rows.sort_by_key(|r| {
        std::cmp::Reverse(r.port_capacity + r.rtt_colo + r.multi_ixp + r.private_links)
    });
    let mut text = format!(
        "{:<16} {:>6} {:>9} {:>9} {:>8}\n",
        "IXP", "port", "rtt+colo", "multiIXP", "private"
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<16} {:>6} {:>9} {:>9} {:>8}\n",
            r.ixp, r.port_capacity, r.rtt_colo, r.multi_ixp, r.private_links
        ));
    }
    let with_step5 = rows.iter().filter(|r| r.private_links > 0).count();
    text.push_str(&format!(
        "IXPs needing step 5: {with_step5}   (paper: 11 of 30)\n"
    ));
    Rendered::new(
        "fig10a",
        "Fig 10a: per-step contribution per IXP",
        text,
        &rows,
    )
}

#[derive(Serialize)]
struct Fig10bRow {
    ixp: String,
    local: usize,
    remote: usize,
    remote_share: f64,
}

#[derive(Serialize)]
struct Fig10bData {
    rows: Vec<Fig10bRow>,
    overall_remote_share: f64,
    ixps_over_10pct_remote: f64,
    largest_two_remote_share: Vec<(String, f64)>,
}

/// Fig. 10b — local/remote member split per studied IXP (paper: 28 % of
/// inferred interfaces remote; >90 % of IXPs have >10 % remote members;
/// ~40 % at the two giants).
pub fn fig10b(s: &Session<'_>) -> Rendered {
    // Snapshot-served: per-IXP verdict tallies come from the publish-time
    // rollups instead of one O(n) inference scan per IXP.
    let snapshot = s.snapshot();
    let input = s.input();
    let mut rows = Vec::new();
    let (mut total_r, mut total) = (0usize, 0usize);
    for rollup in snapshot.ixp_rollups() {
        if !input.observed.ixps[rollup.ixp].studied {
            continue;
        }
        let (l, r) = (rollup.local, rollup.remote);
        if l + r == 0 {
            continue;
        }
        total += l + r;
        total_r += r;
        rows.push(Fig10bRow {
            ixp: rollup.name.clone(),
            local: l,
            remote: r,
            remote_share: rollup.remote_share,
        });
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.local + r.remote));
    let over10 =
        rows.iter().filter(|r| r.remote_share > 0.10).count() as f64 / rows.len().max(1) as f64;
    let data = Fig10bData {
        overall_remote_share: total_r as f64 / total.max(1) as f64,
        ixps_over_10pct_remote: over10,
        largest_two_remote_share: rows
            .iter()
            .take(2)
            .map(|r| (r.ixp.clone(), r.remote_share))
            .collect(),
        rows,
    };
    let mut text = format!(
        "inferred interfaces at studied IXPs: {total}\noverall remote share: {:.1}%   (paper 28%)\nIXPs with >10% remote members: {:.1}%   (paper 90%)\n",
        data.overall_remote_share * 100.0,
        data.ixps_over_10pct_remote * 100.0
    );
    for (name, share) in &data.largest_two_remote_share {
        text.push_str(&format!(
            "  {name}: {:.1}% remote   (paper ≈40%)\n",
            share * 100.0
        ));
    }
    text.push_str(&format!(
        "{:<16} {:>6} {:>7} {:>7}\n",
        "IXP", "local", "remote", "share"
    ));
    for r in data.rows.iter().take(30) {
        text.push_str(&format!(
            "{:<16} {:>6} {:>7} {:>6.1}%\n",
            r.ixp,
            r.local,
            r.remote,
            r.remote_share * 100.0
        ));
    }
    Rendered::new("fig10b", "Fig 10b: inferences per IXP", text, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn inference_figures_hold_shape() {
        let w = WorldConfig::small(151).generate();
        let s = Session::new(&w, 7);

        let f8 = fig8(&s);
        let rows: Vec<serde_json::Value> = serde_json::from_value(f8.json).expect("json");
        assert_eq!(rows.len(), 8, "eight test-subset IXPs");

        let f9b = fig9b(&s);
        let under2 = f9b.json["under_2ms"].as_f64().expect("field");
        assert!(under2 > 0.4, "most interfaces near their VP: {under2}");

        let f9c = fig9c(&s);
        let no_fac = f9c.json["remote_without_feasible_ixp_facility"]
            .as_f64()
            .expect("field");
        assert!(no_fac > 0.7, "remote without feasible facility: {no_fac}");

        let f10b = fig10b(&s);
        let share = f10b.json["overall_remote_share"].as_f64().expect("field");
        assert!((0.10..0.50).contains(&share), "remote share {share}");
    }
}
