//! One experiment per table/figure of the paper (DESIGN.md §4).

pub mod ablations;
pub mod fig_analysis;
pub mod fig_datasets;
pub mod fig_inference;
pub mod tables;
pub mod util;

use crate::session::Session;
use serde::Serialize;

/// A rendered experiment: identifier, title, human-readable text, and a
/// machine-readable JSON payload.
#[derive(Debug, Clone, Serialize)]
pub struct Rendered {
    /// Artifact id, e.g. `"table4"` or `"fig9b"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// The regenerated rows/series as text.
    pub text: String,
    /// The same data as JSON.
    pub json: serde_json::Value,
}

impl Rendered {
    /// Builds a rendered experiment from serialisable data.
    pub fn new<T: Serialize>(id: &str, title: &str, text: String, data: &T) -> Self {
        Rendered {
            id: id.to_string(),
            title: title.to_string(),
            text,
            json: serde_json::to_value(data).expect("experiment data serialises"),
        }
    }
}

/// Runs every experiment against one session, in paper order.
pub fn run_all(s: &Session<'_>) -> Vec<Rendered> {
    vec![
        tables::table1(s),
        tables::table2(s),
        tables::table4(s),
        tables::table5(s),
        fig_datasets::fig1a(s),
        fig_datasets::fig1b(s),
        fig_datasets::fig2a(s),
        fig_datasets::fig2b(s),
        fig_datasets::fig4(s),
        fig_datasets::fig5(s),
        fig_datasets::fig6(s),
        fig_inference::fig8(s),
        fig_inference::fig9a(s),
        fig_inference::fig9b(s),
        fig_inference::fig9c(s),
        fig_inference::fig9d(s),
        fig_inference::fig10a(s),
        fig_inference::fig10b(s),
        fig_analysis::fig11a(s),
        fig_analysis::fig11b(s),
        fig_analysis::fig12a(s),
        fig_analysis::fig12b(s),
        fig_analysis::sec64(s),
        ablations::ablations(s),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn all_experiments_run_at_test_scale() {
        let w = WorldConfig::small(137).generate();
        let s = Session::new(&w, 4);
        let all = run_all(&s);
        assert_eq!(all.len(), 24, "every table/figure plus the ablation suite");
        let mut ids = std::collections::HashSet::new();
        for r in &all {
            assert!(!r.text.is_empty(), "{} rendered empty", r.id);
            assert!(ids.insert(r.id.clone()), "duplicate id {}", r.id);
            assert!(!r.json.is_null(), "{} has no data", r.id);
        }
    }
}
