//! The gateway load study: real HTTP clients over real sockets against
//! a live [`opeer_gateway::Gateway`] while a writer streams measurement
//! epochs into the service it fronts.
//!
//! For each swept connection count the study binds a fresh gateway on
//! an ephemeral loopback port over a measurement-free base service,
//! then races N persistent keep-alive client connections against the
//! delta writer. Each client mixes `/healthz` polls (auditing that the
//! advertised epoch never goes backwards), batched `POST /query`
//! calls, point `GET /ixp` lookups, periodic `GET /metrics` reads, and
//! *deliberately malformed* traffic (unknown routes, unparsable JSON)
//! whose rejection statuses are part of the expected-status audit and
//! whose counts must show up in the gateway's error taxonomy.
//!
//! This is the schema-v5 `gateway` section of `BENCH_pipeline.json`.
//! Latency and throughput numbers are host-dependent CI artifacts; the
//! gates — every response carried its expected status, every client
//! saw monotonic epochs, the taxonomy recorded the deliberate errors,
//! and the panic bulkhead stayed at zero — feed
//! `run_experiments --bench-pipeline`'s exit code via `ok`.

use opeer_core::engine::ParallelConfig;
use opeer_core::incremental::InputDelta;
use opeer_core::input::default_configs;
use opeer_core::pipeline::PipelineConfig;
use opeer_core::service::{PeeringService, QueryRequest};
use opeer_core::InferenceInput;
use opeer_gateway::http::ClientConn;
use opeer_gateway::metrics::MetricsRegistry;
use opeer_gateway::{Gateway, GatewayConfig};
use opeer_measure::campaign::campaign_batches;
use opeer_measure::traceroute::corpus_batches;
use opeer_topology::World;
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Connection counts the gateway study sweeps by default.
pub const DEFAULT_CONNECTION_SWEEP: &[usize] = &[1, 2, 4];

/// Requests per batched `POST /query` call.
const BATCH_SIZE: usize = 64;

/// Client-side socket read timeout. Generous: a stalled server is a
/// bug the expected-status audit should report, not a hang.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// One route's server-side latency figures, copied out of the
/// gateway's metrics registry after the run.
#[derive(Debug, Clone, Serialize)]
pub struct RouteLatency {
    /// Route label (`/query`, `/healthz`, ... or `other`).
    pub route: String,
    /// Requests completed on this route.
    pub requests: u64,
    /// Error responses (status >= 400) on this route.
    pub errors: u64,
    /// Conservative p50 latency bound, µs.
    pub p50_us: u64,
    /// Conservative p99 latency bound, µs.
    pub p99_us: u64,
    /// Largest single request latency, µs.
    pub max_us: u64,
}

/// The gateway's error-taxonomy counters after one point's run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct TaxonomyCounts {
    /// HTTP framing failures.
    pub framing: u64,
    /// `401` auth rejections.
    pub unauthorized: u64,
    /// `429` rate-limit rejections.
    pub rate_limited: u64,
    /// `404`s (unknown routes / unknown entities).
    pub not_found: u64,
    /// `405` method mismatches.
    pub bad_method: u64,
    /// `400` JSON parse failures.
    pub bad_json: u64,
    /// `413` oversized batches.
    pub batch_too_large: u64,
    /// Panic-bulkhead trips. Must stay zero.
    pub internal_panic: u64,
}

impl TaxonomyCounts {
    fn snapshot(metrics: &MetricsRegistry) -> TaxonomyCounts {
        let t = &metrics.taxonomy;
        TaxonomyCounts {
            framing: t.framing.load(Ordering::Relaxed),
            unauthorized: t.unauthorized.load(Ordering::Relaxed),
            rate_limited: t.rate_limited.load(Ordering::Relaxed),
            not_found: t.not_found.load(Ordering::Relaxed),
            bad_method: t.bad_method.load(Ordering::Relaxed),
            bad_json: t.bad_json.load(Ordering::Relaxed),
            batch_too_large: t.batch_too_large.load(Ordering::Relaxed),
            internal_panic: t.internal_panic.load(Ordering::Relaxed),
        }
    }
}

/// One connection-count's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayPoint {
    /// Concurrent client connections (and gateway worker threads).
    pub connections: usize,
    /// Requests the clients completed (responses read), including the
    /// deliberate bad ones.
    pub requests: u64,
    /// Error-status responses among them (all expected: the deliberate
    /// bad traffic).
    pub errors: u64,
    /// Wall-clock of the run, ms.
    pub wall_ms: f64,
    /// Requests per second across all clients.
    pub rps: f64,
    /// Epochs the writer published during the run.
    pub epochs_published: u64,
    /// Highest epoch any client saw on `/healthz`.
    pub max_epoch_seen: u64,
    /// Whether every client saw non-decreasing `/healthz` epochs.
    pub epochs_monotonic: bool,
    /// Whether every response carried exactly the status the client
    /// expected for what it sent.
    pub statuses_expected: bool,
    /// Whether the taxonomy recorded every deliberate bad request.
    pub taxonomy_populated: bool,
    /// The error-taxonomy counters after the run.
    pub taxonomy: TaxonomyCounts,
    /// Per-route server-side latency figures.
    pub routes: Vec<RouteLatency>,
}

/// The gateway study, serialised into `BENCH_pipeline.json`'s
/// `gateway` section (schema v5).
#[derive(Debug, Clone, Serialize)]
pub struct GatewayReport {
    /// Epoch batches the writer replays per point.
    pub epochs: usize,
    /// One point per swept connection count.
    pub points: Vec<GatewayPoint>,
    /// Whether every point's clients saw monotonic epochs.
    pub epochs_monotonic: bool,
    /// Whether every point's responses carried expected statuses.
    pub statuses_expected: bool,
    /// Panic-bulkhead trips summed over all points. Must be zero.
    pub panics: u64,
    /// The gate: monotonic epochs, expected statuses, populated
    /// taxonomy, zero panics.
    pub ok: bool,
}

/// What one client connection saw.
struct ClientTally {
    requests: u64,
    errors: u64,
    max_epoch: u64,
    monotonic: bool,
    statuses_expected: bool,
}

/// Sends one request and audits the response status. `None` on socket
/// errors (which also fail the status audit — the server must answer
/// everything these clients send).
fn exchange(
    conn: &mut ClientConn,
    tally: &mut ClientTally,
    method: &str,
    target: &str,
    body: &[u8],
    expect: u16,
) -> Option<Vec<u8>> {
    let sent = conn.send(method, target, &[], body);
    let response = sent.and_then(|()| conn.read_response());
    let Ok(response) = response else {
        tally.statuses_expected = false;
        return None;
    };
    tally.requests += 1;
    if response.status >= 400 {
        tally.errors += 1;
    }
    if response.status != expect {
        tally.statuses_expected = false;
    }
    Some(response.body)
}

/// Pulls a `u64` field out of a parsed JSON object.
fn field_u64(value: &Value, name: &str) -> Option<u64> {
    let Value::Object(members) = value else {
        return None;
    };
    members
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

/// One client connection's request loop, running until `done` flips
/// (sampled before each iteration, so the final epoch published before
/// the flip is still observed).
fn client_loop(addr: SocketAddr, n_ixp: usize, done: &AtomicBool, salt: usize) -> ClientTally {
    let mut tally = ClientTally {
        requests: 0,
        errors: 0,
        max_epoch: 0,
        monotonic: true,
        statuses_expected: true,
    };
    let Ok(mut conn) = ClientConn::connect(addr, CLIENT_TIMEOUT) else {
        tally.statuses_expected = false;
        return tally;
    };
    let mut last_epoch = 0u64;
    let mut cursor = salt;
    let mut iteration = 0usize;
    loop {
        let stop_after_this = done.load(Ordering::Acquire);

        // Liveness poll; the advertised epoch must never go backwards.
        if let Some(body) = exchange(&mut conn, &mut tally, "GET", "/healthz", b"", 200) {
            match serde_json::from_slice(&body)
                .ok()
                .as_ref()
                .and_then(|v| field_u64(v, "epoch"))
            {
                Some(epoch) => {
                    if epoch < last_epoch {
                        tally.monotonic = false;
                    }
                    last_epoch = epoch;
                    tally.max_epoch = tally.max_epoch.max(epoch);
                }
                None => tally.statuses_expected = false,
            }
        }

        // A batched query over real IXP ids of this world.
        if n_ixp > 0 {
            let batch: Vec<QueryRequest> = (0..BATCH_SIZE)
                .map(|k| QueryRequest::IxpReport {
                    ixp: cursor.wrapping_add(k.wrapping_mul(7919)) % n_ixp,
                })
                .collect();
            let body = serde_json::to_string(&batch).expect("query batch serialises");
            exchange(
                &mut conn,
                &mut tally,
                "POST",
                "/query",
                body.as_bytes(),
                200,
            );

            // A point lookup on the same keyspace.
            let target = format!("/ixp?ixp={}", cursor % n_ixp);
            exchange(&mut conn, &mut tally, "GET", &target, b"", 200);
        }
        cursor = cursor.wrapping_add(BATCH_SIZE);

        // Deliberate bad traffic (first iteration and every 4th after):
        // the rejects must carry their mapped statuses and land in the
        // taxonomy.
        if iteration.is_multiple_of(4) {
            exchange(&mut conn, &mut tally, "GET", "/nope", b"", 404);
            exchange(&mut conn, &mut tally, "POST", "/query", b"{not json", 400);
        }
        // Periodic metrics scrape, to keep that route in the sweep.
        if iteration.is_multiple_of(8) {
            exchange(&mut conn, &mut tally, "GET", "/metrics", b"", 200);
        }

        iteration += 1;
        if stop_after_this {
            return tally;
        }
    }
}

/// Runs the gateway study: for each connection count, a fresh service
/// over the measurement-free base fronted by a fresh gateway on an
/// ephemeral port, a writer replaying `epochs` delta batches, and N
/// keep-alive clients hammering the wire throughout.
pub fn run_gateway_study(
    world: &World,
    seed: u64,
    epochs: usize,
    connection_sweep: &[usize],
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> GatewayReport {
    let epochs = epochs.max(1);
    let (_registry, campaign_cfg, corpus_cfg) = default_configs(seed);

    let mut points = Vec::with_capacity(connection_sweep.len());
    let mut panics = 0u64;
    for &connections in connection_sweep {
        let connections = connections.max(1);
        let service = PeeringService::build(InferenceInput::assemble_base(world, seed), cfg, par);
        let n_ixp = service.snapshot().ixp_count();
        // Batch generation stays outside the timed window, like the
        // serving study: this measures the wire plane.
        let camp = campaign_batches(world, &service.input().vps, campaign_cfg, epochs);
        let corp = corpus_batches(world, corpus_cfg, epochs);
        let deltas = InputDelta::zip_batches(camp, corp);
        let epochs_published = deltas.len() as u64;

        let gateway = Gateway::bind(GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: connections,
            ..GatewayConfig::default()
        })
        .expect("bind ephemeral loopback port");
        let addr = gateway.local_addr();
        let metrics = gateway.metrics();
        let control = gateway.control();

        let done = AtomicBool::new(false);
        let t0 = Instant::now();
        let tallies = std::thread::scope(|scope| {
            let service = &service;
            let gateway = &gateway;
            let done = &done;
            scope.spawn(move || gateway.serve(service));
            let clients: Vec<_> = (0..connections)
                .map(|c| scope.spawn(move || client_loop(addr, n_ixp, done, c * 104729)))
                .collect();
            for delta in deltas {
                service.apply(delta);
            }
            done.store(true, Ordering::Release);
            let tallies: Vec<ClientTally> = clients
                .into_iter()
                .map(|h| h.join().expect("client panicked"))
                .collect();
            control.stop();
            tallies
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let requests: u64 = tallies.iter().map(|t| t.requests).sum();
        let taxonomy = TaxonomyCounts::snapshot(&metrics);
        panics += taxonomy.internal_panic;
        // Every client sends one unknown-route and one bad-JSON request
        // on its first iteration, so both counters must reach at least
        // the connection count.
        let floor = connections as u64;
        let taxonomy_populated = taxonomy.not_found >= floor && taxonomy.bad_json >= floor;
        let routes = metrics
            .route_stats()
            .into_iter()
            .filter(|s| s.requests > 0)
            .map(|s| RouteLatency {
                route: s.route.to_string(),
                requests: s.requests,
                errors: s.errors,
                p50_us: s.p50_us,
                p99_us: s.p99_us,
                max_us: s.max_us,
            })
            .collect();

        points.push(GatewayPoint {
            connections,
            requests,
            errors: tallies.iter().map(|t| t.errors).sum(),
            wall_ms,
            rps: requests as f64 / (wall_ms / 1e3).max(f64::EPSILON),
            epochs_published,
            max_epoch_seen: tallies.iter().map(|t| t.max_epoch).max().unwrap_or(0),
            epochs_monotonic: tallies.iter().all(|t| t.monotonic),
            statuses_expected: tallies.iter().all(|t| t.statuses_expected),
            taxonomy_populated,
            taxonomy,
            routes,
        });
    }

    let epochs_monotonic = points.iter().all(|p| p.epochs_monotonic);
    let statuses_expected = points.iter().all(|p| p.statuses_expected);
    let taxonomy_populated = points.iter().all(|p| p.taxonomy_populated);
    GatewayReport {
        epochs,
        ok: epochs_monotonic && statuses_expected && taxonomy_populated && panics == 0,
        epochs_monotonic,
        statuses_expected,
        panics,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn gateway_study_serves_expected_statuses_under_load() {
        let world = WorldConfig::small(7).generate();
        let report = run_gateway_study(
            &world,
            7,
            3,
            &[1, 2],
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        assert!(report.ok, "gateway study gate failed: {report:?}");
        assert_eq!(report.panics, 0);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.requests > 0, "{} connections sent nothing", p.connections);
            assert!(p.rps > 0.0);
            assert!(p.statuses_expected);
            assert!(p.epochs_monotonic);
            // The final epoch published before the stop flag flipped
            // must have been visible to the clients.
            assert_eq!(p.max_epoch_seen, p.epochs_published);
            // The deliberate bad traffic landed in the taxonomy...
            assert!(p.taxonomy.not_found >= p.connections as u64);
            assert!(p.taxonomy.bad_json >= p.connections as u64);
            // ...and the query route carried real latency samples.
            let query = p
                .routes
                .iter()
                .find(|r| r.route == "/query")
                .expect("query route present");
            assert!(query.requests > 0);
            assert!(query.p99_us >= query.p50_us);
        }
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"points\":"));
        assert!(json.contains("\"taxonomy\":"));
    }
}
