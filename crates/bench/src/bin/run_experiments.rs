//! Regenerates every table and figure of the paper — or, with
//! `--bench-pipeline`, runs the engine scaling study, or, with
//! `--epochs N`, replays the measurements through the incremental
//! pipeline in N epoch batches, or, with `--archive-months N`, replays
//! N monthly world revisions through the longitudinal snapshot
//! archive, or, with `--sweep GRIDSPEC`, runs the multi-world fleet
//! over a seed × knob × scenario grid, or, with `--compare-bench`,
//! diffs two scaling reports as a regression gate.
//!
//! ```text
//! run_experiments [--scale paper|large|xlarge|small] [--seed N] [--out DIR]
//!                 [--bench-pipeline] [--bench-samples N] [--epochs N]
//!                 [--archive-months N]
//!                 [--min-host-parallelism N] [--min-pipeline-speedup X]
//! run_experiments --sweep GRIDSPEC [--out DIR]
//! run_experiments --compare-bench OLD.json NEW.json [--tolerance X]
//! ```
//!
//! Unknown and **duplicate** flags are rejected with a usage message
//! and exit code 2 — a grid-spec typo must never silently fall through
//! to the default experiment run.
//!
//! Experiment mode writes one `<id>.txt` and one `<id>.json` per
//! experiment into the output directory and prints the text reports to
//! stdout. The default output directory is `target/experiments`.
//!
//! Bench mode sweeps the sharded parallel engine over 1/2/4/8 worker
//! threads against the sequential reference — three phases: measurement
//! assembly (`assemble_parallel`), inference (`run_pipeline_parallel`),
//! and the overlapped end-to-end path (`assemble_and_run_parallel`) —
//! plus a streaming epoch replay through the incremental pipeline, a
//! serving-throughput sweep (reader threads querying the
//! `PeeringService` while a writer streams epochs), the wire-level
//! gateway load study (HTTP clients over loopback sockets against an
//! `opeer-gateway` fronting the same service), and the longitudinal
//! archive replay (monthly world revisions retained as time-travel
//! epochs, `--archive-months N` months of them), writes the
//! machine-readable report to `<out>/BENCH_pipeline.json` (schema
//! `opeer-bench-pipeline/9`, documented in the README), and **exits
//! non-zero if any run is not byte-identical to its sequential
//! reference, if any serving reader observed a non-monotonic epoch, if
//! the gateway study's expected-status / taxonomy / zero-panic gate
//! failed, or if the archive replay diverged** (this is the check CI's
//! bench-smoke job enforces). The
//! optional perf-gate floors harden it further for CI's multicore perf
//! job: `--min-host-parallelism N` fails the run on a runner with
//! fewer than N available cores, and `--min-pipeline-speedup X` fails
//! it when the best pipeline-phase speedup across the thread sweep
//! lands below X.
//!
//! Compare mode (`--compare-bench OLD.json NEW.json`) reads two
//! scaling reports — any schema version that carries the phase
//! sections — and **exits non-zero if any phase at any shared thread
//! count regressed by more than the tolerance** (20 % mean wall-clock
//! by default, `--tolerance 0.2`-style override). CI's perf job runs
//! it against the committed milestone report.
//!
//! Streaming mode (`--epochs N` without `--bench-pipeline`) drives the
//! incremental pipeline alone: measurements are delivered in N epoch
//! batches, per-epoch wall-clock and dirty-shard counts are printed,
//! and the process **exits non-zero if the incremental result diverges
//! from the one-shot pipeline** — the same contract as
//! `--bench-pipeline` (CI's determinism job replays this under its
//! `OPEER_THREADS` matrix).
//!
//! Archive mode (`--archive-months N` without `--bench-pipeline`)
//! drives the longitudinal archive alone: N monthly world revisions
//! stream through a `SnapshotArchive`, per-month wall-clock and
//! dirty-shard counts, time-travel query throughput, and the
//! retained-bytes estimate are printed, and the process **exits
//! non-zero if the final archived state diverges from the one-shot
//! pipeline over the accumulated input**. With `--bench-pipeline`, the
//! flag sets how many months the report's `archive` section replays.
//!
//! Memory mode (`--memory-study`) drives the structural-sharing study
//! alone: an epoch stream (measurement fill, then a content-free
//! steady-state tail) through a retention-capped archive (cap from
//! `OPEER_ARCHIVE_RETAIN`, default 6), with per-epoch publish dirty
//! sets, publish wall-clock, and deduplicated retained bytes. Writes
//! `<out>/BENCH_memory.json` and **exits non-zero unless every gate
//! holds**: byte-identity against the non-shared baseline, flat
//! retained bytes after compaction, full pointer sharing on clean
//! epochs, and a ≥10× zero-dirty publish speedup. `--epochs N`
//! overrides the stream length (default 24).
//! Bench, streaming, archive, and memory modes default to
//! `--scale large`; experiment mode defaults to `--scale paper`.
//!
//! Sweep mode (`--sweep GRIDSPEC`) runs the multi-world fleet: one
//! world per (knob, seed) cell fanned over the worker pool, optionally
//! extended with what-if scenario cells, aggregated into mean ± 95 %
//! confidence bands (grid-spec syntax in `opeer_bench::fleet`). Writes
//! `<out>/BENCH_sweep.json` (schema v9's `sweep` section) and **exits
//! non-zero unless the identity gate holds** — the first baseline cell
//! must reproduce on a fresh re-run and the first scenario cell's
//! delta path must equal a one-shot assemble + pipeline on the
//! scenario world. CI's sweep-smoke step enforces this.

use opeer_bench::{
    memory_gates_hold, run_all, run_archive_study, run_memory_study, run_scaling_study,
    run_streaming_session, Session, DEFAULT_ARCHIVE_MONTHS, DEFAULT_MEMORY_EPOCHS,
    DEFAULT_MEMORY_RETAIN, DEFAULT_STREAMING_EPOCHS, DEFAULT_THREAD_SWEEP,
};
use opeer_core::engine::ParallelConfig;
use opeer_core::pipeline::PipelineConfig;
use opeer_topology::WorldConfig;
use std::io::Write;
use std::path::PathBuf;

#[derive(Debug)]
struct Args {
    scale: Option<String>,
    seed: u64,
    out: PathBuf,
    bench_pipeline: bool,
    bench_samples: usize,
    epochs: Option<usize>,
    archive_months: Option<u32>,
    memory_study: bool,
    sweep: Option<String>,
    min_host_parallelism: Option<usize>,
    min_pipeline_speedup: Option<f64>,
    compare_bench: Option<(PathBuf, PathBuf)>,
    tolerance: f64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: None,
            seed: 42,
            out: PathBuf::from("target/experiments"),
            bench_pipeline: false,
            bench_samples: 5,
            epochs: None,
            archive_months: None,
            memory_study: false,
            sweep: None,
            min_host_parallelism: None,
            min_pipeline_speedup: None,
            compare_bench: None,
            tolerance: opeer_bench::DEFAULT_TOLERANCE,
        }
    }
}

/// Pure argv parser. `Err("")` requests the help text (exit 0); any
/// other `Err` is a usage error (exit 2). Unknown flags and **repeated**
/// flags are both errors — every flag takes effect exactly once, so a
/// later duplicate can't silently overwrite an earlier value.
fn parse_from(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut seen: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let flag = flag.as_str();
        if matches!(flag, "--help" | "-h") {
            return Err(String::new());
        }
        if seen.iter().any(|s| s == flag) {
            return Err(format!("duplicate flag {flag}"));
        }
        seen.push(flag.to_string());
        match flag {
            "--scale" => {
                args.scale = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "missing --scale value".to_string())?,
                )
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "bad --seed value".to_string())?
            }
            "--out" => {
                args.out = PathBuf::from(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "missing --out value".to_string())?,
                )
            }
            "--bench-pipeline" => args.bench_pipeline = true,
            "--bench-samples" => {
                args.bench_samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "bad --bench-samples value".to_string())?
            }
            "--epochs" => {
                args.epochs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "bad --epochs value".to_string())?,
                )
            }
            "--archive-months" => {
                args.archive_months = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "bad --archive-months value".to_string())?,
                )
            }
            "--memory-study" => args.memory_study = true,
            "--sweep" => {
                args.sweep = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "missing --sweep GRIDSPEC".to_string())?,
                )
            }
            "--min-host-parallelism" => {
                args.min_host_parallelism = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "bad --min-host-parallelism value".to_string())?,
                )
            }
            "--min-pipeline-speedup" => {
                args.min_pipeline_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&x: &f64| x.is_finite() && x > 0.0)
                        .ok_or_else(|| "bad --min-pipeline-speedup value".to_string())?,
                )
            }
            "--compare-bench" => {
                let old = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "missing --compare-bench OLD.json".to_string())?;
                let new = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "missing --compare-bench NEW.json".to_string())?;
                args.compare_bench = Some((PathBuf::from(old), PathBuf::from(new)));
            }
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&x: &f64| x.is_finite() && x >= 0.0)
                    .ok_or_else(|| "bad --tolerance value".to_string())?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_from(&argv).unwrap_or_else(|err| usage(&err))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: run_experiments [--scale paper|large|xlarge|small] [--seed N] [--out DIR] \
                       [--bench-pipeline] [--bench-samples N] [--epochs N] \
                       [--archive-months N] [--memory-study] \
                       [--min-host-parallelism N] [--min-pipeline-speedup X]\n\
       run_experiments --sweep GRIDSPEC [--out DIR]\n\
       run_experiments --compare-bench OLD.json NEW.json [--tolerance X]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn world_config(scale: &str, seed: u64) -> WorldConfig {
    match scale {
        "paper" => WorldConfig::paper(seed),
        "large" => WorldConfig::large(seed),
        "xlarge" => WorldConfig::xlarge(seed),
        "small" => WorldConfig::small(seed),
        other => usage(&format!("unknown scale {other}")),
    }
}

/// Compare mode: the regression gate between two scaling reports.
fn run_compare_bench(old_path: &PathBuf, new_path: &PathBuf, tolerance: f64) -> ! {
    let load = |path: &PathBuf| -> serde_json::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("error: {} is not valid JSON: {e}", path.display());
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    match opeer_bench::compare_reports(&old, &new, tolerance) {
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        Ok(cmp) => {
            println!(
                "compared {} configurations ({} vs {}), tolerance {:.0} %",
                cmp.compared,
                old_path.display(),
                new_path.display(),
                tolerance * 100.0
            );
            for r in &cmp.regressions {
                println!("  REGRESSION: {r}");
            }
            if cmp.passed() {
                println!("  no regression past tolerance");
                std::process::exit(0);
            }
            eprintln!(
                "error: {} configuration(s) regressed past {:.0} %",
                cmp.regressions.len(),
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}

/// Sweep mode: the multi-world fleet with confidence bands.
fn run_sweep_mode(args: &Args, spec: &str) -> ! {
    let grid = match opeer_bench::SweepGrid::parse(spec) {
        Ok(grid) => grid,
        Err(e) => usage(&format!("bad --sweep grid spec: {e}")),
    };
    let par = ParallelConfig::from_env();
    eprintln!(
        "sweep: {} knobs × {} seeds × (1 + {} scenarios) = {} cells on {} threads...",
        grid.knobs.len(),
        grid.seeds.len(),
        grid.scenarios.len(),
        grid.n_cells(),
        par.threads
    );
    eprintln!("  canonical spec: {}", grid.spec);
    let report = match opeer_bench::run_sweep(&grid, &par) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: sweep failed: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "[sweep] {} cells, {} band groups",
        report.cells.len(),
        report.bands.len()
    );
    for band in &report.bands {
        let scenario = band.scenario.as_deref().unwrap_or("baseline");
        println!("  knob={} scenario={scenario}", band.knob);
        println!(
            "    remote share {:.4} ± {:.4}  accuracy {:.4} ± {:.4}  coverage {:.4} ± {:.4}",
            band.remote_share.mean,
            band.remote_share.width() / 2.0,
            band.accuracy.mean,
            band.accuracy.width() / 2.0,
            band.coverage.mean,
            band.coverage.width() / 2.0,
        );
        if let Some(delta) = &band.share_delta {
            println!(
                "    share delta  {:+.4} ± {:.4}",
                delta.mean,
                delta.width() / 2.0
            );
        }
    }
    println!(
        "  total {:.1} ms, mean cell {:.1} ms, identity={}",
        report.total_wall_ms, report.mean_cell_wall_ms, report.identity
    );

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let path = args.out.join("BENCH_sweep.json");
    let bench = opeer_bench::SweepBenchReport::new(report);
    let json = serde_json::to_string_pretty(&bench).expect("report serialises");
    std::fs::write(&path, json).expect("write BENCH_sweep.json");
    println!("wrote {}", path.display());

    if !bench.sweep.identity {
        eprintln!("error: sweep identity gate failed — cell results are not reproducible");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Bench mode: the engine scaling study plus the determinism gate.
fn run_bench_pipeline(args: &Args) -> ! {
    let scale = args.scale.as_deref().unwrap_or("large");
    let cfg = world_config(scale, args.seed);
    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let epochs = args.epochs.unwrap_or(DEFAULT_STREAMING_EPOCHS);
    let archive_months = args.archive_months.unwrap_or(DEFAULT_ARCHIVE_MONTHS);
    eprintln!(
        "scaling study: {} samples per point, threads {:?}, {} streaming epochs, {} archive months...",
        args.bench_samples, DEFAULT_THREAD_SWEEP, epochs, archive_months
    );
    let report = run_scaling_study(
        scale,
        &world,
        args.seed,
        DEFAULT_THREAD_SWEEP,
        args.bench_samples,
        epochs,
        archive_months,
    );

    for (phase, scaling) in [
        ("assembly", &report.assembly),
        ("pipeline", &report.pipeline),
        ("end-to-end", &report.end_to_end),
    ] {
        println!("[{phase}]");
        println!(
            "  sequential      [{:8.3} {:8.3} {:8.3}] ms",
            scaling.sequential_ms.min, scaling.sequential_ms.mean, scaling.sequential_ms.max
        );
        for p in &scaling.points {
            println!(
                "  threads={:<2}      [{:8.3} {:8.3} {:8.3}] ms  speedup {:.2}x  identical={}",
                p.threads,
                p.timing_ms.min,
                p.timing_ms.mean,
                p.timing_ms.max,
                p.speedup,
                p.identical
            );
        }
    }
    print_streaming(&report.streaming);
    print_serving(&report.serving);
    print_gateway(&report.gateway);
    print_archive(&report.archive);
    print_memory(&report.memory);

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let path = args.out.join("BENCH_pipeline.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());

    let mut failed = false;
    if !report.all_identical {
        eprintln!("error: parallel results diverged from the sequential reference");
        failed = true;
    }
    if let Some(min) = args.min_host_parallelism {
        if report.host_parallelism < min {
            eprintln!(
                "error: host parallelism {} below required floor {min} \
                 (perf gate needs a multicore runner)",
                report.host_parallelism
            );
            failed = true;
        }
    }
    if let Some(min) = args.min_pipeline_speedup {
        if report.best_pipeline_speedup < min {
            eprintln!(
                "error: best pipeline speedup {:.2}x below required floor {min}x",
                report.best_pipeline_speedup
            );
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Streaming mode: the incremental epoch replay plus the identity gate.
fn run_streaming(args: &Args, epochs: usize) -> ! {
    let scale = args.scale.as_deref().unwrap_or("large");
    let cfg = world_config(scale, args.seed);
    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let par = ParallelConfig::from_env();
    eprintln!(
        "streaming replay: {} epochs, {} worker threads...",
        epochs, par.threads
    );
    let report = run_streaming_session(&world, args.seed, epochs, &PipelineConfig::default(), &par);
    print_streaming(&report);

    if !report.identical {
        eprintln!("error: incremental replay diverged from the one-shot pipeline");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Archive mode: the longitudinal monthly replay plus the identity gate.
fn run_archive(args: &Args, months: u32) -> ! {
    let scale = args.scale.as_deref().unwrap_or("large");
    let cfg = world_config(scale, args.seed);
    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let par = ParallelConfig::from_env();
    eprintln!(
        "archive replay: {} months, {} worker threads...",
        months, par.threads
    );
    let report = run_archive_study(&world, args.seed, months, &PipelineConfig::default(), &par);
    print_archive(&report);

    if !report.identical {
        eprintln!("error: archive replay diverged from the one-shot pipeline");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Memory mode: the structural-sharing study plus its four gates.
fn run_memory(args: &Args) -> ! {
    let scale = args.scale.as_deref().unwrap_or("large");
    let cfg = world_config(scale, args.seed);
    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let par = ParallelConfig::from_env();
    let epochs = args.epochs.unwrap_or(DEFAULT_MEMORY_EPOCHS);
    let retain = std::env::var(opeer_core::archive::RETAIN_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_MEMORY_RETAIN);
    eprintln!(
        "memory study: {} epochs, retain {}, {} worker threads...",
        epochs, retain, par.threads
    );
    let report = run_memory_study(
        &world,
        args.seed,
        epochs,
        retain,
        &PipelineConfig::default(),
        &par,
    );
    print_memory(&report);

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let path = args.out.join("BENCH_memory.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write BENCH_memory.json");
    println!("wrote {}", path.display());

    if !report.identical {
        eprintln!("error: shared snapshots diverged from the non-shared baseline");
    }
    if !report.flat_after_compaction {
        eprintln!("error: retained bytes drifted past tolerance after compaction");
    }
    if !report.zero_dirty_shared_all {
        eprintln!("error: a clean epoch rebuilt a partition instead of sharing it");
    }
    if report.publish_speedup < opeer_bench::memory::MIN_PUBLISH_SPEEDUP {
        eprintln!(
            "error: zero-dirty publish speedup {:.1}x below the {:.0}x floor",
            report.publish_speedup,
            opeer_bench::memory::MIN_PUBLISH_SPEEDUP
        );
    }
    std::process::exit(if memory_gates_hold(&report) { 0 } else { 1 });
}

fn print_memory(m: &opeer_bench::MemoryReport) {
    println!(
        "[memory: {} epochs ({} fill), retain {}]",
        m.epochs, m.fill_epochs, m.retain
    );
    for e in &m.per_epoch {
        println!(
            "  epoch {:<2} +{:>6} obs +{:>6} traces  dirty_ixps={:<3} dirty_asns={:<4} clean={:<5} publish {:8.3} ms  retained {} epochs / {:>9} bytes  shared/owned {}/{}",
            e.epoch,
            e.campaign_observations,
            e.corpus_traces,
            e.dirty_ixps,
            e.dirty_asns,
            e.clean,
            e.publish_ms,
            e.retained_epochs,
            e.retained_bytes,
            e.shared_partitions,
            e.owned_partitions,
        );
    }
    println!(
        "  final: ~{} retained bytes; flat_after_compaction={}; \
         full publish {:.3} ms vs zero-dirty {:.6} ms ({:.0}x); \
         zero_dirty_shared_all={}; identical={}",
        m.retained_bytes_final,
        m.flat_after_compaction,
        m.full_publish_ms,
        m.zero_dirty_publish_ms,
        m.publish_speedup,
        m.zero_dirty_shared_all,
        m.identical
    );
}

fn print_streaming(s: &opeer_bench::StreamingReport) {
    println!("[streaming: {} epochs]", s.epochs);
    println!("  base (registry + vps + prefix2as)  {:8.3} ms", s.base_ms);
    for e in &s.per_epoch {
        println!(
            "  epoch {:<2} +{:>6} obs +{:>6} traces  {:8.3} ms  dirty: s1={} s2={} s3={} corpus={} s4={} s5={}",
            e.epoch,
            e.campaign_observations,
            e.corpus_traces,
            e.wall_ms,
            e.dirty.step1_ixps,
            e.dirty.step2_observations,
            e.dirty.step3_targets,
            e.dirty.corpus_traces,
            e.dirty.step4_candidates,
            e.dirty.step5_ixps,
        );
    }
    println!(
        "  last epoch: {} of {} shard units dirty; {:.3} ms vs {:.3} ms full re-run; identical={}",
        s.last_epoch_dirty, s.total_shards, s.last_epoch_ms, s.full_rerun_ms, s.identical
    );
}

fn print_gateway(g: &opeer_bench::GatewayReport) {
    println!("[gateway: {} epochs streamed per point]", g.epochs);
    for p in &g.points {
        println!(
            "  conns={:<2} {:>9} requests in {:8.3} ms  {:>10.0} req/s  epochs seen ..{} monotonic={} statuses_expected={}",
            p.connections,
            p.requests,
            p.wall_ms,
            p.rps,
            p.max_epoch_seen,
            p.epochs_monotonic,
            p.statuses_expected,
        );
        for r in &p.routes {
            println!(
                "    {:<9} {:>8} req {:>6} err  p50 {:>7} µs  p99 {:>7} µs  max {:>7} µs",
                r.route, r.requests, r.errors, r.p50_us, r.p99_us, r.max_us
            );
        }
    }
    println!(
        "  ok={} epochs_monotonic={} statuses_expected={} panics={}",
        g.ok, g.epochs_monotonic, g.statuses_expected, g.panics
    );
}

fn print_serving(s: &opeer_bench::ServingReport) {
    println!("[serving: {} epochs streamed per point]", s.epochs);
    for p in &s.points {
        println!(
            "  readers={:<2} {:>9} queries in {:8.3} ms  {:>12.0} q/s  epochs seen [{}..{}] monotonic={}",
            p.readers,
            p.queries,
            p.wall_ms,
            p.qps,
            p.min_epoch_seen,
            p.max_epoch_seen,
            p.epochs_monotonic,
        );
    }
    println!(
        "  identical={} epochs_monotonic={} tags_consistent={}",
        s.identical, s.epochs_monotonic, s.tags_consistent
    );
}

fn print_archive(a: &opeer_bench::ArchiveReport) {
    println!("[archive: {} months replayed]", a.months);
    println!("  base epoch build                   {:8.3} ms", a.base_ms);
    for m in &a.per_month {
        println!(
            "  month {:<2} epoch {:<2} registry={:<5} +{:>6} obs +{:>6} traces  {:8.3} ms  dirty={}",
            m.month,
            m.epoch,
            m.registry_revision,
            m.campaign_observations,
            m.corpus_traces,
            m.wall_ms,
            m.dirty.total(),
        );
    }
    println!(
        "  {} epochs archived in {:.3} ms; {} time-travel queries at {:.0} q/s; ~{} retained bytes; identical={}",
        a.epochs_archived, a.replay_ms, a.queries, a.query_qps, a.retained_bytes, a.identical
    );
}

fn main() {
    let args = parse_args();
    if let Some((old, new)) = &args.compare_bench {
        run_compare_bench(old, new, args.tolerance);
    }
    if let Some(spec) = &args.sweep {
        run_sweep_mode(&args, spec);
    }
    if args.bench_pipeline {
        run_bench_pipeline(&args);
    }
    if args.memory_study {
        run_memory(&args);
    }
    if let Some(epochs) = args.epochs {
        run_streaming(&args, epochs);
    }
    if let Some(months) = args.archive_months {
        run_archive(&args, months);
    }
    let scale = args.scale.as_deref().unwrap_or("paper").to_string();
    let cfg = world_config(&scale, args.seed);

    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    eprintln!("building measurement/inference session...");
    let t1 = std::time::Instant::now();
    let session = Session::new(&world, args.seed);
    {
        let input = session.input();
        eprintln!(
            "  campaign: {} observations; corpus: {} traceroutes; inferences: {} [{:?}]",
            input.campaign.observations.len(),
            input.corpus.len(),
            session.result().inferences.len(),
            t1.elapsed()
        );
    }

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let t2 = std::time::Instant::now();
    let all = run_all(&session);
    eprintln!("experiments done [{:?}]", t2.elapsed());

    for r in &all {
        let mut txt =
            std::fs::File::create(args.out.join(format!("{}.txt", r.id))).expect("write .txt");
        writeln!(txt, "# {}\n\n{}", r.title, r.text).expect("write text");
        let json = serde_json::to_string_pretty(&r.json).expect("serialise");
        std::fs::write(args.out.join(format!("{}.json", r.id)), json).expect("write .json");

        println!("════════════════════════════════════════════════════════════");
        println!("{} — {}", r.id, r.title);
        println!("────────────────────────────────────────────────────────────");
        println!("{}", r.text);
    }
    println!("wrote {} experiments to {}", all.len(), args.out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let args = parse_from(&[]).expect("empty argv parses");
        assert_eq!(args.seed, 42);
        assert_eq!(args.out, PathBuf::from("target/experiments"));
        assert!(args.scale.is_none());
        assert!(args.sweep.is_none());
        assert!(!args.bench_pipeline);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_from(&argv(&["--swep", "base=tiny"])).unwrap_err();
        assert!(err.contains("unknown flag --swep"), "{err}");
    }

    #[test]
    fn duplicate_value_flag_is_rejected() {
        let err = parse_from(&argv(&["--seed", "1", "--seed", "2"])).unwrap_err();
        assert!(err.contains("duplicate flag --seed"), "{err}");
    }

    #[test]
    fn duplicate_boolean_flag_is_rejected() {
        let err = parse_from(&argv(&["--memory-study", "--memory-study"])).unwrap_err();
        assert!(err.contains("duplicate flag --memory-study"), "{err}");
    }

    #[test]
    fn help_is_an_empty_error() {
        assert_eq!(parse_from(&argv(&["-h"])).unwrap_err(), "");
        assert_eq!(
            parse_from(&argv(&["--seed", "7", "--help"])).unwrap_err(),
            ""
        );
    }

    #[test]
    fn sweep_spec_is_captured() {
        let args = parse_from(&argv(&["--sweep", "base=tiny;seeds=1,2", "--out", "x"]))
            .expect("sweep argv parses");
        assert_eq!(args.sweep.as_deref(), Some("base=tiny;seeds=1,2"));
        assert_eq!(args.out, PathBuf::from("x"));
    }

    #[test]
    fn sweep_without_spec_is_rejected() {
        let err = parse_from(&argv(&["--sweep"])).unwrap_err();
        assert!(err.contains("missing --sweep"), "{err}");
    }

    #[test]
    fn bad_numeric_values_are_rejected() {
        assert!(parse_from(&argv(&["--seed", "x"])).is_err());
        assert!(parse_from(&argv(&["--bench-samples", "0"])).is_err());
        assert!(parse_from(&argv(&["--tolerance", "-1"])).is_err());
    }
}
