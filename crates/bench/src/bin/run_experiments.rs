//! Regenerates every table and figure of the paper — or, with
//! `--bench-pipeline`, runs the engine scaling study, or, with
//! `--epochs N`, replays the measurements through the incremental
//! pipeline in N epoch batches.
//!
//! ```text
//! run_experiments [--scale paper|large|small] [--seed N] [--out DIR]
//!                 [--bench-pipeline] [--bench-samples N] [--epochs N]
//! ```
//!
//! Experiment mode writes one `<id>.txt` and one `<id>.json` per
//! experiment into the output directory and prints the text reports to
//! stdout. The default output directory is `target/experiments`.
//!
//! Bench mode sweeps the sharded parallel engine over 1/2/4/8 worker
//! threads against the sequential reference — three phases: measurement
//! assembly (`assemble_parallel`), inference (`run_pipeline_parallel`),
//! and the overlapped end-to-end path (`assemble_and_run_parallel`) —
//! plus a streaming epoch replay through the incremental pipeline, a
//! serving-throughput sweep (reader threads querying the
//! `PeeringService` while a writer streams epochs), and the wire-level
//! gateway load study (HTTP clients over loopback sockets against an
//! `opeer-gateway` fronting the same service), writes the
//! machine-readable report to `<out>/BENCH_pipeline.json` (schema
//! `opeer-bench-pipeline/5`, documented in the README), and **exits
//! non-zero if any run is not byte-identical to its sequential
//! reference, if any serving reader observed a non-monotonic epoch, or
//! if the gateway study's expected-status / taxonomy / zero-panic gate
//! failed** (this is the check CI's bench-smoke job enforces).
//!
//! Streaming mode (`--epochs N` without `--bench-pipeline`) drives the
//! incremental pipeline alone: measurements are delivered in N epoch
//! batches, per-epoch wall-clock and dirty-shard counts are printed,
//! and the process **exits non-zero if the incremental result diverges
//! from the one-shot pipeline** — the same contract as
//! `--bench-pipeline` (CI's determinism job replays this under its
//! `OPEER_THREADS` matrix). Bench and streaming modes default to
//! `--scale large`; experiment mode defaults to `--scale paper`.

use opeer_bench::{
    run_all, run_scaling_study, run_streaming_session, Session, DEFAULT_STREAMING_EPOCHS,
    DEFAULT_THREAD_SWEEP,
};
use opeer_core::engine::ParallelConfig;
use opeer_core::pipeline::PipelineConfig;
use opeer_topology::WorldConfig;
use std::io::Write;
use std::path::PathBuf;

struct Args {
    scale: Option<String>,
    seed: u64,
    out: PathBuf,
    bench_pipeline: bool,
    bench_samples: usize,
    epochs: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: None,
        seed: 42,
        out: PathBuf::from("target/experiments"),
        bench_pipeline: false,
        bench_samples: 5,
        epochs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                args.scale = Some(it.next().unwrap_or_else(|| usage("missing --scale value")))
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed value"))
            }
            "--out" => {
                args.out = PathBuf::from(it.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--bench-pipeline" => args.bench_pipeline = true,
            "--bench-samples" => {
                args.bench_samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("bad --bench-samples value"))
            }
            "--epochs" => {
                args.epochs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage("bad --epochs value")),
                )
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: run_experiments [--scale paper|large|small] [--seed N] [--out DIR] \
                       [--bench-pipeline] [--bench-samples N] [--epochs N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn world_config(scale: &str, seed: u64) -> WorldConfig {
    match scale {
        "paper" => WorldConfig::paper(seed),
        "large" => WorldConfig::large(seed),
        "small" => WorldConfig::small(seed),
        other => usage(&format!("unknown scale {other}")),
    }
}

/// Bench mode: the engine scaling study plus the determinism gate.
fn run_bench_pipeline(args: &Args) -> ! {
    let scale = args.scale.as_deref().unwrap_or("large");
    let cfg = world_config(scale, args.seed);
    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let epochs = args.epochs.unwrap_or(DEFAULT_STREAMING_EPOCHS);
    eprintln!(
        "scaling study: {} samples per point, threads {:?}, {} streaming epochs...",
        args.bench_samples, DEFAULT_THREAD_SWEEP, epochs
    );
    let report = run_scaling_study(
        scale,
        &world,
        args.seed,
        DEFAULT_THREAD_SWEEP,
        args.bench_samples,
        epochs,
    );

    for (phase, scaling) in [
        ("assembly", &report.assembly),
        ("pipeline", &report.pipeline),
        ("end-to-end", &report.end_to_end),
    ] {
        println!("[{phase}]");
        println!(
            "  sequential      [{:8.3} {:8.3} {:8.3}] ms",
            scaling.sequential_ms.min, scaling.sequential_ms.mean, scaling.sequential_ms.max
        );
        for p in &scaling.points {
            println!(
                "  threads={:<2}      [{:8.3} {:8.3} {:8.3}] ms  speedup {:.2}x  identical={}",
                p.threads,
                p.timing_ms.min,
                p.timing_ms.mean,
                p.timing_ms.max,
                p.speedup,
                p.identical
            );
        }
    }
    print_streaming(&report.streaming);
    print_serving(&report.serving);
    print_gateway(&report.gateway);

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let path = args.out.join("BENCH_pipeline.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());

    if !report.all_identical {
        eprintln!("error: parallel results diverged from the sequential reference");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Streaming mode: the incremental epoch replay plus the identity gate.
fn run_streaming(args: &Args, epochs: usize) -> ! {
    let scale = args.scale.as_deref().unwrap_or("large");
    let cfg = world_config(scale, args.seed);
    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let par = ParallelConfig::from_env();
    eprintln!(
        "streaming replay: {} epochs, {} worker threads...",
        epochs, par.threads
    );
    let report = run_streaming_session(&world, args.seed, epochs, &PipelineConfig::default(), &par);
    print_streaming(&report);

    if !report.identical {
        eprintln!("error: incremental replay diverged from the one-shot pipeline");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn print_streaming(s: &opeer_bench::StreamingReport) {
    println!("[streaming: {} epochs]", s.epochs);
    println!("  base (registry + vps + prefix2as)  {:8.3} ms", s.base_ms);
    for e in &s.per_epoch {
        println!(
            "  epoch {:<2} +{:>6} obs +{:>6} traces  {:8.3} ms  dirty: s1={} s2={} s3={} corpus={} s4={} s5={}",
            e.epoch,
            e.campaign_observations,
            e.corpus_traces,
            e.wall_ms,
            e.dirty.step1_ixps,
            e.dirty.step2_observations,
            e.dirty.step3_targets,
            e.dirty.corpus_traces,
            e.dirty.step4_candidates,
            e.dirty.step5_ixps,
        );
    }
    println!(
        "  last epoch: {} of {} shard units dirty; {:.3} ms vs {:.3} ms full re-run; identical={}",
        s.last_epoch_dirty, s.total_shards, s.last_epoch_ms, s.full_rerun_ms, s.identical
    );
}

fn print_gateway(g: &opeer_bench::GatewayReport) {
    println!("[gateway: {} epochs streamed per point]", g.epochs);
    for p in &g.points {
        println!(
            "  conns={:<2} {:>9} requests in {:8.3} ms  {:>10.0} req/s  epochs seen ..{} monotonic={} statuses_expected={}",
            p.connections,
            p.requests,
            p.wall_ms,
            p.rps,
            p.max_epoch_seen,
            p.epochs_monotonic,
            p.statuses_expected,
        );
        for r in &p.routes {
            println!(
                "    {:<9} {:>8} req {:>6} err  p50 {:>7} µs  p99 {:>7} µs  max {:>7} µs",
                r.route, r.requests, r.errors, r.p50_us, r.p99_us, r.max_us
            );
        }
    }
    println!(
        "  ok={} epochs_monotonic={} statuses_expected={} panics={}",
        g.ok, g.epochs_monotonic, g.statuses_expected, g.panics
    );
}

fn print_serving(s: &opeer_bench::ServingReport) {
    println!("[serving: {} epochs streamed per point]", s.epochs);
    for p in &s.points {
        println!(
            "  readers={:<2} {:>9} queries in {:8.3} ms  {:>12.0} q/s  epochs seen [{}..{}] monotonic={}",
            p.readers,
            p.queries,
            p.wall_ms,
            p.qps,
            p.min_epoch_seen,
            p.max_epoch_seen,
            p.epochs_monotonic,
        );
    }
    println!(
        "  identical={} epochs_monotonic={} tags_consistent={}",
        s.identical, s.epochs_monotonic, s.tags_consistent
    );
}

fn main() {
    let args = parse_args();
    if args.bench_pipeline {
        run_bench_pipeline(&args);
    }
    if let Some(epochs) = args.epochs {
        run_streaming(&args, epochs);
    }
    let scale = args.scale.as_deref().unwrap_or("paper").to_string();
    let cfg = world_config(&scale, args.seed);

    eprintln!("generating world (scale={scale}, seed={})...", args.seed);
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    eprintln!("building measurement/inference session...");
    let t1 = std::time::Instant::now();
    let session = Session::new(&world, args.seed);
    {
        let input = session.input();
        eprintln!(
            "  campaign: {} observations; corpus: {} traceroutes; inferences: {} [{:?}]",
            input.campaign.observations.len(),
            input.corpus.len(),
            session.result().inferences.len(),
            t1.elapsed()
        );
    }

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let t2 = std::time::Instant::now();
    let all = run_all(&session);
    eprintln!("experiments done [{:?}]", t2.elapsed());

    for r in &all {
        let mut txt =
            std::fs::File::create(args.out.join(format!("{}.txt", r.id))).expect("write .txt");
        writeln!(txt, "# {}\n\n{}", r.title, r.text).expect("write text");
        let json = serde_json::to_string_pretty(&r.json).expect("serialise");
        std::fs::write(args.out.join(format!("{}.json", r.id)), json).expect("write .json");

        println!("════════════════════════════════════════════════════════════");
        println!("{} — {}", r.id, r.title);
        println!("────────────────────────────────────────────────────────────");
        println!("{}", r.text);
    }
    println!("wrote {} experiments to {}", all.len(), args.out.display());
}
