//! Regenerates every table and figure of the paper.
//!
//! ```text
//! run_experiments [--scale paper|small] [--seed N] [--out DIR]
//! ```
//!
//! Writes one `<id>.txt` and one `<id>.json` per experiment into the
//! output directory and prints the text reports to stdout. The default
//! output directory is `target/experiments`.

use opeer_bench::{run_all, Session};
use opeer_topology::WorldConfig;
use std::io::Write;
use std::path::PathBuf;

struct Args {
    scale: String,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: "paper".to_string(),
        seed: 42,
        out: PathBuf::from("target/experiments"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = it.next().unwrap_or_else(|| usage("missing --scale value")),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed value"))
            }
            "--out" => {
                args.out = PathBuf::from(it.next().unwrap_or_else(|| usage("missing --out value")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: run_experiments [--scale paper|small] [--seed N] [--out DIR]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    let cfg = match args.scale.as_str() {
        "paper" => WorldConfig::paper(args.seed),
        "small" => WorldConfig::small(args.seed),
        other => usage(&format!("unknown scale {other}")),
    };

    eprintln!(
        "generating world (scale={}, seed={})...",
        args.scale, args.seed
    );
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    eprintln!("building measurement/inference session...");
    let t1 = std::time::Instant::now();
    let session = Session::new(&world, args.seed);
    eprintln!(
        "  campaign: {} observations; corpus: {} traceroutes; inferences: {} [{:?}]",
        session.input.campaign.observations.len(),
        session.input.corpus.len(),
        session.result.inferences.len(),
        t1.elapsed()
    );

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let t2 = std::time::Instant::now();
    let all = run_all(&session);
    eprintln!("experiments done [{:?}]", t2.elapsed());

    for r in &all {
        let mut txt =
            std::fs::File::create(args.out.join(format!("{}.txt", r.id))).expect("write .txt");
        writeln!(txt, "# {}\n\n{}", r.title, r.text).expect("write text");
        let json = serde_json::to_string_pretty(&r.json).expect("serialise");
        std::fs::write(args.out.join(format!("{}.json", r.id)), json).expect("write .json");

        println!("════════════════════════════════════════════════════════════");
        println!("{} — {}", r.id, r.title);
        println!("────────────────────────────────────────────────────────────");
        println!("{}", r.text);
    }
    println!("wrote {} experiments to {}", all.len(), args.out.display());
}
