//! Standalone gateway load generator: runs the wire-level gateway
//! study ([`opeer_bench::run_gateway_study`]) on its own, without the
//! rest of the scaling suite.
//!
//! ```text
//! loadgen [--scale paper|large|small] [--seed N] [--epochs N]
//!         [--connections a,b,c] [--out FILE]
//! ```
//!
//! For each swept connection count the study binds a fresh gateway on
//! an ephemeral loopback port, streams `--epochs` measurement batches
//! into the service behind it, and races N persistent HTTP client
//! connections against the writer — mixed good traffic plus deliberate
//! malformed requests. It prints per-route p50/p99/max latency and the
//! error-taxonomy counts, optionally writes the JSON report, and
//! **exits non-zero unless every response carried its expected status,
//! every client saw monotonic epochs, the taxonomy recorded the
//! deliberate errors, and the panic bulkhead stayed at zero**.

use opeer_bench::{run_gateway_study, DEFAULT_CONNECTION_SWEEP, DEFAULT_STREAMING_EPOCHS};
use opeer_core::engine::ParallelConfig;
use opeer_core::pipeline::PipelineConfig;
use opeer_topology::WorldConfig;
use std::path::PathBuf;

struct Args {
    scale: String,
    seed: u64,
    epochs: usize,
    connections: Vec<usize>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: "small".to_string(),
        seed: 42,
        epochs: DEFAULT_STREAMING_EPOCHS,
        connections: DEFAULT_CONNECTION_SWEEP.to_vec(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = it.next().unwrap_or_else(|| usage("missing --scale value")),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed value"))
            }
            "--epochs" => {
                args.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --epochs value"))
            }
            "--connections" => {
                let list = it
                    .next()
                    .unwrap_or_else(|| usage("missing --connections value"));
                args.connections = list
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .unwrap_or_else(|| usage("bad --connections value"))
                    })
                    .collect();
                if args.connections.is_empty() {
                    usage("empty --connections list");
                }
            }
            "--out" => {
                args.out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("missing --out value")),
                ))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: loadgen [--scale paper|large|small] [--seed N] [--epochs N] \
         [--connections a,b,c] [--out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    let cfg = match args.scale.as_str() {
        "paper" => WorldConfig::paper(args.seed),
        "large" => WorldConfig::large(args.seed),
        "small" => WorldConfig::small(args.seed),
        other => usage(&format!("unknown scale {other}")),
    };

    eprintln!(
        "generating world (scale={}, seed={})...",
        args.scale, args.seed
    );
    let t0 = std::time::Instant::now();
    let world = cfg.generate();
    eprintln!("  {} [{:?}]", world.summary(), t0.elapsed());

    let par = ParallelConfig::from_env();
    eprintln!(
        "gateway load study: connections {:?}, {} epochs, {} pipeline threads...",
        args.connections, args.epochs, par.threads
    );
    let report = run_gateway_study(
        &world,
        args.seed,
        args.epochs,
        &args.connections,
        &PipelineConfig::default(),
        &par,
    );

    println!("[gateway: {} epochs streamed per point]", report.epochs);
    for p in &report.points {
        println!(
            "  conns={:<2} {:>9} requests ({} errors, all deliberate) in {:8.3} ms  {:>10.0} req/s",
            p.connections, p.requests, p.errors, p.wall_ms, p.rps
        );
        println!(
            "    epochs seen ..{} of {} published  monotonic={} statuses_expected={}",
            p.max_epoch_seen, p.epochs_published, p.epochs_monotonic, p.statuses_expected
        );
        for r in &p.routes {
            println!(
                "    {:<9} {:>8} req {:>6} err  p50 {:>7} µs  p99 {:>7} µs  max {:>7} µs",
                r.route, r.requests, r.errors, r.p50_us, r.p99_us, r.max_us
            );
        }
        let t = &p.taxonomy;
        println!(
            "    taxonomy: framing={} unauthorized={} rate_limited={} not_found={} \
             bad_method={} bad_json={} batch_too_large={} internal_panic={}",
            t.framing,
            t.unauthorized,
            t.rate_limited,
            t.not_found,
            t.bad_method,
            t.bad_json,
            t.batch_too_large,
            t.internal_panic
        );
    }
    println!(
        "  ok={} epochs_monotonic={} statuses_expected={} panics={}",
        report.ok, report.epochs_monotonic, report.statuses_expected, report.panics
    );

    if let Some(path) = &args.out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(path, json).expect("write report");
        println!("wrote {}", path.display());
    }

    if !report.ok {
        eprintln!("error: gateway load study gate failed");
        std::process::exit(1);
    }
}
