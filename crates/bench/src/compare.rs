//! Regression comparison between two `BENCH_pipeline.json` reports.
//!
//! CI's perf job runs the scaling study twice per history: once when a
//! milestone is committed, and once per pull request. This module diffs
//! the two machine-readable reports phase by phase and flags every
//! configuration whose mean wall-clock regressed by more than a
//! tolerance (20 % by default — wide enough to absorb shared-runner
//! noise at `--bench-samples 2`, narrow enough to catch a real
//! algorithmic slip).
//!
//! The diff is **schema-tolerant**: it reads the reports as loose JSON
//! and only compares fields both sides carry, so a schema-5 baseline
//! can gate a schema-6 candidate (and vice versa) across the exact
//! phase/thread-count grid they share. Thread counts present on one
//! side only are skipped, not failed — sweeps legitimately differ
//! across runner shapes.
//!
//! Schema-8 reports additionally carry a `memory` section (the
//! structural-sharing study). When **both** sides have it, its scalar
//! costs — `full_publish_ms`, `zero_dirty_publish_ms`, and
//! `retained_bytes_final` — are gated by the same tolerance; a
//! schema-7 baseline simply skips the section.
//!
//! Schema-9 adds the `sweep` section (the multi-world fleet,
//! `BENCH_sweep.json`). When both sides carry it, its wall-clock
//! scalars — `total_wall_ms` and `mean_cell_wall_ms` — are gated the
//! same way; either side lacking the section skips it.

use serde_json::Value;

/// Default regression tolerance: a configuration fails when its new
/// mean exceeds the old mean by more than this fraction.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// The phases every report schema to date carries.
const PHASES: &[&str] = &["assembly", "pipeline", "end_to_end"];

/// Scalar costs of the schema-8 `memory` section, compared (with the
/// same tolerance) only when both reports carry the section.
const MEMORY_METRICS: &[&str] = &[
    "full_publish_ms",
    "zero_dirty_publish_ms",
    "retained_bytes_final",
];

/// Scalar costs of the schema-9 `sweep` section (the fleet report),
/// compared only when both reports carry the section.
const SWEEP_METRICS: &[&str] = &["total_wall_ms", "mean_cell_wall_ms"];

/// One regressed configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Phase name (`assembly` / `pipeline` / `end_to_end`),
    /// `memory/<metric>` for a schema-8 memory-section scalar, or
    /// `sweep/<metric>` for a schema-9 sweep-section scalar.
    pub phase: String,
    /// Thread count of the regressed point, or `None` for the
    /// sequential reference (and for memory-section scalars).
    pub threads: Option<usize>,
    /// Baseline mean wall-clock, milliseconds (raw metric value for
    /// memory-section scalars — bytes for `retained_bytes_final`).
    pub old_mean_ms: f64,
    /// Candidate mean wall-clock, milliseconds (raw metric value for
    /// memory-section scalars).
    pub new_mean_ms: f64,
    /// `new / old` — always `> 1 + tolerance` for a reported entry.
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.phase.starts_with("memory/") || self.phase.starts_with("sweep/") {
            // Section scalars carry their unit in the metric name.
            return write!(
                f,
                "{}: {:.3} -> {:.3} ({:+.1} %)",
                self.phase,
                self.old_mean_ms,
                self.new_mean_ms,
                (self.ratio - 1.0) * 100.0
            );
        }
        match self.threads {
            Some(t) => write!(
                f,
                "{} @ {} threads: {:.3} ms -> {:.3} ms ({:+.1} %)",
                self.phase,
                t,
                self.old_mean_ms,
                self.new_mean_ms,
                (self.ratio - 1.0) * 100.0
            ),
            None => write!(
                f,
                "{} sequential: {:.3} ms -> {:.3} ms ({:+.1} %)",
                self.phase,
                self.old_mean_ms,
                self.new_mean_ms,
                (self.ratio - 1.0) * 100.0
            ),
        }
    }
}

/// The outcome of a comparison: every shared configuration that
/// regressed past the tolerance, plus how many were compared at all
/// (so an empty regression list on a zero-overlap diff is detectable).
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Configurations (sequential references + thread points) compared.
    pub compared: usize,
    /// Configurations that regressed past the tolerance.
    pub regressions: Vec<Regression>,
}

impl Comparison {
    /// Whether the candidate passes the gate: at least one shared
    /// configuration was compared and none regressed.
    pub fn passed(&self) -> bool {
        self.compared > 0 && self.regressions.is_empty()
    }
}

fn mean_of(timing: &Value) -> Option<f64> {
    timing.get("mean")?.as_f64().filter(|m| m.is_finite())
}

/// Compares a phase's sequential reference and per-thread points,
/// appending regressions. Returns how many configurations overlapped.
fn compare_phase(
    phase: &str,
    old: &Value,
    new: &Value,
    tolerance: f64,
    out: &mut Vec<Regression>,
) -> usize {
    let mut compared = 0;
    if let (Some(o), Some(n)) = (
        old.get("sequential_ms").and_then(mean_of),
        new.get("sequential_ms").and_then(mean_of),
    ) {
        compared += 1;
        if n > o * (1.0 + tolerance) {
            out.push(Regression {
                phase: phase.to_string(),
                threads: None,
                old_mean_ms: o,
                new_mean_ms: n,
                ratio: n / o.max(f64::EPSILON),
            });
        }
    }
    let empty = Vec::new();
    let old_points = old
        .get("points")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let new_points = new
        .get("points")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    for op in old_points {
        let Some(threads) = op.get("threads").and_then(Value::as_u64) else {
            continue;
        };
        // Match by thread count, not position: sweeps may differ.
        let Some(np) = new_points
            .iter()
            .find(|p| p.get("threads").and_then(Value::as_u64) == Some(threads))
        else {
            continue;
        };
        let (Some(o), Some(n)) = (
            op.get("timing_ms").and_then(mean_of),
            np.get("timing_ms").and_then(mean_of),
        ) else {
            continue;
        };
        compared += 1;
        if n > o * (1.0 + tolerance) {
            out.push(Regression {
                phase: phase.to_string(),
                threads: Some(threads as usize),
                old_mean_ms: o,
                new_mean_ms: n,
                ratio: n / o.max(f64::EPSILON),
            });
        }
    }
    compared
}

/// Compares a section's scalar metrics (schema-8 `memory`, schema-9
/// `sweep`) when both sides carry them. Returns how many overlapped.
fn compare_scalars(
    section: &str,
    metrics: &[&str],
    old: &Value,
    new: &Value,
    tolerance: f64,
    out: &mut Vec<Regression>,
) -> usize {
    let mut compared = 0;
    for &metric in metrics {
        let finite = |v: &Value| v.as_f64().filter(|m| m.is_finite());
        let (Some(o), Some(n)) = (
            old.get(metric).and_then(finite),
            new.get(metric).and_then(finite),
        ) else {
            continue;
        };
        compared += 1;
        if n > o * (1.0 + tolerance) {
            out.push(Regression {
                phase: format!("{section}/{metric}"),
                threads: None,
                old_mean_ms: o,
                new_mean_ms: n,
                ratio: n / o.max(f64::EPSILON),
            });
        }
    }
    compared
}

/// Diffs two parsed reports. Errors only on structurally unusable
/// input (no recognizable phase on either side); missing individual
/// fields are skipped.
pub fn compare_reports(old: &Value, new: &Value, tolerance: f64) -> Result<Comparison, String> {
    if old.as_object().is_none() || new.as_object().is_none() {
        return Err("both reports must be JSON objects".to_string());
    }
    let mut regressions = Vec::new();
    let mut compared = 0;
    for &phase in PHASES {
        if let (Some(o), Some(n)) = (old.get(phase), new.get(phase)) {
            compared += compare_phase(phase, o, n, tolerance, &mut regressions);
        }
    }
    if let (Some(o), Some(n)) = (old.get("memory"), new.get("memory")) {
        compared += compare_scalars("memory", MEMORY_METRICS, o, n, tolerance, &mut regressions);
    }
    if let (Some(o), Some(n)) = (old.get("sweep"), new.get("sweep")) {
        compared += compare_scalars("sweep", SWEEP_METRICS, o, n, tolerance, &mut regressions);
    }
    if compared == 0 {
        return Err(format!(
            "no comparable phase configurations (expected {PHASES:?} with sequential_ms/points, \
             or a shared memory/sweep section)"
        ));
    }
    Ok(Comparison {
        compared,
        regressions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).expect("fixture parses")
    }

    /// A report fixture with one shared `per_thread` sweep across the
    /// three phases (each phase's times scaled so regressions stay
    /// phase-local), overriding `overrides` pairs like
    /// `("pipeline", Some(8), 30.0)` on the mean.
    fn report(
        schema: &str,
        seq: f64,
        per_thread: &[(u64, f64)],
        overrides: &[(&str, Option<u64>, f64)],
    ) -> Value {
        let mut phases = String::new();
        for (i, (phase, scale)) in [("assembly", 10.0), ("pipeline", 1.0), ("end_to_end", 11.0)]
            .iter()
            .enumerate()
        {
            if i > 0 {
                phases.push(',');
            }
            let seq_mean = overrides
                .iter()
                .find(|(p, t, _)| p == phase && t.is_none())
                .map(|&(_, _, v)| v)
                .unwrap_or(seq * scale);
            let points = per_thread
                .iter()
                .map(|&(t, ms)| {
                    let mean = overrides
                        .iter()
                        .find(|(p, ot, _)| p == phase && *ot == Some(t))
                        .map(|&(_, _, v)| v)
                        .unwrap_or(ms * scale);
                    format!(
                        r#"{{"threads": {t}, "timing_ms": {{"min": {mean}, "mean": {mean}, "max": {mean}}}, "speedup": 1.0, "identical": true}}"#
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            phases.push_str(&format!(
                r#""{phase}": {{"sequential_ms": {{"min": {seq_mean}, "mean": {seq_mean}, "max": {seq_mean}}}, "points": [{points}]}}"#
            ));
        }
        parse(&format!(r#"{{"schema": "{schema}", {phases}}}"#))
    }

    const V6: &str = "opeer-bench-pipeline/6";

    #[test]
    fn identical_reports_pass() {
        let r = report(V6, 100.0, &[(1, 100.0), (2, 55.0), (8, 20.0)], &[]);
        let c = compare_reports(&r, &r, DEFAULT_TOLERANCE).expect("comparable");
        // 3 phases × (1 sequential + 3 points).
        assert_eq!(c.compared, 12);
        assert!(c.passed(), "{:?}", c.regressions);
    }

    #[test]
    fn within_tolerance_noise_passes() {
        let old = report(V6, 100.0, &[(1, 100.0), (8, 20.0)], &[]);
        let new = report(V6, 115.0, &[(1, 115.0), (8, 23.0)], &[]);
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert!(c.passed(), "{:?}", c.regressions);
    }

    #[test]
    fn regression_past_tolerance_fails_with_the_culprit_named() {
        let old = report(V6, 100.0, &[(1, 100.0), (8, 20.0)], &[]);
        // Slow the 8-thread pipeline point by 50 %.
        let new = report(
            V6,
            100.0,
            &[(1, 100.0), (8, 20.0)],
            &[("pipeline", Some(8), 30.0)],
        );
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 1);
        let r = &c.regressions[0];
        assert_eq!(r.phase, "pipeline");
        assert_eq!(r.threads, Some(8));
        assert!((r.ratio - 1.5).abs() < 1e-9);
        assert!(r.to_string().contains("pipeline @ 8 threads"));
    }

    #[test]
    fn sequential_regression_is_caught_too() {
        let old = report(V6, 100.0, &[(1, 100.0)], &[]);
        let new = report(
            V6,
            100.0,
            &[(1, 100.0)],
            &[("end_to_end", None, 11.0 * 100.0 * 1.4)],
        );
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert_eq!(c.regressions.len(), 1);
        assert_eq!(c.regressions[0].threads, None);
        assert_eq!(c.regressions[0].phase, "end_to_end");
    }

    #[test]
    fn disjoint_thread_sweeps_compare_only_the_overlap() {
        let old = report(V6, 100.0, &[(1, 100.0), (4, 30.0)], &[]);
        let new = report(V6, 100.0, &[(1, 100.0), (16, 10.0)], &[]);
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        // 3 phases × (sequential + the shared threads=1 point).
        assert_eq!(c.compared, 6);
        assert!(c.passed());
    }

    #[test]
    fn older_schema_without_new_fields_still_compares() {
        // Schema 5 had no best_pipeline_speedup; the diff reads phases only.
        let old = report(
            "opeer-bench-pipeline/5",
            100.0,
            &[(1, 100.0), (8, 20.0)],
            &[],
        );
        let new = report(V6, 100.0, &[(1, 100.0), (8, 20.0)], &[]);
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert!(c.passed());
    }

    /// Wraps a phase fixture with a schema-8 `memory` section.
    fn with_memory(mut report: Value, full_ms: f64, zero_ms: f64, bytes: f64) -> Value {
        let section = parse(&format!(
            r#"{{"full_publish_ms": {full_ms}, "zero_dirty_publish_ms": {zero_ms}, "retained_bytes_final": {bytes}}}"#
        ));
        let Value::Object(members) = &mut report else {
            panic!("object fixture");
        };
        members.push(("memory".to_string(), section));
        report
    }

    #[test]
    fn memory_section_within_tolerance_passes() {
        let base = report(V6, 100.0, &[(1, 100.0)], &[]);
        let old = with_memory(base.clone(), 50.0, 0.5, 1_000_000.0);
        let new = with_memory(base, 55.0, 0.55, 1_050_000.0);
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        // 3 phases × 2 configurations + 3 memory scalars.
        assert_eq!(c.compared, 9);
        assert!(c.passed(), "{:?}", c.regressions);
    }

    #[test]
    fn memory_regression_is_caught_and_named() {
        let base = report(V6, 100.0, &[(1, 100.0)], &[]);
        let old = with_memory(base.clone(), 50.0, 0.5, 1_000_000.0);
        // Retained bytes balloon by 60 % — the flat ceiling slipped.
        let new = with_memory(base, 50.0, 0.5, 1_600_000.0);
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 1);
        let r = &c.regressions[0];
        assert_eq!(r.phase, "memory/retained_bytes_final");
        assert_eq!(r.threads, None);
        assert!((r.ratio - 1.6).abs() < 1e-9);
        assert!(r.to_string().contains("memory/retained_bytes_final"));
        assert!(!r.to_string().contains("sequential"));
    }

    #[test]
    fn schema_7_baseline_without_memory_skips_the_section() {
        let old = report("opeer-bench-pipeline/7", 100.0, &[(1, 100.0)], &[]);
        let new = with_memory(report(V6, 100.0, &[(1, 100.0)], &[]), 50.0, 0.5, 1e6);
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert_eq!(c.compared, 6);
        assert!(c.passed());
    }

    /// A schema-9 sweep-only fixture (`BENCH_sweep.json` shape).
    fn sweep_report(total_ms: f64, mean_cell_ms: f64) -> Value {
        parse(&format!(
            r#"{{"schema": "opeer-bench-pipeline/9", "sweep": {{"total_wall_ms": {total_ms}, "mean_cell_wall_ms": {mean_cell_ms}, "identity": true}}}}"#
        ))
    }

    #[test]
    fn sweep_section_compares_and_gates() {
        let old = sweep_report(1000.0, 125.0);
        let ok = sweep_report(1100.0, 137.0);
        let c = compare_reports(&old, &ok, DEFAULT_TOLERANCE).expect("comparable");
        assert_eq!(c.compared, 2);
        assert!(c.passed(), "{:?}", c.regressions);

        let slow = sweep_report(1000.0, 200.0);
        let c = compare_reports(&old, &slow, DEFAULT_TOLERANCE).expect("comparable");
        assert!(!c.passed());
        assert_eq!(c.regressions.len(), 1);
        let r = &c.regressions[0];
        assert_eq!(r.phase, "sweep/mean_cell_wall_ms");
        assert!((r.ratio - 1.6).abs() < 1e-9);
        assert!(r.to_string().contains("sweep/mean_cell_wall_ms"));
        assert!(!r.to_string().contains("sequential"));
    }

    #[test]
    fn pipeline_baseline_without_sweep_skips_the_section() {
        // A v8 BENCH_pipeline.json gating a v9 candidate (and the sweep
        // file showing up on one side only) must not fail the diff.
        let old = report("opeer-bench-pipeline/8", 100.0, &[(1, 100.0)], &[]);
        let Value::Object(members) = &mut report(V6, 100.0, &[(1, 100.0)], &[]).clone() else {
            panic!("object fixture");
        };
        members.push((
            "sweep".to_string(),
            parse(r#"{"total_wall_ms": 5.0, "mean_cell_wall_ms": 1.0}"#),
        ));
        let new = Value::Object(members.clone());
        let c = compare_reports(&old, &new, DEFAULT_TOLERANCE).expect("comparable");
        assert_eq!(c.compared, 6);
        assert!(c.passed());
    }

    #[test]
    fn structurally_unusable_reports_error_instead_of_vacuously_passing() {
        assert!(compare_reports(&parse("[]"), &parse("{}"), DEFAULT_TOLERANCE).is_err());
        assert!(compare_reports(&parse("{}"), &parse("{}"), DEFAULT_TOLERANCE).is_err());
        let no_overlap = parse(r#"{"assembly": {"points": []}}"#);
        assert!(compare_reports(&no_overlap, &no_overlap, DEFAULT_TOLERANCE).is_err());
    }
}
