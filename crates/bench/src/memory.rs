//! The memory study: structural-sharing snapshots under an unbounded
//! epoch stream, with a bounded-retention archive.
//!
//! The scenario is the serving layer's steady state. Measurement
//! batches stream in while an archive with a retention cap
//! (`OPEER_ARCHIVE_RETAIN`-style, [`SnapshotArchive::attach_with_retention`])
//! retains the newest snapshots: a **fill phase** delivers the world's
//! campaign/corpus in batches (dirty publishes, partition rebuilds
//! proportional to the dirty-IXP sets), then a **steady-state tail**
//! keeps publishing epochs with no new measurement content (clean
//! publishes — pure `Arc` shares). The study records, per epoch, the
//! publish dirty sets, the publish wall-clock, and the archive's
//! deduplicated retained bytes, then gates on three claims:
//!
//! * **flat memory ceiling** — once eviction is active and the
//!   retention window has rotated past the fill phase, retained bytes
//!   stay flat (max/min ≤ [`FLATNESS_TOLERANCE`]) however many more
//!   epochs arrive;
//! * **dirty-proportional publish** — a zero-dirty epoch publishes at
//!   least [`MIN_PUBLISH_SPEEDUP`]× faster than a from-scratch
//!   [`Snapshot::build_full`] over the same state, and shares every
//!   partition pointer with its predecessor;
//! * **byte-identity** — the final served state equals the one-shot
//!   pipeline, and the final (delta-published, partition-sharing)
//!   snapshot is content-equal to a non-shared `build_full` baseline.
//!
//! This is the schema-v8 `memory` section of `BENCH_pipeline.json` and
//! the engine behind `run_experiments --memory-study`.

use opeer_core::archive::SnapshotArchive;
use opeer_core::engine::ParallelConfig;
use opeer_core::incremental::InputDelta;
use opeer_core::input::default_configs;
use opeer_core::pipeline::{run_pipeline, PipelineConfig};
use opeer_core::service::{PeeringService, Snapshot};
use opeer_core::InferenceInput;
use opeer_measure::campaign::campaign_batches;
use opeer_measure::traceroute::corpus_batches;
use opeer_topology::World;
use serde::Serialize;
use std::time::Instant;

/// Default epochs streamed by `run_experiments --memory-study`.
pub const DEFAULT_MEMORY_EPOCHS: usize = 24;

/// Default retention cap (snapshots kept by the archive).
pub const DEFAULT_MEMORY_RETAIN: usize = 6;

/// `max/min` retained-bytes ratio the steady-state window must stay
/// within for [`MemoryReport::flat_after_compaction`].
pub const FLATNESS_TOLERANCE: f64 = 1.10;

/// Minimum `full_publish_ms / zero_dirty_publish_ms` ratio the study
/// gates on: a clean epoch must publish at least this much faster than
/// a from-scratch partition build.
pub const MIN_PUBLISH_SPEEDUP: f64 = 10.0;

/// One epoch's memory/publish accounting.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MemoryEpoch {
    /// The published epoch.
    pub epoch: u64,
    /// New campaign observations delivered this epoch.
    pub campaign_observations: usize,
    /// New corpus traceroutes delivered this epoch.
    pub corpus_traces: usize,
    /// Whether this epoch's publish rebuilt every partition (registry
    /// revision or initial build).
    pub full_publish: bool,
    /// Whether nothing changed — a pure `Arc`-share publish.
    pub clean: bool,
    /// IXPs whose rollup partitions this publish rebuilt.
    pub dirty_ixps: usize,
    /// ASNs in the publish dirty set (segment rebuild drivers).
    pub dirty_asns: usize,
    /// Wall-clock of the whole `apply` (recompute + publish), ms.
    pub apply_ms: f64,
    /// Wall-clock of just the snapshot publish, ms.
    pub publish_ms: f64,
    /// Snapshots the archive retains after this epoch (the cap holds).
    pub retained_epochs: usize,
    /// Deduplicated deep size of everything retained, bytes.
    pub retained_bytes: usize,
    /// Partitions of the newest snapshot shared with another holder.
    pub shared_partitions: usize,
    /// Partitions of the newest snapshot with a single holder.
    pub owned_partitions: usize,
}

/// The full memory study, serialised into `BENCH_pipeline.json`'s
/// `memory` section (schema v8).
#[derive(Debug, Clone, Serialize)]
pub struct MemoryReport {
    /// Epochs streamed (fill phase + steady-state tail).
    pub epochs: usize,
    /// Epochs in the fill phase (measurement batches; the tail streams
    /// content-free epochs).
    pub fill_epochs: usize,
    /// The archive's retention cap.
    pub retain: usize,
    /// Per-epoch accounting, in stream order.
    pub per_epoch: Vec<MemoryEpoch>,
    /// Deduplicated retained bytes after the final epoch.
    pub retained_bytes_final: usize,
    /// Whether retained bytes stayed within [`FLATNESS_TOLERANCE`]
    /// (max/min) across the steady-state window — every epoch after
    /// eviction became active **and** the retention window rotated past
    /// the fill phase.
    pub flat_after_compaction: bool,
    /// Wall-clock of a from-scratch [`Snapshot::build_full`] over the
    /// final state, ms.
    pub full_publish_ms: f64,
    /// Mean publish wall-clock of the clean steady-state epochs, ms.
    pub zero_dirty_publish_ms: f64,
    /// `full_publish_ms / zero_dirty_publish_ms` (the ≥10× gate).
    pub publish_speedup: f64,
    /// Whether every clean epoch's snapshot shared **all** partition
    /// pointers with its predecessor.
    pub zero_dirty_shared_all: bool,
    /// Whether the final state was byte-identical to the one-shot
    /// pipeline AND the final shared snapshot was content-equal to a
    /// non-shared `build_full` baseline. `run_experiments
    /// --memory-study` enforces this (with the three gates above) via
    /// its exit code.
    pub identical: bool,
}

/// Streams `epochs` epochs (measurement fill, then content-free tail)
/// through a retention-capped archive and audits the memory ceiling,
/// publish proportionality, and byte-identity claims.
pub fn run_memory_study(
    world: &World,
    seed: u64,
    epochs: usize,
    retain: usize,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> MemoryReport {
    let retain = retain.max(2);
    let fill_epochs = (epochs / 3).clamp(2, 8);
    // The steady-state window needs room to rotate fully past the fill
    // phase and still hold ≥2 samples.
    let epochs = epochs.max(fill_epochs + retain + 2);

    let service = PeeringService::build(InferenceInput::assemble_base(world, seed), cfg, par);
    let archive = SnapshotArchive::attach_with_retention(&service, Some(retain));

    // Fill phase batches (generated outside every timed window).
    let (_registry, campaign_cfg, corpus_cfg) = default_configs(seed);
    let camp = campaign_batches(world, &service.input().vps, campaign_cfg, fill_epochs);
    let corp = corpus_batches(world, corpus_cfg, fill_epochs);
    let mut deltas = InputDelta::zip_batches(camp, corp);
    deltas.truncate(fill_epochs);
    let fill_epochs = deltas.len().max(1);
    // Steady-state tail: epochs keep arriving, no new measurement
    // content — the regime an unbounded stream spends its life in.
    while deltas.len() < epochs {
        deltas.push(InputDelta::default());
    }

    let mut per_epoch = Vec::with_capacity(deltas.len());
    let mut prev_ptrs = service.snapshot().partition_ptrs();
    let mut zero_dirty_shared_all = true;
    let (mut clean_ms_sum, mut clean_publishes) = (0.0, 0usize);
    for delta in deltas {
        let campaign_observations = delta.campaign.as_ref().map_or(0, |c| c.observations.len());
        let corpus_traces = delta.corpus.len();
        let t = Instant::now();
        let report = archive.apply_reported(delta);
        let apply_ms = t.elapsed().as_secs_f64() * 1e3;
        let ptrs = report.snapshot.partition_ptrs();
        let clean = report.publish.is_clean();
        if clean {
            zero_dirty_shared_all &= ptrs == prev_ptrs;
            clean_ms_sum += report.publish_ms;
            clean_publishes += 1;
        }
        prev_ptrs = ptrs;
        let (shared_partitions, owned_partitions) = report.snapshot.partition_counts();
        per_epoch.push(MemoryEpoch {
            epoch: report.epoch,
            campaign_observations,
            corpus_traces,
            full_publish: report.publish.full,
            clean,
            dirty_ixps: if report.publish.full {
                report.snapshot.ixp_count()
            } else {
                report.publish.ixps.len()
            },
            dirty_asns: report.publish.asns.len(),
            apply_ms,
            publish_ms: report.publish_ms,
            retained_epochs: archive.len(),
            retained_bytes: archive.retained_bytes(),
            shared_partitions,
            owned_partitions,
        });
    }

    // Flatness: once eviction is active and the retention window holds
    // only steady-state snapshots, retained bytes must not drift.
    let window: Vec<usize> = per_epoch
        .iter()
        .filter(|e| e.epoch as usize > fill_epochs + retain && e.retained_epochs == retain)
        .map(|e| e.retained_bytes)
        .collect();
    let flat_after_compaction = window.len() >= 2 && {
        let max = *window.iter().max().expect("non-empty window") as f64;
        let min = *window.iter().min().expect("non-empty window") as f64;
        max / min.max(1.0) <= FLATNESS_TOLERANCE
    };

    // The publish-cost comparison: a from-scratch partition build over
    // the final state versus the clean epochs' measured publishes.
    let latest = archive.latest();
    let final_result = latest.result().clone();
    let full_publish_ms = {
        let input = service.input();
        let t = Instant::now();
        let rebuilt = Snapshot::build_full(latest.epoch(), &input, final_result, par);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(rebuilt.epoch() == latest.epoch());
        ms
    };
    let zero_dirty_publish_ms = clean_ms_sum / clean_publishes.max(1) as f64;
    let publish_speedup = full_publish_ms / zero_dirty_publish_ms.max(f64::EPSILON);

    // Byte-identity: accumulated input and result equal the one-shot
    // path, and the shared snapshot equals a non-shared baseline.
    let full_input = InferenceInput::assemble(world, seed);
    let one_shot = run_pipeline(&full_input, cfg);
    let identical = {
        let input = service.input();
        let baseline = Snapshot::build_full(latest.epoch(), &input, one_shot.clone(), par);
        input.content_eq(&full_input)
            && *latest.result() == one_shot
            && latest.content_eq(&baseline)
    };

    MemoryReport {
        epochs: per_epoch.len(),
        fill_epochs,
        retain,
        retained_bytes_final: per_epoch.last().map_or(0, |e| e.retained_bytes),
        per_epoch,
        flat_after_compaction,
        full_publish_ms,
        zero_dirty_publish_ms,
        publish_speedup,
        zero_dirty_shared_all,
        identical,
    }
}

/// Whether every gate the study makes holds (`run_experiments
/// --memory-study` exits non-zero otherwise).
pub fn memory_gates_hold(report: &MemoryReport) -> bool {
    report.identical
        && report.flat_after_compaction
        && report.zero_dirty_shared_all
        && report.publish_speedup >= MIN_PUBLISH_SPEEDUP
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn memory_study_holds_every_gate() {
        let world = WorldConfig::small(7).generate();
        let report = run_memory_study(
            &world,
            7,
            12,
            3,
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        assert!(report.identical, "shared snapshots diverged from baseline");
        assert!(
            report.zero_dirty_shared_all,
            "clean epoch rebuilt a partition"
        );
        assert!(
            report.flat_after_compaction,
            "retained bytes drifted in steady state: {:?}",
            report
                .per_epoch
                .iter()
                .map(|e| e.retained_bytes)
                .collect::<Vec<_>>()
        );
        assert!(
            report.publish_speedup >= MIN_PUBLISH_SPEEDUP,
            "zero-dirty publish only {:.1}x faster than full",
            report.publish_speedup
        );
        assert!(memory_gates_hold(&report));
        // The retention cap holds after every epoch.
        assert!(report.per_epoch.iter().all(|e| e.retained_epochs <= 3));
        // Steady-state epochs are clean and publish nothing.
        let tail = report
            .per_epoch
            .iter()
            .filter(|e| e.epoch as usize > report.fill_epochs)
            .collect::<Vec<_>>();
        assert!(!tail.is_empty() && tail.iter().all(|e| e.clean && e.dirty_ixps == 0));
        // Fill-phase epochs carry real dirty sets.
        assert!(report.per_epoch[..report.fill_epochs]
            .iter()
            .any(|e| e.dirty_ixps > 0));
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(json.contains("\"retained_bytes\":"));
        assert!(json.contains("\"identical\":true"));
    }
}
