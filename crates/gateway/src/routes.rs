//! Route dispatch: parsed [`Request`] → HTTP status + JSON body.
//!
//! Every outcome — success or failure — is a value; no handler can
//! panic on untrusted input. Service errors map *totally* onto HTTP
//! statuses: unknown entities ([`ServiceError::UnknownIxp`] /
//! [`ServiceError::UnknownInterface`] / [`ServiceError::UnknownAsn`])
//! are `404`, an oversized batch ([`ServiceError::InvalidBatch`]) is
//! `413`, a body that is not valid JSON for `Vec<QueryRequest>` is
//! `400`. Error bodies are uniform:
//! `{"error": <kind>, "status": <n>, "detail": <text>}`, with the full
//! serialized [`ServiceError`] attached under `"service_error"` when
//! there is one.
//!
//! When a [`SnapshotArchive`] is attached
//! ([`crate::Gateway::serve_with`]), the point-query routes accept an
//! optional `epoch=` parameter for time travel, and `GET /trend` /
//! `GET /churn` serve the longitudinal aggregations. Archive rejections
//! stay total and typed: a not-yet-published epoch is `404
//! future_epoch`, a never-retained one `404 epoch_not_archived`, an
//! `epoch=` query against an archive-less gateway `404 no_archive`, and
//! a garbage epoch value the usual `400 bad_param` — never a `500`.

use crate::http::Request;
use crate::metrics::{MetricsRegistry, Route, SnapshotGauges};
use opeer_core::archive::{ArchiveError, SnapshotArchive};
use opeer_core::service::{QueryRequest, ServiceError, Snapshot};
use serde::{Serialize, Value};
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// A fully-formed response: the status and the JSON body bytes.
#[derive(Debug)]
pub struct Outcome {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (always present; errors have error bodies).
    pub body: Vec<u8>,
}

impl Outcome {
    fn ok(body: String) -> Outcome {
        Outcome {
            status: 200,
            body: body.into_bytes(),
        }
    }
}

/// Builds the uniform JSON error body.
pub fn error_body(
    status: u16,
    kind: &str,
    detail: &str,
    service: Option<&ServiceError>,
) -> Vec<u8> {
    let mut members = vec![
        ("error".to_string(), Value::Str(kind.to_string())),
        ("status".to_string(), Value::U64(u64::from(status))),
        ("detail".to_string(), Value::Str(detail.to_string())),
    ];
    if let Some(err) = service {
        members.push(("service_error".to_string(), err.to_value()));
    }
    // The error tree is strings and integers only, so the strict
    // serializer cannot fail on it.
    serde_json::to_string(Value::Object(members))
        .expect("error body has no floats")
        .into_bytes()
}

fn error(status: u16, kind: &'static str, detail: String) -> Outcome {
    Outcome {
        status,
        body: error_body(status, kind, &detail, None),
    }
}

/// Maps a per-lookup [`ServiceError`] to its response.
fn service_error(err: ServiceError) -> Outcome {
    let (status, kind) = match err {
        ServiceError::UnknownIxp { .. }
        | ServiceError::UnknownInterface { .. }
        | ServiceError::UnknownAsn { .. } => (404, "not_found"),
        ServiceError::InvalidBatch { .. } => (413, "batch_too_large"),
    };
    Outcome {
        status,
        body: error_body(status, kind, &err.to_string(), Some(&err)),
    }
}

/// Serializes a successful answer, with the strict non-finite-float
/// check folded into the total mapping: a value the wire serializer
/// refuses becomes a `500` instead of a panic or a silent `null`.
fn serialize_ok<T: Serialize>(answer: &T) -> Outcome {
    match serde_json::to_string(answer) {
        Ok(json) => Outcome::ok(json),
        Err(e) => error(500, "serialization", e.to_string()),
    }
}

fn param<'r>(request: &'r Request, name: &str) -> Result<&'r str, Outcome> {
    request.query.get(name).map(String::as_str).ok_or_else(|| {
        error(
            400,
            "missing_param",
            format!("missing query parameter `{name}`"),
        )
    })
}

fn parse_param<T: std::str::FromStr>(request: &Request, name: &str) -> Result<T, Outcome> {
    let raw = param(request, name)?;
    raw.parse::<T>().map_err(|_| {
        error(
            400,
            "bad_param",
            format!("query parameter `{name}`=`{raw}` is malformed"),
        )
    })
}

/// An optional query parameter: absent is `None`, present-but-malformed
/// is the usual `400 bad_param`.
fn opt_param<T: std::str::FromStr>(request: &Request, name: &str) -> Result<Option<T>, Outcome> {
    if request.query.contains_key(name) {
        parse_param(request, name).map(Some)
    } else {
        Ok(None)
    }
}

/// The rejection for time-travel parameters on a gateway that serves
/// only the live snapshot.
fn no_archive() -> Outcome {
    error(
        404,
        "no_archive",
        "this gateway serves only the live snapshot; no archive is attached".to_string(),
    )
}

/// Maps an [`ArchiveError`] to its response: epoch-resolution failures
/// get their own `404` kinds, a per-snapshot lookup failure maps like
/// any live [`ServiceError`].
fn archive_error(err: ArchiveError) -> Outcome {
    match err {
        ArchiveError::Service(e) => service_error(e),
        ArchiveError::FutureEpoch { .. } => error(404, "future_epoch", err.to_string()),
        ArchiveError::NotArchived { .. } | ArchiveError::Empty => {
            error(404, "epoch_not_archived", err.to_string())
        }
    }
}

/// Point-in-time structural-sharing gauges for the `/metrics`
/// `snapshot` object: archive-wide retained size and the newest
/// snapshot's shared/owned partition split when the time-travel
/// surface is attached, the live snapshot alone otherwise.
fn snapshot_gauges(
    snapshot: &Snapshot,
    archive: Option<&SnapshotArchive<'_, '_>>,
) -> SnapshotGauges {
    let (retained_epochs, retained_bytes, (shared, owned)) = match archive {
        Some(a) => (a.len(), a.retained_bytes(), a.partition_counts()),
        None => (1, snapshot.retained_bytes(), snapshot.partition_counts()),
    };
    SnapshotGauges {
        retained_epochs: retained_epochs as u64,
        shared_partitions: shared as u64,
        owned_partitions: owned as u64,
        retained_bytes: retained_bytes as u64,
    }
}

/// Bumps the taxonomy counter matching an outcome's kind.
fn record_taxonomy(metrics: &MetricsRegistry, outcome: &Outcome) {
    let t = &metrics.taxonomy;
    match outcome.status {
        404 => t.not_found.fetch_add(1, Ordering::Relaxed),
        405 => t.bad_method.fetch_add(1, Ordering::Relaxed),
        413 => t.batch_too_large.fetch_add(1, Ordering::Relaxed),
        400 => t.bad_json.fetch_add(1, Ordering::Relaxed),
        _ => 0,
    };
}

/// Dispatches one parsed request against one snapshot. `snapshot_age`
/// is time since the current snapshot was published (for `/healthz`
/// and `/metrics`). `archive` enables the time-travel surface: the
/// `epoch=` parameter on point queries and the `/trend` / `/churn`
/// routes; without one those map to typed `404`s.
pub fn dispatch(
    request: &Request,
    snapshot: &Snapshot,
    snapshot_age: Duration,
    archive: Option<&SnapshotArchive<'_, '_>>,
    metrics: &MetricsRegistry,
) -> Outcome {
    let route = Route::of_path(&request.path);
    let outcome = match (request.method.as_str(), route) {
        ("POST", Route::Query) => query(request, snapshot),
        ("GET", Route::Verdict) => verdict(request, snapshot, archive),
        ("GET", Route::Asn) => asn(request, snapshot, archive),
        ("GET", Route::Ixp) => ixp(request, snapshot, archive),
        ("GET", Route::Explain) => explain(request, snapshot, archive),
        ("GET", Route::Trend) => trend(request, archive),
        ("GET", Route::Churn) => churn(request, archive),
        ("GET", Route::Healthz) => healthz(snapshot, snapshot_age),
        ("GET", Route::Metrics) => {
            let gauges = snapshot_gauges(snapshot, archive);
            serialize_ok(&metrics.render(snapshot.epoch(), snapshot_age, &gauges))
        }
        (_, Route::Other) => error(404, "not_found", format!("no route `{}`", request.path)),
        (method, _) => error(
            405,
            "bad_method",
            format!("method {method} not allowed on `{}`", request.path),
        ),
    };
    if outcome.status >= 400 {
        record_taxonomy(metrics, &outcome);
    }
    outcome
}

fn query(request: &Request, snapshot: &Snapshot) -> Outcome {
    let batch: Vec<QueryRequest> = match serde_json::from_slice(&request.body) {
        Ok(batch) => batch,
        Err(e) => {
            return error(400, "bad_json", format!("query batch does not parse: {e}"));
        }
    };
    match snapshot.query(&batch) {
        Ok(responses) => serialize_ok(&responses),
        Err(e) => service_error(e),
    }
}

fn verdict(
    request: &Request,
    snapshot: &Snapshot,
    archive: Option<&SnapshotArchive<'_, '_>>,
) -> Outcome {
    let ixp = match parse_param::<usize>(request, "ixp") {
        Ok(v) => v,
        Err(o) => return o,
    };
    let iface = match parse_param::<Ipv4Addr>(request, "iface") {
        Ok(v) => v,
        Err(o) => return o,
    };
    match opt_param::<u64>(request, "epoch") {
        Err(o) => o,
        Ok(None) => match snapshot.verdict(ixp, iface) {
            Ok(answer) => serialize_ok(&answer),
            Err(e) => service_error(e),
        },
        Ok(Some(epoch)) => match archive {
            None => no_archive(),
            Some(archive) => match archive.verdict_at(ixp, iface, epoch) {
                Ok(answer) => serialize_ok(&answer),
                Err(e) => archive_error(e),
            },
        },
    }
}

fn asn(
    request: &Request,
    snapshot: &Snapshot,
    archive: Option<&SnapshotArchive<'_, '_>>,
) -> Outcome {
    let asn = match parse_param::<u32>(request, "asn") {
        Ok(v) => opeer_net::Asn::new(v),
        Err(o) => return o,
    };
    match opt_param::<u64>(request, "epoch") {
        Err(o) => o,
        Ok(None) => match snapshot.asn_report(asn) {
            Ok(answer) => serialize_ok(&answer),
            Err(e) => service_error(e),
        },
        Ok(Some(epoch)) => match archive {
            None => no_archive(),
            Some(archive) => match archive.asn_report_at(asn, epoch) {
                Ok(answer) => serialize_ok(&answer),
                Err(e) => archive_error(e),
            },
        },
    }
}

fn ixp(
    request: &Request,
    snapshot: &Snapshot,
    archive: Option<&SnapshotArchive<'_, '_>>,
) -> Outcome {
    let ixp = match parse_param::<usize>(request, "ixp") {
        Ok(v) => v,
        Err(o) => return o,
    };
    match opt_param::<u64>(request, "epoch") {
        Err(o) => o,
        Ok(None) => match snapshot.ixp_report(ixp) {
            Ok(answer) => serialize_ok(&answer),
            Err(e) => service_error(e),
        },
        Ok(Some(epoch)) => match archive {
            None => no_archive(),
            Some(archive) => match archive.ixp_report_at(ixp, epoch) {
                Ok(answer) => serialize_ok(&answer),
                Err(e) => archive_error(e),
            },
        },
    }
}

fn explain(
    request: &Request,
    snapshot: &Snapshot,
    archive: Option<&SnapshotArchive<'_, '_>>,
) -> Outcome {
    let iface = match parse_param::<Ipv4Addr>(request, "iface") {
        Ok(v) => v,
        Err(o) => return o,
    };
    match opt_param::<u64>(request, "epoch") {
        Err(o) => o,
        Ok(None) => match snapshot.explain(iface) {
            Ok(answer) => serialize_ok(&answer),
            Err(e) => service_error(e),
        },
        Ok(Some(epoch)) => match archive {
            None => no_archive(),
            Some(archive) => match archive.explain_at(iface, epoch) {
                Ok(answer) => serialize_ok(&answer),
                Err(e) => archive_error(e),
            },
        },
    }
}

fn trend(request: &Request, archive: Option<&SnapshotArchive<'_, '_>>) -> Outcome {
    let ixp = match parse_param::<usize>(request, "ixp") {
        Ok(v) => v,
        Err(o) => return o,
    };
    let from = match opt_param::<u64>(request, "from") {
        Ok(v) => v,
        Err(o) => return o,
    };
    let to = match opt_param::<u64>(request, "to") {
        Ok(v) => v,
        Err(o) => return o,
    };
    let Some(archive) = archive else {
        return no_archive();
    };
    match archive.trend(ixp) {
        Ok(mut line) => {
            if let Some(from) = from {
                line.points.retain(|p| p.epoch >= from);
            }
            if let Some(to) = to {
                line.points.retain(|p| p.epoch <= to);
            }
            serialize_ok(&line)
        }
        Err(e) => archive_error(e),
    }
}

fn churn(request: &Request, archive: Option<&SnapshotArchive<'_, '_>>) -> Outcome {
    let asn = match parse_param::<u32>(request, "asn") {
        Ok(v) => opeer_net::Asn::new(v),
        Err(o) => return o,
    };
    let Some(archive) = archive else {
        return no_archive();
    };
    match archive.churn(asn) {
        Ok(report) => serialize_ok(&report),
        Err(e) => archive_error(e),
    }
}

fn healthz(snapshot: &Snapshot, snapshot_age: Duration) -> Outcome {
    let doc = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("epoch".to_string(), Value::U64(snapshot.epoch())),
        (
            "snapshot_age_ms".to_string(),
            Value::U64(u64::try_from(snapshot_age.as_millis()).unwrap_or(u64::MAX)),
        ),
        ("ixps".to_string(), Value::U64(snapshot.ixp_count() as u64)),
    ]);
    serialize_ok(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_core::engine::ParallelConfig;
    use opeer_core::input::InferenceInput;
    use opeer_core::pipeline::PipelineConfig;
    use opeer_core::service::{PeeringService, QueryResponse};
    use opeer_topology::{World, WorldConfig};
    use std::collections::BTreeMap;

    fn world() -> World {
        WorldConfig::small(42).generate()
    }

    fn get(path: &str, params: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: BTreeMap::new(),
            body: Vec::new(),
            close: false,
        }
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: BTreeMap::new(),
            headers: BTreeMap::new(),
            body: body.to_vec(),
            close: false,
        }
    }

    #[test]
    fn dispatch_covers_every_route_and_error_class() {
        let world = world();
        let svc = PeeringService::build(
            InferenceInput::assemble(&world, 42),
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        let snap = svc.snapshot();
        let metrics = MetricsRegistry::default();
        let age = Duration::from_millis(10);
        let inf = &snap.result().inferences[0];
        let (ixp, iface, asn) = (inf.ixp, inf.addr, inf.asn);

        // Happy paths.
        let ok = dispatch(
            &get(
                "/verdict",
                &[("ixp", &ixp.to_string()), ("iface", &iface.to_string())],
            ),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(ok.status, 200);
        let answer: opeer_core::service::VerdictAnswer =
            serde_json::from_slice(&ok.body).expect("verdict body parses");
        assert_eq!(answer.addr, iface);

        let ok = dispatch(
            &get("/asn", &[("asn", &asn.value().to_string())]),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(ok.status, 200);
        let ok = dispatch(&get("/ixp", &[("ixp", "0")]), &snap, age, None, &metrics);
        assert_eq!(ok.status, 200);
        let ok = dispatch(
            &get("/explain", &[("iface", &iface.to_string())]),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(ok.status, 200);
        let ok = dispatch(&get("/healthz", &[]), &snap, age, None, &metrics);
        assert_eq!(ok.status, 200);
        let health: Value = serde_json::from_slice(&ok.body).expect("health parses");
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(health.get("epoch").and_then(Value::as_u64), Some(0));
        let ok = dispatch(&get("/metrics", &[]), &snap, age, None, &metrics);
        assert_eq!(ok.status, 200);

        // A query batch mixing all four families.
        let batch = format!(
            "[{{\"Verdict\":{{\"ixp\":{ixp},\"iface\":\"{iface}\"}}}},\
             {{\"IxpReport\":{{\"ixp\":0}}}},\
             {{\"AsnReport\":{{\"asn\":{}}}}},\
             {{\"Explain\":{{\"iface\":\"{iface}\"}}}}]",
            asn.value()
        );
        let ok = dispatch(
            &post("/query", batch.as_bytes()),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
        let responses: Vec<QueryResponse> =
            serde_json::from_slice(&ok.body).expect("query body parses");
        assert_eq!(responses.len(), 4);
        assert!(matches!(responses[0], QueryResponse::Verdict(_)));

        // An empty batch is 200 [] (the fixed contract), not an error.
        let ok = dispatch(&post("/query", b"[]"), &snap, age, None, &metrics);
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"[]");

        // Error classes.
        let e = dispatch(
            &post("/query", b"this is not json"),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 400);
        let e = dispatch(
            &post("/query", b"{\"not\":\"a batch\"}"),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 400);
        let huge = format!(
            "[{}]",
            vec!["{\"IxpReport\":{\"ixp\":0}}"; opeer_core::service::MAX_BATCH + 1].join(",")
        );
        let e = dispatch(&post("/query", huge.as_bytes()), &snap, age, None, &metrics);
        assert_eq!(e.status, 413);
        let body: Value = serde_json::from_slice(&e.body).expect("error body parses");
        assert_eq!(
            body.get("error").and_then(Value::as_str),
            Some("batch_too_large")
        );
        assert!(body.get("service_error").is_some());

        let e = dispatch(
            &get("/verdict", &[("ixp", "0")]),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 400); // missing iface
        let e = dispatch(
            &get(
                "/verdict",
                &[("ixp", "banana"), ("iface", &iface.to_string())],
            ),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 400);
        let e = dispatch(
            &get(
                "/verdict",
                &[("ixp", "999999"), ("iface", &iface.to_string())],
            ),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 404);
        let e = dispatch(
            &get("/asn", &[("asn", "64999")]),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 404);
        let e = dispatch(&get("/nope", &[]), &snap, age, None, &metrics);
        assert_eq!(e.status, 404);
        let e = dispatch(&post("/healthz", b"{}"), &snap, age, None, &metrics);
        assert_eq!(e.status, 405);
        let e = dispatch(&get("/query", &[]), &snap, age, None, &metrics);
        assert_eq!(e.status, 405);

        // Taxonomy counters moved.
        assert!(metrics.taxonomy.not_found.load(Ordering::Relaxed) >= 3);
        assert!(metrics.taxonomy.bad_method.load(Ordering::Relaxed) >= 2);
        assert!(metrics.taxonomy.bad_json.load(Ordering::Relaxed) >= 2);
        assert!(metrics.taxonomy.batch_too_large.load(Ordering::Relaxed) >= 1);
        assert_eq!(metrics.panics(), 0);
    }

    #[test]
    fn dispatch_covers_the_time_travel_surface() {
        use opeer_core::archive::SnapshotArchive;
        use opeer_core::evolution::monthly_deltas;

        let world = world();
        let svc = PeeringService::build(
            InferenceInput::assemble_base(&world, 42),
            &PipelineConfig::default(),
            &ParallelConfig::new(2),
        );
        let archive = SnapshotArchive::attach(&svc);
        for delta in monthly_deltas(&world, 42, 0..=1) {
            archive.apply(delta);
        }
        let snap = svc.snapshot();
        let metrics = MetricsRegistry::default();
        let age = Duration::from_millis(10);
        let inf = &snap.result().inferences[0];
        let (ixp, iface, asn) = (inf.ixp, inf.addr, inf.asn);
        let ixp_s = ixp.to_string();
        let iface_s = iface.to_string();
        let asn_s = asn.value().to_string();
        let latest = archive.latest_epoch().expect("archive non-empty");

        // epoch= round-trips on every point route, at every epoch.
        for epoch in 0..=latest {
            let e = epoch.to_string();
            let ok = dispatch(
                &get(
                    "/verdict",
                    &[("ixp", &ixp_s), ("iface", &iface_s), ("epoch", &e)],
                ),
                &snap,
                age,
                Some(&archive),
                &metrics,
            );
            assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
            let answer: opeer_core::service::VerdictAnswer =
                serde_json::from_slice(&ok.body).expect("verdict body parses");
            assert_eq!(answer.epoch, epoch, "answer must carry its epoch");
            for (path, params) in [
                ("/asn", vec![("asn", asn_s.as_str()), ("epoch", e.as_str())]),
                ("/ixp", vec![("ixp", "0"), ("epoch", e.as_str())]),
                (
                    "/explain",
                    vec![("iface", iface_s.as_str()), ("epoch", e.as_str())],
                ),
            ] {
                let ok = dispatch(&get(path, &params), &snap, age, Some(&archive), &metrics);
                assert_eq!(ok.status, 200, "{path} at epoch {e}");
            }
        }

        // Aggregation happy paths.
        let ok = dispatch(
            &get("/trend", &[("ixp", "0")]),
            &snap,
            age,
            Some(&archive),
            &metrics,
        );
        assert_eq!(ok.status, 200);
        let line: opeer_core::archive::TrendLine =
            serde_json::from_slice(&ok.body).expect("trend parses");
        assert_eq!(line.points.len() as u64, latest + 1);
        let ok = dispatch(
            &get("/trend", &[("ixp", "0"), ("from", "1"), ("to", "1")]),
            &snap,
            age,
            Some(&archive),
            &metrics,
        );
        let line: opeer_core::archive::TrendLine =
            serde_json::from_slice(&ok.body).expect("trend parses");
        assert_eq!(line.points.len(), 1, "from/to must clip the window");
        let ok = dispatch(
            &get("/churn", &[("asn", &asn_s)]),
            &snap,
            age,
            Some(&archive),
            &metrics,
        );
        assert_eq!(ok.status, 200);
        let churn: opeer_core::archive::ChurnReport =
            serde_json::from_slice(&ok.body).expect("churn parses");
        assert_eq!(churn.per_epoch.len() as u64, latest);

        // Typed rejections: future epoch, garbage epoch, no archive.
        for (params, want_status, want_kind) in [
            (
                vec![
                    ("ixp", ixp_s.as_str()),
                    ("iface", iface_s.as_str()),
                    ("epoch", "999"),
                ],
                404,
                "future_epoch",
            ),
            (
                vec![
                    ("ixp", ixp_s.as_str()),
                    ("iface", iface_s.as_str()),
                    ("epoch", "banana"),
                ],
                400,
                "bad_param",
            ),
            (
                vec![
                    ("ixp", ixp_s.as_str()),
                    ("iface", iface_s.as_str()),
                    ("epoch", "-1"),
                ],
                400,
                "bad_param",
            ),
        ] {
            let e = dispatch(
                &get("/verdict", &params),
                &snap,
                age,
                Some(&archive),
                &metrics,
            );
            assert_eq!(e.status, want_status);
            let body: Value = serde_json::from_slice(&e.body).expect("error body parses");
            assert_eq!(body.get("error").and_then(Value::as_str), Some(want_kind));
        }
        let e = dispatch(
            &get(
                "/verdict",
                &[("ixp", &ixp_s), ("iface", &iface_s), ("epoch", "0")],
            ),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 404);
        let body: Value = serde_json::from_slice(&e.body).expect("error body parses");
        assert_eq!(
            body.get("error").and_then(Value::as_str),
            Some("no_archive")
        );
        let e = dispatch(&get("/trend", &[("ixp", "0")]), &snap, age, None, &metrics);
        assert_eq!(e.status, 404);
        let e = dispatch(
            &get("/churn", &[("asn", &asn_s)]),
            &snap,
            age,
            None,
            &metrics,
        );
        assert_eq!(e.status, 404);
        // Unknown entities through the archive stay 404, not 500.
        let e = dispatch(
            &get("/trend", &[("ixp", "999999")]),
            &snap,
            age,
            Some(&archive),
            &metrics,
        );
        assert_eq!(e.status, 404);
        let e = dispatch(
            &get("/churn", &[("asn", "64999")]),
            &snap,
            age,
            Some(&archive),
            &metrics,
        );
        assert_eq!(e.status, 404);
        // Wrong method on the new routes is 405 like everywhere else.
        let e = dispatch(&post("/trend", b"{}"), &snap, age, Some(&archive), &metrics);
        assert_eq!(e.status, 405);

        assert_eq!(metrics.panics(), 0);
    }
}
