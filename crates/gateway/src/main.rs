//! The gateway binary: generates a world, builds the snapshot-serving
//! query service over it, and serves the HTTP gateway — optionally
//! with a background writer streaming measurement epochs into the
//! service while it serves, so clients can watch `/healthz`'s epoch
//! climb.
//!
//! ```text
//! opeer-gateway [--scale paper|large|small] [--seed N] [--addr HOST:PORT]
//!               [--epochs N] [--epoch-interval-ms N]
//! ```
//!
//! `--addr` overrides `OPEER_GATEWAY_ADDR`; every other runtime knob
//! (`OPEER_GATEWAY_THREADS`, `OPEER_GATEWAY_KEYS`, rate limits, body
//! caps, timeouts) comes from the environment — see
//! [`opeer_gateway::config::GatewayConfig`].

use opeer_core::engine::ParallelConfig;
use opeer_core::incremental::InputDelta;
use opeer_core::input::default_configs;
use opeer_core::pipeline::PipelineConfig;
use opeer_core::service::PeeringService;
use opeer_core::InferenceInput;
use opeer_gateway::{Gateway, GatewayConfig};
use opeer_measure::campaign::campaign_batches;
use opeer_measure::traceroute::corpus_batches;
use opeer_topology::WorldConfig;
use std::time::Duration;

struct Args {
    scale: String,
    seed: u64,
    addr: Option<String>,
    epochs: usize,
    epoch_interval: Duration,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: "small".to_string(),
        seed: 42,
        addr: None,
        epochs: 0,
        epoch_interval: Duration::from_millis(500),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => args.scale = it.next().unwrap_or_else(|| usage("missing --scale value")),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed value"))
            }
            "--addr" => {
                args.addr = Some(it.next().unwrap_or_else(|| usage("missing --addr value")))
            }
            "--epochs" => {
                args.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --epochs value"))
            }
            "--epoch-interval-ms" => {
                args.epoch_interval = it
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage("bad --epoch-interval-ms value"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: opeer-gateway [--scale paper|large|small] [--seed N] [--addr HOST:PORT] \
         [--epochs N] [--epoch-interval-ms N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    let world_cfg = match args.scale.as_str() {
        "paper" => WorldConfig::paper(args.seed),
        "large" => WorldConfig::large(args.seed),
        "small" => WorldConfig::small(args.seed),
        other => usage(&format!("unknown scale {other}")),
    };

    let mut gw_cfg = GatewayConfig::from_env();
    if let Some(addr) = args.addr {
        gw_cfg.addr = addr;
    }

    eprintln!("generating {} world (seed {})...", args.scale, args.seed);
    let world = world_cfg.generate();
    let pipeline_cfg = PipelineConfig::default();
    let par = ParallelConfig::from_env();

    // With a streaming writer the service starts from the
    // measurement-free base and the deltas arrive live; without one it
    // warm-starts fully assembled.
    let (service, deltas) = if args.epochs > 0 {
        let service = PeeringService::build(
            InferenceInput::assemble_base(&world, args.seed),
            &pipeline_cfg,
            &par,
        );
        let (_registry, campaign_cfg, corpus_cfg) = default_configs(args.seed);
        let camp = campaign_batches(&world, &service.input().vps, campaign_cfg, args.epochs);
        let corp = corpus_batches(&world, corpus_cfg, args.epochs);
        (service, InputDelta::zip_batches(camp, corp))
    } else {
        let service = PeeringService::build(
            InferenceInput::assemble(&world, args.seed),
            &pipeline_cfg,
            &par,
        );
        (service, Vec::new())
    };

    let gateway = match Gateway::bind(gw_cfg) {
        Ok(gw) => gw,
        Err(e) => {
            eprintln!("error: cannot bind gateway: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "gateway listening on http://{} (epoch {}, {} deltas queued)",
        gateway.local_addr(),
        service.epoch(),
        deltas.len()
    );

    std::thread::scope(|scope| {
        if !deltas.is_empty() {
            let service = &service;
            let interval = args.epoch_interval;
            scope.spawn(move || {
                for delta in deltas {
                    std::thread::sleep(interval);
                    let epoch = service.apply(delta);
                    eprintln!("published epoch {epoch}");
                }
                eprintln!("writer done; serving final snapshot");
            });
        }
        // Blocks until ctrl-C kills the process (the binary has no
        // remote stop; GatewayControl is for in-process embedders).
        gateway.serve(&service);
    });
}
