//! The accept loop and worker pool: [`Gateway`].
//!
//! Shape: one acceptor thread (the caller of [`Gateway::serve`]) fans
//! accepted connections over an `mpsc` channel to `threads` scoped
//! worker threads, each of which runs connections through a keep-alive
//! loop — read request, middleware, dispatch, write response — until
//! the peer closes, errs, or asks to close. Workers take the receiver
//! from behind a mutex only long enough to `recv()` one connection, so
//! distribution is whoever-is-free-next, which is exactly the right
//! policy for a mix of cheap point queries and heavier batches.
//!
//! `serve` blocks until [`GatewayControl::stop`] is called (from any
//! thread); stop flips an atomic flag and pokes the listener with a
//! throwaway connection so `accept()` returns. Scoped threads mean the
//! gateway borrows the [`PeeringService`] (and its world) instead of
//! demanding `'static` — the binary and the tests both run the server
//! and a live delta writer against the same stack-owned service.
//!
//! No panic is reachable from the socket: every parse and every
//! handler returns `Result`, and each connection additionally runs
//! inside `catch_unwind` as a bulkhead, so a bug that does slip
//! through burns one connection (and increments the `internal_panic`
//! taxonomy counter, which the tests pin to zero) instead of the
//! worker thread.

use crate::config::GatewayConfig;
use crate::http::{write_response, Conn, HttpError};
use crate::metrics::{MetricsRegistry, Route};
use crate::middleware::{ApiKeyAuth, CallerKey, Layer, RateLimit};
use crate::routes::{dispatch, error_body};
use opeer_core::archive::SnapshotArchive;
use opeer_core::service::PeeringService;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Handle for stopping a running [`Gateway`] from another thread.
#[derive(Clone)]
pub struct GatewayControl {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl GatewayControl {
    /// Signals the accept loop to exit. Safe to call more than once.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() with a throwaway connection; if the listener
        // already went away that is fine too.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Tracks when the latest snapshot epoch was first observed, so
/// `/healthz` and `/metrics` can report snapshot age without asking
/// the write side.
struct EpochClock {
    state: Mutex<(u64, Instant)>,
}

impl EpochClock {
    fn new(epoch: u64) -> EpochClock {
        EpochClock {
            state: Mutex::new((epoch, Instant::now())),
        }
    }

    /// Observes the current epoch; returns time since the epoch first
    /// changed to this value.
    fn age(&self, epoch: u64) -> std::time::Duration {
        let mut state = self.state.lock().expect("epoch clock poisoned");
        if state.0 != epoch {
            *state = (epoch, Instant::now());
        }
        state.1.elapsed()
    }
}

/// The bound gateway: listener + configuration + shared metrics.
pub struct Gateway {
    listener: TcpListener,
    cfg: GatewayConfig,
    metrics: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
}

impl Gateway {
    /// Binds the configured address (use port `0` for an ephemeral
    /// port; [`Gateway::local_addr`] reports what was bound).
    pub fn bind(cfg: GatewayConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Gateway {
            listener,
            cfg,
            metrics: Arc::new(MetricsRegistry::default()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The shared metrics registry (for tests and the loadgen report).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A stop handle usable from any thread.
    pub fn control(&self) -> GatewayControl {
        GatewayControl {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr(),
        }
    }

    /// Runs the accept loop, blocking the calling thread until
    /// [`GatewayControl::stop`]. Workers are scoped threads, so the
    /// service only needs to outlive this call — not `'static`.
    pub fn serve(&self, service: &PeeringService<'_>) {
        self.serve_with(service, None);
    }

    /// [`Gateway::serve`] with a [`SnapshotArchive`] attached, enabling
    /// the time-travel surface: `epoch=` on the point-query routes and
    /// `GET /trend` / `GET /churn`. The archive borrows the same
    /// service; a writer thread can keep streaming deltas through
    /// [`SnapshotArchive::apply`] while the gateway serves.
    pub fn serve_with(
        &self,
        service: &PeeringService<'_>,
        archive: Option<&SnapshotArchive<'_, '_>>,
    ) {
        let auth = ApiKeyAuth::new(self.cfg.api_keys.clone());
        let limiter = RateLimit::new(self.cfg.rate_per_sec, self.cfg.rate_burst);
        let clock = EpochClock::new(service.epoch());
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        let live_workers = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.cfg.threads.max(1) {
                let rx = &rx;
                let auth = &auth;
                let limiter = &limiter;
                let clock = &clock;
                let live_workers = &live_workers;
                let metrics = &self.metrics;
                let cfg = &self.cfg;
                scope.spawn(move || {
                    live_workers.fetch_add(1, Ordering::Relaxed);
                    loop {
                        // Hold the receiver lock only for the handoff.
                        let next = {
                            let guard = rx.lock().expect("connection queue poisoned");
                            guard.recv()
                        };
                        let Ok(stream) = next else { break };
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                handle_connection(
                                    stream, cfg, service, archive, auth, limiter, clock, metrics,
                                )
                            }));
                        if outcome.is_err() {
                            metrics
                                .taxonomy
                                .internal_panic
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    live_workers.fetch_sub(1, Ordering::Relaxed);
                });
            }

            for incoming in self.listener.incoming() {
                if self.stop.load(Ordering::Acquire) {
                    break;
                }
                match incoming {
                    Ok(stream) => {
                        self.metrics.connections.fetch_add(1, Ordering::Relaxed);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Transient accept errors (peer reset between
                    // accept and handshake) are not fatal.
                    Err(_) => continue,
                }
            }
            // Dropping the sender drains the workers: each sees the
            // channel close after finishing its in-flight connections.
            drop(tx);
        });
    }
}

/// Graceful close after an error response: half-close the write side,
/// then discard whatever the peer already sent (bounded by the read
/// timeout and a byte budget). Dropping a socket with unread bytes
/// queued makes the kernel send RST, which can destroy the error
/// response before the client reads it — the drain lets the response
/// land first.
fn drain_and_close(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 4096];
    let mut budget = 1 << 20;
    while budget > 0 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

/// The caller identity for middleware: the presented API key if any,
/// otherwise the peer IP.
fn caller_key(request: &crate::http::Request, stream: &TcpStream) -> CallerKey {
    if let Some(key) = request.header("x-api-key") {
        return CallerKey::ApiKey(key.to_string());
    }
    match stream.peer_addr() {
        Ok(addr) => CallerKey::Peer(addr.ip()),
        Err(_) => CallerKey::ApiKey(String::new()),
    }
}

/// One connection's keep-alive loop.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    cfg: &GatewayConfig,
    service: &PeeringService<'_>,
    archive: Option<&SnapshotArchive<'_, '_>>,
    auth: &ApiKeyAuth,
    limiter: &RateLimit,
    clock: &EpochClock,
    metrics: &MetricsRegistry,
) {
    let Ok(mut conn) = Conn::new(stream, cfg.read_timeout) else {
        return;
    };
    loop {
        let started = Instant::now();
        let request = match conn.read_request(cfg.max_header_bytes, cfg.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(err) => {
                // Framing failed: answer the mapped status (best
                // effort) and drop the connection — the stream can no
                // longer be trusted to be request-aligned.
                metrics.taxonomy.framing.fetch_add(1, Ordering::Relaxed);
                let status = err.status();
                let body = error_body(status, err.kind(), &err.to_string(), None);
                let _ = write_response(conn.stream(), status, &body, true);
                drain_and_close(conn.stream());
                metrics.record(Route::Other, status, started.elapsed());
                return;
            }
        };

        let route = Route::of_path(&request.path);
        let close = request.close;
        let caller = caller_key(&request, conn.stream());

        // Middleware layers, in order; then dispatch.
        let (status, body) = if let Some(reject) = auth
            .check(&request, &caller)
            .or_else(|| limiter.check(&request, &caller))
        {
            match reject.status {
                401 => metrics
                    .taxonomy
                    .unauthorized
                    .fetch_add(1, Ordering::Relaxed),
                _ => metrics
                    .taxonomy
                    .rate_limited
                    .fetch_add(1, Ordering::Relaxed),
            };
            (
                reject.status,
                error_body(reject.status, reject.kind, &reject.detail, None),
            )
        } else {
            let snapshot = service.snapshot();
            let age = clock.age(snapshot.epoch());
            let outcome = dispatch(&request, &snapshot, age, archive, metrics);
            (outcome.status, outcome.body)
        };

        metrics.record(route, status, started.elapsed());
        if write_response(conn.stream(), status, &body, close).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}
