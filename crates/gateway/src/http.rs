//! Hand-rolled HTTP/1.1 framing over a blocking [`TcpStream`].
//!
//! The parser is the gateway's outermost trust boundary: everything a
//! peer can put on the wire — truncated heads, oversized headers,
//! absurd content lengths, pipelined requests, bytes that are not HTTP
//! at all — must come back as a typed [`HttpError`], never a panic and
//! never an unbounded allocation. Limits are enforced *while reading*:
//! a head is abandoned the moment it exceeds the configured cap, and a
//! declared body larger than the cap is rejected before a single body
//! byte is buffered.
//!
//! Framing is deliberately minimal HTTP/1.1: request line + headers +
//! `Content-Length` body. `Transfer-Encoding: chunked` is answered
//! `501` — the JSON query protocol never needs it, and refusing it
//! loudly beats smuggling bugs. Keep-alive and pipelining work: bytes
//! read past the current request stay in the connection buffer and
//! seed the next [`Conn::read_request`] call.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Everything that can go wrong between the socket and a parsed
/// [`Request`]. Each variant maps to exactly one HTTP status
/// ([`HttpError::status`]); every one of them closes the connection,
/// because after a framing error the byte stream can no longer be
/// trusted to be request-aligned.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests. Not an
    /// error to report — the keep-alive loop just ends.
    Closed,
    /// The peer closed mid-request (truncated head or body).
    Truncated,
    /// The socket read timed out mid-request (slowloris guard).
    Timeout,
    /// The request head exceeded the configured byte cap.
    HeadTooLarge {
        /// The configured cap the head exceeded.
        limit: usize,
    },
    /// The declared body exceeded the configured byte cap.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// The request line is not `METHOD target HTTP/1.x`.
    BadRequestLine,
    /// A header line has no `:` separator or a non-ASCII name.
    BadHeader,
    /// `Content-Length` is absent on a method that requires it, not a
    /// number, or declared more than once with different values.
    BadContentLength,
    /// `Transfer-Encoding` was declared; the gateway only frames by
    /// `Content-Length`.
    UnsupportedTransferEncoding,
    /// The version token is not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion,
    /// Any other socket-level failure.
    Io(std::io::Error),
}

impl HttpError {
    /// The HTTP status this error is reported as (0 for [`Closed`],
    /// which sends nothing).
    ///
    /// [`Closed`]: HttpError::Closed
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed => 0,
            HttpError::Truncated => 400,
            HttpError::Timeout => 408,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::BadRequestLine => 400,
            HttpError::BadHeader => 400,
            HttpError::BadContentLength => 400,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::UnsupportedVersion => 505,
            HttpError::Io(_) => 400,
        }
    }

    /// Stable machine-readable kind, used in JSON error bodies and the
    /// metrics error taxonomy.
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::Closed => "closed",
            HttpError::Truncated => "truncated",
            HttpError::Timeout => "timeout",
            HttpError::HeadTooLarge { .. } => "head_too_large",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::BadRequestLine => "bad_request_line",
            HttpError::BadHeader => "bad_header",
            HttpError::BadContentLength => "bad_content_length",
            HttpError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            HttpError::UnsupportedVersion => "unsupported_version",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Timeout => write!(f, "read timed out mid-request"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}")
            }
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::BadContentLength => write!(f, "missing or malformed content-length"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported (use content-length)")
            }
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request. Header names are lowercased at parse time;
/// query parameters are split but not percent-decoded (the gateway's
/// targets are plain `key=value` pairs of digits and dotted quads).
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Parsed `key=value` query parameters, last key wins.
    pub query: BTreeMap<String, String>,
    /// Headers, names lowercased. Last occurrence wins except
    /// `content-length`, where a conflicting repeat is an error.
    pub headers: BTreeMap<String, String>,
    /// The request body (empty for bodyless methods).
    pub body: Vec<u8>,
    /// Whether the peer asked to close after this response
    /// (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }
}

const MAX_HEADER_COUNT: usize = 100;

/// One live connection: the stream plus the buffer of bytes already
/// read from it. Pipelined requests arrive here naturally — whatever
/// the last read pulled in beyond the current request's frame stays in
/// `buf` and is consumed first by the next [`read_request`] call.
///
/// [`read_request`]: Conn::read_request
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream, arming the read timeout.
    pub fn new(stream: TcpStream, read_timeout: Duration) -> std::io::Result<Conn> {
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// The underlying stream (for writing responses and peer lookup).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Pulls more bytes from the socket into the buffer. `Ok(false)`
    /// means clean EOF.
    fn fill(&mut self) -> Result<bool, HttpError> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(true);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(HttpError::Timeout)
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    /// Reads and parses the next request off the wire, enforcing the
    /// head and body caps while reading. On any `Err` other than
    /// [`HttpError::Closed`] the caller should write the mapped status
    /// and drop the connection.
    pub fn read_request(&mut self, max_head: usize, max_body: usize) -> Result<Request, HttpError> {
        // Phase 1: accumulate until the blank line ends the head.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > max_head {
                return Err(HttpError::HeadTooLarge { limit: max_head });
            }
            if !self.fill()? {
                return if self.buf.iter().all(|&b| b == b'\r' || b == b'\n') {
                    // Nothing but optional trailing CRLFs: a clean close
                    // between requests, not a truncation.
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Truncated)
                };
            }
        };
        if head_end > max_head {
            return Err(HttpError::HeadTooLarge { limit: max_head });
        }

        let head_bytes = self.buf[..head_end].to_vec();
        let head = std::str::from_utf8(&head_bytes).map_err(|_| HttpError::BadHeader)?;
        let mut request = parse_head(head)?;

        // Phase 2: frame the body by content-length.
        let declared = match request.headers.get("content-length") {
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::BadContentLength)?,
            None if request.method == "POST" || request.method == "PUT" => {
                return Err(HttpError::BadContentLength)
            }
            None => 0,
        };
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let body_start = head_end + head_terminator_len(&self.buf, head_end);
        while self.buf.len() < body_start + declared {
            if !self.fill()? {
                return Err(HttpError::Truncated);
            }
        }
        request.body = self.buf[body_start..body_start + declared].to_vec();
        // Keep whatever the last read pulled in beyond this frame: it is
        // the start of the next pipelined request.
        self.buf.drain(..body_start + declared);
        Ok(request)
    }
}

/// Index of the head terminator in `buf`, if complete. Accepts both
/// `\r\n\r\n` and bare `\n\n` (lenient in what we accept; the response
/// side always emits CRLF).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

fn head_terminator_len(buf: &[u8], head_end: usize) -> usize {
    if buf[head_end..].starts_with(b"\r\n\r\n") {
        4
    } else {
        2
    }
}

fn parse_head(head: &str) -> Result<Request, HttpError> {
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }
    if !method
        .bytes()
        .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit())
        || method.is_empty()
    {
        return Err(HttpError::BadRequestLine);
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(HttpError::UnsupportedVersion),
    };
    if !target.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }

    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query: BTreeMap<String, String> = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut headers = BTreeMap::new();
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Err(HttpError::BadHeader);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::BadHeader);
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            if let Some(prev) = headers.get("content-length") {
                if *prev != value {
                    return Err(HttpError::BadContentLength);
                }
            }
        }
        headers.insert(name, value);
    }

    if headers.contains_key("transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }

    let connection = headers
        .get("connection")
        .map(|v| v.to_ascii_lowercase())
        .unwrap_or_default();
    let close = connection.split(',').any(|t| t.trim() == "close")
        || (http10 && !connection.split(',').any(|t| t.trim() == "keep-alive"));

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body: Vec::new(),
        close,
    })
}

/// The reason phrase for the statuses the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response frame. Errors are returned to
/// the caller, which treats any write failure as a dead connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed response, as read back by the test/loadgen client.
#[derive(Debug)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// The response body.
    pub body: Vec<u8>,
}

/// Minimal client-side response reader over the same buffered-leftover
/// discipline as [`Conn`], used by the integration tests and the
/// loadgen client (which also keep connections alive across requests).
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ClientConn {
    /// Connects and arms the read timeout.
    pub fn connect(addr: std::net::SocketAddr, timeout: Duration) -> std::io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// The underlying stream, for sending raw bytes.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Sends one request frame.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<()> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nhost: gateway\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Reads one response frame, leaving any pipelined surplus buffered.
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed before a full response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "malformed status line"))?;
        let mut headers = BTreeMap::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let declared = headers
            .get("content-length")
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let body_start = head_end + head_terminator_len(&self.buf, head_end);
        while self.buf.len() < body_start + declared {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + declared].to_vec();
        self.buf.drain(..body_start + declared);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(head: &str) -> Result<Request, HttpError> {
        parse_head(head)
    }

    #[test]
    fn request_line_grammar() {
        let r = parse("GET /healthz HTTP/1.1\r\nhost: x").expect("valid");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(!r.close);

        let r = parse("GET /verdict?ixp=3&iface=185.1.2.3 HTTP/1.1").expect("valid");
        assert_eq!(r.path, "/verdict");
        assert_eq!(r.query.get("ixp").map(String::as_str), Some("3"));
        assert_eq!(r.query.get("iface").map(String::as_str), Some("185.1.2.3"));

        assert!(matches!(
            parse("GET /x HTTP/2.0"),
            Err(HttpError::UnsupportedVersion)
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1 extra"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            parse("get /x HTTP/1.1"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            parse("GET x HTTP/1.1"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(parse("GET /x"), Err(HttpError::BadRequestLine)));
    }

    #[test]
    fn header_grammar_and_connection_semantics() {
        let r = parse("GET / HTTP/1.1\r\nX-Api-Key: secret\r\nConnection: close").expect("valid");
        assert_eq!(r.header("x-api-key"), Some("secret"));
        assert!(r.close);

        // HTTP/1.0 defaults to close, keep-alive opts back in.
        assert!(parse("GET / HTTP/1.0").expect("valid").close);
        assert!(
            !parse("GET / HTTP/1.0\r\nConnection: keep-alive")
                .expect("valid")
                .close
        );

        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here"),
            Err(HttpError::BadHeader)
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\n: empty-name"),
            Err(HttpError::BadHeader)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked"),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
        // Conflicting duplicate content-length is a smuggling vector.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5"),
            Err(HttpError::BadContentLength)
        ));
        // An agreeing duplicate is tolerated.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4").is_ok());
    }

    #[test]
    fn every_error_maps_to_a_status() {
        let errors = [
            HttpError::Truncated,
            HttpError::Timeout,
            HttpError::HeadTooLarge { limit: 1 },
            HttpError::BodyTooLarge {
                declared: 2,
                limit: 1,
            },
            HttpError::BadRequestLine,
            HttpError::BadHeader,
            HttpError::BadContentLength,
            HttpError::UnsupportedTransferEncoding,
            HttpError::UnsupportedVersion,
            HttpError::Io(std::io::Error::other("x")),
        ];
        for e in errors {
            let status = e.status();
            assert!((400..=599).contains(&status), "{e} -> {status}");
            assert_ne!(reason(status), "Unknown", "{e} -> {status}");
            assert!(!e.kind().is_empty());
        }
        assert_eq!(HttpError::Closed.status(), 0);
    }
}
