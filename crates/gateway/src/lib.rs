//! The wire-level query gateway: hand-rolled HTTP/1.1 over
//! [`std::net::TcpListener`], serving the snapshot query service
//! ([`opeer_core::service::PeeringService`]) to untrusted network
//! clients.
//!
//! The crate is the repo's network edge, and it is built around one
//! discipline: **every byte off the socket is hostile until parsed**.
//! Concretely,
//!
//! * the HTTP parser ([`http`]) enforces head/body/timeout limits
//!   *while reading* and returns a typed [`http::HttpError`] for every
//!   malformed frame — truncations, oversized heads, smuggled
//!   double `Content-Length`s, chunked encoding, bad versions;
//! * request bodies go through the hardened vendored `serde_json`
//!   (depth-limited, overflow-checked, UTF-8-validated), so a hostile
//!   body is a `400`, never a stack overflow;
//! * responses go through the strict wire serializer, which refuses
//!   non-finite floats instead of emitting lossy `null`s;
//! * middleware ([`middleware`]) — static API-key auth and per-caller
//!   token-bucket rate limiting — runs before any route handler, and
//!   the route layer ([`routes`]) maps every
//!   [`opeer_core::service::ServiceError`] and parse failure *totally*
//!   onto an HTTP status with a JSON error body;
//! * the server ([`server`]) wraps each connection in a
//!   `catch_unwind` bulkhead and counts any escapee in the
//!   `internal_panic` metric, which the test suite pins to zero.
//!
//! ## Routes
//!
//! | Route | Method | Meaning |
//! |---|---|---|
//! | `/query` | POST | JSON batch of [`QueryRequest`]s → batch of answers |
//! | `/verdict?ixp=N&iface=A.B.C.D` | GET | point verdict lookup |
//! | `/asn?asn=N` | GET | member report |
//! | `/ixp?ixp=N` | GET | per-IXP rollup |
//! | `/explain?iface=A.B.C.D` | GET | full evidence chain |
//! | `/trend?ixp=N[&from=E&to=E]` | GET | archive: remote-share trend line |
//! | `/churn?asn=N` | GET | archive: per-ASN verdict churn |
//! | `/healthz` | GET | liveness: epoch + snapshot age |
//! | `/metrics` | GET | counters, taxonomy, per-route latency |
//!
//! When the gateway is started with [`Gateway::serve_with`] and a
//! [`opeer_core::archive::SnapshotArchive`], the `/verdict`, `/asn`,
//! `/ixp`, and `/explain` routes additionally accept an `epoch=N`
//! parameter answering *as of* that archived epoch; out-of-range,
//! future, and garbage epochs map to typed 4xx errors (`future_epoch`,
//! `epoch_not_archived`, `bad_param`, `no_archive`), never a `500`.
//!
//! ## Runtime knobs
//!
//! `OPEER_GATEWAY_ADDR`, `OPEER_GATEWAY_THREADS` (same conventions as
//! `OPEER_THREADS`), `OPEER_GATEWAY_KEYS`, `OPEER_GATEWAY_RATE`,
//! `OPEER_GATEWAY_BURST`, `OPEER_GATEWAY_MAX_BODY`,
//! `OPEER_GATEWAY_READ_TIMEOUT_MS` — see [`config::GatewayConfig`].
//!
//! [`QueryRequest`]: opeer_core::service::QueryRequest

#![warn(missing_docs)]

pub mod config;
pub mod http;
pub mod metrics;
pub mod middleware;
pub mod routes;
pub mod server;

pub use config::GatewayConfig;
pub use metrics::{MetricsRegistry, SnapshotGauges};
pub use server::{Gateway, GatewayControl};
