//! Gateway runtime configuration, following the same environment
//! conventions as [`opeer_core::engine::ParallelConfig`]: every knob
//! has a production default, `0`/unset/garbage fall back to it, and
//! whitespace around a value is tolerated.

use std::time::Duration;

/// Environment variable overriding the listen address.
pub const ADDR_ENV: &str = "OPEER_GATEWAY_ADDR";
/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "OPEER_GATEWAY_THREADS";
/// Environment variable holding comma-separated static API keys.
pub const KEYS_ENV: &str = "OPEER_GATEWAY_KEYS";
/// Environment variable overriding the per-key token refill rate.
pub const RATE_ENV: &str = "OPEER_GATEWAY_RATE";
/// Environment variable overriding the per-key token-bucket burst.
pub const BURST_ENV: &str = "OPEER_GATEWAY_BURST";
/// Environment variable overriding the request-body byte cap.
pub const MAX_BODY_ENV: &str = "OPEER_GATEWAY_MAX_BODY";
/// Environment variable overriding the socket read timeout (ms).
pub const READ_TIMEOUT_ENV: &str = "OPEER_GATEWAY_READ_TIMEOUT_MS";

/// Everything the gateway needs to know at bind time.
///
/// The request-size/header/timeout limits are the innermost middleware
/// layer: they are enforced structurally by the HTTP parser, before any
/// route code sees a byte.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Listen address (`host:port`; port `0` binds an ephemeral port —
    /// the tests and loadgen do exactly that).
    pub addr: String,
    /// Worker threads handling connections (thread-per-core by
    /// default: the machine's available parallelism).
    pub threads: usize,
    /// Largest accepted request head (request line + headers), bytes.
    pub max_header_bytes: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Socket read timeout: a peer that stalls mid-request is answered
    /// `408` and disconnected, so a slowloris cannot pin a worker.
    pub read_timeout: Duration,
    /// Static API keys (header `x-api-key`). Empty disables auth.
    pub api_keys: Vec<String>,
    /// Token-bucket refill rate per key, requests/second. `0.0`
    /// disables rate limiting.
    pub rate_per_sec: f64,
    /// Token-bucket capacity (burst allowance) per key.
    pub rate_burst: f64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:7077".to_string(),
            threads: available_parallelism(),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            api_keys: Vec::new(),
            rate_per_sec: 0.0,
            rate_burst: 0.0,
        }
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_parsed<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<T>().ok())
}

impl GatewayConfig {
    /// Reads every `OPEER_GATEWAY_*` knob, falling back to the
    /// defaults for absent or unparsable values (`OPEER_GATEWAY_THREADS=0`
    /// means "auto", like `OPEER_THREADS`).
    pub fn from_env() -> Self {
        let mut cfg = GatewayConfig::default();
        if let Ok(addr) = std::env::var(ADDR_ENV) {
            let addr = addr.trim();
            if !addr.is_empty() {
                cfg.addr = addr.to_string();
            }
        }
        if let Some(threads) = env_parsed::<usize>(THREADS_ENV).filter(|&n| n >= 1) {
            cfg.threads = threads;
        }
        if let Some(body) = env_parsed::<usize>(MAX_BODY_ENV).filter(|&n| n >= 1) {
            cfg.max_body_bytes = body;
        }
        if let Some(ms) = env_parsed::<u64>(READ_TIMEOUT_ENV).filter(|&n| n >= 1) {
            cfg.read_timeout = Duration::from_millis(ms);
        }
        if let Ok(keys) = std::env::var(KEYS_ENV) {
            cfg.api_keys = keys
                .split(',')
                .map(str::trim)
                .filter(|k| !k.is_empty())
                .map(str::to_string)
                .collect();
        }
        if let Some(rate) = env_parsed::<f64>(RATE_ENV).filter(|r| r.is_finite() && *r > 0.0) {
            cfg.rate_per_sec = rate;
            // Default burst: one second's worth, at least 1 request.
            cfg.rate_burst = rate.max(1.0);
        }
        if let Some(burst) = env_parsed::<f64>(BURST_ENV).filter(|b| b.is_finite() && *b >= 1.0) {
            cfg.rate_burst = burst;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = GatewayConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:7077");
        assert!(cfg.threads >= 1);
        assert!(cfg.max_body_bytes >= cfg.max_header_bytes);
        assert!(cfg.api_keys.is_empty());
        assert_eq!(cfg.rate_per_sec, 0.0);
    }

    #[test]
    fn env_parsing_edge_cases() {
        // One test owns the OPEER_GATEWAY_* variables for this binary
        // (set_var racing getenv from another test thread is UB), same
        // discipline as ParallelConfig's env test.
        std::env::set_var(ADDR_ENV, " 0.0.0.0:9000 ");
        std::env::set_var(THREADS_ENV, "3");
        std::env::set_var(KEYS_ENV, "alpha, beta,,gamma ");
        std::env::set_var(RATE_ENV, "250");
        std::env::set_var(MAX_BODY_ENV, "4096");
        std::env::set_var(READ_TIMEOUT_ENV, "1500");
        let cfg = GatewayConfig::from_env();
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.api_keys, ["alpha", "beta", "gamma"]);
        assert_eq!(cfg.rate_per_sec, 250.0);
        assert_eq!(cfg.rate_burst, 250.0);
        assert_eq!(cfg.max_body_bytes, 4096);
        assert_eq!(cfg.read_timeout, Duration::from_millis(1500));

        // Garbage, zeros, and negatives fall back to defaults.
        std::env::set_var(THREADS_ENV, "0");
        std::env::set_var(RATE_ENV, "NaN");
        std::env::set_var(BURST_ENV, "-5");
        std::env::set_var(MAX_BODY_ENV, "banana");
        std::env::set_var(ADDR_ENV, "");
        let cfg = GatewayConfig::from_env();
        let defaults = GatewayConfig::default();
        assert_eq!(cfg.threads, defaults.threads);
        assert_eq!(cfg.rate_per_sec, 0.0);
        assert_eq!(cfg.rate_burst, 0.0);
        assert_eq!(cfg.max_body_bytes, defaults.max_body_bytes);
        assert_eq!(cfg.addr, defaults.addr);

        // Explicit burst rides an explicit rate.
        std::env::set_var(RATE_ENV, "10.5");
        std::env::set_var(BURST_ENV, "40");
        let cfg = GatewayConfig::from_env();
        assert_eq!(cfg.rate_per_sec, 10.5);
        assert_eq!(cfg.rate_burst, 40.0);

        for var in [
            ADDR_ENV,
            THREADS_ENV,
            KEYS_ENV,
            RATE_ENV,
            BURST_ENV,
            MAX_BODY_ENV,
            READ_TIMEOUT_ENV,
        ] {
            std::env::remove_var(var);
        }
    }
}
