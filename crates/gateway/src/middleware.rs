//! Composable request middleware: the checks every request passes
//! before reaching a route handler.
//!
//! Each layer implements [`Layer`]: given the parsed request and the
//! caller's identity, it either passes (`None`) or short-circuits with
//! a typed [`Reject`] that the server maps to an HTTP status + JSON
//! error body. Layers are checked in a fixed order — auth before rate
//! limiting, so an unauthenticated flood cannot exhaust a legitimate
//! key's bucket — and `/healthz` bypasses both (liveness probes carry
//! no credentials).
//!
//! The third "layer" of the stack — request-size, header, and timeout
//! limits — lives structurally in the HTTP parser
//! ([`crate::http::Conn::read_request`]): those bounds must hold
//! *while* reading untrusted bytes, not after.

use crate::http::Request;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// A middleware rejection: the status and machine-readable kind the
/// server turns into a JSON error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// HTTP status to answer.
    pub status: u16,
    /// Stable kind for the error body and metrics taxonomy.
    pub kind: &'static str,
    /// Human-readable detail line.
    pub detail: String,
}

/// The caller's identity, as far as the gateway can tell: the API key
/// when one was presented and valid, otherwise the peer address. Rate
/// limiting keys its buckets on this.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CallerKey {
    /// A presented (and, post-auth, validated) `x-api-key` value.
    ApiKey(String),
    /// The remote peer's IP, for anonymous deployments.
    Peer(std::net::IpAddr),
}

/// One middleware check. Layers are `Sync` — a single instance is
/// shared across all worker threads.
pub trait Layer: Sync {
    /// `None` to pass the request through, `Some` to short-circuit.
    fn check(&self, request: &Request, caller: &CallerKey) -> Option<Reject>;
}

/// Routes exempt from auth and rate limiting: liveness must stay
/// observable even when credentials are wrong or a key is saturated.
fn exempt(path: &str) -> bool {
    path == "/healthz"
}

// ---------------------------------------------------------------------
// static API-key auth
// ---------------------------------------------------------------------

/// Static API-key auth: the request's `x-api-key` header must match
/// one of the configured keys. An empty key set disables the layer.
pub struct ApiKeyAuth {
    keys: Vec<String>,
}

impl ApiKeyAuth {
    /// Builds the layer over the configured key set.
    pub fn new(keys: Vec<String>) -> ApiKeyAuth {
        ApiKeyAuth { keys }
    }

    /// Whether any key is configured (auth enabled).
    pub fn enabled(&self) -> bool {
        !self.keys.is_empty()
    }

    /// Whether a presented key is valid.
    pub fn valid(&self, key: &str) -> bool {
        self.keys.iter().any(|k| k == key)
    }
}

impl Layer for ApiKeyAuth {
    fn check(&self, request: &Request, _caller: &CallerKey) -> Option<Reject> {
        if !self.enabled() || exempt(&request.path) {
            return None;
        }
        match request.header("x-api-key") {
            Some(key) if self.valid(key) => None,
            Some(_) => Some(Reject {
                status: 401,
                kind: "unauthorized",
                detail: "invalid api key".to_string(),
            }),
            None => Some(Reject {
                status: 401,
                kind: "unauthorized",
                detail: "missing x-api-key header".to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// per-key token-bucket rate limiting
// ---------------------------------------------------------------------

/// One caller's bucket: tokens remaining and the last refill instant.
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Per-caller token-bucket rate limiting. Buckets refill continuously
/// at `rate_per_sec` up to `burst`; each request spends one token. The
/// bucket map is bounded: at [`RateLimit::MAX_KEYS`] distinct callers,
/// fully-refilled stale buckets are evicted, so an attacker rotating
/// spoofed identities cannot grow the map without bound.
pub struct RateLimit {
    rate_per_sec: f64,
    burst: f64,
    buckets: Mutex<HashMap<CallerKey, Bucket>>,
}

impl RateLimit {
    /// Bound on distinct tracked callers before stale buckets are
    /// evicted.
    pub const MAX_KEYS: usize = 4096;

    /// Builds the layer. `rate_per_sec <= 0` disables it.
    pub fn new(rate_per_sec: f64, burst: f64) -> RateLimit {
        RateLimit {
            rate_per_sec,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the layer is active.
    pub fn enabled(&self) -> bool {
        self.rate_per_sec > 0.0
    }

    /// Spends one token for `caller` at time `now`; `false` means the
    /// bucket is empty and the request must be rejected. Public (rather
    /// than test-only) so the unit tests can drive time explicitly.
    pub fn admit_at(&self, caller: &CallerKey, now: Instant) -> bool {
        let mut buckets = self.buckets.lock().expect("rate-limit buckets poisoned");
        if buckets.len() >= Self::MAX_KEYS && !buckets.contains_key(caller) {
            // Evict buckets that have fully refilled: they carry no
            // state an honest caller would miss.
            let rate = self.rate_per_sec;
            let burst = self.burst;
            buckets.retain(|_, b| {
                let refilled = b.tokens + now.duration_since(b.refilled).as_secs_f64() * rate;
                refilled < burst
            });
            if buckets.len() >= Self::MAX_KEYS {
                // Map still saturated with active callers: shed the new
                // one rather than grow without bound.
                return false;
            }
        }
        let bucket = buckets.entry(caller.clone()).or_insert(Bucket {
            tokens: self.burst,
            refilled: now,
        });
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_sec).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

impl Layer for RateLimit {
    fn check(&self, request: &Request, caller: &CallerKey) -> Option<Reject> {
        if !self.enabled() || exempt(&request.path) {
            return None;
        }
        if self.admit_at(caller, Instant::now()) {
            None
        } else {
            Some(Reject {
                status: 429,
                kind: "rate_limited",
                detail: format!(
                    "rate limit exceeded ({} req/s, burst {})",
                    self.rate_per_sec, self.burst
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn request(path: &str, headers: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: BTreeMap::new(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
            close: false,
        }
    }

    fn peer() -> CallerKey {
        CallerKey::Peer("127.0.0.1".parse().expect("valid"))
    }

    #[test]
    fn auth_layer_semantics() {
        let auth = ApiKeyAuth::new(vec!["alpha".to_string(), "beta".to_string()]);
        let ok = request("/query", &[("x-api-key", "beta")]);
        assert_eq!(auth.check(&ok, &peer()), None);

        let wrong = request("/query", &[("x-api-key", "gamma")]);
        let reject = auth.check(&wrong, &peer()).expect("rejected");
        assert_eq!((reject.status, reject.kind), (401, "unauthorized"));

        let missing = request("/query", &[]);
        assert!(auth.check(&missing, &peer()).is_some());

        // Health probes pass without credentials; disabled auth passes
        // everything.
        assert_eq!(auth.check(&request("/healthz", &[]), &peer()), None);
        let off = ApiKeyAuth::new(Vec::new());
        assert_eq!(off.check(&missing, &peer()), None);
    }

    #[test]
    fn token_bucket_spends_and_refills() {
        let limiter = RateLimit::new(10.0, 3.0);
        let caller = peer();
        let t0 = Instant::now();
        // Burst of 3 admitted, 4th rejected.
        assert!(limiter.admit_at(&caller, t0));
        assert!(limiter.admit_at(&caller, t0));
        assert!(limiter.admit_at(&caller, t0));
        assert!(!limiter.admit_at(&caller, t0));
        // 100ms at 10 req/s refills one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(limiter.admit_at(&caller, t1));
        assert!(!limiter.admit_at(&caller, t1));
        // A different caller has its own bucket.
        let other = CallerKey::ApiKey("alpha".to_string());
        assert!(limiter.admit_at(&other, t1));
        // Refill never exceeds the burst cap.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(limiter.admit_at(&caller, t2));
        assert!(limiter.admit_at(&caller, t2));
        assert!(limiter.admit_at(&caller, t2));
        assert!(!limiter.admit_at(&caller, t2));
    }

    #[test]
    fn bucket_map_stays_bounded() {
        let limiter = RateLimit::new(1000.0, 1.0);
        let t0 = Instant::now();
        // Saturate the map with distinct callers whose buckets are
        // empty (each spends its single burst token).
        for i in 0..RateLimit::MAX_KEYS {
            let caller = CallerKey::ApiKey(format!("k{i}"));
            assert!(limiter.admit_at(&caller, t0));
        }
        // A brand-new caller at the same instant: every bucket is
        // drained (not refilled), so the map is saturated with active
        // callers and the newcomer is shed.
        let newcomer = CallerKey::ApiKey("newcomer".to_string());
        assert!(!limiter.admit_at(&newcomer, t0));
        // After the buckets refill, stale ones are evicted and the
        // newcomer gets a bucket.
        let t1 = t0 + Duration::from_secs(10);
        assert!(limiter.admit_at(&newcomer, t1));
        let tracked = limiter.buckets.lock().expect("buckets poisoned").len();
        assert!(tracked <= RateLimit::MAX_KEYS);
    }

    #[test]
    fn rate_limit_layer_exempts_health() {
        let limiter = RateLimit::new(1.0, 1.0);
        let caller = peer();
        let q = request("/query", &[]);
        assert_eq!(limiter.check(&q, &caller), None);
        let reject = limiter.check(&q, &caller).expect("bucket empty");
        assert_eq!((reject.status, reject.kind), (429, "rate_limited"));
        // Health stays reachable with the bucket empty.
        assert_eq!(limiter.check(&request("/healthz", &[]), &caller), None);
        // Disabled limiter passes everything.
        let off = RateLimit::new(0.0, 0.0);
        for _ in 0..100 {
            assert_eq!(off.check(&q, &caller), None);
        }
    }
}
