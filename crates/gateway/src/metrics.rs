//! Gateway observability: per-route request/error counters and
//! latency histograms, plus an error taxonomy, all lock-free atomics so
//! every worker thread records into the same registry without
//! contention. `GET /metrics` renders the whole thing as one JSON
//! document (built as a [`serde::Value`] tree and serialized through
//! the strict wire serializer, like every other gateway response).

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Builds a `Value::Object` from `(key, value)` pairs.
fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The routes the gateway serves, used to index the per-route metric
/// slots. `Other` absorbs 404s and malformed requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /query`.
    Query,
    /// `GET /verdict`.
    Verdict,
    /// `GET /asn`.
    Asn,
    /// `GET /ixp`.
    Ixp,
    /// `GET /explain`.
    Explain,
    /// `GET /trend` (archive time-travel aggregation).
    Trend,
    /// `GET /churn` (archive time-travel aggregation).
    Churn,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// Anything else (unknown routes, unparsable requests).
    Other,
}

/// Every route, in slot order.
pub const ROUTES: [Route; 10] = [
    Route::Query,
    Route::Verdict,
    Route::Asn,
    Route::Ixp,
    Route::Explain,
    Route::Trend,
    Route::Churn,
    Route::Healthz,
    Route::Metrics,
    Route::Other,
];

impl Route {
    /// The route's stable metric label.
    pub fn label(self) -> &'static str {
        match self {
            Route::Query => "/query",
            Route::Verdict => "/verdict",
            Route::Asn => "/asn",
            Route::Ixp => "/ixp",
            Route::Explain => "/explain",
            Route::Trend => "/trend",
            Route::Churn => "/churn",
            Route::Healthz => "/healthz",
            Route::Metrics => "/metrics",
            Route::Other => "other",
        }
    }

    fn slot(self) -> usize {
        match self {
            Route::Query => 0,
            Route::Verdict => 1,
            Route::Asn => 2,
            Route::Ixp => 3,
            Route::Explain => 4,
            Route::Trend => 5,
            Route::Churn => 6,
            Route::Healthz => 7,
            Route::Metrics => 8,
            Route::Other => 9,
        }
    }

    /// Maps a request path to its route slot.
    pub fn of_path(path: &str) -> Route {
        match path {
            "/query" => Route::Query,
            "/verdict" => Route::Verdict,
            "/asn" => Route::Asn,
            "/ixp" => Route::Ixp,
            "/explain" => Route::Explain,
            "/trend" => Route::Trend,
            "/churn" => Route::Churn,
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            _ => Route::Other,
        }
    }
}

/// Power-of-two microsecond buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs, with bucket 0 covering `[0, 2)` and the last
/// bucket open-ended. 32 buckets reach ~1.2 hours — far beyond any
/// plausible request.
const BUCKETS: usize = 32;

/// A lock-free latency histogram with power-of-two microsecond buckets.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded microseconds (for mean; saturating).
    total_us: AtomicU64,
    /// Largest single recorded value.
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one latency observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = if us < 2 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (exclusive, µs) of the bucket holding the given
    /// quantile — a conservative estimate: the true latency is at most
    /// this. `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1));
            }
        }
        Some(u64::MAX)
    }

    /// Largest single recorded latency, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Mean recorded latency, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }
}

/// One route's metric slot.
#[derive(Default)]
struct RouteSlot {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

/// A point-in-time copy of one route's counters, for embedders (the
/// bench loadgen study) that want numbers rather than the `/metrics`
/// JSON document.
#[derive(Debug, Clone)]
pub struct RouteStats {
    /// The route's stable label ([`Route::label`]).
    pub route: &'static str,
    /// Requests completed on this route.
    pub requests: u64,
    /// Error responses (status >= 400) on this route.
    pub errors: u64,
    /// Conservative p50 latency bound, µs (0 when empty).
    pub p50_us: u64,
    /// Conservative p99 latency bound, µs (0 when empty).
    pub p99_us: u64,
    /// Largest single recorded latency, µs.
    pub max_us: u64,
    /// Mean recorded latency, µs.
    pub mean_us: f64,
}

/// Structural-sharing gauges of the serving snapshot (and the attached
/// archive, when the time-travel surface is enabled), rendered as the
/// `snapshot` object of the `/metrics` document. Computed fresh per
/// scrape by the dispatcher — these are point-in-time reads of the
/// partition graph, not accumulated counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotGauges {
    /// Snapshot epochs currently retained (the archive's length after
    /// compaction, or 1 when only the live snapshot is held).
    pub retained_epochs: u64,
    /// Partitions of the newest snapshot also held by another snapshot
    /// (structurally shared via `Arc`).
    pub shared_partitions: u64,
    /// Partitions the newest snapshot holds alone.
    pub owned_partitions: u64,
    /// Deduplicated deep size of everything retained, in bytes (each
    /// shared partition counted once).
    pub retained_bytes: u64,
}

/// The error taxonomy counters: framing, middleware, and routing
/// rejections by stable kind, plus the last-resort panic bulkhead.
#[derive(Default)]
pub struct Taxonomy {
    /// HTTP framing errors (bad request line/header/content-length,
    /// truncation, oversize, timeout, version).
    pub framing: AtomicU64,
    /// `401` auth rejections.
    pub unauthorized: AtomicU64,
    /// `429` rate-limit rejections.
    pub rate_limited: AtomicU64,
    /// `404` unknown routes or unknown service entities.
    pub not_found: AtomicU64,
    /// `405` method mismatches.
    pub bad_method: AtomicU64,
    /// `400` JSON parse failures on `/query` bodies.
    pub bad_json: AtomicU64,
    /// `413` oversized batches ([`opeer_core::service::MAX_BATCH`]).
    pub batch_too_large: AtomicU64,
    /// `500`s from the per-connection `catch_unwind` bulkhead. Staying
    /// at zero is a test invariant.
    pub internal_panic: AtomicU64,
}

/// The gateway-wide metrics registry. One instance per gateway, shared
/// by reference across workers.
#[derive(Default)]
pub struct MetricsRegistry {
    routes: [RouteSlot; ROUTES.len()],
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// The taxonomy counters.
    pub taxonomy: Taxonomy,
}

impl MetricsRegistry {
    /// Records one completed request: its route, whether the response
    /// status was an error (>= 400), and its latency.
    pub fn record(&self, route: Route, status: u16, elapsed: Duration) {
        let slot = &self.routes[route.slot()];
        slot.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.latency.record(elapsed);
    }

    /// Total requests across all routes.
    pub fn total_requests(&self) -> u64 {
        self.routes
            .iter()
            .map(|s| s.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Total error responses across all routes.
    pub fn total_errors(&self) -> u64 {
        self.routes
            .iter()
            .map(|s| s.errors.load(Ordering::Relaxed))
            .sum()
    }

    /// Value of the panic-bulkhead counter.
    pub fn panics(&self) -> u64 {
        self.taxonomy.internal_panic.load(Ordering::Relaxed)
    }

    /// Point-in-time per-route counters, in [`ROUTES`] order.
    pub fn route_stats(&self) -> Vec<RouteStats> {
        ROUTES
            .iter()
            .map(|&route| {
                let slot = &self.routes[route.slot()];
                RouteStats {
                    route: route.label(),
                    requests: slot.requests.load(Ordering::Relaxed),
                    errors: slot.errors.load(Ordering::Relaxed),
                    p50_us: slot.latency.quantile_us(0.50).unwrap_or(0),
                    p99_us: slot.latency.quantile_us(0.99).unwrap_or(0),
                    max_us: slot.latency.max_us(),
                    mean_us: slot.latency.mean_us(),
                }
            })
            .collect()
    }

    /// Renders the registry as the `/metrics` JSON document:
    /// `{epoch, snapshot_age_ms, connections, requests, errors,
    /// snapshot: {retained_epochs, shared_partitions, owned_partitions,
    /// retained_bytes}, taxonomy: {...}, routes: [{route, requests,
    /// errors, p50_us, p99_us, max_us, mean_us}, ...]}`.
    pub fn render(&self, epoch: u64, snapshot_age: Duration, gauges: &SnapshotGauges) -> Value {
        let routes: Vec<Value> = self
            .route_stats()
            .into_iter()
            .map(|stats| {
                obj(vec![
                    ("route", Value::Str(stats.route.to_string())),
                    ("requests", Value::U64(stats.requests)),
                    ("errors", Value::U64(stats.errors)),
                    ("p50_us", Value::U64(stats.p50_us)),
                    ("p99_us", Value::U64(stats.p99_us)),
                    ("max_us", Value::U64(stats.max_us)),
                    ("mean_us", Value::F64(stats.mean_us)),
                ])
            })
            .collect();
        let t = &self.taxonomy;
        let taxonomy = obj(vec![
            ("framing", Value::U64(t.framing.load(Ordering::Relaxed))),
            (
                "unauthorized",
                Value::U64(t.unauthorized.load(Ordering::Relaxed)),
            ),
            (
                "rate_limited",
                Value::U64(t.rate_limited.load(Ordering::Relaxed)),
            ),
            ("not_found", Value::U64(t.not_found.load(Ordering::Relaxed))),
            (
                "bad_method",
                Value::U64(t.bad_method.load(Ordering::Relaxed)),
            ),
            ("bad_json", Value::U64(t.bad_json.load(Ordering::Relaxed))),
            (
                "batch_too_large",
                Value::U64(t.batch_too_large.load(Ordering::Relaxed)),
            ),
            (
                "internal_panic",
                Value::U64(t.internal_panic.load(Ordering::Relaxed)),
            ),
        ]);
        obj(vec![
            ("epoch", Value::U64(epoch)),
            (
                "snapshot_age_ms",
                Value::U64(u64::try_from(snapshot_age.as_millis()).unwrap_or(u64::MAX)),
            ),
            (
                "connections",
                Value::U64(self.connections.load(Ordering::Relaxed)),
            ),
            ("requests", Value::U64(self.total_requests())),
            ("errors", Value::U64(self.total_errors())),
            (
                "snapshot",
                obj(vec![
                    ("retained_epochs", Value::U64(gauges.retained_epochs)),
                    ("shared_partitions", Value::U64(gauges.shared_partitions)),
                    ("owned_partitions", Value::U64(gauges.owned_partitions)),
                    ("retained_bytes", Value::U64(gauges.retained_bytes)),
                ]),
            ),
            ("taxonomy", taxonomy),
            ("routes", Value::Array(routes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        for us in [1u64, 3, 3, 3, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 1000);
        // p50 falls in the [2,4) bucket → conservative bound 4.
        assert_eq!(h.quantile_us(0.5), Some(4));
        // p99 lands on the slowest sample's bucket [512, 1024) → 1024.
        assert_eq!(h.quantile_us(0.99), Some(1024));
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn registry_counts_and_renders() {
        let m = MetricsRegistry::default();
        m.record(Route::Query, 200, Duration::from_micros(50));
        m.record(Route::Query, 404, Duration::from_micros(20));
        m.record(Route::Healthz, 200, Duration::from_micros(5));
        m.taxonomy.not_found.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_errors(), 1);
        assert_eq!(m.panics(), 0);

        let gauges = SnapshotGauges {
            retained_epochs: 4,
            shared_partitions: 9,
            owned_partitions: 2,
            retained_bytes: 123_456,
        };
        let doc = m.render(7, Duration::from_millis(120), &gauges);
        let json = serde_json::to_string(&doc).expect("metrics serialize");
        assert!(json.contains("\"epoch\": 7") || json.contains("\"epoch\":7"));
        let back: Value = serde_json::from_str(&json).expect("metrics reparse");
        match back {
            Value::Object(members) => {
                assert!(members.iter().any(|(k, _)| k == "taxonomy"));
                assert!(members.iter().any(|(k, _)| k == "routes"));
            }
            other => panic!("metrics document is not an object: {other:?}"),
        }
        // The structural-sharing gauges land under `snapshot`, finite
        // and as written.
        let snap = &doc["snapshot"];
        assert_eq!(snap["retained_epochs"].as_u64(), Some(4));
        assert_eq!(snap["shared_partitions"].as_u64(), Some(9));
        assert_eq!(snap["owned_partitions"].as_u64(), Some(2));
        assert_eq!(snap["retained_bytes"].as_u64(), Some(123_456));
    }

    #[test]
    fn route_paths_map_to_slots() {
        assert_eq!(Route::of_path("/query"), Route::Query);
        assert_eq!(Route::of_path("/healthz"), Route::Healthz);
        assert_eq!(Route::of_path("/nope"), Route::Other);
        for route in ROUTES {
            assert_eq!(Route::of_path(route.label()), route);
        }
    }
}
