//! Wire-level integration tests: a real gateway on a real socket,
//! attacked with a malformed-request corpus and exercised end-to-end
//! against a live streaming writer.
//!
//! The invariant every test enforces on top of its own assertions:
//! the panic bulkhead (`internal_panic` in the metrics taxonomy)
//! stays at **zero** — nothing a client can put on the wire reaches a
//! panic.

use opeer_core::engine::ParallelConfig;
use opeer_core::incremental::InputDelta;
use opeer_core::input::default_configs;
use opeer_core::pipeline::PipelineConfig;
use opeer_core::service::{PeeringService, QueryResponse};
use opeer_core::InferenceInput;
use opeer_gateway::http::ClientConn;
use opeer_gateway::{Gateway, GatewayConfig, MetricsRegistry};
use opeer_measure::campaign::campaign_batches;
use opeer_measure::traceroute::corpus_batches;
use opeer_topology::{World, WorldConfig};
use serde::Value;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn small_world() -> World {
    WorldConfig::small(42).generate()
}

fn test_config() -> GatewayConfig {
    GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        max_header_bytes: 2048,
        max_body_bytes: 64 * 1024,
        // Short enough that the slowloris test completes quickly.
        read_timeout: Duration::from_millis(300),
        ..GatewayConfig::default()
    }
}

/// Runs `f` against a live gateway serving a warm small-world service,
/// then stops the gateway and asserts the panic bulkhead never fired.
fn with_gateway<F>(cfg: GatewayConfig, f: F)
where
    F: FnOnce(SocketAddr, &PeeringService<'_>, &Arc<MetricsRegistry>),
{
    let world = small_world();
    let service = PeeringService::build(
        InferenceInput::assemble(&world, 42),
        &PipelineConfig::default(),
        &ParallelConfig::new(2),
    );
    let gateway = Gateway::bind(cfg).expect("bind ephemeral port");
    let addr = gateway.local_addr();
    let control = gateway.control();
    let metrics = gateway.metrics();
    std::thread::scope(|scope| {
        let gateway = &gateway;
        let service_ref = &service;
        scope.spawn(move || gateway.serve(service_ref));
        // Stop the acceptor even when an assertion in `f` fails —
        // otherwise the scope would block forever joining the serve
        // thread and the test would hang instead of reporting.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr, &service, &metrics)));
        control.stop();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
    assert_eq!(metrics.panics(), 0, "panic bulkhead fired");
}

/// Sends raw bytes, optionally half-closes the write side, and returns
/// the first response status (0 when the server closed with no bytes).
fn raw_status(addr: SocketAddr, payload: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(payload).expect("send payload");
    stream.shutdown(Shutdown::Write).expect("half-close");
    read_status(&mut stream)
}

fn read_status(stream: &mut TcpStream) -> u16 {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn malformed_request_corpus_maps_to_statuses() {
    with_gateway(test_config(), |addr, _service, _metrics| {
        // (payload, expected status) — every framing violation the
        // parser distinguishes, as raw bytes on the socket.
        let corpus: &[(&[u8], u16)] = &[
            // Not HTTP at all.
            (b"hello there\r\n\r\n", 400),
            (b"\x00\x01\x02\x03\r\n\r\n", 400),
            // Bad request lines.
            (b"GET\r\n\r\n", 400),
            (b"GET /healthz\r\n\r\n", 400),
            (b"get /healthz HTTP/1.1\r\n\r\n", 400),
            (b"GET healthz HTTP/1.1\r\n\r\n", 400),
            (b"GET /healthz HTTP/1.1 surplus\r\n\r\n", 400),
            // Unsupported versions.
            (b"GET /healthz HTTP/2.0\r\n\r\n", 505),
            (b"GET /healthz HTTP/9.9\r\n\r\n", 505),
            // Header violations.
            (b"GET /healthz HTTP/1.1\r\nno colon line\r\n\r\n", 400),
            (b"GET /healthz HTTP/1.1\r\n: nameless\r\n\r\n", 400),
            // Content-length violations.
            (b"POST /query HTTP/1.1\r\n\r\n", 400),
            (
                b"POST /query HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
                400,
            ),
            (b"POST /query HTTP/1.1\r\ncontent-length: -5\r\n\r\n", 400),
            (
                b"POST /query HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 4\r\n\r\nabcd",
                400,
            ),
            // Declared body over the cap (64 KiB in the test config).
            (
                b"POST /query HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n",
                413,
            ),
            // Chunked transfer is refused, not mis-framed.
            (
                b"POST /query HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n",
                501,
            ),
            // Truncations: header cut mid-line, body shorter than
            // declared (the half-close makes these EOF, not timeout).
            (b"GET /healthz HTTP/1.1\r\nhost: tru", 400),
            (b"POST /query HTTP/1.1\r\ncontent-length: 50\r\n\r\n[", 400),
            // Valid frame, hostile JSON body.
            (
                b"POST /query HTTP/1.1\r\ncontent-length: 16\r\n\r\nthis is not json",
                400,
            ),
            (b"POST /query HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}", 400),
        ];
        for (payload, expected) in corpus {
            let got = raw_status(addr, payload);
            assert_eq!(
                got,
                *expected,
                "payload {:?}",
                String::from_utf8_lossy(payload)
            );
        }

        // Oversized head: more header bytes than the 2 KiB test cap.
        let mut oversized = b"GET /healthz HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            oversized.extend_from_slice(format!("x-pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
        }
        oversized.extend_from_slice(b"\r\n");
        assert_eq!(raw_status(addr, &oversized), 431);
    });
}

#[test]
fn split_writes_pipelining_and_early_close() {
    with_gateway(test_config(), |addr, _service, _metrics| {
        // A request dribbled in byte-sized writes still parses.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        for chunk in b"GET /healthz HTTP/1.1\r\nhost: split\r\n\r\n".chunks(3) {
            stream.write_all(chunk).expect("dribble");
            stream.flush().expect("flush");
        }
        assert_eq!(read_status(&mut stream), 200);
        drop(stream);

        // Two pipelined requests in one write get two responses in
        // order on the same connection.
        let mut client = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
        client
            .stream()
            .write_all(
                b"GET /healthz HTTP/1.1\r\nhost: a\r\n\r\nGET /metrics HTTP/1.1\r\nhost: b\r\n\r\n",
            )
            .expect("pipeline");
        let first = client.read_response().expect("first pipelined response");
        let second = client.read_response().expect("second pipelined response");
        assert_eq!(first.status, 200);
        assert_eq!(second.status, 200);
        let health: Value = serde_json::from_slice(&first.body).expect("healthz JSON");
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        let metrics_doc: Value = serde_json::from_slice(&second.body).expect("metrics JSON");
        assert!(metrics_doc.get("routes").is_some());
        // The structural-sharing snapshot gauges are present and
        // finite: a live gateway retains at least one epoch, its
        // snapshot holds at least one partition, and those partitions
        // weigh something.
        let snap = metrics_doc.get("snapshot").expect("snapshot gauges");
        let gauge = |k: &str| {
            snap.get(k)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("gauge {k} missing or not a finite count"))
        };
        assert!(gauge("retained_epochs") >= 1);
        assert!(gauge("shared_partitions") + gauge("owned_partitions") >= 1);
        assert!(gauge("retained_bytes") > 0);

        // A client that connects and vanishes mid-request burns
        // nothing but its own connection.
        let mut ghost = TcpStream::connect(addr).expect("connect");
        ghost.write_all(b"POST /query HTT").expect("partial");
        ghost.shutdown(Shutdown::Both).expect("vanish");
        drop(ghost);

        // A client that stalls silently is timed out (408), not held.
        let mut slow = TcpStream::connect(addr).expect("connect");
        slow.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        slow.write_all(b"GET /healthz HTTP/1.1\r\nhost: s")
            .expect("stall");
        // No more bytes: the 300ms server read timeout fires.
        assert_eq!(read_status(&mut slow), 408);

        // The gateway is still healthy after all of the above.
        let mut check = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
        check.send("GET", "/healthz", &[], b"").expect("send");
        assert_eq!(check.read_response().expect("answers").status, 200);
    });
}

#[test]
fn auth_and_rate_limit_layers_enforce_on_the_wire() {
    let cfg = GatewayConfig {
        api_keys: vec!["sesame".to_string()],
        rate_per_sec: 1.0,
        rate_burst: 2.0,
        ..test_config()
    };
    with_gateway(cfg, |addr, _service, _metrics| {
        let mut client = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
        // No key → 401; wrong key → 401; health stays open.
        client.send("GET", "/ixp?ixp=0", &[], b"").expect("send");
        assert_eq!(client.read_response().expect("answers").status, 401);
        client
            .send("GET", "/ixp?ixp=0", &[("x-api-key", "wrong")], b"")
            .expect("send");
        assert_eq!(client.read_response().expect("answers").status, 401);
        client.send("GET", "/healthz", &[], b"").expect("send");
        assert_eq!(client.read_response().expect("answers").status, 200);

        // Valid key: burst of 2 admitted, third rejected 429.
        let key = [("x-api-key", "sesame")];
        client.send("GET", "/ixp?ixp=0", &key, b"").expect("send");
        assert_eq!(client.read_response().expect("answers").status, 200);
        client.send("GET", "/ixp?ixp=0", &key, b"").expect("send");
        assert_eq!(client.read_response().expect("answers").status, 200);
        client.send("GET", "/ixp?ixp=0", &key, b"").expect("send");
        assert_eq!(client.read_response().expect("answers").status, 429);
        // Health bypasses the saturated bucket too.
        client.send("GET", "/healthz", &key, b"").expect("send");
        assert_eq!(client.read_response().expect("answers").status, 200);
    });
}

#[test]
fn time_travel_surface_over_the_wire() {
    use opeer_core::archive::SnapshotArchive;

    // A service replayed through a SnapshotArchive, then served with
    // `serve_with`: every archived epoch must round-trip over the wire,
    // the longitudinal routes must answer, and every hostile epoch
    // parameter must map to a typed 4xx — never a 500, never a panic.
    let world = small_world();
    let seed = 42;
    let service = PeeringService::build(
        InferenceInput::assemble_base(&world, seed),
        &PipelineConfig::default(),
        &ParallelConfig::new(2),
    );
    let archive = SnapshotArchive::attach(&service);
    let (_registry, campaign_cfg, corpus_cfg) = default_configs(seed);
    let camp = campaign_batches(&world, &service.input().vps, campaign_cfg, 3);
    let corp = corpus_batches(&world, corpus_cfg, 3);
    for delta in InputDelta::zip_batches(camp, corp) {
        archive.apply(delta);
    }
    let latest = archive.latest_epoch().expect("epochs archived");
    assert!(latest >= 2, "need a real history to time-travel");
    let probe = archive.latest().result().inferences[0].clone();

    let gateway = Gateway::bind(test_config()).expect("bind");
    let addr = gateway.local_addr();
    let control = gateway.control();
    let metrics = gateway.metrics();

    std::thread::scope(|scope| {
        let gateway = &gateway;
        let service_ref = &service;
        let archive_ref = &archive;
        scope.spawn(move || gateway.serve_with(service_ref, Some(archive_ref)));

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut client = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");

            // Every archived epoch round-trips: the answer carries the
            // requested epoch, not the latest one.
            for epoch in 0..=latest {
                client
                    .send(
                        "GET",
                        &format!(
                            "/verdict?ixp={}&iface={}&epoch={epoch}",
                            probe.ixp, probe.addr
                        ),
                        &[],
                        b"",
                    )
                    .expect("send verdict");
                let reply = client.read_response().expect("verdict answers");
                assert_eq!(reply.status, 200, "epoch {epoch}");
                let doc: Value = serde_json::from_slice(&reply.body).expect("verdict JSON");
                assert_eq!(
                    doc.get("epoch").and_then(Value::as_u64),
                    Some(epoch),
                    "answer tagged with a foreign epoch"
                );
            }

            // The longitudinal routes answer with full-history shapes.
            client
                .send("GET", &format!("/trend?ixp={}", probe.ixp), &[], b"")
                .expect("send trend");
            let reply = client.read_response().expect("trend answers");
            assert_eq!(reply.status, 200);
            let doc: Value = serde_json::from_slice(&reply.body).expect("trend JSON");
            let points = doc
                .get("points")
                .and_then(Value::as_array)
                .expect("points array");
            assert_eq!(points.len() as u64, latest + 1, "one point per epoch");

            client
                .send(
                    "GET",
                    &format!("/churn?asn={}", probe.asn.value()),
                    &[],
                    b"",
                )
                .expect("send churn");
            let reply = client.read_response().expect("churn answers");
            assert_eq!(reply.status, 200);
            let doc: Value = serde_json::from_slice(&reply.body).expect("churn JSON");
            assert_eq!(
                doc.get("per_epoch").and_then(Value::as_array).map(Vec::len),
                Some(latest as usize),
                "one churn point per epoch transition"
            );

            // Hostile epoch parameters: typed 4xx with a stable error
            // kind, on every route that accepts them.
            let verdict_path = format!("/verdict?ixp={}&iface={}", probe.ixp, probe.addr);
            for (path, want_status, want_kind) in [
                (format!("{verdict_path}&epoch=999"), 404, "future_epoch"),
                (format!("{verdict_path}&epoch=banana"), 400, "bad_param"),
                (format!("{verdict_path}&epoch=-1"), 400, "bad_param"),
                (
                    format!("/asn?asn={}&epoch=999", probe.asn.value()),
                    404,
                    "future_epoch",
                ),
                (
                    format!("/explain?iface={}&epoch=banana", probe.addr),
                    400,
                    "bad_param",
                ),
                ("/trend?ixp=banana".to_string(), 400, "bad_param"),
                ("/trend?ixp=99999".to_string(), 404, "not_found"),
                ("/churn?asn=4294967295".to_string(), 404, "not_found"),
            ] {
                client.send("GET", &path, &[], b"").expect("send hostile");
                let reply = client.read_response().expect("hostile answers");
                assert_eq!(reply.status, want_status, "{path}");
                let doc: Value = serde_json::from_slice(&reply.body).expect("error JSON");
                assert_eq!(
                    doc.get("error").and_then(Value::as_str),
                    Some(want_kind),
                    "{path}"
                );
            }

            // Wrong method on the new routes: 405, not a parse attempt.
            client
                .send("POST", "/trend?ixp=0", &[], b"{}")
                .expect("send");
            assert_eq!(client.read_response().expect("answers").status, 405);
        }));
        control.stop();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
    assert_eq!(metrics.panics(), 0, "panic bulkhead fired");
}

#[test]
fn archive_free_gateway_rejects_time_travel_with_typed_404() {
    // `Gateway::serve` (no archive) must refuse the time-travel surface
    // with the `no_archive` kind — not a 500, not a silent fallback to
    // the live snapshot.
    with_gateway(test_config(), |addr, service, _metrics| {
        let inf = service.snapshot().result().inferences[0].clone();
        let mut client = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
        for path in [
            format!("/verdict?ixp={}&iface={}&epoch=0", inf.ixp, inf.addr),
            "/trend?ixp=0".to_string(),
            format!("/churn?asn={}", inf.asn.value()),
        ] {
            client.send("GET", &path, &[], b"").expect("send");
            let reply = client.read_response().expect("answers");
            assert_eq!(reply.status, 404, "{path}");
            let doc: Value = serde_json::from_slice(&reply.body).expect("error JSON");
            assert_eq!(
                doc.get("error").and_then(Value::as_str),
                Some("no_archive"),
                "{path}"
            );
        }
        // Without epoch= the same route still serves the live snapshot.
        client
            .send(
                "GET",
                &format!("/verdict?ixp={}&iface={}", inf.ixp, inf.addr),
                &[],
                b"",
            )
            .expect("send");
        assert_eq!(client.read_response().expect("answers").status, 200);
    });
}

#[test]
fn end_to_end_against_a_streaming_writer() {
    // A gateway serving a *base* (measurement-free) service while a
    // writer streams epoch deltas into it: clients must see the epoch
    // climb monotonically and every response parse, mid-publish
    // included.
    let world = small_world();
    let seed = 42;
    let service = PeeringService::build(
        InferenceInput::assemble_base(&world, seed),
        &PipelineConfig::default(),
        &ParallelConfig::new(2),
    );
    let (_registry, campaign_cfg, corpus_cfg) = default_configs(seed);
    let epochs = 4;
    let camp = campaign_batches(&world, &service.input().vps, campaign_cfg, epochs);
    let corp = corpus_batches(&world, corpus_cfg, epochs);
    let deltas = InputDelta::zip_batches(camp, corp);
    let total_epochs = deltas.len() as u64;
    assert!(total_epochs > 0);

    let gateway = Gateway::bind(test_config()).expect("bind");
    let addr = gateway.local_addr();
    let control = gateway.control();
    let metrics = gateway.metrics();

    std::thread::scope(|scope| {
        let gateway = &gateway;
        let service_ref = &service;
        scope.spawn(move || gateway.serve(service_ref));

        // The writer: stream every delta with a small gap so readers
        // genuinely interleave with publishes.
        let writer = scope.spawn(move || {
            for delta in deltas {
                std::thread::sleep(Duration::from_millis(20));
                service_ref.apply(delta);
            }
        });

        // The reader: poll /healthz and /query until the final epoch
        // is visible, checking monotonicity throughout. Wrapped so a
        // failed assertion still stops the acceptor (otherwise the
        // scope join would hang instead of reporting the failure).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut client = ClientConn::connect(addr, Duration::from_secs(5)).expect("connect");
            let mut last_epoch = 0u64;
            let mut polls = 0u32;
            loop {
                polls += 1;
                assert!(polls < 2000, "writer never finished publishing");
                client
                    .send("GET", "/healthz", &[], b"")
                    .expect("send healthz");
                let health = client.read_response().expect("healthz answers");
                assert_eq!(health.status, 200);
                let doc: Value = serde_json::from_slice(&health.body).expect("healthz JSON");
                let epoch = doc
                    .get("epoch")
                    .and_then(Value::as_u64)
                    .expect("epoch field");
                assert!(
                    epoch >= last_epoch,
                    "epoch went backwards: {last_epoch} -> {epoch}"
                );
                last_epoch = epoch;

                // A query batch against whatever snapshot is current; all
                // answers must carry one consistent epoch tag.
                client
                    .send(
                        "POST",
                        "/query",
                        &[],
                        b"[{\"IxpReport\":{\"ixp\":0}},{\"IxpReport\":{\"ixp\":1}}]",
                    )
                    .expect("send query");
                let reply = client.read_response().expect("query answers");
                assert_eq!(reply.status, 200);
                let responses: Vec<QueryResponse> =
                    serde_json::from_slice(&reply.body).expect("query body parses");
                let tags: Vec<u64> = responses
                    .iter()
                    .filter_map(|r| match r {
                        QueryResponse::Ixp(i) => Some(i.epoch),
                        _ => None,
                    })
                    .collect();
                assert!(!tags.is_empty());
                assert!(
                    tags.windows(2).all(|w| w[0] == w[1]),
                    "mixed epoch tags in one batch"
                );
                assert!(tags[0] >= last_epoch.saturating_sub(total_epochs));

                if epoch == total_epochs {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            writer.join().expect("writer panicked");

            // Post-stream: the served snapshot answers a point query that
            // only exists once measurements arrived.
            let snapshot = service.snapshot();
            assert_eq!(snapshot.epoch(), total_epochs);
            if let Some(inf) = snapshot.result().inferences.first() {
                client
                    .send(
                        "GET",
                        &format!("/verdict?ixp={}&iface={}", inf.ixp, inf.addr),
                        &[],
                        b"",
                    )
                    .expect("send verdict");
                let verdict = client.read_response().expect("verdict answers");
                assert_eq!(verdict.status, 200);
            }
        }));
        control.stop();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
    assert_eq!(metrics.panics(), 0, "panic bulkhead fired");
}
