//! In-process gateway smoke check, run by CI's gateway-smoke job.
//!
//! Binds an ephemeral port, serves a small world, and drives the full
//! client path over a real socket: `/healthz`, a `POST /query` batch,
//! a point `GET /verdict`, and `/metrics`. Asserts statuses and
//! response shapes, asserts the panic bulkhead never fired, and exits
//! non-zero on any failure (every check is an `assert!`).

use opeer_core::engine::ParallelConfig;
use opeer_core::pipeline::PipelineConfig;
use opeer_core::service::{PeeringService, QueryResponse};
use opeer_core::InferenceInput;
use opeer_gateway::http::ClientConn;
use opeer_gateway::{Gateway, GatewayConfig};
use opeer_topology::WorldConfig;
use serde::Value;
use std::time::Duration;

fn main() {
    let world = WorldConfig::small(42).generate();
    let service = PeeringService::build(
        InferenceInput::assemble(&world, 42),
        &PipelineConfig::default(),
        &ParallelConfig::from_env(),
    );
    let cfg = GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind(cfg).expect("bind ephemeral port");
    let addr = gateway.local_addr();
    let control = gateway.control();
    let metrics = gateway.metrics();

    std::thread::scope(|scope| {
        let service_ref = &service;
        let gateway_ref = &gateway;
        scope.spawn(move || gateway_ref.serve(service_ref));

        let mut client =
            ClientConn::connect(addr, Duration::from_secs(10)).expect("connect to gateway");

        // Liveness.
        client
            .send("GET", "/healthz", &[], b"")
            .expect("send healthz");
        let health = client.read_response().expect("healthz answers");
        assert_eq!(health.status, 200, "healthz status");
        let doc: Value = serde_json::from_slice(&health.body).expect("healthz body is JSON");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(doc.get("epoch").and_then(Value::as_u64), Some(0));

        // A batch over real keys of the snapshot.
        let snapshot = service.snapshot();
        let inf = &snapshot.result().inferences[0];
        let batch = format!(
            "[{{\"Verdict\":{{\"ixp\":{},\"iface\":\"{}\"}}}},{{\"IxpReport\":{{\"ixp\":0}}}}]",
            inf.ixp, inf.addr
        );
        client
            .send(
                "POST",
                "/query",
                &[("content-type", "application/json")],
                batch.as_bytes(),
            )
            .expect("send query");
        let reply = client.read_response().expect("query answers");
        assert_eq!(
            reply.status,
            200,
            "query status; body: {}",
            String::from_utf8_lossy(&reply.body)
        );
        let responses: Vec<QueryResponse> =
            serde_json::from_slice(&reply.body).expect("query body parses");
        assert_eq!(responses.len(), 2, "positional batch answers");
        assert!(matches!(responses[0], QueryResponse::Verdict(_)));
        assert!(matches!(responses[1], QueryResponse::Ixp(_)));

        // Point route on the same keep-alive connection.
        client
            .send(
                "GET",
                &format!("/verdict?ixp={}&iface={}", inf.ixp, inf.addr),
                &[],
                b"",
            )
            .expect("send verdict");
        let verdict = client.read_response().expect("verdict answers");
        assert_eq!(verdict.status, 200, "verdict status");

        // Metrics reflect the traffic.
        client
            .send("GET", "/metrics", &[], b"")
            .expect("send metrics");
        let m = client.read_response().expect("metrics answers");
        assert_eq!(m.status, 200, "metrics status");
        let doc: Value = serde_json::from_slice(&m.body).expect("metrics body is JSON");
        assert!(doc.get("requests").and_then(Value::as_u64).unwrap_or(0) >= 3);

        control.stop();
    });

    assert_eq!(metrics.panics(), 0, "panic bulkhead fired");
    println!("gateway smoke OK: healthz, query batch, verdict, metrics all answered");
}
