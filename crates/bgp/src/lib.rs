//! # opeer-bgp — the BGP substrate
//!
//! The paper leans on several BGP-derived datasets: CAIDA AS
//! relationships and customer cones (§6.2, Fig. 11a), the Routeviews
//! `prefix2as` mapping for IP-to-AS resolution (§5.2 step 5), and
//! RIPEstat's "routed prefixes of an AS" lookup for choosing traceroute
//! targets (§6.4). This crate rebuilds that stack:
//!
//! * [`rel`] — AS-relationship datasets in the CAIDA serial-1 text
//!   format, derived from the world's ground-truth transit edges, plus
//!   customer-cone computation.
//! * [`msg`] — a real BGP UPDATE wire codec (RFC 4271, 4-byte ASNs):
//!   ORIGIN / AS_PATH / NEXT_HOP / MED / COMMUNITIES attributes, NLRI
//!   and withdrawals.
//! * [`mrt`] — an MRT codec (RFC 6396): `TABLE_DUMP_V2`
//!   (PEER_INDEX_TABLE, RIB_IPV4_UNICAST) and `BGP4MP_MESSAGE_AS4`
//!   records, so simulated collector dumps are bit-compatible artifacts
//!   a real pipeline could ingest.
//! * [`rib`] — simulated route collectors: build a RIB over the world's
//!   policy routing, export/import it through MRT, derive `prefix2as`,
//!   and answer RIPEstat-style routed-prefix queries.

pub mod mrt;
pub mod msg;
pub mod rel;
pub mod rib;

pub use msg::{BgpUpdate, PathAttribute};
pub use rel::{customer_cones, AsRelationships, Relationship};
pub use rib::{Collector, RibEntry};
