//! BGP UPDATE wire codec (RFC 4271, with RFC 6793 4-byte AS paths).
//!
//! Encodes and parses the subset of BGP that routing datasets need:
//! UPDATE messages with withdrawn routes, the ORIGIN / AS_PATH /
//! NEXT_HOP / MULTI_EXIT_DISC / COMMUNITIES attributes, and IPv4 NLRI.
//! The codec is strict on parse (malformed input is an error, never a
//! panic) and canonical on encode.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use opeer_net::{Asn, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// BGP message type code for UPDATE.
pub const BGP_TYPE_UPDATE: u8 = 2;
/// Size of the fixed BGP header (marker + length + type).
pub const BGP_HEADER_LEN: usize = 19;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// Input ended prematurely.
    Truncated(&'static str),
    /// A length field is inconsistent with the available bytes.
    BadLength(&'static str),
    /// An illegal field value.
    BadValue(&'static str),
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::Truncated(w) => write!(f, "truncated BGP data at {w}"),
            BgpError::BadLength(w) => write!(f, "inconsistent length in {w}"),
            BgpError::BadValue(w) => write!(f, "illegal value in {w}"),
        }
    }
}

impl std::error::Error for BgpError {}

/// Path origin codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Origin {
    /// Interior (0).
    Igp,
    /// Exterior (1).
    Egp,
    /// Incomplete (2).
    Incomplete,
}

/// A parsed path attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathAttribute {
    /// Type 1.
    Origin(Origin),
    /// Type 2 — one AS_SEQUENCE segment of 4-byte ASNs.
    AsPath(Vec<Asn>),
    /// Type 3.
    NextHop(Ipv4Addr),
    /// Type 4.
    MultiExitDisc(u32),
    /// Type 8 — RFC 1997 communities as raw u32s.
    Communities(Vec<u32>),
    /// Anything else, kept verbatim (type, flags, value).
    Unknown(u8, u8, Vec<u8>),
}

/// A BGP UPDATE message.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpUpdate {
    /// Withdrawn IPv4 prefixes.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Path attributes.
    pub attributes: Vec<PathAttribute>,
    /// Announced IPv4 prefixes.
    pub nlri: Vec<Ipv4Prefix>,
}

impl BgpUpdate {
    /// Convenience: an announcement of `prefixes` with the given path.
    pub fn announce(prefixes: Vec<Ipv4Prefix>, as_path: Vec<Asn>, next_hop: Ipv4Addr) -> Self {
        BgpUpdate {
            withdrawn: Vec::new(),
            attributes: vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(as_path),
                PathAttribute::NextHop(next_hop),
            ],
            nlri: prefixes,
        }
    }

    /// The AS_PATH attribute, if present.
    pub fn as_path(&self) -> Option<&[Asn]> {
        self.attributes.iter().find_map(|a| match a {
            PathAttribute::AsPath(p) => Some(p.as_slice()),
            _ => None,
        })
    }

    /// The origin AS (last AS on the path).
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path().and_then(|p| p.last().copied())
    }

    /// Encodes the full message (header + body).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();

        // Withdrawn routes.
        let mut wd = BytesMut::new();
        for p in &self.withdrawn {
            put_prefix(&mut wd, p);
        }
        body.put_u16(wd.len() as u16);
        body.put(wd);

        // Path attributes.
        let mut attrs = BytesMut::new();
        for a in &self.attributes {
            encode_attribute(&mut attrs, a);
        }
        body.put_u16(attrs.len() as u16);
        body.put(attrs);

        // NLRI.
        for p in &self.nlri {
            put_prefix(&mut body, p);
        }

        let mut msg = BytesMut::with_capacity(BGP_HEADER_LEN + body.len());
        msg.put_bytes(0xFF, 16);
        msg.put_u16((BGP_HEADER_LEN + body.len()) as u16);
        msg.put_u8(BGP_TYPE_UPDATE);
        msg.put(body);
        msg.freeze()
    }

    /// Parses a full message (header + body).
    pub fn decode(mut buf: &[u8]) -> Result<Self, BgpError> {
        if buf.len() < BGP_HEADER_LEN {
            return Err(BgpError::Truncated("header"));
        }
        let marker_ok = buf[..16].iter().all(|&b| b == 0xFF);
        if !marker_ok {
            return Err(BgpError::BadValue("marker"));
        }
        let total = usize::from(u16::from_be_bytes([buf[16], buf[17]]));
        if buf[18] != BGP_TYPE_UPDATE {
            return Err(BgpError::BadValue("message type"));
        }
        if total != buf.len() {
            return Err(BgpError::BadLength("message length"));
        }
        buf = &buf[BGP_HEADER_LEN..];
        Self::decode_body(&mut buf)
    }

    fn decode_body(buf: &mut &[u8]) -> Result<Self, BgpError> {
        let mut update = BgpUpdate::default();

        if buf.remaining() < 2 {
            return Err(BgpError::Truncated("withdrawn length"));
        }
        let wd_len = usize::from(buf.get_u16());
        if buf.remaining() < wd_len {
            return Err(BgpError::BadLength("withdrawn routes"));
        }
        let mut wd = &buf[..wd_len];
        buf.advance(wd_len);
        while wd.has_remaining() {
            update.withdrawn.push(get_prefix(&mut wd)?);
        }

        if buf.remaining() < 2 {
            return Err(BgpError::Truncated("attributes length"));
        }
        let at_len = usize::from(buf.get_u16());
        if buf.remaining() < at_len {
            return Err(BgpError::BadLength("path attributes"));
        }
        let mut at = &buf[..at_len];
        buf.advance(at_len);
        while at.has_remaining() {
            update.attributes.push(decode_attribute(&mut at)?);
        }

        while buf.has_remaining() {
            update.nlri.push(get_prefix(buf)?);
        }
        Ok(update)
    }
}

/// Attribute flag: optional.
const FLAG_OPTIONAL: u8 = 0x80;
/// Attribute flag: transitive.
const FLAG_TRANSITIVE: u8 = 0x40;
/// Attribute flag: extended (two-byte) length.
const FLAG_EXTENDED: u8 = 0x10;

fn encode_attribute(out: &mut BytesMut, attr: &PathAttribute) {
    let (flags, type_code, value): (u8, u8, Vec<u8>) = match attr {
        PathAttribute::Origin(o) => (
            FLAG_TRANSITIVE,
            1,
            vec![match o {
                Origin::Igp => 0,
                Origin::Egp => 1,
                Origin::Incomplete => 2,
            }],
        ),
        PathAttribute::AsPath(path) => {
            let mut v = Vec::with_capacity(2 + path.len() * 4);
            if !path.is_empty() {
                v.push(2); // AS_SEQUENCE
                v.push(path.len() as u8);
                for a in path {
                    v.extend_from_slice(&a.value().to_be_bytes());
                }
            }
            (FLAG_TRANSITIVE, 2, v)
        }
        PathAttribute::NextHop(ip) => (FLAG_TRANSITIVE, 3, ip.octets().to_vec()),
        PathAttribute::MultiExitDisc(m) => (FLAG_OPTIONAL, 4, m.to_be_bytes().to_vec()),
        PathAttribute::Communities(cs) => {
            let mut v = Vec::with_capacity(cs.len() * 4);
            for c in cs {
                v.extend_from_slice(&c.to_be_bytes());
            }
            (FLAG_OPTIONAL | FLAG_TRANSITIVE, 8, v)
        }
        PathAttribute::Unknown(t, f, v) => (*f, *t, v.clone()),
    };
    let extended = value.len() > 255;
    out.put_u8(flags | if extended { FLAG_EXTENDED } else { 0 });
    out.put_u8(type_code);
    if extended {
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(value.len() as u8);
    }
    out.put_slice(&value);
}

fn decode_attribute(buf: &mut &[u8]) -> Result<PathAttribute, BgpError> {
    if buf.remaining() < 3 {
        return Err(BgpError::Truncated("attribute header"));
    }
    let flags = buf.get_u8();
    let type_code = buf.get_u8();
    let len = if flags & FLAG_EXTENDED != 0 {
        if buf.remaining() < 2 {
            return Err(BgpError::Truncated("attribute extended length"));
        }
        usize::from(buf.get_u16())
    } else {
        if !buf.has_remaining() {
            return Err(BgpError::Truncated("attribute length"));
        }
        usize::from(buf.get_u8())
    };
    if buf.remaining() < len {
        return Err(BgpError::BadLength("attribute value"));
    }
    let mut value = &buf[..len];
    buf.advance(len);

    let attr = match type_code {
        1 => {
            if value.len() != 1 {
                return Err(BgpError::BadLength("ORIGIN"));
            }
            PathAttribute::Origin(match value[0] {
                0 => Origin::Igp,
                1 => Origin::Egp,
                2 => Origin::Incomplete,
                _ => return Err(BgpError::BadValue("ORIGIN")),
            })
        }
        2 => {
            let mut path = Vec::new();
            if value.has_remaining() {
                if value.remaining() < 2 {
                    return Err(BgpError::Truncated("AS_PATH segment"));
                }
                let seg_type = value.get_u8();
                if seg_type != 2 {
                    return Err(BgpError::BadValue("AS_PATH segment type"));
                }
                let count = usize::from(value.get_u8());
                if value.remaining() != count * 4 {
                    return Err(BgpError::BadLength("AS_PATH segment"));
                }
                for _ in 0..count {
                    path.push(Asn::new(value.get_u32()));
                }
            }
            PathAttribute::AsPath(path)
        }
        3 => {
            if value.len() != 4 {
                return Err(BgpError::BadLength("NEXT_HOP"));
            }
            PathAttribute::NextHop(Ipv4Addr::new(value[0], value[1], value[2], value[3]))
        }
        4 => {
            if value.len() != 4 {
                return Err(BgpError::BadLength("MED"));
            }
            PathAttribute::MultiExitDisc(value.get_u32())
        }
        8 => {
            if !value.len().is_multiple_of(4) {
                return Err(BgpError::BadLength("COMMUNITIES"));
            }
            let mut cs = Vec::with_capacity(value.len() / 4);
            while value.has_remaining() {
                cs.push(value.get_u32());
            }
            PathAttribute::Communities(cs)
        }
        other => PathAttribute::Unknown(other, flags, value.to_vec()),
    };
    Ok(attr)
}

/// Writes a prefix in BGP NLRI encoding: length byte + minimal octets.
pub fn put_prefix(out: &mut BytesMut, p: &Ipv4Prefix) {
    out.put_u8(p.len());
    let octets = p.network().octets();
    let n = usize::from(p.len()).div_ceil(8);
    out.put_slice(&octets[..n]);
}

/// Reads a prefix in BGP NLRI encoding.
pub fn get_prefix(buf: &mut &[u8]) -> Result<Ipv4Prefix, BgpError> {
    if !buf.has_remaining() {
        return Err(BgpError::Truncated("prefix length"));
    }
    let len = buf.get_u8();
    if len > 32 {
        return Err(BgpError::BadValue("prefix length"));
    }
    let n = usize::from(len).div_ceil(8);
    if buf.remaining() < n {
        return Err(BgpError::Truncated("prefix octets"));
    }
    let mut octets = [0u8; 4];
    octets[..n].copy_from_slice(&buf[..n]);
    buf.advance(n);
    Ipv4Prefix::new(Ipv4Addr::from(octets), len).ok_or(BgpError::BadValue("prefix"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn roundtrip_announcement() {
        let u = BgpUpdate::announce(
            vec![p("203.0.113.0/24"), p("198.51.100.0/25")],
            vec![Asn::new(64500), Asn::new(3356), Asn::new(65001)],
            "192.0.2.1".parse().expect("valid"),
        );
        let bytes = u.encode();
        let back = BgpUpdate::decode(&bytes).expect("roundtrip");
        assert_eq!(back, u);
        assert_eq!(back.origin_as(), Some(Asn::new(65001)));
    }

    #[test]
    fn roundtrip_with_withdrawals_med_communities() {
        let u = BgpUpdate {
            withdrawn: vec![p("10.0.0.0/8")],
            attributes: vec![
                PathAttribute::Origin(Origin::Incomplete),
                PathAttribute::AsPath(vec![Asn::new(1), Asn::new(4_200_000_001)]),
                PathAttribute::NextHop("192.0.2.9".parse().expect("valid")),
                PathAttribute::MultiExitDisc(50),
                PathAttribute::Communities(vec![(65535 << 16) | 666, (64500 << 16) | 1]),
            ],
            nlri: vec![p("0.0.0.0/0")],
        };
        let back = BgpUpdate::decode(&u.encode()).expect("roundtrip");
        assert_eq!(back, u);
    }

    #[test]
    fn golden_bytes_minimal_update() {
        // An empty UPDATE (withdraw-nothing, announce-nothing): header 19
        // bytes + 2 (wd len) + 2 (attr len) = 23 bytes.
        let u = BgpUpdate::default();
        let bytes = u.encode();
        assert_eq!(bytes.len(), 23);
        assert_eq!(&bytes[..16], &[0xFF; 16]);
        assert_eq!(u16::from_be_bytes([bytes[16], bytes[17]]), 23);
        assert_eq!(bytes[18], BGP_TYPE_UPDATE);
        assert_eq!(&bytes[19..], &[0, 0, 0, 0]);
    }

    #[test]
    fn prefix_encoding_is_minimal() {
        let mut out = BytesMut::new();
        put_prefix(&mut out, &p("10.0.0.0/8"));
        assert_eq!(&out[..], &[8, 10]);
        let mut out = BytesMut::new();
        put_prefix(&mut out, &p("192.168.128.0/17"));
        assert_eq!(&out[..], &[17, 192, 168, 128]);
        let mut out = BytesMut::new();
        put_prefix(&mut out, &p("0.0.0.0/0"));
        assert_eq!(&out[..], &[0]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BgpUpdate::decode(&[]).is_err());
        assert!(BgpUpdate::decode(&[0u8; 19]).is_err()); // bad marker
        let mut ok = BgpUpdate::default().encode().to_vec();
        ok[16] = 0; // corrupt length
        ok[17] = 50;
        assert!(BgpUpdate::decode(&ok).is_err());
    }

    #[test]
    fn decode_rejects_bad_prefix_len() {
        let mut buf: &[u8] = &[40, 1, 2, 3, 4, 5];
        assert_eq!(
            get_prefix(&mut buf),
            Err(BgpError::BadValue("prefix length"))
        );
    }

    #[test]
    fn unknown_attribute_preserved() {
        let u = BgpUpdate {
            withdrawn: vec![],
            attributes: vec![PathAttribute::Unknown(99, FLAG_OPTIONAL, vec![1, 2, 3])],
            nlri: vec![],
        };
        let back = BgpUpdate::decode(&u.encode()).expect("roundtrip");
        assert_eq!(back.attributes, u.attributes);
    }

    #[test]
    fn empty_as_path_roundtrips() {
        let u = BgpUpdate {
            withdrawn: vec![],
            attributes: vec![PathAttribute::AsPath(vec![])],
            nlri: vec![p("203.0.113.0/24")],
        };
        let back = BgpUpdate::decode(&u.encode()).expect("roundtrip");
        assert_eq!(back.as_path(), Some(&[][..]));
        assert_eq!(back.origin_as(), None);
    }
}
