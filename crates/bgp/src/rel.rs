//! AS relationships (CAIDA serial-1 format) and customer cones.
//!
//! Fig. 11a compares the customer-cone sizes of local, remote and hybrid
//! IXP members using the CAIDA AS-relationship dataset [5, 60]. The same
//! artifacts are derived here from the world's ground-truth transit
//! edges: a `provider|customer|-1` / `peer|peer|0` text file and the
//! customer cone (the set of ASes reachable by descending only
//! provider→customer edges, the AS itself included).

use opeer_net::Asn;
use opeer_topology::{AsId, World};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relationship edge class, CAIDA encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relationship {
    /// `-1`: first AS is provider of the second.
    ProviderCustomer,
    /// `0`: settlement-free peers.
    PeerPeer,
}

/// An AS-relationship dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsRelationships {
    /// Edges `(a, b, rel)`; for [`Relationship::ProviderCustomer`],
    /// `a` is the provider.
    pub edges: Vec<(Asn, Asn, Relationship)>,
}

impl AsRelationships {
    /// Derives the dataset from the world: transit edges become p2c rows;
    /// private interconnects become p2p rows.
    pub fn from_world(world: &World) -> Self {
        let mut edges = Vec::new();
        for &(p, c) in &world.transit_rels {
            edges.push((
                world.ases[p.index()].asn,
                world.ases[c.index()].asn,
                Relationship::ProviderCustomer,
            ));
        }
        let mut seen: BTreeSet<(Asn, Asn)> = BTreeSet::new();
        for l in &world.private_links {
            let (a, b) = (world.ases[l.a.index()].asn, world.ases[l.b.index()].asn);
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                edges.push((key.0, key.1, Relationship::PeerPeer));
            }
        }
        edges.sort_by_key(|&(a, b, r)| (a, b, matches!(r, Relationship::PeerPeer)));
        edges.dedup();
        AsRelationships { edges }
    }

    /// Serialises in the CAIDA serial-1 text format.
    pub fn to_serial1(&self) -> String {
        let mut out = String::from("# opeer synthetic AS relationships (serial-1)\n");
        for &(a, b, rel) in &self.edges {
            let code = match rel {
                Relationship::ProviderCustomer => -1,
                Relationship::PeerPeer => 0,
            };
            out.push_str(&format!("{}|{}|{}\n", a.value(), b.value(), code));
        }
        out
    }

    /// Parses the CAIDA serial-1 text format, skipping comments and
    /// malformed lines (returned as the second tuple element).
    pub fn from_serial1(text: &str) -> (Self, usize) {
        let mut edges = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('|');
            let parsed = (|| {
                let a: u32 = parts.next()?.parse().ok()?;
                let b: u32 = parts.next()?.parse().ok()?;
                let code: i32 = parts.next()?.parse().ok()?;
                let rel = match code {
                    -1 => Relationship::ProviderCustomer,
                    0 => Relationship::PeerPeer,
                    _ => return None,
                };
                Some((Asn::new(a), Asn::new(b), rel))
            })();
            match parsed {
                Some(e) => edges.push(e),
                None => skipped += 1,
            }
        }
        (AsRelationships { edges }, skipped)
    }

    /// Provider → customers adjacency.
    pub fn customers_map(&self) -> BTreeMap<Asn, Vec<Asn>> {
        let mut map: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        for &(a, b, rel) in &self.edges {
            if rel == Relationship::ProviderCustomer {
                map.entry(a).or_default().push(b);
            }
        }
        map
    }
}

impl fmt::Display for AsRelationships {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} relationship edges", self.edges.len())
    }
}

/// Computes every AS's customer cone size (the AS itself plus all ASes
/// reachable through provider→customer edges). Returns `ASN → cone size`.
///
/// Runs one reverse-topological accumulation over the p2c DAG; cycles
/// (which a correct dataset should not contain) are broken by the visit
/// guard rather than looping forever.
pub fn customer_cones(rels: &AsRelationships) -> BTreeMap<Asn, usize> {
    let customers = rels.customers_map();
    let mut all: BTreeSet<Asn> = BTreeSet::new();
    for &(a, b, _) in &rels.edges {
        all.insert(a);
        all.insert(b);
    }
    let mut cone_sets: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();

    fn cone_of(
        asn: Asn,
        customers: &BTreeMap<Asn, Vec<Asn>>,
        memo: &mut BTreeMap<Asn, BTreeSet<Asn>>,
        in_progress: &mut BTreeSet<Asn>,
    ) -> BTreeSet<Asn> {
        if let Some(c) = memo.get(&asn) {
            return c.clone();
        }
        if !in_progress.insert(asn) {
            // Cycle guard: treat as leaf.
            return BTreeSet::from([asn]);
        }
        let mut set = BTreeSet::from([asn]);
        if let Some(kids) = customers.get(&asn) {
            for &k in kids {
                set.extend(cone_of(k, customers, memo, in_progress));
            }
        }
        in_progress.remove(&asn);
        memo.insert(asn, set.clone());
        set
    }

    let mut in_progress = BTreeSet::new();
    for &asn in &all {
        cone_of(asn, &customers, &mut cone_sets, &mut in_progress);
    }
    cone_sets.into_iter().map(|(a, s)| (a, s.len())).collect()
}

/// Convenience: cone size of one world AS (1 for stubs).
pub fn cone_size_of(world: &World, cones: &BTreeMap<Asn, usize>, asid: AsId) -> usize {
    cones
        .get(&world.ases[asid.index()].asn)
        .copied()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn serial1_roundtrip() {
        let w = WorldConfig::small(67).generate();
        let rels = AsRelationships::from_world(&w);
        assert!(!rels.edges.is_empty());
        let text = rels.to_serial1();
        let (back, skipped) = AsRelationships::from_serial1(&text);
        assert_eq!(skipped, 0);
        assert_eq!(back.edges.len(), rels.edges.len());
        assert_eq!(back.edges, rels.edges);
    }

    #[test]
    fn serial1_skips_junk() {
        let text = "# comment\n1|2|-1\nbroken line\n3|4|7\n5|6|0\n";
        let (rels, skipped) = AsRelationships::from_serial1(text);
        assert_eq!(rels.edges.len(), 2);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn cones_hierarchy() {
        // p1 → c1 → c2 ; p1 → c3. Cones: c2=1, c3=1, c1=2, p1=4.
        let rels = AsRelationships {
            edges: vec![
                (Asn::new(1), Asn::new(10), Relationship::ProviderCustomer),
                (Asn::new(10), Asn::new(20), Relationship::ProviderCustomer),
                (Asn::new(1), Asn::new(30), Relationship::ProviderCustomer),
                (Asn::new(1), Asn::new(2), Relationship::PeerPeer),
            ],
        };
        let cones = customer_cones(&rels);
        assert_eq!(cones[&Asn::new(20)], 1);
        assert_eq!(cones[&Asn::new(30)], 1);
        assert_eq!(cones[&Asn::new(10)], 2);
        assert_eq!(cones[&Asn::new(1)], 4);
        // Peers don't contribute to cones.
        assert_eq!(cones[&Asn::new(2)], 1);
    }

    #[test]
    fn multihomed_customer_counted_once() {
        let rels = AsRelationships {
            edges: vec![
                (Asn::new(1), Asn::new(10), Relationship::ProviderCustomer),
                (Asn::new(1), Asn::new(11), Relationship::ProviderCustomer),
                (Asn::new(10), Asn::new(99), Relationship::ProviderCustomer),
                (Asn::new(11), Asn::new(99), Relationship::ProviderCustomer),
            ],
        };
        let cones = customer_cones(&rels);
        assert_eq!(
            cones[&Asn::new(1)],
            4,
            "shared customer must not double-count"
        );
    }

    #[test]
    fn world_cones_have_heavy_tail() {
        let w = WorldConfig::small(67).generate();
        let rels = AsRelationships::from_world(&w);
        let cones = customer_cones(&rels);
        let max = cones.values().copied().max().unwrap_or(0);
        let ones = cones.values().filter(|&&c| c == 1).count();
        assert!(max > 50, "transit tops should have big cones, max={max}");
        assert!(
            ones as f64 / cones.len() as f64 > 0.5,
            "most ASes are stubs"
        );
    }

    #[test]
    fn cycle_guard_terminates() {
        let rels = AsRelationships {
            edges: vec![
                (Asn::new(1), Asn::new(2), Relationship::ProviderCustomer),
                (Asn::new(2), Asn::new(1), Relationship::ProviderCustomer),
            ],
        };
        let cones = customer_cones(&rels);
        assert!(cones[&Asn::new(1)] >= 1);
    }
}
