//! Simulated route collectors and their derived services.
//!
//! A [`Collector`] peers (logically) with one well-connected AS of the
//! world and builds a full RIB: every originated prefix with the AS path
//! the collector's vantage sees. From the RIB come the artifacts the
//! paper consumes:
//!
//! * MRT `TABLE_DUMP_V2` dumps ([`Collector::to_mrt`]) and their
//!   ingestion ([`Collector::from_mrt`]);
//! * the Routeviews-style `prefix2as` mapping (§5.2 step 5's IP-to-AS);
//! * RIPEstat-style routed-prefix queries (§6.4 picks traceroute targets
//!   from the prefixes an AS announces).
//!
//! Paths are derived from the reverse direction of the world's policy
//! routing (destination-rooted route tables), which is exact for the
//! valley-free spine and a documented approximation for asymmetric
//! corner cases.

use crate::mrt::{self, MrtRecord, PeerEntry, PeerIndexTable, RibEntryRecord, RibIpv4Unicast};
use opeer_net::{Asn, IpToAsMap, Ipv4Prefix};
use opeer_topology::{AsId, RoutingOracle, World};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One RIB route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// AS path from the collector's peer to the origin (origin last).
    pub as_path: Vec<Asn>,
}

impl RibEntry {
    /// The origin AS.
    pub fn origin(&self) -> Option<Asn> {
        self.as_path.last().copied()
    }
}

/// A route collector with a single full-feed peer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Collector {
    /// The feeding peer's ASN.
    pub peer_asn: Asn,
    /// The feeding peer's address (synthetic).
    pub peer_addr: Ipv4Addr,
    /// RIB entries, sorted by prefix.
    pub rib: Vec<RibEntry>,
}

impl Collector {
    /// Builds a collector fed by `peer`: all reachable origins' prefixes
    /// with their AS paths as seen from the peer.
    pub fn build(world: &World, peer: AsId) -> Self {
        let oracle = RoutingOracle::new(world);
        let table = oracle.routes_to(peer);
        let peer_asn = world.ases[peer.index()].asn;
        let mut rib = Vec::new();
        for (i, a) in world.ases.iter().enumerate() {
            let origin = AsId::from_index(i);
            // Reverse of origin→peer ≈ peer→origin (documented
            // approximation; exact when the route is customer/provider
            // symmetric).
            let Some(path) = table.as_path(origin) else {
                continue;
            };
            let mut as_path: Vec<Asn> = path
                .iter()
                .map(|&(asid, _)| world.ases[asid.index()].asn)
                .collect();
            as_path.reverse(); // now peer … origin
            if as_path.last() != Some(&a.asn) {
                as_path.push(a.asn);
            }
            for &prefix in &a.prefixes {
                rib.push(RibEntry {
                    prefix,
                    as_path: as_path.clone(),
                });
            }
        }
        rib.sort_by_key(|e| e.prefix);
        Collector {
            peer_asn,
            peer_addr: Ipv4Addr::new(192, 0, 2, 1),
            rib,
        }
    }

    /// RIPEstat-style query: the prefixes this AS originates, as seen in
    /// the RIB.
    pub fn routed_prefixes(&self, asn: Asn) -> Vec<Ipv4Prefix> {
        self.rib
            .iter()
            .filter(|e| e.origin() == Some(asn))
            .map(|e| e.prefix)
            .collect()
    }

    /// Derives the Routeviews-style `prefix2as` mapping.
    pub fn prefix2as(&self) -> IpToAsMap {
        let mut map = IpToAsMap::new();
        for e in &self.rib {
            if let Some(origin) = e.origin() {
                map.insert(e.prefix, origin);
            }
        }
        map
    }

    /// Exports the RIB as an MRT `TABLE_DUMP_V2` byte stream
    /// (PEER_INDEX_TABLE followed by one RIB_IPV4_UNICAST per prefix).
    pub fn to_mrt(&self, timestamp: u32) -> Vec<u8> {
        let mut out = Vec::new();
        let index = MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 0x0A000001,
            view_name: "opeer".into(),
            peers: vec![PeerEntry {
                bgp_id: 1,
                addr: self.peer_addr,
                asn: self.peer_asn,
            }],
        });
        out.extend_from_slice(&index.encode(timestamp));
        for (seq, e) in self.rib.iter().enumerate() {
            let attrs = mrt::rib_attributes(&e.as_path, self.peer_addr);
            let rec = MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                sequence: seq as u32,
                prefix: e.prefix,
                entries: vec![RibEntryRecord {
                    peer_index: 0,
                    originated: timestamp,
                    attributes: attrs,
                }],
            });
            out.extend_from_slice(&rec.encode(timestamp));
        }
        out
    }

    /// Ingests an MRT `TABLE_DUMP_V2` stream back into a collector.
    /// Returns the collector and the number of records skipped
    /// (unparseable attributes etc.).
    pub fn from_mrt(stream: &[u8]) -> (Option<Self>, usize) {
        let (records, trailing) = mrt::decode_stream(stream);
        let mut skipped = usize::from(trailing > 0);
        let mut peers: Vec<PeerEntry> = Vec::new();
        let mut rib = Vec::new();
        for (_, rec) in records {
            match rec {
                MrtRecord::PeerIndexTable(t) => peers = t.peers,
                MrtRecord::RibIpv4Unicast(r) => {
                    for e in &r.entries {
                        match mrt::parse_rib_attributes(&e.attributes) {
                            Ok(update) => {
                                let as_path = update.as_path().unwrap_or(&[]).to_vec();
                                rib.push(RibEntry {
                                    prefix: r.prefix,
                                    as_path,
                                });
                            }
                            Err(_) => skipped += 1,
                        }
                    }
                }
                MrtRecord::Bgp4mp(_) => skipped += 1,
            }
        }
        let collector = peers.first().map(|p| Collector {
            peer_asn: p.asn,
            peer_addr: p.addr,
            rib,
        });
        (collector, skipped)
    }

    /// Per-origin route counts (diagnostics).
    pub fn origin_histogram(&self) -> BTreeMap<Asn, usize> {
        let mut h = BTreeMap::new();
        for e in &self.rib {
            if let Some(o) = e.origin() {
                *h.entry(o).or_insert(0) += 1;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    fn collector() -> (World, Collector) {
        let w = WorldConfig::small(71).generate();
        // Feed from a global transit AS for maximal visibility.
        let peer = w
            .ases
            .iter()
            .position(|a| matches!(a.kind, opeer_topology::AsKind::TransitGlobal))
            .expect("tier-1 exists");
        let c = Collector::build(&w, AsId::from_index(peer));
        (w, c)
    }

    #[test]
    fn rib_covers_most_address_space() {
        let (w, c) = collector();
        let total_prefixes: usize = w.ases.iter().map(|a| a.prefixes.len()).sum();
        let coverage = c.rib.len() as f64 / total_prefixes as f64;
        assert!(coverage > 0.9, "RIB coverage {coverage}");
    }

    #[test]
    fn paths_end_at_origin_and_start_at_peer() {
        let (_w, c) = collector();
        for e in c.rib.iter().take(200) {
            assert!(!e.as_path.is_empty());
            assert_eq!(e.as_path.first(), Some(&c.peer_asn));
            assert_eq!(e.origin(), e.as_path.last().copied());
        }
    }

    #[test]
    fn routed_prefixes_matches_world_announcements() {
        let (w, c) = collector();
        // Pick a member AS and compare.
        let m = &w.memberships[0];
        let asn = w.ases[m.member.index()].asn;
        let got = c.routed_prefixes(asn);
        let want = &w.ases[m.member.index()].prefixes;
        assert_eq!(got.len(), want.len());
        for p in want {
            assert!(got.contains(p), "{p} missing from RIPEstat view");
        }
    }

    #[test]
    fn prefix2as_resolves_internal_addresses() {
        let (w, c) = collector();
        let map = c.prefix2as();
        let mut checked = 0;
        for r in w.routers.iter().take(50) {
            let Some(ifc) = w.internal_iface_of(opeer_topology::RouterId::from_index(
                w.routers
                    .iter()
                    .position(|x| std::ptr::eq(x, r))
                    .expect("self"),
            )) else {
                continue;
            };
            let addr = w.interfaces[ifc.index()].addr;
            if let Some(asn) = map.unique_origin(addr) {
                assert_eq!(asn, w.ases[r.owner.index()].asn);
                checked += 1;
            }
        }
        assert!(checked > 10, "too few internal addresses resolved");
    }

    #[test]
    fn mrt_export_import_roundtrip() {
        let (_w, c) = collector();
        let dump = c.to_mrt(1_523_000_000);
        assert!(dump.len() > 1000);
        let (back, skipped) = Collector::from_mrt(&dump);
        let back = back.expect("peer table present");
        assert_eq!(skipped, 0);
        assert_eq!(back.peer_asn, c.peer_asn);
        assert_eq!(back.rib.len(), c.rib.len());
        for (a, b) in back.rib.iter().zip(&c.rib) {
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(a.as_path, b.as_path);
        }
    }

    #[test]
    fn from_mrt_tolerates_garbage_tail() {
        let (_w, c) = collector();
        let mut dump = c.to_mrt(0);
        dump.extend_from_slice(&[0xde, 0xad]);
        let (back, skipped) = Collector::from_mrt(&dump);
        assert!(back.is_some());
        assert_eq!(skipped, 1);
    }
}
