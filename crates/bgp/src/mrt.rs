//! MRT record codec (RFC 6396).
//!
//! Implements the record types routing archives actually consist of:
//!
//! * `TABLE_DUMP_V2` (type 13): `PEER_INDEX_TABLE` (subtype 1) and
//!   `RIB_IPV4_UNICAST` (subtype 2) — RIB snapshots;
//! * `BGP4MP` (type 16): `BGP4MP_MESSAGE_AS4` (subtype 4) — live update
//!   streams.
//!
//! Encoded records are bit-compatible with the RFC layout, so dumps
//! written here parse in standard tooling and vice versa (for the
//! implemented subset: IPv4, 4-byte ASNs, one AS_SEQUENCE segment).

use crate::msg::{get_prefix, put_prefix, BgpError, BgpUpdate};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use opeer_net::{Asn, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// MRT type code for TABLE_DUMP_V2.
pub const MRT_TABLE_DUMP_V2: u16 = 13;
/// Subtype: peer index table.
pub const TDV2_PEER_INDEX_TABLE: u16 = 1;
/// Subtype: IPv4 unicast RIB.
pub const TDV2_RIB_IPV4_UNICAST: u16 = 2;
/// MRT type code for BGP4MP.
pub const MRT_BGP4MP: u16 = 16;
/// Subtype: BGP message with 4-byte ASNs.
pub const BGP4MP_MESSAGE_AS4: u16 = 4;

/// One collector peer in the index table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerEntry {
    /// Peer BGP identifier.
    pub bgp_id: u32,
    /// Peer address.
    pub addr: Ipv4Addr,
    /// Peer ASN.
    pub asn: Asn,
}

/// A PEER_INDEX_TABLE record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerIndexTable {
    /// Collector BGP identifier.
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// Peers, indexed by RIB entries.
    pub peers: Vec<PeerEntry>,
}

/// One route in a RIB_IPV4_UNICAST record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntryRecord {
    /// Index into the peer table.
    pub peer_index: u16,
    /// Unix time the route was originated.
    pub originated: u32,
    /// Raw path attributes (BGP-encoded, without NLRI).
    pub attributes: Vec<u8>,
}

/// A RIB_IPV4_UNICAST record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibIpv4Unicast {
    /// Sequence number within the dump.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Entries, one per peer that carries the route.
    pub entries: Vec<RibEntryRecord>,
}

/// A BGP4MP_MESSAGE_AS4 record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bgp4mpMessage {
    /// Sending peer ASN.
    pub peer_as: Asn,
    /// Receiving (collector) ASN.
    pub local_as: Asn,
    /// Interface index (0 in archives).
    pub ifindex: u16,
    /// Peer address.
    pub peer_addr: Ipv4Addr,
    /// Collector address.
    pub local_addr: Ipv4Addr,
    /// The BGP message (full wire format).
    pub message: Vec<u8>,
}

/// Any supported MRT record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MrtRecord {
    /// TABLE_DUMP_V2 / PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// TABLE_DUMP_V2 / RIB_IPV4_UNICAST.
    RibIpv4Unicast(RibIpv4Unicast),
    /// BGP4MP / MESSAGE_AS4.
    Bgp4mp(Bgp4mpMessage),
}

impl MrtRecord {
    /// Encodes the record with its MRT common header at `timestamp`.
    pub fn encode(&self, timestamp: u32) -> Bytes {
        let (typ, subtype, body) = match self {
            MrtRecord::PeerIndexTable(t) => {
                let mut b = BytesMut::new();
                b.put_u32(t.collector_id);
                b.put_u16(t.view_name.len() as u16);
                b.put_slice(t.view_name.as_bytes());
                b.put_u16(t.peers.len() as u16);
                for p in &t.peers {
                    // peer type: bit 0 = IPv6 (no), bit 1 = AS4 (yes).
                    b.put_u8(0b10);
                    b.put_u32(p.bgp_id);
                    b.put_slice(&p.addr.octets());
                    b.put_u32(p.asn.value());
                }
                (MRT_TABLE_DUMP_V2, TDV2_PEER_INDEX_TABLE, b)
            }
            MrtRecord::RibIpv4Unicast(r) => {
                let mut b = BytesMut::new();
                b.put_u32(r.sequence);
                put_prefix(&mut b, &r.prefix);
                b.put_u16(r.entries.len() as u16);
                for e in &r.entries {
                    b.put_u16(e.peer_index);
                    b.put_u32(e.originated);
                    b.put_u16(e.attributes.len() as u16);
                    b.put_slice(&e.attributes);
                }
                (MRT_TABLE_DUMP_V2, TDV2_RIB_IPV4_UNICAST, b)
            }
            MrtRecord::Bgp4mp(m) => {
                let mut b = BytesMut::new();
                b.put_u32(m.peer_as.value());
                b.put_u32(m.local_as.value());
                b.put_u16(m.ifindex);
                b.put_u16(1); // AFI IPv4
                b.put_slice(&m.peer_addr.octets());
                b.put_slice(&m.local_addr.octets());
                b.put_slice(&m.message);
                (MRT_BGP4MP, BGP4MP_MESSAGE_AS4, b)
            }
        };
        let mut out = BytesMut::with_capacity(12 + body.len());
        out.put_u32(timestamp);
        out.put_u16(typ);
        out.put_u16(subtype);
        out.put_u32(body.len() as u32);
        out.put(body);
        out.freeze()
    }

    /// Parses one record, returning it with its timestamp and consuming
    /// the record's bytes from `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<(u32, MrtRecord), BgpError> {
        if buf.remaining() < 12 {
            return Err(BgpError::Truncated("MRT header"));
        }
        let timestamp = buf.get_u32();
        let typ = buf.get_u16();
        let subtype = buf.get_u16();
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return Err(BgpError::BadLength("MRT record"));
        }
        let mut body = &buf[..len];
        buf.advance(len);

        let rec = match (typ, subtype) {
            (MRT_TABLE_DUMP_V2, TDV2_PEER_INDEX_TABLE) => {
                if body.remaining() < 8 {
                    return Err(BgpError::Truncated("peer index table"));
                }
                let collector_id = body.get_u32();
                let name_len = usize::from(body.get_u16());
                if body.remaining() < name_len + 2 {
                    return Err(BgpError::Truncated("view name"));
                }
                let view_name = String::from_utf8_lossy(&body[..name_len]).into_owned();
                body.advance(name_len);
                let count = usize::from(body.get_u16());
                let mut peers = Vec::with_capacity(count);
                for _ in 0..count {
                    if body.remaining() < 1 {
                        return Err(BgpError::Truncated("peer entry"));
                    }
                    let pt = body.get_u8();
                    if pt & 0b01 != 0 {
                        return Err(BgpError::BadValue("IPv6 peer unsupported"));
                    }
                    let as4 = pt & 0b10 != 0;
                    let need = 4 + 4 + if as4 { 4 } else { 2 };
                    if body.remaining() < need {
                        return Err(BgpError::Truncated("peer entry body"));
                    }
                    let bgp_id = body.get_u32();
                    let addr = Ipv4Addr::new(body[0], body[1], body[2], body[3]);
                    body.advance(4);
                    let asn = if as4 {
                        Asn::new(body.get_u32())
                    } else {
                        Asn::new(u32::from(body.get_u16()))
                    };
                    peers.push(PeerEntry { bgp_id, addr, asn });
                }
                MrtRecord::PeerIndexTable(PeerIndexTable {
                    collector_id,
                    view_name,
                    peers,
                })
            }
            (MRT_TABLE_DUMP_V2, TDV2_RIB_IPV4_UNICAST) => {
                if body.remaining() < 4 {
                    return Err(BgpError::Truncated("RIB record"));
                }
                let sequence = body.get_u32();
                let prefix = get_prefix(&mut body)?;
                if body.remaining() < 2 {
                    return Err(BgpError::Truncated("RIB entry count"));
                }
                let count = usize::from(body.get_u16());
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    if body.remaining() < 8 {
                        return Err(BgpError::Truncated("RIB entry"));
                    }
                    let peer_index = body.get_u16();
                    let originated = body.get_u32();
                    let alen = usize::from(body.get_u16());
                    if body.remaining() < alen {
                        return Err(BgpError::BadLength("RIB entry attributes"));
                    }
                    entries.push(RibEntryRecord {
                        peer_index,
                        originated,
                        attributes: body[..alen].to_vec(),
                    });
                    body.advance(alen);
                }
                MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
                    sequence,
                    prefix,
                    entries,
                })
            }
            (MRT_BGP4MP, BGP4MP_MESSAGE_AS4) => {
                if body.remaining() < 20 {
                    return Err(BgpError::Truncated("BGP4MP header"));
                }
                let peer_as = Asn::new(body.get_u32());
                let local_as = Asn::new(body.get_u32());
                let ifindex = body.get_u16();
                let afi = body.get_u16();
                if afi != 1 {
                    return Err(BgpError::BadValue("BGP4MP AFI"));
                }
                let peer_addr = Ipv4Addr::new(body[0], body[1], body[2], body[3]);
                body.advance(4);
                let local_addr = Ipv4Addr::new(body[0], body[1], body[2], body[3]);
                body.advance(4);
                MrtRecord::Bgp4mp(Bgp4mpMessage {
                    peer_as,
                    local_as,
                    ifindex,
                    peer_addr,
                    local_addr,
                    message: body.to_vec(),
                })
            }
            _ => return Err(BgpError::BadValue("unsupported MRT type/subtype")),
        };
        Ok((timestamp, rec))
    }
}

/// Parses a whole MRT stream, returning records and the count of
/// undecodable trailing bytes (0 for a clean file).
pub fn decode_stream(mut buf: &[u8]) -> (Vec<(u32, MrtRecord)>, usize) {
    let mut out = Vec::new();
    while !buf.is_empty() {
        match MrtRecord::decode(&mut buf) {
            Ok(r) => out.push(r),
            Err(_) => return (out, buf.len()),
        }
    }
    (out, 0)
}

/// Encodes BGP path attributes for a RIB entry (without NLRI): the
/// standard ORIGIN/AS_PATH/NEXT_HOP triple.
pub fn rib_attributes(as_path: &[Asn], next_hop: Ipv4Addr) -> Vec<u8> {
    let update = BgpUpdate::announce(vec![], as_path.to_vec(), next_hop);
    let encoded = update.encode();
    // Strip header (19), withdrawn-len (2) and attr-len (2) and trailing
    // NLRI (none): attributes run from byte 23 to the end.
    encoded[23..].to_vec()
}

/// Parses RIB-entry attributes back into a `BgpUpdate`-shaped view.
pub fn parse_rib_attributes(attrs: &[u8]) -> Result<BgpUpdate, BgpError> {
    // Reassemble a minimal UPDATE around the attributes.
    let mut body = BytesMut::new();
    body.put_bytes(0xFF, 16);
    body.put_u16((19 + 2 + 2 + attrs.len()) as u16);
    body.put_u8(crate::msg::BGP_TYPE_UPDATE);
    body.put_u16(0);
    body.put_u16(attrs.len() as u16);
    body.put_slice(attrs);
    BgpUpdate::decode(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().expect("valid prefix")
    }

    #[test]
    fn peer_index_table_roundtrip() {
        let t = MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 0xC0A80001,
            view_name: "opeer-view".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    addr: "192.0.2.1".parse().expect("valid"),
                    asn: Asn::new(64500),
                },
                PeerEntry {
                    bgp_id: 2,
                    addr: "192.0.2.2".parse().expect("valid"),
                    asn: Asn::new(4_200_000_000),
                },
            ],
        });
        let bytes = t.encode(1_522_000_000);
        let mut buf = &bytes[..];
        let (ts, back) = MrtRecord::decode(&mut buf).expect("roundtrip");
        assert_eq!(ts, 1_522_000_000);
        assert_eq!(back, t);
        assert!(buf.is_empty());
    }

    #[test]
    fn rib_record_roundtrip_with_attributes() {
        let attrs = rib_attributes(
            &[Asn::new(64500), Asn::new(65001)],
            "192.0.2.1".parse().expect("valid"),
        );
        let r = MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
            sequence: 42,
            prefix: p("203.0.113.0/24"),
            entries: vec![RibEntryRecord {
                peer_index: 0,
                originated: 1_500_000_000,
                attributes: attrs.clone(),
            }],
        });
        let bytes = r.encode(0);
        let mut buf = &bytes[..];
        let (_, back) = MrtRecord::decode(&mut buf).expect("roundtrip");
        assert_eq!(back, r);

        let parsed = parse_rib_attributes(&attrs).expect("attrs parse");
        assert_eq!(parsed.origin_as(), Some(Asn::new(65001)));
    }

    #[test]
    fn bgp4mp_roundtrip() {
        let update = BgpUpdate::announce(
            vec![p("198.51.100.0/24")],
            vec![Asn::new(64500)],
            "192.0.2.1".parse().expect("valid"),
        );
        let rec = MrtRecord::Bgp4mp(Bgp4mpMessage {
            peer_as: Asn::new(64500),
            local_as: Asn::new(65000),
            ifindex: 0,
            peer_addr: "192.0.2.1".parse().expect("valid"),
            local_addr: "192.0.2.254".parse().expect("valid"),
            message: update.encode().to_vec(),
        });
        let bytes = rec.encode(7);
        let mut buf = &bytes[..];
        let (ts, back) = MrtRecord::decode(&mut buf).expect("roundtrip");
        assert_eq!(ts, 7);
        match back {
            MrtRecord::Bgp4mp(m) => {
                let inner = BgpUpdate::decode(&m.message).expect("inner update");
                assert_eq!(inner.nlri, vec![p("198.51.100.0/24")]);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn stream_roundtrip_and_trailing_garbage() {
        let a = MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 1,
            view_name: String::new(),
            peers: vec![],
        });
        let b = MrtRecord::RibIpv4Unicast(RibIpv4Unicast {
            sequence: 0,
            prefix: p("10.0.0.0/8"),
            entries: vec![],
        });
        let mut stream = Vec::new();
        stream.extend_from_slice(&a.encode(1));
        stream.extend_from_slice(&b.encode(2));
        let (recs, trailing) = decode_stream(&stream);
        assert_eq!(recs.len(), 2);
        assert_eq!(trailing, 0);

        stream.extend_from_slice(&[1, 2, 3]);
        let (recs, trailing) = decode_stream(&stream);
        assert_eq!(recs.len(), 2);
        assert_eq!(trailing, 3);
    }

    #[test]
    fn decode_rejects_unknown_types() {
        let mut bytes = BytesMut::new();
        bytes.put_u32(0);
        bytes.put_u16(99);
        bytes.put_u16(1);
        bytes.put_u32(0);
        let mut buf = &bytes[..];
        assert!(MrtRecord::decode(&mut buf).is_err());
    }

    #[test]
    fn header_layout_is_rfc_compliant() {
        let rec = MrtRecord::PeerIndexTable(PeerIndexTable {
            collector_id: 0,
            view_name: String::new(),
            peers: vec![],
        });
        let bytes = rec.encode(0xAABBCCDD);
        assert_eq!(&bytes[0..4], &[0xAA, 0xBB, 0xCC, 0xDD]); // timestamp BE
        assert_eq!(&bytes[4..6], &[0, 13]); // type 13
        assert_eq!(&bytes[6..8], &[0, 1]); // subtype 1
        let len = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        assert_eq!(len as usize, bytes.len() - 12);
    }
}
