//! # opeer-alias — MIDAR-style alias resolution
//!
//! §5.2 step 4 maps interfaces to routers with MIDAR \[55\] (IP-ID based)
//! plus iffinder, deliberately choosing the conservative dataset "to
//! favor accuracy over completeness" over the kapar-extended one
//! (footnote 8). This crate implements the same trade-off:
//!
//! * **MBT** — the Monotonic Bound Test: two interfaces alias iff their
//!   interleaved IP-ID sample trains form one monotonically increasing
//!   (mod 2¹⁶) counter with a plausible velocity. Routers with random or
//!   constant-zero IP-ID are unresolvable, exactly like in the wild.
//! * **iffinder** — a fraction of routers answer probes to one interface
//!   from another; such a reply aliases the pair directly.
//! * **kapar-like closure** — an optional extension that merges groups
//!   across graph-analysis hints (adjacent interfaces in traceroutes),
//!   raising coverage at a configurable false-merge cost.

use opeer_measure::ipid::{probe_train, IpIdSample};
use opeer_topology::routing::stable_hash;
use opeer_topology::{IfaceId, World};
use std::collections::HashMap;

/// Resolution configuration.
#[derive(Debug, Clone, Copy)]
pub struct AliasConfig {
    /// Probe seed (folds into IP-ID sampling).
    pub seed: u64,
    /// Samples per interface train.
    pub samples: usize,
    /// Spacing between samples of one train, seconds.
    pub interval_s: f64,
    /// Maximum plausible counter velocity (IP-ID increments per second);
    /// MBT rejects merges that would require more.
    pub max_velocity: f64,
    /// Apply the kapar-like closure over the provided hints.
    pub use_kapar: bool,
    /// Probability that a router replies to iffinder probes from its
    /// primary interface.
    pub p_iffinder: f64,
}

impl Default for AliasConfig {
    fn default() -> Self {
        AliasConfig {
            seed: 0xA11A5,
            samples: 12,
            interval_s: 2.0,
            max_velocity: 3000.0,
            use_kapar: false,
            p_iffinder: 0.3,
        }
    }
}

/// The result: disjoint alias sets over the queried interfaces.
#[derive(Debug, Clone, Default)]
pub struct AliasSets {
    /// Groups of aliased interfaces (singletons omitted).
    pub groups: Vec<Vec<IfaceId>>,
    map: HashMap<IfaceId, usize>,
}

impl AliasSets {
    /// The group index of an interface, if it was aliased to anything.
    pub fn group_of(&self, ifc: IfaceId) -> Option<usize> {
        self.map.get(&ifc).copied()
    }

    /// Whether two interfaces were resolved to the same router.
    pub fn aliased(&self, a: IfaceId, b: IfaceId) -> bool {
        match (self.group_of(a), self.group_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    fn from_groups(groups: Vec<Vec<IfaceId>>) -> Self {
        let mut map = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for &i in g {
                map.insert(i, gi);
            }
        }
        AliasSets { groups, map }
    }
}

/// Interleaved-train MBT: do the two sample trains describe one shared,
/// monotonically increasing counter?
///
/// Trains must be time-offset (the resolver probes them interleaved).
/// The test unwraps mod-2¹⁶ differences and rejects negative advances or
/// velocities beyond `max_velocity`.
pub fn mbt_shared_counter(a: &[IpIdSample], b: &[IpIdSample], max_velocity: f64) -> bool {
    if a.len() < 3 || b.len() < 3 {
        return false;
    }
    // Interleaved monotonicity with a velocity budget.
    let mut merged: Vec<IpIdSample> = a.iter().chain(b.iter()).copied().collect();
    merged.sort_by(|x, y| x.t_s.partial_cmp(&y.t_s).expect("finite times"));
    let mut advance_total = 0u64;
    for w in merged.windows(2) {
        let dt = w[1].t_s - w[0].t_s;
        let dv = (i32::from(w[1].ip_id) - i32::from(w[0].ip_id)).rem_euclid(65536) as u64;
        // A genuine shared counter advances a little; a mismatched pair
        // produces huge apparent advances (≈ uniform over the ring).
        let budget = (max_velocity * dt.max(1e-3)).ceil() as u64 + 64;
        if dv > budget {
            return false;
        }
        advance_total += dv;
    }
    // Constant series (all zero / frozen counters) are not usable: MIDAR
    // requires an actually advancing counter.
    if advance_total == 0 {
        return false;
    }
    // Velocity agreement and cross-prediction: the interleaving test alone
    // merges unrelated slow counters that happen to start near each other,
    // so (like MIDAR's estimation stage) fit each train linearly and
    // require the fits to describe one counter.
    let (va, ca) = linear_fit(a);
    let (vb, _cb) = linear_fit(b);
    if va <= 0.0 || vb <= 0.0 {
        return false;
    }
    let vmaxf = va.max(vb);
    if (va - vb).abs() > 0.2 * vmaxf + 5.0 {
        return false;
    }
    // Predict b's samples from a's fit; tolerate burst noise.
    let tolerance = 96.0 + 0.05 * vmaxf;
    b.iter().all(|s| {
        let pred = (ca + va * s.t_s).rem_euclid(65536.0);
        ring_distance(pred, f64::from(s.ip_id)) <= tolerance
    })
}

/// Least-squares linear fit of an unwrapped IP-ID train:
/// returns (velocity per second, value at t = 0).
fn linear_fit(train: &[IpIdSample]) -> (f64, f64) {
    let mut unwrapped = Vec::with_capacity(train.len());
    let mut acc = f64::from(train[0].ip_id);
    unwrapped.push(acc);
    for w in train.windows(2) {
        let dv = (i32::from(w[1].ip_id) - i32::from(w[0].ip_id)).rem_euclid(65536);
        acc += f64::from(dv);
        unwrapped.push(acc);
    }
    let n = train.len() as f64;
    let mean_t: f64 = train.iter().map(|s| s.t_s).sum::<f64>() / n;
    let mean_v: f64 = unwrapped.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (s, &v) in train.iter().zip(&unwrapped) {
        num += (s.t_s - mean_t) * (v - mean_v);
        den += (s.t_s - mean_t) * (s.t_s - mean_t);
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    let intercept = mean_v - slope * mean_t;
    // Intercept on the mod-2¹⁶ ring.
    (slope, intercept.rem_euclid(65536.0))
}

/// Distance on the 2¹⁶ ring.
fn ring_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(65536.0);
    d.min(65536.0 - d)
}

/// Probes an interface's IP-ID train with the configured schedule,
/// time-offset by `slot` so trains interleave.
fn train(world: &World, cfg: &AliasConfig, ifc: IfaceId, slot: usize) -> Vec<IpIdSample> {
    let offset = cfg.interval_s * (slot as f64) / 4.0;
    probe_train(world, cfg.seed, ifc, offset, cfg.interval_s, cfg.samples)
}

/// iffinder: probing a high port on `ifc` may elicit a reply sourced from
/// the router's primary interface, directly aliasing the two.
pub fn iffinder_probe(world: &World, cfg: &AliasConfig, ifc: IfaceId) -> Option<IfaceId> {
    let iface = &world.interfaces[ifc.index()];
    if !iface.responds_to_ping {
        return None;
    }
    let router = iface.router;
    let responds = stable_hash(&[cfg.seed, 0x1FF, u64::from(router.0)]) % 1000
        < (cfg.p_iffinder * 1000.0) as u64;
    if !responds {
        return None;
    }
    let primary = world.internal_iface_of(router)?;
    (primary != ifc).then_some(primary)
}

/// Resolves a set of interfaces (typically: all interfaces of one AS,
/// as in §5.2 step 4) into alias groups.
pub fn resolve(world: &World, ifaces: &[IfaceId], cfg: &AliasConfig) -> AliasSets {
    // Union-find over the interfaces (plus iffinder-discovered primaries).
    let mut ids: Vec<IfaceId> = ifaces.to_vec();
    ids.sort();
    ids.dedup();
    let mut extra: Vec<IfaceId> = Vec::new();
    let mut edges: Vec<(IfaceId, IfaceId)> = Vec::new();

    // iffinder pass.
    for &i in &ids {
        if let Some(primary) = iffinder_probe(world, cfg, i) {
            edges.push((i, primary));
            if !ids.contains(&primary) && !extra.contains(&primary) {
                extra.push(primary);
            }
        }
    }
    let mut all = ids.clone();
    all.extend(extra);

    // MBT pass: pairwise over the queried set.
    let trains: Vec<(IfaceId, Vec<IpIdSample>)> = all
        .iter()
        .enumerate()
        .map(|(slot, &i)| (i, train(world, cfg, i, slot)))
        .collect();
    for x in 0..trains.len() {
        for y in (x + 1)..trains.len() {
            if mbt_shared_counter(&trains[x].1, &trains[y].1, cfg.max_velocity) {
                edges.push((trains[x].0, trains[y].0));
            }
        }
    }

    // Union-find.
    let index: HashMap<IfaceId, usize> = all.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let mut parent: Vec<usize> = (0..all.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (a, b) in edges {
        let (ra, rb) = (find(&mut parent, index[&a]), find(&mut parent, index[&b]));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut groups: HashMap<usize, Vec<IfaceId>> = HashMap::new();
    for (k, &i) in all.iter().enumerate() {
        let root = find(&mut parent, k);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Vec<IfaceId>> = groups.into_values().filter(|g| g.len() > 1).collect();
    for g in &mut out {
        g.sort();
    }
    out.sort();
    AliasSets::from_groups(out)
}

/// Kapar-like closure: merges alias groups across `hints` (pairs of
/// interfaces graph analysis believes share a router). Raises coverage
/// but can merge wrongly — callers opting in accept the paper's stated
/// accuracy cost.
pub fn resolve_with_hints(
    world: &World,
    ifaces: &[IfaceId],
    hints: &[(IfaceId, IfaceId)],
    cfg: &AliasConfig,
) -> AliasSets {
    let base = resolve(world, ifaces, cfg);
    let mut groups = base.groups.clone();
    for &(a, b) in hints {
        let ga = groups.iter().position(|g| g.contains(&a));
        let gb = groups.iter().position(|g| g.contains(&b));
        match (ga, gb) {
            (Some(x), Some(y)) if x != y => {
                let moved = groups[y.max(x)].clone();
                let keep = y.min(x);
                groups[keep].extend(moved);
                groups[keep].sort();
                groups.remove(y.max(x));
            }
            (Some(x), None) => {
                groups[x].push(b);
                groups[x].sort();
            }
            (None, Some(y)) => {
                groups[y].push(a);
                groups[y].sort();
            }
            (None, None) => groups.push(if a < b { vec![a, b] } else { vec![b, a] }),
            _ => {}
        }
    }
    groups.sort();
    AliasSets::from_groups(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::{IpIdMode, WorldConfig};

    fn world() -> World {
        WorldConfig::small(61).generate()
    }

    /// Finds a router with the given IP-ID mode and ≥ `n` ping-responding
    /// interfaces.
    fn router_with(world: &World, want_shared: bool, n: usize) -> Option<Vec<IfaceId>> {
        for r in &world.routers {
            let matches = match r.ip_id {
                IpIdMode::SharedCounter { .. } => want_shared,
                _ => !want_shared,
            };
            if !matches {
                continue;
            }
            let ifaces: Vec<IfaceId> = r
                .interfaces
                .iter()
                .copied()
                .filter(|&i| world.interfaces[i.index()].responds_to_ping)
                .collect();
            if ifaces.len() >= n {
                return Some(ifaces);
            }
        }
        None
    }

    #[test]
    fn same_router_shared_counter_resolves() {
        let w = world();
        let ifaces = router_with(&w, true, 2).expect("multi-iface shared-counter router");
        let sets = resolve(&w, &ifaces[..2], &AliasConfig::default());
        assert!(
            sets.aliased(ifaces[0], ifaces[1]),
            "same-router interfaces must alias"
        );
    }

    #[test]
    fn different_routers_do_not_alias() {
        let w = world();
        // Two shared-counter routers with different rates.
        let mut found: Vec<IfaceId> = Vec::new();
        for r in &w.routers {
            if let IpIdMode::SharedCounter { .. } = r.ip_id {
                if let Some(&i) = r
                    .interfaces
                    .iter()
                    .find(|&&i| w.interfaces[i.index()].responds_to_ping)
                {
                    found.push(i);
                    if found.len() == 2 {
                        break;
                    }
                }
            }
        }
        assert_eq!(found.len(), 2, "need two shared-counter routers");
        let cfg = AliasConfig {
            p_iffinder: 0.0,
            ..Default::default()
        };
        let sets = resolve(&w, &found, &cfg);
        assert!(
            !sets.aliased(found[0], found[1]),
            "distinct routers merged by MBT"
        );
    }

    #[test]
    fn random_and_zero_ipid_stay_unresolved() {
        let w = world();
        if let Some(ifaces) = router_with(&w, false, 2) {
            let cfg = AliasConfig {
                p_iffinder: 0.0,
                ..Default::default()
            };
            let sets = resolve(&w, &ifaces[..2], &cfg);
            assert!(
                !sets.aliased(ifaces[0], ifaces[1]),
                "random/zero IP-ID must be unresolvable by MBT"
            );
        }
    }

    #[test]
    fn mbt_rejects_short_trains_and_constants() {
        let mk = |vals: &[(f64, u16)]| -> Vec<IpIdSample> {
            vals.iter()
                .map(|&(t_s, ip_id)| IpIdSample { t_s, ip_id })
                .collect()
        };
        let a = mk(&[(0.0, 5), (1.0, 10)]);
        let b = mk(&[(0.5, 7), (1.5, 12)]);
        assert!(!mbt_shared_counter(&a, &b, 1000.0), "too short");

        let za = mk(&[(0.0, 0), (1.0, 0), (2.0, 0)]);
        let zb = mk(&[(0.5, 0), (1.5, 0), (2.5, 0)]);
        assert!(
            !mbt_shared_counter(&za, &zb, 1000.0),
            "frozen counter unusable"
        );
    }

    #[test]
    fn mbt_accepts_interleaved_counter_with_wrap() {
        let mk = |vals: &[(f64, u16)]| -> Vec<IpIdSample> {
            vals.iter()
                .map(|&(t_s, ip_id)| IpIdSample { t_s, ip_id })
                .collect()
        };
        // Counter at ~100/s crossing the 2^16 boundary.
        let a = mk(&[(0.0, 65400), (2.0, 65600u32 as u16), (4.0, 264)]);
        let b = mk(&[(1.0, 65500), (3.0, 164), (5.0, 364)]);
        assert!(mbt_shared_counter(&a, &b, 1000.0));
    }

    #[test]
    fn kapar_hints_merge_groups() {
        let w = world();
        let ifaces = router_with(&w, true, 2).expect("shared-counter router");
        // An unrelated interface, unmergeable by MBT.
        let outsider = (0..w.interfaces.len())
            .map(IfaceId::from_index)
            .find(|&i| w.interfaces[i.index()].responds_to_ping && !ifaces.contains(&i))
            .expect("outsider interface");
        let cfg = AliasConfig {
            p_iffinder: 0.0,
            ..Default::default()
        };
        let all = vec![ifaces[0], ifaces[1], outsider];
        let base = resolve(&w, &all, &cfg);
        assert!(!base.aliased(ifaces[0], outsider));
        let extended = resolve_with_hints(&w, &all, &[(ifaces[0], outsider)], &cfg);
        assert!(extended.aliased(ifaces[0], outsider), "hint ignored");
    }

    #[test]
    fn precision_over_whole_world_sample() {
        // MIDAR's promise: essentially no false merges. Sample interface
        // pairs across the world and check aliasing implies same router.
        let w = world();
        let lan_ifaces: Vec<IfaceId> = (0..w.interfaces.len())
            .map(IfaceId::from_index)
            .filter(|&i| {
                matches!(
                    w.interfaces[i.index()].kind,
                    opeer_topology::IfaceKind::IxpLan { .. }
                ) && w.interfaces[i.index()].responds_to_ping
            })
            .take(60)
            .collect();
        let cfg = AliasConfig {
            p_iffinder: 0.0,
            ..Default::default()
        };
        let sets = resolve(&w, &lan_ifaces, &cfg);
        for g in &sets.groups {
            let routers: std::collections::HashSet<_> =
                g.iter().map(|&i| w.interfaces[i.index()].router).collect();
            assert_eq!(routers.len(), 1, "false merge across routers: {g:?}");
        }
    }
}
