//! The delay model.
//!
//! Base RTT between two points is `2·d/v + proc`, where `v` is a stable
//! per-path effective speed drawn between the lower and upper bounds of
//! the [`opeer_geo::SpeedModel`] (skewed towards the fast end — real paths
//! are mostly direct) and `proc` is per-path switch/router processing.
//! A configurable minority of paths are *slow outliers* (circuitous
//! routing, L2 detours) whose speed falls below the model's lower bound;
//! these are the cases Step 3 of the inference legitimately loses
//! (paper footnote 7).
//!
//! Per-sample jitter rides on top: exponential queueing noise plus rare
//! multi-millisecond spikes. Minimum-of-N filtering in the campaign layer
//! recovers the base RTT, which is exactly why the paper uses `RTTmin`.

use opeer_geo::{GeoPoint, SpeedModel};
use opeer_topology::routing::stable_hash;
use serde::{Deserialize, Serialize};

/// Tunable latency model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    /// The distance⇄RTT feasibility bounds shared with the inference.
    pub speed: SpeedModel,
    /// Seed folded into every stable draw.
    pub seed: u64,
    /// Fraction of the admissible speed range by which drawn speeds stay
    /// below `vmax` (safety margin keeps simulated paths strictly inside
    /// the feasible annulus).
    pub v_max_margin: f64,
    /// Margin above `vmin` for regular paths.
    pub v_min_margin: f64,
    /// Skew exponent for the speed draw (`u^skew`; < 1 favours fast paths).
    pub speed_skew: f64,
    /// Probability that a path is a slow outlier violating the lower
    /// speed bound.
    pub p_slow_outlier: f64,
    /// Range of per-path processing overhead (ms, round-trip).
    pub proc_ms: (f64, f64),
    /// Mean of the per-sample exponential jitter (ms).
    pub jitter_mean_ms: f64,
    /// Probability of a transient congestion spike on one sample.
    pub p_spike: f64,
    /// Spike magnitude range (ms).
    pub spike_ms: (f64, f64),
    /// Probability a single probe packet is lost.
    pub p_sample_loss: f64,
}

impl LatencyModel {
    /// Model with the default calibration for a given measurement seed.
    pub fn new(seed: u64) -> Self {
        LatencyModel {
            speed: SpeedModel::default(),
            seed,
            v_max_margin: 0.92,
            v_min_margin: 1.10,
            speed_skew: 0.4,
            p_slow_outlier: 0.03,
            proc_ms: (0.10, 0.55),
            jitter_mean_ms: 0.12,
            p_spike: 0.08,
            spike_ms: (2.0, 40.0),
            p_sample_loss: 0.02,
        }
    }

    /// Uniform [0,1) derived from the hash of `words` (stable across runs).
    fn unit(&self, words: &[u64]) -> f64 {
        let h = stable_hash(
            &[self.seed, words.len() as u64]
                .iter()
                .chain(words)
                .copied()
                .collect::<Vec<_>>(),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The stable base RTT in ms between two locations, for a path
    /// identified by `key` (unordered endpoint ids — fold both in).
    pub fn base_rtt_ms(&self, a: GeoPoint, b: GeoPoint, key: &[u64]) -> f64 {
        self.base_rtt_ms_with_skew(a, b, key, self.speed_skew)
    }

    /// Like [`Self::base_rtt_ms`] with an explicit speed-skew exponent.
    /// Values above 1 bias towards the slow end of the feasible range —
    /// used for wide-area L2 fabrics, whose backhaul detours more than
    /// IP paths do (Fig. 2a).
    pub fn base_rtt_ms_with_skew(&self, a: GeoPoint, b: GeoPoint, key: &[u64], skew: f64) -> f64 {
        let d_km = a.distance_km(&b);
        let proc = {
            let u = self.unit(&[key[0].wrapping_add(7), key[key.len() - 1], 1]);
            self.proc_ms.0 + u * (self.proc_ms.1 - self.proc_ms.0)
        };
        if d_km < 1e-6 {
            return proc;
        }
        // Speeds follow the paper's convention: ground distance per unit of
        // *full RTT* (its Fig. 7 example: 4 ms → dmax = vmax·4 ms ≈ 533 km).
        let v_max = self.speed.v_max_m_s * self.v_max_margin;
        let v_min_raw = self.speed.v_min_m_s(d_km);
        let slow = self.unit(&[key[0], key[key.len() - 1], 2]) < self.p_slow_outlier;
        let v = if slow {
            // A circuitous path: below the lower bound the inference trusts.
            let u = self.unit(&[key[0], key[key.len() - 1], 3]);
            let floor = (v_min_raw * 0.45).max(0.04 * v_max);
            let ceil = (v_min_raw * 0.95).max(floor * 1.2);
            floor + u * (ceil - floor)
        } else {
            // The drawn speed must keep the path feasible *including* the
            // processing overhead: d/v + proc ≤ d/vmin ⇒
            // v ≥ vmin / (1 − vmin·proc/d).
            let d_m = d_km * 1000.0;
            let proc_s = proc / 1000.0;
            let v_floor = if v_min_raw > 0.0 {
                let denom = 1.0 - v_min_raw * proc_s / d_m;
                if denom > 0.05 {
                    v_min_raw / denom * self.v_min_margin
                } else {
                    v_max * 0.98 // degenerate short path; pin fast
                }
            } else {
                0.0
            };
            let lo = v_floor.max(0.30 * v_max).min(0.98 * v_max);
            let u = self.unit(&[key[0], key[key.len() - 1], 4]).powf(skew);
            lo + u * (v_max - lo)
        };
        d_km * 1000.0 / v * 1000.0 + proc
    }

    /// One sampled RTT: base + jitter (+ spike), or `None` if the packet
    /// was lost. `sample_idx` individualises draws per probe packet.
    pub fn sample_rtt_ms(&self, base_ms: f64, key: &[u64], sample_idx: u64) -> Option<f64> {
        if self.unit(&[key[0], sample_idx, 10]) < self.p_sample_loss {
            return None;
        }
        let u = self.unit(&[key[0], sample_idx, 11]).max(1e-12);
        let jitter = -self.jitter_mean_ms * u.ln(); // exponential
        let spike = if self.unit(&[key[0], sample_idx, 12]) < self.p_spike {
            let s = self.unit(&[key[0], sample_idx, 13]);
            self.spike_ms.0 + s * (self.spike_ms.1 - self.spike_ms.0)
        } else {
            0.0
        };
        Some(base_ms + jitter + spike)
    }

    /// Whether a path is a slow outlier (exposed so tests and experiments
    /// can separate legitimate misses from bugs).
    pub fn is_slow_outlier(&self, key: &[u64]) -> bool {
        self.unit(&[key[0], key[key.len() - 1], 2]) < self.p_slow_outlier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).expect("valid")
    }

    #[test]
    fn base_rtt_is_deterministic() {
        let m = LatencyModel::new(9);
        let a = p(52.37, 4.9);
        let b = p(50.11, 8.68);
        assert_eq!(m.base_rtt_ms(a, b, &[1, 2]), m.base_rtt_ms(a, b, &[1, 2]));
        assert_ne!(m.base_rtt_ms(a, b, &[1, 2]), m.base_rtt_ms(a, b, &[1, 3]));
    }

    #[test]
    fn zero_distance_is_processing_only() {
        let m = LatencyModel::new(9);
        let a = p(52.37, 4.9);
        let rtt = m.base_rtt_ms(a, a, &[5, 6]);
        assert!(rtt >= m.proc_ms.0 && rtt <= m.proc_ms.1, "got {rtt}");
    }

    #[test]
    fn regular_paths_respect_feasibility_bounds() {
        // For non-outlier paths the observed base RTT must keep the true
        // distance inside the inference's feasible annulus.
        let m = LatencyModel::new(42);
        let a = p(52.37, 4.9);
        let mut checked = 0;
        for (lat, lon) in [
            (48.85, 2.35),
            (51.51, -0.13),
            (40.71, -74.01),
            (1.35, 103.82),
            (44.43, 26.1),
        ] {
            let b = p(lat, lon);
            for k in 0..40u64 {
                let key = [k, k + 1000];
                if m.is_slow_outlier(&key) {
                    continue;
                }
                let rtt = m.base_rtt_ms(a, b, &key);
                let d = a.distance_km(&b);
                let annulus = m.speed.feasible_annulus_ms(rtt);
                assert!(
                    annulus.contains(d),
                    "d={d:.0} km rtt={rtt:.2} ms annulus=[{:.0},{:.0}]",
                    annulus.min_km,
                    annulus.max_km
                );
                checked += 1;
            }
        }
        assert!(checked > 150, "only {checked} non-outlier paths");
    }

    #[test]
    fn slow_outliers_exist_and_violate_lower_bound() {
        let m = LatencyModel::new(7);
        let a = p(52.37, 4.9);
        let b = p(48.85, 2.35); // ~430 km
        let d = a.distance_km(&b);
        let mut outliers = 0;
        for k in 0..2000u64 {
            let key = [k, k + 9999];
            if m.is_slow_outlier(&key) {
                outliers += 1;
                let rtt = m.base_rtt_ms(a, b, &key);
                let annulus = m.speed.feasible_annulus_ms(rtt);
                assert!(
                    d < annulus.min_km,
                    "outlier should look farther than it is: d={d}, min={}",
                    annulus.min_km
                );
            }
        }
        let rate = outliers as f64 / 2000.0;
        assert!((0.01..0.06).contains(&rate), "outlier rate {rate}");
    }

    #[test]
    fn samples_jitter_above_base_and_min_recovers() {
        let m = LatencyModel::new(3);
        let base = 5.0;
        let mut min = f64::INFINITY;
        let mut got = 0;
        for i in 0..24 {
            if let Some(s) = m.sample_rtt_ms(base, &[77], i) {
                assert!(s >= base, "sample below base");
                min = min.min(s);
                got += 1;
            }
        }
        assert!(got >= 18, "too many losses: {got}/24");
        assert!(min - base < 1.0, "min-of-24 {min} far from base {base}");
    }

    #[test]
    fn spikes_occur_at_expected_rate() {
        let m = LatencyModel::new(5);
        let mut spikes = 0;
        let mut n = 0;
        for i in 0..5000 {
            if let Some(s) = m.sample_rtt_ms(1.0, &[123], i) {
                n += 1;
                if s > 2.5 {
                    spikes += 1;
                }
            }
        }
        let rate = spikes as f64 / n as f64;
        assert!((0.04..0.14).contains(&rate), "spike rate {rate}");
    }
}
