//! # opeer-measure — the simulated measurement plane
//!
//! The paper's data plane consisted of pings from looking glasses and RIPE
//! Atlas probes colocated with IXPs (§3.1), 3.15 billion public Atlas
//! traceroutes, and Y.1731 inter-facility delay matrices volunteered by
//! NL-IX and NET-IX. This crate reproduces that plane over the synthetic
//! [`opeer_topology::World`], artifact for artifact:
//!
//! * [`latency`] — the delay model. Every path's base RTT derives from
//!   geodesic distance and a stable per-path effective speed drawn
//!   between the [`opeer_geo::SpeedModel`] bounds (the same bounds Step 3
//!   of the inference uses — the model is calibrated to the world exactly
//!   as the paper's fit was calibrated to its Y.1731 data), plus
//!   processing overhead, per-sample jitter, transient spikes, and a
//!   small rate of slow-path outliers that defeat the bounds.
//! * [`vp`] — vantage points: per-IXP looking glasses (some of which
//!   round RTTs *up* to whole milliseconds, §6.1) and Atlas probes, some
//!   hosted in IXP facilities, some on distant management LANs (their
//!   consistently inflated RTTs must be filtered), some dead.
//! * [`ping`] — the ping engine, with reply-TTL semantics feeding the
//!   TTL-match/TTL-switch filters of `opeer-net`.
//! * [`campaign`] — measurement campaigns: the §5.2 protocol (24 samples
//!   per pair over two days) and the §4.1 control protocol (every 20
//!   minutes for two days), producing minimum-RTT observations and
//!   response-rate statistics (Table 5, Fig. 9a/9b).
//! * [`traceroute`] — the traceroute engine over policy-routed paths and
//!   a public-corpus builder standing in for the Atlas measurement
//!   archive.
//! * [`y1731`] — demarcation-point delay matrices for wide-area IXPs
//!   (Fig. 2a, Fig. 6).
//! * [`ipid`] — IP-ID probing of interfaces, the raw signal for
//!   MIDAR-style alias resolution in `opeer-alias`.
//! * [`periscope`] — Periscope-style LG query scheduling (token buckets
//!   over deterministic virtual time).
//!
//! ## Key types and entry points
//!
//! [`vp::discover_vps`] finds the vantage points;
//! [`campaign::run_campaign`] runs the §5.2 protocol over them;
//! [`traceroute::build_corpus`] stands in for the public Atlas archive.
//! [`CampaignResult`], [`Traceroute`], and the per-VP [`VpStats`] are
//! what the inference pipeline consumes.
//!
//! ## Shard-task structure
//!
//! Every campaign and corpus is a deterministic function of `(world,
//! seed)` decomposed into **pure shard units** so `opeer-core`'s worker
//! pool can execute them in any schedule:
//!
//! * [`campaign::probe_vp`] is the campaign's unit — one VP's probes,
//!   no shared state; [`run_campaign`][campaign::run_campaign] is the
//!   in-order concatenation over a VP slice, and
//!   [`CampaignResult::absorb`] merges consecutive-chunk partials back
//!   into that exact byte sequence.
//! * [`traceroute::plan_corpus`] separates the cheap probe schedule
//!   from tracing; [`traceroute::CorpusPlan::trace_shard`] traces any
//!   destination range independently, and range-order concatenation
//!   equals [`traceroute::build_corpus`].
//! * [`ipid::probe_ipid`] / [`ipid::probe_train`] are pure per
//!   `(interface, time)` — alias resolution's probe trains parallelise
//!   per target for free.
//!
//! There is no mutable RNG anywhere in the plane: every draw is a
//! stable hash keyed by `(seed, entity ids, sample index)`, i.e. each
//! VP, target, and hop owns an implicit RNG sub-stream that no other
//! shard can perturb. That is what makes the parallel assembly in
//! `opeer-core` byte-identical to the sequential one.

#![warn(missing_docs)]

pub mod campaign;
pub mod ipid;
pub mod latency;
pub mod periscope;
pub mod ping;
pub mod traceroute;
pub mod vp;
pub mod y1731;

pub use campaign::{CampaignConfig, CampaignResult, PingObservation, VpStats};
pub use traceroute::CorpusPlan;

/// Splits `0..n` into at most `k` contiguous, nearly equal, non-empty
/// batches (fewer when `n < k`; none when `n == 0`) — the epoch axis of
/// the streaming emitters ([`campaign::campaign_batches`],
/// [`traceroute::corpus_batches`]) **and** the shard axis of
/// `opeer-core`'s engine (`shard_ranges` delegates here, so scheduler
/// and batch layer can never disagree on cut points).
///
/// The *choice* of cut points never matters for results: both emitters
/// produce batches whose in-order merge is byte-identical to the
/// one-shot artifact for **any** consecutive partition.
pub fn batch_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let k = k.max(1);
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}
pub use latency::LatencyModel;
pub use ping::{PingEngine, PingReply};
pub use traceroute::{CorpusConfig, TraceSample, Traceroute, TracerouteEngine};
pub use vp::{discover_vps, AtlasHost, VantagePoint, VpId, VpKind};
pub use y1731::facility_delay_matrix;
