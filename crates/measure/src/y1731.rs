//! Y.1731-style inter-facility delay matrices.
//!
//! NL-IX and NET-IX measure delays between their network demarcation
//! points with precisely timestamped test frames (ITU-T Y.1731
//! performance monitoring); the paper uses those matrices to study
//! wide-area IXPs (Fig. 2a) and to fit the lower speed bound (Fig. 6).
//! Here the same matrices are derived from the world's facility geometry
//! and the shared latency model: the median of repeated frame exchanges
//! per facility pair.

use crate::latency::LatencyModel;
use opeer_topology::{IxpId, World};
use serde::{Deserialize, Serialize};

/// The delay matrix of one IXP's fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayMatrix {
    /// Facility names, indexing the matrix.
    pub facilities: Vec<String>,
    /// Geodesic distance between facility pairs, km.
    pub distance_km: Vec<Vec<f64>>,
    /// Median RTT between facility pairs, ms (0 on the diagonal).
    pub median_rtt_ms: Vec<Vec<f64>>,
}

impl DelayMatrix {
    /// Iterates over the strictly-upper-triangle pairs:
    /// `(i, j, distance_km, median_rtt_ms)`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64, f64)> + '_ {
        let n = self.facilities.len();
        (0..n).flat_map(move |i| {
            ((i + 1)..n).map(move |j| (i, j, self.distance_km[i][j], self.median_rtt_ms[i][j]))
        })
    }

    /// Fraction of facility pairs with median RTT above `ms` (Fig. 2a's
    /// headline: 87 % of NET-IX pairs above 10 ms).
    pub fn fraction_above_ms(&self, ms: f64) -> f64 {
        let mut total = 0usize;
        let mut above = 0usize;
        for (_, _, _, rtt) in self.pairs() {
            total += 1;
            if rtt > ms {
                above += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            above as f64 / total as f64
        }
    }
}

/// Measures the Y.1731 delay matrix of an IXP's fabric: `samples` frame
/// exchanges per facility pair, median-aggregated.
pub fn facility_delay_matrix(
    world: &World,
    ixp: IxpId,
    model: &LatencyModel,
    samples: u64,
) -> DelayMatrix {
    let x = &world.ixps[ixp.index()];
    let n = x.facilities.len();
    let mut distance_km = vec![vec![0.0; n]; n];
    let mut median_rtt_ms = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (fa, fb) = (x.facilities[i], x.facilities[j]);
            let (pa, pb) = (world.facility_point(fa), world.facility_point(fb));
            let d = pa.distance_km(&pb);
            let key = [
                (u64::from(fa.0.min(fb.0)) << 32) | u64::from(fa.0.max(fb.0)),
                0x17,
            ];
            // Fabric backhaul is slow-biased within the feasibility bounds:
            // wide-area L2 rings detour more than routed IP paths.
            let base = model.base_rtt_ms_with_skew(pa, pb, &key, 1.6);
            let mut obs: Vec<f64> = (0..samples.max(1))
                .filter_map(|s| model.sample_rtt_ms(base, &key, s))
                .collect();
            obs.sort_by(|a, b| a.partial_cmp(b).expect("finite RTTs"));
            let median = if obs.is_empty() {
                base
            } else {
                obs[obs.len() / 2]
            };
            distance_km[i][j] = d;
            distance_km[j][i] = d;
            median_rtt_ms[i][j] = median;
            median_rtt_ms[j][i] = median;
        }
    }
    DelayMatrix {
        facilities: x
            .facilities
            .iter()
            .map(|f| world.facilities[f.index()].name.clone())
            .collect(),
        distance_km,
        median_rtt_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn netix_like_matrix_is_mostly_above_10ms() {
        let w = WorldConfig::small(29).generate();
        let netix = w
            .ixps
            .iter()
            .position(|x| x.name == "NET-IX")
            .expect("NET-IX in spec");
        let m = facility_delay_matrix(&w, IxpId::from_index(netix), &LatencyModel::new(4), 9);
        assert!(m.facilities.len() >= 10);
        // The qualitative Fig. 2a claim: the majority of wide-area facility
        // pairs sit beyond the 10 ms "remoteness threshold" (the paper's
        // NET-IX measured 87 %; our 16 synthetic sites are geographically
        // tighter, see EXPERIMENTS.md).
        let frac = m.fraction_above_ms(10.0);
        assert!(frac > 0.45, "only {frac} of NET-IX pairs above 10 ms");
        // And some close pairs exist below 10 ms (the FRA–PRA 7 ms case).
        assert!(frac < 1.0, "no close facility pairs at all");
    }

    #[test]
    fn metro_ixp_matrix_is_sub_ms() {
        let w = WorldConfig::small(29).generate();
        let ams = w
            .ixps
            .iter()
            .position(|x| x.name == "AMS-IX")
            .expect("AMS-IX");
        let m = facility_delay_matrix(&w, IxpId::from_index(ams), &LatencyModel::new(4), 9);
        assert!(m.fraction_above_ms(10.0) < 0.05);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let w = WorldConfig::small(29).generate();
        let nlix = w
            .ixps
            .iter()
            .position(|x| x.name == "NL-IX")
            .expect("NL-IX");
        let m = facility_delay_matrix(&w, IxpId::from_index(nlix), &LatencyModel::new(4), 5);
        let n = m.facilities.len();
        for i in 0..n {
            assert_eq!(m.median_rtt_ms[i][i], 0.0);
            for j in 0..n {
                assert_eq!(m.median_rtt_ms[i][j], m.median_rtt_ms[j][i]);
            }
        }
    }

    #[test]
    fn rtt_grows_with_distance_on_average() {
        let w = WorldConfig::small(29).generate();
        let nlix = w
            .ixps
            .iter()
            .position(|x| x.name == "NL-IX")
            .expect("NL-IX");
        let m = facility_delay_matrix(&w, IxpId::from_index(nlix), &LatencyModel::new(4), 9);
        let (mut near_sum, mut near_n, mut far_sum, mut far_n) = (0.0, 0, 0.0, 0);
        for (_, _, d, rtt) in m.pairs() {
            if d < 100.0 {
                near_sum += rtt;
                near_n += 1;
            } else if d > 500.0 {
                far_sum += rtt;
                far_n += 1;
            }
        }
        if near_n > 0 && far_n > 0 {
            assert!(far_sum / far_n as f64 > near_sum / near_n as f64);
        }
    }
}
