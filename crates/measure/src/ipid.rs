//! IP-ID probing — the raw signal behind MIDAR-style alias resolution.
//!
//! Classic router stacks fill the IP identification field from one
//! counter shared by all interfaces; sampling the counter through two
//! interfaces yields interleaved, jointly-monotonic sequences if and only
//! if the interfaces share a router (the Monotonic Bound Test of MIDAR
//! \[55\]). Modern stacks use per-packet random IDs or constant zero, which
//! is why alias resolution never reaches full coverage — the paper
//! deliberately picked the conservative MIDAR+iffinder dataset "to favor
//! accuracy over completeness" (§5.2 fn. 8).

use opeer_topology::routing::stable_hash;
use opeer_topology::{IfaceId, IpIdMode, World};

/// One IP-ID sample from one interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpIdSample {
    /// Probe send time, seconds since the measurement epoch.
    pub t_s: f64,
    /// The 16-bit identification value in the reply.
    pub ip_id: u16,
}

/// Probes an interface's IP-ID at time `t_s`. Returns `None` if the
/// interface doesn't answer probes.
pub fn probe_ipid(world: &World, seed: u64, iface: IfaceId, t_s: f64) -> Option<IpIdSample> {
    let ifc = &world.interfaces[iface.index()];
    if !ifc.responds_to_ping {
        return None;
    }
    let router = &world.routers[ifc.router.index()];
    let ip_id = match router.ip_id {
        IpIdMode::SharedCounter { init, rate_per_s } => {
            // The shared counter advances with the router's own traffic;
            // a deterministic per-second burst term keeps different
            // routers' series distinguishable even at similar rates.
            let burst = stable_hash(&[seed, u64::from(ifc.router.0), t_s as u64]) % 7;
            let ticks = (rate_per_s * t_s) as u64 + burst;
            ((u64::from(init) + ticks) % 65536) as u16
        }
        IpIdMode::Random => {
            (stable_hash(&[seed, u64::from(iface.0), t_s.to_bits()]) % 65536) as u16
        }
        IpIdMode::Zero => 0,
    };
    Some(IpIdSample { t_s, ip_id })
}

/// Collects a probe train from an interface: `n` samples spaced
/// `interval_s` apart starting at `t0_s`.
pub fn probe_train(
    world: &World,
    seed: u64,
    iface: IfaceId,
    t0_s: f64,
    interval_s: f64,
    n: usize,
) -> Vec<IpIdSample> {
    (0..n)
        .filter_map(|k| probe_ipid(world, seed, iface, t0_s + interval_s * k as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn shared_counter_is_monotone_mod_wrap() {
        let w = WorldConfig::small(31).generate();
        // Find a router with a shared counter and ≥1 responding interface.
        for (ri, r) in w.routers.iter().enumerate() {
            if !matches!(r.ip_id, IpIdMode::SharedCounter { .. }) {
                continue;
            }
            let Some(&ifc) = r.interfaces.first() else {
                continue;
            };
            if !w.interfaces[ifc.index()].responds_to_ping {
                continue;
            }
            let train = probe_train(&w, 1, ifc, 0.0, 1.0, 30);
            assert!(!train.is_empty());
            // Unwrapped differences are non-negative.
            let mut wraps = 0;
            for win in train.windows(2) {
                let (a, b) = (win[0].ip_id as i64, win[1].ip_id as i64);
                if b < a {
                    wraps += 1;
                }
            }
            assert!(
                wraps <= 2,
                "router {ri}: too many wraps for monotone counter"
            );
            return;
        }
        panic!("no shared-counter router found");
    }

    #[test]
    fn two_interfaces_same_router_share_series() {
        let w = WorldConfig::small(31).generate();
        for r in &w.routers {
            if !matches!(r.ip_id, IpIdMode::SharedCounter { .. }) || r.interfaces.len() < 2 {
                continue;
            }
            let (a, b) = (r.interfaces[0], r.interfaces[1]);
            if !w.interfaces[a.index()].responds_to_ping
                || !w.interfaces[b.index()].responds_to_ping
            {
                continue;
            }
            let sa = probe_ipid(&w, 1, a, 10.0).expect("responds");
            let sb = probe_ipid(&w, 1, b, 10.0).expect("responds");
            // Same router, same instant ⇒ nearly identical counter values.
            let diff = (i32::from(sa.ip_id) - i32::from(sb.ip_id)).rem_euclid(65536);
            assert!(
                diff.min(65536 - diff) < 16,
                "shared counter diverged: {diff}"
            );
            return;
        }
        panic!("no multi-interface shared-counter router found");
    }

    #[test]
    fn zero_mode_is_zero_and_random_varies() {
        let w = WorldConfig::small(31).generate();
        let mut saw_zero = false;
        let mut saw_random_variation = false;
        for r in &w.routers {
            let Some(&ifc) = r.interfaces.first() else {
                continue;
            };
            if !w.interfaces[ifc.index()].responds_to_ping {
                continue;
            }
            match r.ip_id {
                IpIdMode::Zero => {
                    assert_eq!(probe_ipid(&w, 1, ifc, 5.0).expect("responds").ip_id, 0);
                    saw_zero = true;
                }
                IpIdMode::Random => {
                    let t = probe_train(&w, 1, ifc, 0.0, 1.0, 10);
                    let distinct: std::collections::HashSet<u16> =
                        t.iter().map(|s| s.ip_id).collect();
                    if distinct.len() > 3 {
                        saw_random_variation = true;
                    }
                }
                IpIdMode::SharedCounter { .. } => {}
            }
            if saw_zero && saw_random_variation {
                return;
            }
        }
        assert!(saw_zero, "no zero-mode router exercised");
        assert!(saw_random_variation, "no random-mode router exercised");
    }
}
