//! Vantage points: looking glasses and Atlas-style probes.
//!
//! §3.1: the paper had 23 public looking glasses directly attached to IXP
//! LANs (queried through Periscope) and 66 Atlas probes matched to IXPs,
//! of which 50 sat in IXP facilities but *outside* the LAN, 14 never
//! answered, and a further 21 were later discarded for showing ≥ 1 ms to
//! their IXP's route server (management LANs hosted away from the IXP,
//! §6.1). [`discover_vps`] reproduces those populations per world.

use opeer_geo::GeoPoint;
use opeer_topology::routing::stable_hash;
use opeer_topology::{CityId, FacilityId, IxpId, World};
use serde::{Deserialize, Serialize};

/// Identifier of a vantage point (dense, world-specific).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VpId(pub u32);

/// Where an Atlas-style probe is physically hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtlasHost {
    /// Inside an IXP facility (the useful case) — one L3 hop off the LAN.
    IxpFacility(FacilityId),
    /// On the IXP's management LAN, which is actually hosted in a distant
    /// city; all of its RTTs are inflated and the route-server filter
    /// must remove it.
    MgmtLan(CityId),
}

/// The flavour of a vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VpKind {
    /// A looking glass directly attached to the IXP peering LAN
    /// (0 forwarding hops; some round RTTs up to whole ms).
    LookingGlass {
        /// Whether RTT output is rounded up to integer milliseconds.
        rounds_up: bool,
    },
    /// An Atlas-style probe (1 forwarding hop off the LAN).
    Atlas {
        /// Physical hosting.
        host: AtlasHost,
        /// Dead probes never produce responses (the paper's 14).
        dead: bool,
    },
    /// One-time operator-internal access used for the control dataset
    /// (§4.1): behaves like a non-rounding LG.
    OperatorInternal,
}

/// A vantage point bound to one IXP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Dense id.
    pub id: VpId,
    /// The IXP this VP measures.
    pub ixp: IxpId,
    /// Kind and quirks.
    pub kind: VpKind,
    /// Physical location (drives every RTT involving this VP).
    pub location: GeoPoint,
    /// Human-readable name for reports.
    pub name: String,
}

impl VantagePoint {
    /// Forwarding hops tolerated by the TTL-match filter for this VP
    /// (§4.1/§6.1: 0 for LGs, 1 for Atlas probes).
    pub fn ttl_max_hops(&self) -> u8 {
        match self.kind {
            VpKind::LookingGlass { .. } | VpKind::OperatorInternal => 0,
            VpKind::Atlas { .. } => 1,
        }
    }

    /// Whether the VP rounds reported RTTs up to whole milliseconds.
    pub fn rounds_up(&self) -> bool {
        matches!(self.kind, VpKind::LookingGlass { rounds_up: true })
    }

    /// Whether this VP is an Atlas probe.
    pub fn is_atlas(&self) -> bool {
        matches!(self.kind, VpKind::Atlas { .. })
    }
}

/// Discovers the public vantage points of a world: one LG per IXP that
/// operates one, plus 0–4 Atlas probes per *studied* IXP with the
/// paper's population of facility-hosted / management-LAN / dead probes.
///
/// `seed` individualises probe placement; the same seed always yields the
/// same VP set.
pub fn discover_vps(world: &World, seed: u64) -> Vec<VantagePoint> {
    let mut out = Vec::new();
    let mut next = 0u32;
    for (i, ixp) in world.ixps.iter().enumerate() {
        let ixp_id = IxpId::from_index(i);
        let anchor = world.facility_point(ixp.anchor_facility);
        if ixp.has_looking_glass {
            out.push(VantagePoint {
                id: VpId(next),
                ixp: ixp_id,
                kind: VpKind::LookingGlass {
                    rounds_up: ixp.lg_rounds_up,
                },
                location: anchor,
                name: format!("{} LG", ixp.name),
            });
            next += 1;
        }
        if !ixp.studied {
            continue;
        }
        // Atlas probes: 0–4 per studied IXP; ~55% in facilities, ~23%
        // management-LAN impostors, ~22% dead — matching §6.1's 66-probe
        // census (50 in-facility, 21 filtered, 14 silent, overlapping).
        let n_probes = (stable_hash(&[seed, i as u64, 1]) % 5) as usize;
        for k in 0..n_probes {
            let h = stable_hash(&[seed, i as u64, 2, k as u64]);
            let roll = h % 100;
            let (host, dead, loc) = if roll < 55 {
                let facs = &ixp.facilities;
                let f = facs[(h / 100) as usize % facs.len()];
                (AtlasHost::IxpFacility(f), false, world.facility_point(f))
            } else if roll < 78 {
                // Management LAN hosted in a far-away city.
                let c = CityId::from_index((h / 100) as usize % world.cities.len());
                (AtlasHost::MgmtLan(c), false, world.city_point(c))
            } else {
                let facs = &ixp.facilities;
                let f = facs[(h / 100) as usize % facs.len()];
                (AtlasHost::IxpFacility(f), true, world.facility_point(f))
            };
            out.push(VantagePoint {
                id: VpId(next),
                ixp: ixp_id,
                kind: VpKind::Atlas { host, dead },
                location: loc,
                name: format!("{} Atlas#{k}", ixp.name),
            });
            next += 1;
        }
    }
    out
}

/// A synthetic operator-internal VP at an IXP's anchor facility, used to
/// replay the control-subset measurements of §4.1 (the paper obtained
/// one-time access to in-fabric pings for IXPs without public VPs).
pub fn operator_vp(world: &World, ixp: IxpId, id: u32) -> VantagePoint {
    let x = &world.ixps[ixp.index()];
    VantagePoint {
        id: VpId(id),
        ixp,
        kind: VpKind::OperatorInternal,
        location: world.facility_point(x.anchor_facility),
        name: format!("{} operator", x.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn discovery_is_deterministic_and_plausible() {
        let w = WorldConfig::small(21).generate();
        let a = discover_vps(&w, 5);
        let b = discover_vps(&w, 5);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        let lgs = a
            .iter()
            .filter(|v| matches!(v.kind, VpKind::LookingGlass { .. }))
            .count();
        let atlas = a.iter().filter(|v| v.is_atlas()).count();
        assert!(lgs >= 20, "expected LGs on named IXPs, got {lgs}");
        assert!(atlas > 5, "expected Atlas probes, got {atlas}");
        // Different seeds move probes around (counts or placements differ).
        let c = discover_vps(&w, 6);
        let placements = |vs: &[VantagePoint]| -> Vec<String> {
            vs.iter()
                .filter(|v| v.is_atlas())
                .map(|v| format!("{:?}", v.location))
                .collect()
        };
        assert_ne!(placements(&a), placements(&c), "seed had no effect");
    }

    #[test]
    fn control_ixps_have_no_public_vps() {
        let w = WorldConfig::small(21).generate();
        let vps = discover_vps(&w, 5);
        for (i, ixp) in w.ixps.iter().enumerate() {
            if ixp.validation == opeer_topology::ValidationRole::Control {
                let n = vps.iter().filter(|v| v.ixp.index() == i).count();
                assert_eq!(n, 0, "{} should have no public VP", ixp.name);
            }
        }
    }

    #[test]
    fn ttl_hops_per_kind() {
        let w = WorldConfig::small(21).generate();
        let vps = discover_vps(&w, 5);
        for v in &vps {
            match v.kind {
                VpKind::LookingGlass { .. } => assert_eq!(v.ttl_max_hops(), 0),
                VpKind::Atlas { .. } => assert_eq!(v.ttl_max_hops(), 1),
                VpKind::OperatorInternal => assert_eq!(v.ttl_max_hops(), 0),
            }
        }
    }

    #[test]
    fn operator_vp_is_at_anchor() {
        let w = WorldConfig::small(21).generate();
        let ixp = IxpId::from_index(8); // DE-CIX NYC (control)
        let vp = operator_vp(&w, ixp, 999);
        assert_eq!(vp.ttl_max_hops(), 0);
        assert!(!vp.rounds_up());
        let anchor = w.facility_point(w.ixps[8].anchor_facility);
        assert!(vp.location.distance_km(&anchor) < 0.001);
    }
}
