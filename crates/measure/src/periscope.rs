//! Periscope-style looking-glass query automation (§3.1, \[45\]).
//!
//! Public looking glasses are web forms with informal etiquette: they
//! throttle, they time out, and hammering them gets your prober
//! blacklisted. Periscope (Giotsas et al., PAM 2016) unifies LG querying
//! behind one API with per-LG rate limiting and request scheduling; the
//! paper issued its LG pings through it. This module reproduces that
//! behaviour over the simulated measurement plane: a token-bucket per
//! looking glass, deterministic virtual time, and per-LG accounting —
//! so campaign code that respects the budget works unchanged against
//! real Periscope.

use crate::ping::{PingEngine, PingReply};
use crate::vp::{VantagePoint, VpId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-LG request budget.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RateLimit {
    /// Bucket capacity (burst size).
    pub burst: u32,
    /// Sustained queries per second.
    pub per_second: f64,
}

impl Default for RateLimit {
    fn default() -> Self {
        // Periscope's conservative public-LG etiquette: small bursts,
        // roughly one query every couple of seconds sustained.
        RateLimit {
            burst: 5,
            per_second: 0.5,
        }
    }
}

/// Outcome of one scheduled query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// The LG answered (or timed out server-side: `None`).
    Completed(Option<PingReply>),
    /// The per-LG budget was exhausted; retry after the returned virtual
    /// time (seconds).
    RateLimited {
        /// Earliest time the bucket has a token again.
        retry_at_s: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill_s: f64,
}

/// Per-VP accounting.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct QueryStats {
    /// Queries that went through.
    pub completed: u64,
    /// Queries rejected by the limiter.
    pub rate_limited: u64,
}

/// The scheduler: one token bucket per looking glass.
pub struct Periscope<'w> {
    engine: PingEngine<'w>,
    limit: RateLimit,
    buckets: HashMap<VpId, Bucket>,
    stats: HashMap<VpId, QueryStats>,
}

impl<'w> Periscope<'w> {
    /// Creates a scheduler over a ping engine.
    pub fn new(engine: PingEngine<'w>, limit: RateLimit) -> Self {
        Periscope {
            engine,
            limit,
            buckets: HashMap::new(),
            stats: HashMap::new(),
        }
    }

    /// Issues one LG query at virtual time `t_s`. Time must not go
    /// backwards per LG (panics in debug builds if it does — a scheduler
    /// bug, not a data condition).
    pub fn query(
        &mut self,
        vp: &VantagePoint,
        target: Ipv4Addr,
        t_s: f64,
        sample_idx: u64,
    ) -> QueryOutcome {
        let bucket = self.buckets.entry(vp.id).or_insert(Bucket {
            tokens: f64::from(self.limit.burst),
            last_refill_s: t_s,
        });
        debug_assert!(
            t_s + 1e-9 >= bucket.last_refill_s,
            "virtual time went backwards for {:?}",
            vp.id
        );
        let elapsed = (t_s - bucket.last_refill_s).max(0.0);
        bucket.tokens =
            (bucket.tokens + elapsed * self.limit.per_second).min(f64::from(self.limit.burst));
        bucket.last_refill_s = t_s;

        let stats = self.stats.entry(vp.id).or_default();
        if bucket.tokens < 1.0 {
            stats.rate_limited += 1;
            let deficit = 1.0 - bucket.tokens;
            return QueryOutcome::RateLimited {
                retry_at_s: t_s + deficit / self.limit.per_second,
            };
        }
        bucket.tokens -= 1.0;
        stats.completed += 1;
        QueryOutcome::Completed(self.engine.ping(vp, target, sample_idx))
    }

    /// Runs a target list against one LG, advancing virtual time and
    /// honouring the budget (sleeping until `retry_at_s` when throttled).
    /// Returns `(target, reply)` pairs and the virtual time consumed.
    pub fn run_batch(
        &mut self,
        vp: &VantagePoint,
        targets: &[Ipv4Addr],
        start_s: f64,
    ) -> (Vec<(Ipv4Addr, Option<PingReply>)>, f64) {
        let mut t = start_s;
        let mut out = Vec::with_capacity(targets.len());
        for (i, &target) in targets.iter().enumerate() {
            loop {
                match self.query(vp, target, t, i as u64) {
                    QueryOutcome::Completed(reply) => {
                        out.push((target, reply));
                        break;
                    }
                    QueryOutcome::RateLimited { retry_at_s } => {
                        t = retry_at_s;
                    }
                }
            }
        }
        (out, t - start_s)
    }

    /// Accounting for one LG.
    pub fn stats(&self, vp: VpId) -> QueryStats {
        self.stats.get(&vp).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::vp::discover_vps;
    use opeer_topology::{World, WorldConfig};

    fn setup() -> (World, Vec<VantagePoint>) {
        let w = WorldConfig::small(171).generate();
        let vps = discover_vps(&w, 2);
        (w, vps)
    }

    #[test]
    fn burst_then_throttle() {
        let (w, vps) = setup();
        let vp = vps[0].clone();
        let mut p = Periscope::new(
            PingEngine::new(&w, LatencyModel::new(2)),
            RateLimit {
                burst: 3,
                per_second: 1.0,
            },
        );
        let target = w.ixps[vp.ixp.index()].route_server_ip;
        // Three burst tokens at t=0, the fourth query throttles.
        for i in 0..3 {
            assert!(matches!(
                p.query(&vp, target, 0.0, i),
                QueryOutcome::Completed(_)
            ));
        }
        match p.query(&vp, target, 0.0, 3) {
            QueryOutcome::RateLimited { retry_at_s } => {
                assert!((retry_at_s - 1.0).abs() < 1e-9, "retry at {retry_at_s}");
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        // After waiting, the token is back.
        assert!(matches!(
            p.query(&vp, target, 1.0, 4),
            QueryOutcome::Completed(_)
        ));
        let s = p.stats(vp.id);
        assert_eq!(s.completed, 4);
        assert_eq!(s.rate_limited, 1);
    }

    #[test]
    fn batch_consumes_virtual_time() {
        let (w, vps) = setup();
        let vp = vps[0].clone();
        let mut p = Periscope::new(
            PingEngine::new(&w, LatencyModel::new(2)),
            RateLimit {
                burst: 2,
                per_second: 2.0,
            },
        );
        let targets: Vec<_> = w
            .memberships_of_ixp(vp.ixp)
            .iter()
            .take(10)
            .map(|&m| w.interfaces[w.memberships[m.index()].iface.index()].addr)
            .collect();
        let (results, elapsed) = p.run_batch(&vp, &targets, 0.0);
        assert_eq!(results.len(), targets.len());
        // 10 queries, 2 burst + 2/s refill ⇒ at least ~4s of virtual time.
        assert!(
            elapsed >= (targets.len() as f64 - 2.0) / 2.0 - 1e-6,
            "elapsed {elapsed}"
        );
    }

    #[test]
    fn buckets_are_per_lg() {
        let (w, vps) = setup();
        let lgs: Vec<_> = vps
            .iter()
            .filter(|v| matches!(v.kind, crate::vp::VpKind::LookingGlass { .. }))
            .take(2)
            .cloned()
            .collect();
        assert_eq!(lgs.len(), 2);
        let mut p = Periscope::new(
            PingEngine::new(&w, LatencyModel::new(2)),
            RateLimit {
                burst: 1,
                per_second: 0.1,
            },
        );
        let t0 = w.ixps[lgs[0].ixp.index()].route_server_ip;
        let t1 = w.ixps[lgs[1].ixp.index()].route_server_ip;
        assert!(matches!(
            p.query(&lgs[0], t0, 0.0, 0),
            QueryOutcome::Completed(_)
        ));
        // The second LG has its own untouched bucket.
        assert!(matches!(
            p.query(&lgs[1], t1, 0.0, 0),
            QueryOutcome::Completed(_)
        ));
        // But the first LG is now dry.
        assert!(matches!(
            p.query(&lgs[0], t0, 0.0, 1),
            QueryOutcome::RateLimited { .. }
        ));
    }
}
