//! Measurement campaigns and their observation records.
//!
//! Two protocols from the paper:
//!
//! * **Study campaign** (§5.2 step 2): from every usable VP of an IXP,
//!   ping every member interface every 2 hours for 2 days (24 samples),
//!   apply the TTL-match and TTL-switch filters, keep `RTTmin`.
//! * **Control campaign** (§4.1): operator-internal access, every 20
//!   minutes for two days (144 samples), same filters.
//!
//! The campaign also reproduces the §6.1 probe hygiene: Atlas probes that
//! never answer are dropped, and Atlas probes with `RTTmin ≥ 1 ms` to
//! their route server are discarded as management-LAN impostors.

use crate::latency::LatencyModel;
use crate::ping::PingEngine;
use crate::vp::{operator_vp, VantagePoint, VpId};
use opeer_net::TtlFilter;
use opeer_topology::{IxpId, World};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Campaign parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of probe rounds per (VP, target) pair.
    pub samples: u64,
    /// Seed for the latency model.
    pub seed: u64,
    /// Atlas probes with route-server RTTmin at or above this are dropped
    /// (ms). The paper uses 1 ms.
    pub rs_filter_ms: f64,
}

impl CampaignConfig {
    /// §5.2 protocol: 24 samples (every 2 h for 2 days).
    pub fn study(seed: u64) -> Self {
        CampaignConfig {
            samples: 24,
            seed,
            rs_filter_ms: 1.0,
        }
    }

    /// §4.1 control protocol: 144 samples (every 20 min for 2 days).
    pub fn control(seed: u64) -> Self {
        CampaignConfig {
            samples: 144,
            seed,
            rs_filter_ms: 1.0,
        }
    }
}

/// The minimum-RTT observation for one (VP, interface) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PingObservation {
    /// The vantage point.
    pub vp: VpId,
    /// The IXP whose member LAN the target belongs to.
    pub ixp: IxpId,
    /// Target interface address on the peering LAN.
    pub target: Ipv4Addr,
    /// Minimum RTT over all TTL-accepted samples, ms (as reported by the
    /// VP — integer for rounding LGs).
    pub min_rtt_ms: f64,
    /// Whether the reporting VP rounds RTTs up to integer ms (the
    /// inference must widen the annulus inward for these, §6.1).
    pub vp_rounds_up: bool,
    /// Number of samples that answered and passed the TTL-match filter.
    pub accepted: usize,
    /// Total probes sent.
    pub sent: usize,
}

/// Per-VP campaign statistics (Fig. 9a, Table 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VpStats {
    /// The VP.
    pub vp: VpId,
    /// Its IXP.
    pub ixp: IxpId,
    /// Whether it is an Atlas probe.
    pub atlas: bool,
    /// Interfaces probed.
    pub targets: usize,
    /// Interfaces with at least one accepted reply.
    pub responsive: usize,
    /// Whether the VP was discarded entirely (dead, or failed the
    /// route-server filter).
    pub discarded: bool,
    /// RTTmin to the route server, if measured.
    pub rs_rtt_ms: Option<f64>,
}

/// Full result of a campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// One record per (usable VP, responsive target) with a consistent
    /// TTL series.
    pub observations: Vec<PingObservation>,
    /// Per-VP statistics including discarded VPs.
    pub vp_stats: Vec<VpStats>,
}

impl CampaignResult {
    /// Appends another campaign partial **in shard order**.
    ///
    /// [`run_campaign`] is the in-order concatenation of independent
    /// per-VP units (see [`probe_vp`]), so absorbing per-chunk partials
    /// built over consecutive VP ranges reproduces the sequential
    /// campaign byte for byte. Callers must absorb partials in ascending
    /// range order — the order, not the thread schedule, decides the
    /// result.
    pub fn absorb(&mut self, other: CampaignResult) {
        self.observations.extend(other.observations);
        self.vp_stats.extend(other.vp_stats);
    }

    /// Observations for one IXP.
    pub fn for_ixp(&self, ixp: IxpId) -> impl Iterator<Item = &PingObservation> {
        self.observations.iter().filter(move |o| o.ixp == ixp)
    }

    /// The best (lowest) RTTmin per target address across VPs of its IXP,
    /// preferring non-rounding VPs on ties. This is what Step 3 consumes.
    pub fn best_per_target(&self) -> Vec<&PingObservation> {
        use std::collections::HashMap;
        let mut best: HashMap<Ipv4Addr, &PingObservation> = HashMap::new();
        for o in &self.observations {
            best.entry(o.target)
                .and_modify(|cur| {
                    let better = o.min_rtt_ms < cur.min_rtt_ms
                        || (o.min_rtt_ms == cur.min_rtt_ms && !o.vp_rounds_up && cur.vp_rounds_up);
                    if better {
                        *cur = o;
                    }
                })
                .or_insert(o);
        }
        let mut v: Vec<&PingObservation> = best.into_values().collect();
        v.sort_by_key(|o| o.target);
        v
    }
}

/// Probes everything one VP measures: the route-server hygiene check,
/// then every active member interface of the VP's IXP.
///
/// This is the campaign's unit of parallelism — **pure** per VP. It
/// reads only the immutable world through the stateless [`PingEngine`]
/// (every RTT/TTL draw is keyed by `(vp, interface, sample)`, so the
/// per-VP RNG sub-stream is independent of which thread, shard, or call
/// order produced it) and returns this VP's observations and stats
/// without touching shared state.
pub fn probe_vp(
    engine: &PingEngine<'_>,
    world: &World,
    vp: &VantagePoint,
    cfg: CampaignConfig,
) -> (Vec<PingObservation>, VpStats) {
    // Route-server hygiene for Atlas probes.
    let mut rs_min: Option<f64> = None;
    for i in 0..cfg.samples {
        if let Some(r) = engine.ping_route_server(vp, i) {
            rs_min = Some(rs_min.map_or(r.rtt_ms, |m: f64| m.min(r.rtt_ms)));
        }
    }
    let discarded_rs = vp.is_atlas() && rs_min.is_none_or(|m| m >= cfg.rs_filter_ms);
    let mut stats = VpStats {
        vp: vp.id,
        ixp: vp.ixp,
        atlas: vp.is_atlas(),
        targets: 0,
        responsive: 0,
        discarded: discarded_rs,
        rs_rtt_ms: rs_min,
    };
    let mut observations = Vec::new();
    if discarded_rs {
        return (observations, stats);
    }

    let month = world.observation_month;
    for &mid in world.memberships_of_ixp(vp.ixp) {
        let m = &world.memberships[mid.index()];
        if !m.active_at(month) {
            continue;
        }
        let target = world.interfaces[m.iface.index()].addr;
        stats.targets += 1;
        let mut filter = TtlFilter::new(vp.ttl_max_hops());
        let mut min_rtt = f64::INFINITY;
        let mut sent = 0usize;
        for i in 0..cfg.samples {
            sent += 1;
            if let Some(reply) = engine.ping(vp, target, i) {
                if filter.accept(reply.ttl) {
                    min_rtt = min_rtt.min(reply.rtt_ms);
                }
            }
        }
        // TTL-switch rule: a series answered by different devices is
        // discarded wholesale.
        if filter.accepted() > 0 && filter.is_consistent() {
            stats.responsive += 1;
            observations.push(PingObservation {
                vp: vp.id,
                ixp: vp.ixp,
                target,
                min_rtt_ms: min_rtt,
                vp_rounds_up: vp.rounds_up(),
                accepted: filter.accepted(),
                sent,
            });
        }
    }
    (observations, stats)
}

/// Runs a campaign from the given VPs against the member interfaces of
/// their own IXPs.
///
/// The result is the in-order concatenation of [`probe_vp`] outputs, so
/// any consecutive partition of `vps` — `run_campaign(&vps[a..b])` per
/// chunk, merged with [`CampaignResult::absorb`] in range order —
/// reproduces this exact byte sequence. The parallel assembly in
/// `opeer-core` relies on that contract.
pub fn run_campaign(world: &World, vps: &[VantagePoint], cfg: CampaignConfig) -> CampaignResult {
    let engine = PingEngine::new(world, LatencyModel::new(cfg.seed));
    let mut result = CampaignResult::default();
    for vp in vps {
        let (observations, stats) = probe_vp(&engine, world, vp, cfg);
        result.observations.extend(observations);
        result.vp_stats.push(stats);
    }
    result
}

/// Runs the campaign in at most `epochs` consecutive vantage-point
/// batches — the epoch emitter of the streaming ingestion path. Each
/// batch is `run_campaign` over one VP slice, so absorbing the batches
/// **in order** with [`CampaignResult::absorb`] reproduces
/// `run_campaign(world, vps, cfg)` byte for byte; feeding them to the
/// incremental pipeline one epoch at a time is therefore equivalent to
/// the one-shot campaign.
pub fn campaign_batches(
    world: &World,
    vps: &[VantagePoint],
    cfg: CampaignConfig,
    epochs: usize,
) -> Vec<CampaignResult> {
    crate::batch_ranges(vps.len(), epochs)
        .into_iter()
        .map(|r| run_campaign(world, &vps[r], cfg))
        .collect()
}

/// Runs the §4.1 control-subset campaign: operator-internal VPs at every
/// control-validation IXP.
pub fn run_control_campaign(world: &World, cfg: CampaignConfig) -> CampaignResult {
    let control: Vec<IxpId> = world
        .ixps
        .iter()
        .enumerate()
        .filter(|(_, x)| x.validation == opeer_topology::ValidationRole::Control)
        .map(|(i, _)| IxpId::from_index(i))
        .collect();
    let vps: Vec<VantagePoint> = control
        .iter()
        .enumerate()
        .map(|(k, &ixp)| operator_vp(world, ixp, 1_000_000 + k as u32))
        .collect();
    run_campaign(world, &vps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::discover_vps;
    use opeer_topology::{AccessTruth, WorldConfig};

    fn world() -> World {
        WorldConfig::small(19).generate()
    }

    #[test]
    fn study_campaign_produces_observations() {
        let w = world();
        let vps = discover_vps(&w, 2);
        let res = run_campaign(&w, &vps, CampaignConfig::study(2));
        assert!(!res.observations.is_empty());
        for o in &res.observations {
            assert!(o.min_rtt_ms.is_finite());
            assert!(o.min_rtt_ms > 0.0);
            assert!(o.accepted <= o.sent);
        }
    }

    #[test]
    fn lg_response_rate_exceeds_atlas() {
        let w = world();
        let vps = discover_vps(&w, 2);
        let res = run_campaign(&w, &vps, CampaignConfig::study(2));
        let rate = |atlas: bool| -> Option<f64> {
            let (mut t, mut r) = (0usize, 0usize);
            for s in res
                .vp_stats
                .iter()
                .filter(|s| s.atlas == atlas && !s.discarded)
            {
                t += s.targets;
                r += s.responsive;
            }
            (t > 0).then(|| r as f64 / t as f64)
        };
        let lg = rate(false).expect("LG stats");
        assert!(lg > 0.85, "LG response rate {lg}");
        if let Some(atlas) = rate(true) {
            assert!(
                atlas < lg,
                "Atlas {atlas} should respond less than LGs {lg}"
            );
        }
    }

    #[test]
    fn mgmt_lan_probes_get_discarded() {
        let w = world();
        let vps = discover_vps(&w, 2);
        let res = run_campaign(&w, &vps, CampaignConfig::study(2));
        let mgmt: Vec<_> = vps
            .iter()
            .filter(|v| {
                matches!(
                    v.kind,
                    crate::vp::VpKind::Atlas {
                        host: crate::vp::AtlasHost::MgmtLan(_),
                        dead: false
                    }
                )
            })
            .collect();
        for vp in mgmt {
            let s = res
                .vp_stats
                .iter()
                .find(|s| s.vp == vp.id)
                .expect("stats recorded");
            assert!(s.discarded, "{} should fail the RS filter", vp.name);
        }
    }

    #[test]
    fn control_campaign_covers_control_ixps_only() {
        let w = world();
        let res = run_control_campaign(&w, CampaignConfig::control(2));
        assert!(!res.observations.is_empty());
        for o in &res.observations {
            assert_eq!(
                w.ixps[o.ixp.index()].validation,
                opeer_topology::ValidationRole::Control
            );
        }
    }

    #[test]
    fn control_rtts_separate_local_from_far_remote() {
        // Fig. 1b's shape: locals cluster < 1 ms, far remotes ≫ 10 ms.
        let w = world();
        let res = run_control_campaign(&w, CampaignConfig::control(2));
        let mut local_under_1ms = 0usize;
        let mut locals = 0usize;
        for o in &res.observations {
            let ifc = w.iface_by_addr(o.target).expect("campaign target exists");
            let mid = w.membership_of_iface(ifc).expect("LAN iface");
            let m = &w.memberships[mid.index()];
            if let AccessTruth::Local { .. } = m.truth {
                locals += 1;
                if o.min_rtt_ms < 1.0 {
                    local_under_1ms += 1;
                }
            }
        }
        assert!(locals > 10, "too few locals observed: {locals}");
        let frac = local_under_1ms as f64 / locals as f64;
        // Wide-area control IXPs may hold a few distant locals; the bulk
        // must still be sub-millisecond.
        assert!(frac > 0.75, "only {frac} of locals under 1 ms");
    }

    #[test]
    fn best_per_target_prefers_lower() {
        let w = world();
        let vps = discover_vps(&w, 2);
        let res = run_campaign(&w, &vps, CampaignConfig::study(2));
        let best = res.best_per_target();
        let mut seen = std::collections::HashSet::new();
        for o in &best {
            assert!(seen.insert(o.target), "duplicate target in best_per_target");
        }
        // Every observation's target is covered.
        let all: std::collections::HashSet<_> = res.observations.iter().map(|o| o.target).collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn epoch_batches_absorb_to_one_shot_campaign() {
        let w = world();
        let vps = discover_vps(&w, 2);
        let cfg = CampaignConfig::study(2);
        let sequential = run_campaign(&w, &vps, cfg);
        for epochs in [1, 2, 3, vps.len(), vps.len() + 5] {
            let batches = campaign_batches(&w, &vps, cfg, epochs);
            assert!(batches.len() <= epochs.max(1));
            let mut merged = CampaignResult::default();
            for b in batches {
                merged.absorb(b);
            }
            assert_eq!(merged, sequential, "{epochs} epochs diverged");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let w = world();
        let vps = discover_vps(&w, 2);
        let a = run_campaign(&w, &vps, CampaignConfig::study(5));
        let b = run_campaign(&w, &vps, CampaignConfig::study(5));
        assert_eq!(a.observations.len(), b.observations.len());
        for (x, y) in a.observations.iter().zip(&b.observations) {
            assert_eq!(x.min_rtt_ms, y.min_rtt_ms);
        }
    }
}
