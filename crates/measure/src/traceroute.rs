//! The traceroute engine and the public-corpus builder.
//!
//! Traceroutes run over [`opeer_topology::RoutingOracle`] paths; each hop
//! answers with its ingress interface (IXP-LAN addresses surface exactly
//! where `opeer-traix` expects them), per-hop RTTs accumulate link delays
//! from the latency model, and a small per-hop loss produces the `*`
//! entries every real traceroute has.
//!
//! [`build_corpus`] stands in for the paper's 3.15 billion public Atlas
//! traceroutes (§3.1): a deterministic sample of member-to-member paths
//! plus background noise, scaled by configuration instead of by the
//! archive's bulk — the downstream heuristics only consume path
//! *structure*, so corpus size is a fidelity knob, not a semantic one.

use crate::latency::LatencyModel;
use opeer_topology::routing::stable_hash;
use opeer_topology::{AsId, RouteTable, RoutingOracle, World};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One responding hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Responding address.
    pub addr: Ipv4Addr,
    /// RTT from the source to this hop, ms.
    pub rtt_ms: f64,
}

/// A traceroute: source address, destination, and per-TTL results
/// (`None` = no answer at that TTL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traceroute {
    /// Source address (the probing host).
    pub src: Ipv4Addr,
    /// Probed destination address.
    pub dst: Ipv4Addr,
    /// Hop results in TTL order.
    pub hops: Vec<Option<TraceSample>>,
}

impl Traceroute {
    /// Responding hops only, in order.
    pub fn responding(&self) -> impl Iterator<Item = &TraceSample> {
        self.hops.iter().flatten()
    }

    /// Whether the destination answered (last responding hop == dst).
    pub fn reached(&self) -> bool {
        self.responding().last().map(|h| h.addr) == Some(self.dst)
    }
}

/// Traceroute engine bound to a world.
pub struct TracerouteEngine<'w> {
    world: &'w World,
    oracle: RoutingOracle<'w>,
    model: LatencyModel,
}

impl<'w> TracerouteEngine<'w> {
    /// Creates the engine with its own routing oracle.
    pub fn new(world: &'w World, model: LatencyModel) -> Self {
        TracerouteEngine {
            world,
            oracle: RoutingOracle::new(world),
            model,
        }
    }

    /// The underlying oracle (for dst-major batching).
    pub fn oracle(&self) -> &RoutingOracle<'w> {
        &self.oracle
    }

    /// Runs a traceroute using a pre-computed destination route table.
    pub fn trace(&self, table: &RouteTable, src: AsId, dst_addr: Ipv4Addr) -> Option<Traceroute> {
        let hops = self.oracle.trace_hops(table, src, dst_addr)?;
        let src_addr = hops.first()?.addr;
        let mut out = Vec::with_capacity(hops.len());
        let mut cum_ms = 0.0f64;
        let mut prev_loc = hops.first()?.location;
        for (ttl, h) in hops.iter().enumerate() {
            if ttl > 0 {
                let key = [
                    stable_hash(&[u64::from(u32::from(h.addr)), u64::from(u32::from(src_addr))]),
                    0x7A,
                ];
                // Links that ride an interconnect physically detour via
                // its facility: a Warsaw member remote-peering in
                // Amsterdam is two Warsaw–Amsterdam legs away from a
                // Warsaw neighbor, not three kilometres.
                let via: Option<opeer_geo::GeoPoint> = match h.entered_via {
                    Some(opeer_topology::routing::EdgeKind::Ixp(i)) => Some(
                        self.world
                            .facility_point(self.world.ixps[i.index()].anchor_facility),
                    ),
                    Some(opeer_topology::routing::EdgeKind::Private(l)) => Some(
                        self.world
                            .facility_point(self.world.private_links[l].facility),
                    ),
                    _ => None,
                };
                cum_ms += match via {
                    Some(mid) => {
                        self.model.base_rtt_ms(prev_loc, mid, &key)
                            + self.model.base_rtt_ms(mid, h.location, &[key[0], 0x7B])
                    }
                    None => self.model.base_rtt_ms(prev_loc, h.location, &key),
                };
                prev_loc = h.location;
            }
            // Per-hop response: ICMP time-exceeded is rate-limited and
            // sometimes filtered.
            let lost = stable_hash(&[
                self.model.seed,
                u64::from(u32::from(h.addr)),
                u64::from(u32::from(dst_addr)),
                ttl as u64,
            ]) % 100
                < 3
                && h.addr != dst_addr;
            if lost {
                out.push(None);
            } else {
                let jitter = self
                    .model
                    .sample_rtt_ms(cum_ms, &[u64::from(u32::from(h.addr))], ttl as u64)
                    .unwrap_or(cum_ms);
                out.push(Some(TraceSample {
                    addr: h.addr,
                    rtt_ms: jitter,
                }));
            }
        }
        Some(Traceroute {
            src: src_addr,
            dst: dst_addr,
            hops: out,
        })
    }

    /// Runs a traceroute, resolving the destination AS itself (one-off
    /// convenience; corpus building batches by destination instead).
    pub fn trace_fresh(&self, src: AsId, dst_addr: Ipv4Addr) -> Option<Traceroute> {
        let dst_as = match self.world.iface_by_addr(dst_addr) {
            Some(ifc) => {
                let r = self.world.interfaces[ifc.index()].router;
                self.world.routers[r.index()].owner
            }
            None => self.world.origin_of_addr(dst_addr)?,
        };
        let table = self.oracle.routes_to(dst_as);
        self.trace(&table, src, dst_addr)
    }
}

/// Corpus configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Seed for source selection and loss.
    pub seed: u64,
    /// Probability that each active membership gets dedicated coverage
    /// (a traceroute from a co-member towards the member's network).
    pub per_membership_prob: f64,
    /// Sources tried per covered membership.
    pub sources_per_membership: usize,
    /// Extra fully random member-to-member traceroutes.
    pub n_random: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xACE,
            per_membership_prob: 0.9,
            sources_per_membership: 2,
            n_random: 2000,
        }
    }
}

/// A probe target deep inside an AS's first prefix: a high host index
/// never allocated to infrastructure interfaces, standing in for the
/// end hosts real traceroute campaigns target. Probing the border
/// router's own address would legitimately *hide* the peering-LAN hop
/// (the destination reply replaces the ingress time-exceeded), which is
/// exactly what must not happen to the crossing-detection corpus.
pub fn deep_host(world: &World, asid: AsId, salt: u64) -> Ipv4Addr {
    let prefix = world.ases[asid.index()]
        .prefixes
        .first()
        .expect("every AS originates a prefix");
    let span = prefix.num_addresses();
    let idx = span / 2 + (stable_hash(&[salt, u64::from(asid.0)]) % (span / 4).max(1));
    prefix.addr_at(idx).expect("index below span")
}

/// The deterministic probe schedule behind [`build_corpus`]: every
/// planned `(source AS, destination address)` pair, grouped by
/// destination AS so one route table serves all traceroutes towards it.
///
/// Destinations are sorted, which makes a contiguous destination range
/// an independent unit of work: [`CorpusPlan::trace_shard`] over
/// consecutive ranges, concatenated in range order, is byte-identical
/// to tracing the whole plan sequentially.
#[derive(Debug, Clone)]
pub struct CorpusPlan {
    /// Destination ASes in ascending order (the shard axis).
    dsts: Vec<AsId>,
    /// Per-destination `(source, target address)` pairs, in planning
    /// order.
    plans: std::collections::HashMap<AsId, Vec<(AsId, Ipv4Addr)>>,
}

impl CorpusPlan {
    /// Number of destination ASes (the shardable length).
    pub fn len(&self) -> usize {
        self.dsts.len()
    }

    /// Whether the plan schedules no traceroutes at all.
    pub fn is_empty(&self) -> bool {
        self.dsts.is_empty()
    }

    /// Total `(source, destination)` pairs scheduled.
    pub fn num_pairs(&self) -> usize {
        self.plans.values().map(Vec::len).sum()
    }

    /// Traces the destinations in `range` (indices into the sorted
    /// destination list) with a fresh engine.
    ///
    /// Pure per shard: the engine holds only immutable derived indexes,
    /// and the latency model keys every draw by `(hop, target, ttl)`,
    /// so a shard's output is independent of what other shards (or a
    /// previous whole-plan pass) computed. Parallel callers should
    /// prefer [`CorpusPlan::trace_shard_on`] with one shared engine —
    /// it skips the per-shard index build.
    pub fn trace_shard(
        &self,
        world: &World,
        cfg: &CorpusConfig,
        range: std::ops::Range<usize>,
    ) -> Vec<Traceroute> {
        let engine = TracerouteEngine::new(world, LatencyModel::new(cfg.seed));
        self.trace_shard_on(&engine, range)
    }

    /// Traces the destinations in `range` on an existing engine. The
    /// engine is `Sync` (its routing oracle precomputes all indexes and
    /// holds no interior mutability), so worker threads share one
    /// instance; the engine must have been built with the plan's
    /// corpus seed for the output to match [`build_corpus`].
    pub fn trace_shard_on(
        &self,
        engine: &TracerouteEngine<'_>,
        range: std::ops::Range<usize>,
    ) -> Vec<Traceroute> {
        let mut out = Vec::new();
        for &dst in &self.dsts[range] {
            let table = engine.oracle().routes_to(dst);
            for (src, dst_addr) in &self.plans[&dst] {
                if let Some(tr) = engine.trace(&table, *src, *dst_addr) {
                    out.push(tr);
                }
            }
        }
        out
    }
}

/// Plans the public corpus: for (most) memberships, paths from
/// co-members of the same IXP towards the member's originated space —
/// these are the paths that cross IXP LANs — plus random background
/// traffic that also exercises transit and private links.
///
/// Planning is cheap (hashing over memberships); the expensive part —
/// route tables and hop-by-hop tracing — happens in
/// [`CorpusPlan::trace_shard`].
pub fn plan_corpus(world: &World, cfg: &CorpusConfig) -> CorpusPlan {
    let month = world.observation_month;

    // Plan (src, dst_as, dst_addr) grouped by dst_as for table reuse.
    use std::collections::HashMap;
    let mut plans: HashMap<AsId, Vec<(AsId, Ipv4Addr)>> = HashMap::new();

    for (mi, m) in world.memberships.iter().enumerate() {
        if !m.active_at(month) {
            continue;
        }
        let h = stable_hash(&[cfg.seed, mi as u64, 1]);
        if (h % 1000) as f64 >= cfg.per_membership_prob * 1000.0 {
            continue;
        }
        let peers = world.memberships_of_ixp(m.ixp);
        if peers.len() < 2 {
            continue;
        }
        let dst_addr = deep_host(world, m.member, cfg.seed);
        for k in 0..cfg.sources_per_membership {
            let pick =
                peers[(stable_hash(&[cfg.seed, mi as u64, 2, k as u64]) as usize) % peers.len()];
            let other = world.memberships[pick.index()].member;
            if other == m.member || !world.memberships[pick.index()].active_at(month) {
                continue;
            }
            if k % 2 == 0 {
                // Inbound: a co-member probes towards the covered member —
                // its LAN interface shows up as an IXP crossing.
                plans.entry(m.member).or_default().push((other, dst_addr));
            } else {
                // Outbound: the member probes a co-member — the member's
                // border interface precedes the IXP address, the raw
                // material of step 4's `{IPx, IPixp}` pairs.
                let other_addr = deep_host(world, other, cfg.seed);
                plans.entry(other).or_default().push((m.member, other_addr));
            }
        }
    }

    // Random background pairs.
    let actives: Vec<usize> = world
        .memberships
        .iter()
        .enumerate()
        .filter(|(_, m)| m.active_at(month))
        .map(|(i, _)| i)
        .collect();
    if actives.len() >= 2 {
        for k in 0..cfg.n_random {
            let a = actives[(stable_hash(&[cfg.seed, k as u64, 3]) as usize) % actives.len()];
            let b = actives[(stable_hash(&[cfg.seed, k as u64, 4]) as usize) % actives.len()];
            let (src, dst) = (world.memberships[a].member, world.memberships[b].member);
            if src == dst {
                continue;
            }
            let dst_addr = deep_host(world, dst, cfg.seed);
            plans.entry(dst).or_default().push((src, dst_addr));
        }
    }

    let mut dsts: Vec<AsId> = plans.keys().copied().collect();
    dsts.sort();
    CorpusPlan { dsts, plans }
}

/// Builds the public traceroute corpus: [`plan_corpus`] followed by a
/// full sequential trace of the plan (one engine, destinations in
/// sorted order). `CorpusPlan::trace_shard` over a partition of the
/// destination range produces the same corpus — that is the parallel
/// assembly path.
pub fn build_corpus(world: &World, cfg: CorpusConfig) -> Vec<Traceroute> {
    let plan = plan_corpus(world, &cfg);
    let engine = TracerouteEngine::new(world, LatencyModel::new(cfg.seed));
    plan.trace_shard_on(&engine, 0..plan.len())
}

/// Builds the corpus in at most `epochs` consecutive destination-range
/// batches on one shared engine — the epoch emitter of the streaming
/// ingestion path. Concatenating the batches **in order** reproduces
/// [`build_corpus`] byte for byte (the same contract
/// [`CorpusPlan::trace_shard_on`] gives the parallel assembly), so
/// feeding them to the incremental pipeline one epoch at a time is
/// equivalent to the one-shot corpus.
pub fn corpus_batches(world: &World, cfg: CorpusConfig, epochs: usize) -> Vec<Vec<Traceroute>> {
    let plan = plan_corpus(world, &cfg);
    let engine = TracerouteEngine::new(world, LatencyModel::new(cfg.seed));
    crate::batch_ranges(plan.len(), epochs)
        .into_iter()
        .map(|r| plan.trace_shard_on(&engine, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    fn world() -> World {
        WorldConfig::small(23).generate()
    }

    #[test]
    fn trace_reaches_destination() {
        let w = world();
        let engine = TracerouteEngine::new(&w, LatencyModel::new(1));
        let m = &w.memberships[0];
        let src = w.memberships[5].member;
        let dst_addr = w.interfaces[m.iface.index()].addr;
        if let Some(tr) = engine.trace_fresh(src, dst_addr) {
            assert!(tr.reached(), "hops: {:?}", tr.hops);
            // RTTs are monotone along responding hops (cumulative path).
            let rtts: Vec<f64> = tr.responding().map(|h| h.rtt_ms).collect();
            for w2 in rtts.windows(2) {
                assert!(w2[1] + 45.0 >= w2[0], "wildly non-monotone RTTs: {rtts:?}");
            }
        }
    }

    #[test]
    fn corpus_crosses_ixp_lans() {
        let w = world();
        let corpus = build_corpus(
            &w,
            CorpusConfig {
                n_random: 100,
                ..Default::default()
            },
        );
        assert!(!corpus.is_empty());
        let mut lan_hops = 0usize;
        for tr in &corpus {
            for h in tr.responding() {
                if w.ixp_of_lan_addr(h.addr).is_some() {
                    lan_hops += 1;
                }
            }
        }
        assert!(lan_hops > 20, "corpus crossed only {lan_hops} LAN hops");
    }

    #[test]
    fn corpus_has_missing_hops() {
        let w = world();
        let corpus = build_corpus(&w, CorpusConfig::default());
        let stars: usize = corpus
            .iter()
            .map(|t| t.hops.iter().filter(|h| h.is_none()).count())
            .sum();
        let total: usize = corpus.iter().map(|t| t.hops.len()).sum();
        let rate = stars as f64 / total.max(1) as f64;
        assert!(rate > 0.0 && rate < 0.10, "star rate {rate}");
    }

    #[test]
    fn epoch_batches_concatenate_to_one_shot_corpus() {
        let w = world();
        let cfg = CorpusConfig {
            n_random: 150,
            ..CorpusConfig::default()
        };
        let sequential = build_corpus(&w, cfg);
        for epochs in [1, 2, 5] {
            let batches = corpus_batches(&w, cfg, epochs);
            assert!(batches.len() <= epochs);
            let merged: Vec<Traceroute> = batches.into_iter().flatten().collect();
            assert_eq!(merged, sequential, "{epochs} epochs diverged");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let w = world();
        let a = build_corpus(&w, CorpusConfig::default());
        let b = build_corpus(&w, CorpusConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dst, y.dst);
            assert_eq!(x.hops.len(), y.hops.len());
        }
    }
}
