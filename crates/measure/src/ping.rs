//! The ping engine.
//!
//! A ping from a vantage point to a target address yields a sampled RTT
//! and a reply TTL. The TTL encodes where the reply really came from:
//! replies off the expected subnet arrive decremented and are discarded
//! by the TTL-match filter upstream (§4.1). Looking glasses that round
//! RTTs up to whole milliseconds do so here, before the campaign layer
//! ever sees the value (§6.1).

use crate::latency::LatencyModel;
use crate::vp::{VantagePoint, VpKind};
use opeer_topology::routing::stable_hash;
use opeer_topology::World;
use std::net::Ipv4Addr;

/// One ping reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingReply {
    /// Round-trip time in milliseconds, as reported by the VP (i.e.
    /// already rounded if the VP rounds).
    pub rtt_ms: f64,
    /// IP TTL of the reply packet as seen at the VP.
    pub ttl: u8,
}

/// Ping engine bound to a world and a latency model.
pub struct PingEngine<'w> {
    world: &'w World,
    model: LatencyModel,
}

impl<'w> PingEngine<'w> {
    /// Creates the engine.
    pub fn new(world: &'w World, model: LatencyModel) -> Self {
        PingEngine { world, model }
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Sends one ping from `vp` to `target`, returning `None` on timeout.
    ///
    /// `sample_idx` distinguishes repeated probes of the same pair (the
    /// campaign layer sweeps it over the measurement schedule).
    pub fn ping(&self, vp: &VantagePoint, target: Ipv4Addr, sample_idx: u64) -> Option<PingReply> {
        // Dead probes never hear anything.
        if let VpKind::Atlas { dead: true, .. } = vp.kind {
            return None;
        }
        let iface_id = self.world.iface_by_addr(target)?;
        let iface = &self.world.interfaces[iface_id.index()];
        if !iface.responds_to_ping {
            return None;
        }
        let router = iface.router;
        let target_loc = self.world.router_point(router);
        let pair_key = [(u64::from(vp.id.0) << 32) | u64::from(iface_id.0), 0x50];
        // Atlas probes fail more often end-to-end (filtered ICMP towards
        // off-LAN sources, §6.1's 75% response rate).
        if vp.is_atlas() {
            let h = stable_hash(&[self.model.seed, pair_key[0], 21]);
            if h % 100 < 20 {
                return None;
            }
        }
        let base = self.model.base_rtt_ms(vp.location, target_loc, &pair_key);
        let rtt = self.model.sample_rtt_ms(base, &pair_key, sample_idx)?;

        // Reply TTL: the target stack's initial TTL minus the forwarding
        // hops back to the VP. LGs sit on the LAN (0 hops), Atlas probes
        // one hop off it. A small fraction of replies come from off-subnet
        // middleboxes and arrive several hops down — the TTL-match filter
        // exists to kill exactly these.
        let initial: u16 = if stable_hash(&[self.model.seed, u64::from(router.0), 31]) % 100 < 70 {
            255
        } else {
            64
        };
        let base_hops = match vp.kind {
            VpKind::LookingGlass { .. } | VpKind::OperatorInternal => 0u16,
            VpKind::Atlas { .. } => 1,
        };
        let off_subnet = stable_hash(&[self.model.seed, pair_key[0], sample_idx, 32]) % 100 < 2;
        let extra = if off_subnet {
            1 + (stable_hash(&[self.model.seed, pair_key[0], sample_idx, 33]) % 3) as u16
        } else {
            0
        };
        let ttl = initial.saturating_sub(base_hops + extra).max(1) as u8;

        let rtt = if vp.rounds_up() {
            rtt.ceil().max(1.0)
        } else {
            rtt
        };
        Some(PingReply { rtt_ms: rtt, ttl })
    }

    /// Pings the IXP's route server from `vp` (used by the §6.1 probe
    /// filter: Atlas probes with ≥ 1 ms to the route server are dropped).
    pub fn ping_route_server(&self, vp: &VantagePoint, sample_idx: u64) -> Option<PingReply> {
        let rs = self.world.ixps[vp.ixp.index()].route_server_ip;
        self.ping(vp, rs, sample_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::{discover_vps, operator_vp};
    use opeer_topology::{IxpId, WorldConfig};

    fn setup() -> (World, Vec<VantagePoint>) {
        let w = WorldConfig::small(17).generate();
        let vps = discover_vps(&w, 3);
        (w, vps)
    }

    #[test]
    fn lg_ping_to_local_member_is_sub_ms_often() {
        let (w, vps) = setup();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        // Find an LG and a local member of its IXP at the anchor facility.
        let mut checked = 0;
        for vp in vps
            .iter()
            .filter(|v| matches!(v.kind, VpKind::LookingGlass { rounds_up: false }))
        {
            for &mid in w.memberships_of_ixp(vp.ixp) {
                let m = &w.memberships[mid.index()];
                let anchor = w.ixps[vp.ixp.index()].anchor_facility;
                if m.truth != (opeer_topology::AccessTruth::Local { facility: anchor }) {
                    continue;
                }
                let addr = w.interfaces[m.iface.index()].addr;
                let mut min = f64::INFINITY;
                for i in 0..24 {
                    if let Some(r) = engine.ping(vp, addr, i) {
                        min = min.min(r.rtt_ms);
                    }
                }
                if min.is_finite() {
                    assert!(min < 1.5, "local same-facility member at {min} ms");
                    checked += 1;
                }
                if checked > 10 {
                    return;
                }
            }
        }
        assert!(checked > 0, "no local member pinged");
    }

    #[test]
    fn rounding_lg_reports_integers() {
        let (w, vps) = setup();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        let vp = vps
            .iter()
            .find(|v| matches!(v.kind, VpKind::LookingGlass { rounds_up: true }))
            .expect("a rounding LG exists (AMS-IX)");
        let mut got = 0;
        for &mid in w.memberships_of_ixp(vp.ixp) {
            let m = &w.memberships[mid.index()];
            let addr = w.interfaces[m.iface.index()].addr;
            if let Some(r) = engine.ping(vp, addr, 0) {
                assert_eq!(r.rtt_ms.fract(), 0.0, "rounded LG must report integers");
                assert!(r.rtt_ms >= 1.0);
                got += 1;
            }
            if got > 20 {
                break;
            }
        }
        assert!(got > 0);
    }

    #[test]
    fn unknown_target_times_out() {
        let (w, vps) = setup();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        let vp = &vps[0];
        assert!(engine
            .ping(vp, "203.0.113.199".parse().unwrap(), 0)
            .is_none());
    }

    #[test]
    fn dead_probe_never_answers() {
        let (w, vps) = setup();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        if let Some(vp) = vps
            .iter()
            .find(|v| matches!(v.kind, VpKind::Atlas { dead: true, .. }))
        {
            for &mid in w.memberships_of_ixp(vp.ixp).iter().take(10) {
                let m = &w.memberships[mid.index()];
                let addr = w.interfaces[m.iface.index()].addr;
                assert!(engine.ping(vp, addr, 0).is_none());
            }
        }
    }

    #[test]
    fn reply_ttls_match_vp_kind() {
        let (w, vps) = setup();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        for vp in vps.iter().take(20) {
            for &mid in w.memberships_of_ixp(vp.ixp).iter().take(20) {
                let m = &w.memberships[mid.index()];
                let addr = w.interfaces[m.iface.index()].addr;
                if let Some(r) = engine.ping(vp, addr, 7) {
                    let hops = opeer_net::ttl::hops_from_ttl(r.ttl).expect("valid ttl");
                    // Allow the off-subnet artifact (up to 3 extra hops).
                    assert!(
                        hops <= vp.ttl_max_hops() + 3,
                        "{hops} hops from {}",
                        vp.name
                    );
                }
            }
        }
    }

    #[test]
    fn mgmt_lan_probe_is_inflated_to_route_server() {
        let (w, vps) = setup();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        let mgmt = vps.iter().find(|v| {
            matches!(
                v.kind,
                VpKind::Atlas {
                    host: crate::vp::AtlasHost::MgmtLan(_),
                    dead: false
                }
            )
        });
        if let Some(vp) = mgmt {
            let mut min = f64::INFINITY;
            for i in 0..24 {
                if let Some(r) = engine.ping_route_server(vp, i) {
                    min = min.min(r.rtt_ms);
                }
            }
            if min.is_finite() {
                assert!(min >= 1.0, "mgmt-LAN probe should look far: {min} ms");
            }
        }
    }

    #[test]
    fn operator_vp_pings_control_ixp() {
        let w = WorldConfig::small(17).generate();
        let engine = PingEngine::new(&w, LatencyModel::new(3));
        let control = w
            .ixps
            .iter()
            .position(|x| x.validation == opeer_topology::ValidationRole::Control)
            .expect("control IXPs exist");
        let vp = operator_vp(&w, IxpId::from_index(control), 5000);
        let mut got = 0;
        for &mid in w
            .memberships_of_ixp(IxpId::from_index(control))
            .iter()
            .take(30)
        {
            let m = &w.memberships[mid.index()];
            let addr = w.interfaces[m.iface.index()].addr;
            if engine.ping(&vp, addr, 0).is_some() {
                got += 1;
            }
        }
        assert!(got > 0, "operator VP got no replies");
    }
}
