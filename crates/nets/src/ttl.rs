//! Reply-TTL heuristics: the *TTL match* and *TTL switch* filters.
//!
//! Castro et al. (CoNEXT 2014) and Nomikos et al. (IMC 2018, §4.1/§5.2)
//! filter ping replies whose IP TTL is inconsistent with a reply generated
//! *inside* the IXP subnet: a remote middlebox or an off-LAN responder
//! produces a reply whose TTL has been decremented by intermediate hops.
//!
//! * **TTL match** — keep a reply only if its TTL equals the expected
//!   initial TTL (64 or 255) minus an allowed number of forwarding hops
//!   (0 for looking glasses attached to the peering LAN, 1 for RIPE Atlas
//!   probes hosted one hop off the LAN, per §6.1).
//! * **TTL switch** — discard a measurement series if the replies switch
//!   between different inferred initial TTLs, which indicates that
//!   different devices answered over time.

use serde::{Deserialize, Serialize};

/// Canonical initial TTL values used by common network stacks.
///
/// 64 (Linux/BSD routers), 128 (Windows hosts — rare for router control
/// planes but classified for completeness), 255 (Cisco/Juniper control
/// planes and most ICMP echo implementations on routers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitialTtl {
    /// Initial TTL 64.
    T64,
    /// Initial TTL 128.
    T128,
    /// Initial TTL 255.
    T255,
}

impl InitialTtl {
    /// Numeric value of the initial TTL.
    pub const fn value(self) -> u8 {
        match self {
            InitialTtl::T64 => 64,
            InitialTtl::T128 => 128,
            InitialTtl::T255 => 255,
        }
    }
}

/// Infers the most likely initial TTL for an observed reply TTL: the
/// smallest canonical value ≥ the observation. Returns `None` for 0
/// (never a valid reply TTL on the wire).
pub fn infer_initial_ttl(observed: u8) -> Option<InitialTtl> {
    match observed {
        0 => None,
        1..=64 => Some(InitialTtl::T64),
        65..=128 => Some(InitialTtl::T128),
        129..=255 => Some(InitialTtl::T255),
    }
}

/// Number of hops a reply has traversed, assuming the inferred initial TTL.
pub fn hops_from_ttl(observed: u8) -> Option<u8> {
    infer_initial_ttl(observed).map(|init| init.value() - observed)
}

/// Stateful filter applying the TTL-match and TTL-switch rules to a series
/// of ping replies for one `(vantage point, target)` pair.
///
/// `max_hops` is the number of forwarding hops tolerated between the
/// vantage point and the target: `0` for an LG on the peering LAN,
/// `1` for an Atlas probe in an IXP facility but outside the LAN
/// (the paper's `TTLmax − 1` rule).
///
/// ```
/// use opeer_net::TtlFilter;
///
/// let mut f = TtlFilter::new(0);
/// assert!(f.accept(255)); // reply straight off the LAN
/// assert!(!f.accept(254)); // one hop too far
/// assert!(f.accept(64));  // different stack, still 0 hops…
/// assert!(!f.is_consistent()); // …but now the series switched initial TTLs
/// ```
#[derive(Debug, Clone)]
pub struct TtlFilter {
    max_hops: u8,
    seen_initials: Vec<InitialTtl>,
    accepted: usize,
    rejected: usize,
}

impl TtlFilter {
    /// Creates a filter tolerating at most `max_hops` forwarding hops.
    pub fn new(max_hops: u8) -> Self {
        TtlFilter {
            max_hops,
            seen_initials: Vec::new(),
            accepted: 0,
            rejected: 0,
        }
    }

    /// Applies the TTL-match rule to one reply TTL. Accepted replies also
    /// record their inferred initial TTL for the switch rule.
    pub fn accept(&mut self, observed_ttl: u8) -> bool {
        let Some(init) = infer_initial_ttl(observed_ttl) else {
            self.rejected += 1;
            return false;
        };
        let hops = init.value() - observed_ttl;
        if hops <= self.max_hops {
            if !self.seen_initials.contains(&init) {
                self.seen_initials.push(init);
            }
            self.accepted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// TTL-switch rule: `true` while all accepted replies in the series
    /// share one inferred initial TTL. A series that is not consistent must
    /// be discarded wholesale (different devices answered over time).
    pub fn is_consistent(&self) -> bool {
        self.seen_initials.len() <= 1
    }

    /// Count of replies that passed the match rule.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Count of replies rejected by the match rule.
    pub fn rejected(&self) -> usize {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_ttl_classification() {
        assert_eq!(infer_initial_ttl(0), None);
        assert_eq!(infer_initial_ttl(1), Some(InitialTtl::T64));
        assert_eq!(infer_initial_ttl(64), Some(InitialTtl::T64));
        assert_eq!(infer_initial_ttl(65), Some(InitialTtl::T128));
        assert_eq!(infer_initial_ttl(128), Some(InitialTtl::T128));
        assert_eq!(infer_initial_ttl(129), Some(InitialTtl::T255));
        assert_eq!(infer_initial_ttl(255), Some(InitialTtl::T255));
    }

    #[test]
    fn hops_computation() {
        assert_eq!(hops_from_ttl(255), Some(0));
        assert_eq!(hops_from_ttl(250), Some(5));
        assert_eq!(hops_from_ttl(64), Some(0));
        assert_eq!(hops_from_ttl(60), Some(4));
        assert_eq!(hops_from_ttl(0), None);
    }

    #[test]
    fn match_rule_lg_zero_hops() {
        let mut f = TtlFilter::new(0);
        assert!(f.accept(255));
        assert!(f.accept(64));
        assert!(!f.accept(254));
        assert!(!f.accept(63));
        assert_eq!(f.accepted(), 2);
        assert_eq!(f.rejected(), 2);
    }

    #[test]
    fn match_rule_atlas_one_hop() {
        let mut f = TtlFilter::new(1);
        assert!(f.accept(255));
        assert!(f.accept(254)); // TTLmax - 1 allowed for Atlas
        assert!(!f.accept(253));
    }

    #[test]
    fn switch_rule_detects_device_change() {
        let mut f = TtlFilter::new(0);
        assert!(f.accept(255));
        assert!(f.is_consistent());
        assert!(f.accept(64)); // different stack answered
        assert!(!f.is_consistent());
    }

    #[test]
    fn zero_ttl_rejected() {
        let mut f = TtlFilter::new(0);
        assert!(!f.accept(0));
        assert!(f.is_consistent());
        assert_eq!(f.accepted(), 0);
    }
}
