//! Autonomous System Numbers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An Autonomous System Number (ASN).
///
/// Wraps a 32-bit ASN (RFC 6793). 16-bit ASNs are the subset `0..=65535`.
///
/// The ordering is numeric, which makes `Asn` usable as a `BTreeMap` key and
/// keeps dataset exports (e.g. the CAIDA-style AS-relationship files emitted
/// by `opeer-bgp`) deterministically sorted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(u32);

impl Asn {
    /// AS 0 is reserved (RFC 7607) and never a valid origin.
    pub const RESERVED_ZERO: Asn = Asn(0);

    /// Creates an ASN from its numeric value.
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// Numeric value of the ASN.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this is a 16-bit (2-byte) ASN.
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// Whether the ASN falls in a range reserved for private use
    /// (RFC 6996: 64512–65534 and 4200000000–4294967294).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// Whether the ASN is reserved and must not appear in routing
    /// (AS 0, AS 23456 "AS_TRANS", 65535, 4294967295, and documentation
    /// ranges 64496–64511 / 65536–65551).
    pub const fn is_reserved(self) -> bool {
        matches!(self.0, 0 | 23456 | 65535 | 4_294_967_295)
            || (self.0 >= 64496 && self.0 <= 64511)
            || (self.0 >= 65536 && self.0 <= 65551)
    }

    /// Whether the ASN is routable in the public Internet: neither private
    /// nor reserved.
    pub const fn is_public(self) -> bool {
        !self.is_private() && !self.is_reserved()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> Self {
        asn.0
    }
}

/// Error returned when parsing an [`Asn`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnParseError(String);

impl fmt::Display for AsnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for AsnParseError {}

impl FromStr for Asn {
    type Err = AsnParseError;

    /// Parses `"65000"`, `"AS65000"` or `"as65000"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| AsnParseError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let asn = Asn::new(64512);
        assert_eq!(asn.to_string(), "AS64512");
        assert_eq!("AS64512".parse::<Asn>().unwrap(), asn);
        assert_eq!("64512".parse::<Asn>().unwrap(), asn);
        assert_eq!("as64512".parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ASX".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("-1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err()); // overflows u32
    }

    #[test]
    fn classification_16bit() {
        assert!(Asn::new(65535).is_16bit());
        assert!(!Asn::new(65536).is_16bit());
    }

    #[test]
    fn classification_private_ranges() {
        assert!(Asn::new(64512).is_private());
        assert!(Asn::new(65534).is_private());
        assert!(!Asn::new(64511).is_private());
        assert!(!Asn::new(65535).is_private());
        assert!(Asn::new(4_200_000_000).is_private());
        assert!(Asn::new(4_294_967_294).is_private());
        assert!(!Asn::new(4_294_967_295).is_private());
    }

    #[test]
    fn classification_reserved() {
        assert!(Asn::RESERVED_ZERO.is_reserved());
        assert!(Asn::new(23456).is_reserved());
        assert!(Asn::new(65535).is_reserved());
        assert!(Asn::new(64496).is_reserved());
        assert!(Asn::new(64511).is_reserved());
        assert!(Asn::new(65551).is_reserved());
        assert!(!Asn::new(64495).is_reserved());
    }

    #[test]
    fn classification_public() {
        assert!(Asn::new(3333).is_public());
        assert!(Asn::new(196608).is_public()); // first public 32-bit ASN
        assert!(!Asn::new(64512).is_public());
        assert!(!Asn::new(0).is_public());
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![Asn::new(10), Asn::new(2), Asn::new(65536)];
        v.sort();
        assert_eq!(v, vec![Asn::new(2), Asn::new(10), Asn::new(65536)]);
    }
}
