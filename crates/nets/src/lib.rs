//! # opeer-net — networking base types
//!
//! Foundation types shared by every other crate in the `opeer` workspace:
//!
//! * [`Asn`] — autonomous system numbers (16- and 32-bit, with the reserved
//!   ranges from RFC 1930 / RFC 6996 / RFC 7300 classified).
//! * [`Ipv4Prefix`] — a canonical IPv4 CIDR prefix with containment,
//!   overlap and subdivision operations.
//! * [`PrefixTrie`] — a binary radix trie keyed by [`Ipv4Prefix`] supporting
//!   exact match, longest-prefix match and iteration; this is the engine
//!   behind IP-to-AS and IP-to-IXP lookups.
//! * [`IpToAsMap`] — a Routeviews `prefix2as`-style longest-prefix-match
//!   mapping from addresses to origin ASes, with multi-origin (MOAS)
//!   handling.
//! * [`ttl`] — reply-TTL heuristics used by the paper's *TTL match* and
//!   *TTL switch* ping filters (§4.1/§5.2 of Nomikos et al., IMC 2018).
//!
//! The crate is deliberately dependency-light and fully synchronous: all
//! operations are CPU-bound lookups over in-memory structures.
//!
//! ## Example
//!
//! ```
//! use opeer_net::{Asn, Ipv4Prefix, IpToAsMap};
//! use std::net::Ipv4Addr;
//!
//! let mut map = IpToAsMap::new();
//! map.insert("193.0.0.0/16".parse().unwrap(), Asn::new(3333));
//! map.insert("193.0.22.0/23".parse().unwrap(), Asn::new(25152));
//!
//! // Longest-prefix match prefers the /23 over the covering /16.
//! let origin = map.lookup(Ipv4Addr::new(193, 0, 22, 7)).unwrap();
//! assert_eq!(origin.origins(), &[Asn::new(25152)]);
//! ```

pub mod asn;
pub mod ip2as;
pub mod prefix;
pub mod trie;
pub mod ttl;

pub use asn::Asn;
pub use ip2as::{IpToAsMap, OriginSet};
pub use prefix::{Ipv4Prefix, PrefixParseError};
pub use trie::PrefixTrie;
pub use ttl::{infer_initial_ttl, InitialTtl, TtlFilter};
