//! IP-to-AS mapping in the style of the CAIDA Routeviews `prefix2as` dataset.
//!
//! The paper performs IP-to-AS mapping on every traceroute hop (§5.2 step 5,
//! citing the Routeviews prefix2as dataset \[34\]). This module provides the
//! same abstraction: a longest-prefix-match table from prefixes to origin
//! ASes, including multi-origin (MOAS) prefixes that are announced by more
//! than one AS.

use crate::asn::Asn;
use crate::prefix::Ipv4Prefix;
use crate::trie::PrefixTrie;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The set of origin ASes announcing one prefix.
///
/// Almost always a single AS; kept sorted and deduplicated so MOAS sets
/// compare structurally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginSet {
    origins: Vec<Asn>,
}

impl OriginSet {
    /// Creates a set with one origin.
    pub fn single(asn: Asn) -> Self {
        OriginSet { origins: vec![asn] }
    }

    /// Creates a set from multiple origins (sorted, deduplicated).
    pub fn multi(mut origins: Vec<Asn>) -> Self {
        origins.sort();
        origins.dedup();
        OriginSet { origins }
    }

    /// The origin ASes, sorted ascending.
    pub fn origins(&self) -> &[Asn] {
        &self.origins
    }

    /// Whether this is a multi-origin (MOAS) prefix.
    pub fn is_moas(&self) -> bool {
        self.origins.len() > 1
    }

    /// Whether `asn` is among the origins.
    pub fn contains(&self, asn: Asn) -> bool {
        self.origins.binary_search(&asn).is_ok()
    }

    /// The unique origin if the set is not MOAS.
    pub fn unique(&self) -> Option<Asn> {
        match self.origins.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    fn add(&mut self, asn: Asn) {
        if let Err(pos) = self.origins.binary_search(&asn) {
            self.origins.insert(pos, asn);
        }
    }
}

/// Longest-prefix-match IP-to-AS mapping.
///
/// ```
/// use opeer_net::{Asn, IpToAsMap};
/// use std::net::Ipv4Addr;
///
/// let mut map = IpToAsMap::new();
/// map.insert("203.0.113.0/24".parse().unwrap(), Asn::new(64496));
/// map.insert("203.0.113.0/24".parse().unwrap(), Asn::new(64497)); // MOAS
///
/// let set = map.lookup(Ipv4Addr::new(203, 0, 113, 9)).unwrap();
/// assert!(set.is_moas());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IpToAsMap {
    trie: PrefixTrie<OriginSet>,
}

impl IpToAsMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        IpToAsMap {
            trie: PrefixTrie::new(),
        }
    }

    /// Number of distinct prefixes in the map.
    pub fn num_prefixes(&self) -> usize {
        self.trie.len()
    }

    /// Registers `asn` as an origin of `prefix`. Repeated insertion of
    /// different ASes for the same prefix builds a MOAS set.
    pub fn insert(&mut self, prefix: Ipv4Prefix, asn: Asn) {
        match self.trie.get_mut(&prefix) {
            Some(set) => set.add(asn),
            None => {
                self.trie.insert(prefix, OriginSet::single(asn));
            }
        }
    }

    /// Longest-prefix-match lookup of an address to its origin set.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&OriginSet> {
        self.trie.longest_match(addr).map(|(_, v)| v)
    }

    /// Longest-prefix-match lookup returning the matched prefix too.
    pub fn lookup_prefix(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &OriginSet)> {
        self.trie.longest_match(addr)
    }

    /// Convenience: the unique origin AS of `addr`, if the covering prefix
    /// is not MOAS. This mirrors how the paper's heuristics treat IP-to-AS
    /// mapping (MOAS hops are ambiguous and skipped).
    pub fn unique_origin(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.lookup(addr).and_then(OriginSet::unique)
    }

    /// Iterates over all `(prefix, origin set)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &OriginSet)> {
        self.trie.iter()
    }

    /// Parses one line of the Routeviews `prefix2as` text format:
    /// `address<TAB>length<TAB>origin[,origin...]` (MOAS origins are
    /// comma- or underscore-separated in the published dataset).
    ///
    /// Returns `None` for malformed lines, which callers are expected to
    /// count-and-skip (the real dataset contains occasional junk).
    pub fn parse_prefix2as_line(line: &str) -> Option<(Ipv4Prefix, Vec<Asn>)> {
        let mut fields = line.split_whitespace();
        let addr: Ipv4Addr = fields.next()?.parse().ok()?;
        let len: u8 = fields.next()?.parse().ok()?;
        let prefix = Ipv4Prefix::new(addr, len)?;
        let origins: Vec<Asn> = fields
            .next()?
            .split([',', '_'])
            .filter_map(|s| s.parse().ok())
            .collect();
        if origins.is_empty() {
            return None;
        }
        Some((prefix, origins))
    }

    /// Loads a whole `prefix2as` document, returning the map and the number
    /// of skipped malformed lines.
    pub fn from_prefix2as(text: &str) -> (Self, usize) {
        let mut map = IpToAsMap::new();
        let mut skipped = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match Self::parse_prefix2as_line(line) {
                Some((prefix, origins)) => {
                    for asn in origins {
                        map.insert(prefix, asn);
                    }
                }
                None => skipped += 1,
            }
        }
        (map, skipped)
    }

    /// Serialises the map in the `prefix2as` text format (sorted by the trie
    /// iteration order, MOAS origins comma-separated).
    pub fn to_prefix2as(&self) -> String {
        let mut out = String::new();
        for (prefix, set) in self.iter() {
            let origins: Vec<String> = set
                .origins()
                .iter()
                .map(|a| a.value().to_string())
                .collect();
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                prefix.network(),
                prefix.len(),
                origins.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_longest_match() {
        let mut m = IpToAsMap::new();
        m.insert(p("10.0.0.0/8"), Asn::new(100));
        m.insert(p("10.1.0.0/16"), Asn::new(200));
        assert_eq!(
            m.unique_origin("10.1.2.3".parse().unwrap()),
            Some(Asn::new(200))
        );
        assert_eq!(
            m.unique_origin("10.2.2.3".parse().unwrap()),
            Some(Asn::new(100))
        );
        assert_eq!(m.unique_origin("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn moas_accumulates_and_blocks_unique() {
        let mut m = IpToAsMap::new();
        m.insert(p("203.0.113.0/24"), Asn::new(1));
        m.insert(p("203.0.113.0/24"), Asn::new(2));
        m.insert(p("203.0.113.0/24"), Asn::new(1)); // duplicate ignored
        let set = m.lookup("203.0.113.1".parse().unwrap()).unwrap();
        assert!(set.is_moas());
        assert_eq!(set.origins(), &[Asn::new(1), Asn::new(2)]);
        assert!(set.contains(Asn::new(2)));
        assert_eq!(m.unique_origin("203.0.113.1".parse().unwrap()), None);
    }

    #[test]
    fn prefix2as_roundtrip() {
        let mut m = IpToAsMap::new();
        m.insert(p("10.0.0.0/8"), Asn::new(100));
        m.insert(p("203.0.113.0/24"), Asn::new(1));
        m.insert(p("203.0.113.0/24"), Asn::new(2));
        let text = m.to_prefix2as();
        let (back, skipped) = IpToAsMap::from_prefix2as(&text);
        assert_eq!(skipped, 0);
        assert_eq!(back.num_prefixes(), 2);
        assert!(back
            .lookup("203.0.113.5".parse().unwrap())
            .unwrap()
            .is_moas());
    }

    #[test]
    fn prefix2as_parses_underscore_moas_and_skips_junk() {
        let text = "# comment\n\
                    10.0.0.0\t8\t100\n\
                    203.0.113.0\t24\t64496_64497\n\
                    garbage line here\n\
                    300.0.0.0\t8\t1\n";
        let (m, skipped) = IpToAsMap::from_prefix2as(text);
        assert_eq!(skipped, 2);
        assert_eq!(m.num_prefixes(), 2);
        let set = m.lookup("203.0.113.9".parse().unwrap()).unwrap();
        assert_eq!(set.origins(), &[Asn::new(64496), Asn::new(64497)]);
    }

    #[test]
    fn lookup_prefix_reports_match() {
        let mut m = IpToAsMap::new();
        m.insert(p("10.0.0.0/8"), Asn::new(100));
        let (pfx, _) = m.lookup_prefix("10.200.0.1".parse().unwrap()).unwrap();
        assert_eq!(pfx, p("10.0.0.0/8"));
    }
}
