//! Canonical IPv4 CIDR prefixes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix in canonical form (host bits cleared).
///
/// Prefixes order first by network address, then by length, which yields the
/// familiar "covering prefix before covered prefix" ordering used in RIB
/// dumps.
///
/// ```
/// use opeer_net::Ipv4Prefix;
/// use std::net::Ipv4Addr;
///
/// let p: Ipv4Prefix = "80.249.208.0/21".parse().unwrap(); // AMS-IX peering LAN
/// assert!(p.contains(Ipv4Addr::new(80, 249, 209, 17)));
/// assert!(!p.contains(Ipv4Addr::new(80, 249, 216, 1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Ipv4Prefix {
    network: Ipv4Addr,
    len: u8,
}

// `len` is the mask length, not a container size — `is_empty` would be
// meaningless (a prefix always covers ≥ 1 address).
#[allow(clippy::len_without_is_empty)]
impl Ipv4Prefix {
    /// `0.0.0.0/0`, the default route.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix {
        network: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix, clearing any set host bits.
    ///
    /// Returns `None` if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Option<Self> {
        if len > 32 {
            return None;
        }
        let bits = u32::from(addr) & mask(len);
        Some(Ipv4Prefix {
            network: Ipv4Addr::from(bits),
            len,
        })
    }

    /// Creates a host prefix (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix {
            network: addr,
            len: 32,
        }
    }

    /// The network address (host bits are always zero).
    pub const fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// Prefix length in bits (`0..=32`).
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask as an address, e.g. `255.255.248.0` for a `/21`.
    pub fn netmask(&self) -> Ipv4Addr {
        Ipv4Addr::from(mask(self.len))
    }

    /// Number of addresses covered by the prefix (2^(32-len)).
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The broadcast (highest) address of the prefix.
    pub fn broadcast(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.network) | !mask(self.len))
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.len) == u32::from(self.network)
    }

    /// Whether `other` is fully covered by this prefix (equal counts).
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains(other.network)
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Splits the prefix into its two halves, or `None` for a `/32`.
    pub fn split(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let low = Ipv4Prefix {
            network: self.network,
            len: child_len,
        };
        let high_bits = u32::from(self.network) | (1 << (32 - child_len as u32));
        let high = Ipv4Prefix {
            network: Ipv4Addr::from(high_bits),
            len: child_len,
        };
        Some((low, high))
    }

    /// Enumerates the subnets of this prefix at `sub_len`, e.g. the four
    /// `/23`s of a `/21` at `sub_len = 23`. Returns an empty iterator if
    /// `sub_len < self.len()` and caps enumeration at 2^16 subnets to keep
    /// accidental huge expansions from allocating unbounded memory.
    pub fn subnets(&self, sub_len: u8) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        let count: u64 = if sub_len > 32 || sub_len < self.len {
            0
        } else {
            1u64 << ((sub_len - self.len) as u32).min(16)
        };
        let base = u32::from(self.network);
        (0..count).map(move |i| {
            let step = 1u64 << (32 - sub_len as u32);
            Ipv4Prefix {
                network: Ipv4Addr::from(base + (i * step) as u32),
                len: sub_len,
            }
        })
    }

    /// The `n`-th address within the prefix, if in range.
    ///
    /// `addr_at(0)` is the network address. Peering-LAN IP assignment in
    /// `opeer-topology` uses this to hand out member interface addresses.
    pub fn addr_at(&self, n: u64) -> Option<Ipv4Addr> {
        if n >= self.num_addresses() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.network) + n as u32))
    }

    /// Bit `i` (0 = most significant) of the network address. Used by the
    /// radix trie.
    pub(crate) fn bit(&self, i: u8) -> bool {
        debug_assert!(i < 32);
        u32::from(self.network) & (1 << (31 - i as u32)) != 0
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

/// Error returned when parsing an [`Ipv4Prefix`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {:?}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    /// Parses `"a.b.c.d/len"`. A bare address is treated as a `/32`.
    /// Host bits below the mask are cleared (canonicalisation), matching the
    /// tolerant behaviour needed for registry data that contains
    /// non-canonical rows.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || PrefixParseError(s.to_string());
        match s.split_once('/') {
            Some((addr, len)) => {
                let addr: Ipv4Addr = addr.parse().map_err(|_| err())?;
                let len: u8 = len.parse().map_err(|_| err())?;
                Ipv4Prefix::new(addr, len).ok_or_else(err)
            }
            None => {
                let addr: Ipv4Addr = s.parse().map_err(|_| err())?;
                Ok(Ipv4Prefix::host(addr))
            }
        }
    }
}

impl TryFrom<String> for Ipv4Prefix {
    type Error = PrefixParseError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl From<Ipv4Prefix> for String {
    fn from(p: Ipv4Prefix) -> String {
        p.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        let pre = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(pre.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "80.249.208.0/21", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_bare_address_is_host_route() {
        assert_eq!(
            p("192.0.2.1"),
            Ipv4Prefix::host(Ipv4Addr::new(192, 0, 2, 1))
        );
    }

    #[test]
    fn parse_rejects_bad_len() {
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn netmask_and_broadcast() {
        let pre = p("80.249.208.0/21");
        assert_eq!(pre.netmask(), Ipv4Addr::new(255, 255, 248, 0));
        assert_eq!(pre.broadcast(), Ipv4Addr::new(80, 249, 215, 255));
        assert_eq!(pre.num_addresses(), 2048);
    }

    #[test]
    fn containment() {
        let lan = p("80.249.208.0/21");
        assert!(lan.contains(Ipv4Addr::new(80, 249, 208, 0)));
        assert!(lan.contains(Ipv4Addr::new(80, 249, 215, 255)));
        assert!(!lan.contains(Ipv4Addr::new(80, 249, 216, 0)));
        assert!(Ipv4Prefix::DEFAULT.contains(Ipv4Addr::new(1, 1, 1, 1)));
    }

    #[test]
    fn covers_and_overlaps() {
        let a = p("10.0.0.0/8");
        let b = p("10.32.0.0/11");
        let c = p("11.0.0.0/8");
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(a.covers(&a));
    }

    #[test]
    fn split_halves() {
        let (lo, hi) = p("10.0.0.0/8").split().unwrap();
        assert_eq!(lo, p("10.0.0.0/9"));
        assert_eq!(hi, p("10.128.0.0/9"));
        assert!(p("1.2.3.4/32").split().is_none());
    }

    #[test]
    fn subnets_enumeration() {
        let subs: Vec<_> = p("10.0.0.0/22").subnets(24).collect();
        assert_eq!(
            subs,
            vec![
                p("10.0.0.0/24"),
                p("10.0.1.0/24"),
                p("10.0.2.0/24"),
                p("10.0.3.0/24")
            ]
        );
        assert_eq!(p("10.0.0.0/24").subnets(22).count(), 0);
        assert_eq!(p("10.0.0.0/24").subnets(24).count(), 1);
    }

    #[test]
    fn addr_at_bounds() {
        let lan = p("192.0.2.0/29");
        assert_eq!(lan.addr_at(0), Some(Ipv4Addr::new(192, 0, 2, 0)));
        assert_eq!(lan.addr_at(7), Some(Ipv4Addr::new(192, 0, 2, 7)));
        assert_eq!(lan.addr_at(8), None);
    }

    #[test]
    fn ordering_network_then_len() {
        let mut v = vec![p("10.0.0.0/16"), p("10.0.0.0/8"), p("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")]);
    }

    #[test]
    fn serde_as_string() {
        // The serde impls delegate to the String conversions; exercise those.
        let pre = p("80.249.208.0/21");
        let s: String = pre.into();
        assert_eq!(s, "80.249.208.0/21");
        let back: Ipv4Prefix = Ipv4Prefix::try_from(s).unwrap();
        assert_eq!(back, pre);
    }
}
