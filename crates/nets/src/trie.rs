//! A binary radix (Patricia-style) trie keyed by [`Ipv4Prefix`].
//!
//! The trie is the lookup engine used throughout the workspace:
//! IP-to-AS mapping ([`crate::IpToAsMap`]), IXP peering-LAN identification
//! (`opeer-traix`), and collector RIBs (`opeer-bgp`) all build on it.
//!
//! The implementation follows the guides' "simplicity and robustness" rule:
//! a plain uncompressed binary trie with one node per prefix bit. For the
//! prefix populations in this workload (≤ a few hundred thousand prefixes,
//! depth ≤ 32) this is fast, predictable, and trivially correct; path
//! compression is a deliberate omission, documented here so downstream users
//! know the trade-off.

use crate::prefix::Ipv4Prefix;
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from [`Ipv4Prefix`] to `V` with longest-prefix-match lookup.
///
/// ```
/// use opeer_net::{Ipv4Prefix, PrefixTrie};
/// use std::net::Ipv4Addr;
///
/// let mut trie = PrefixTrie::new();
/// trie.insert("10.0.0.0/8".parse().unwrap(), "rfc1918");
/// trie.insert("10.9.0.0/16".parse().unwrap(), "lab");
///
/// let (pfx, v) = trie.longest_match(Ipv4Addr::new(10, 9, 1, 1)).unwrap();
/// assert_eq!(v, &"lab");
/// assert_eq!(pfx.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Exact-match mutable lookup of a prefix.
    pub fn get_mut(&mut self, prefix: &Ipv4Prefix) -> Option<&mut V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Removes a prefix, returning its value. Interior nodes are left in
    /// place (they are reclaimed wholesale when the trie is dropped); this
    /// keeps removal simple and O(len) without parent links.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, with its value.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &V)> {
        let bits = u32::from(addr);
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = ((bits >> (31 - i as u32)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            let p = Ipv4Prefix::new(addr, len).expect("len <= 32");
            (p, v)
        })
    }

    /// All stored prefixes containing `addr`, from least to most specific.
    pub fn matches(&self, addr: Ipv4Addr) -> Vec<(Ipv4Prefix, &V)> {
        let bits = u32::from(addr);
        let mut node = &self.root;
        let mut out = Vec::new();
        if let Some(v) = node.value.as_ref() {
            out.push((Ipv4Prefix::DEFAULT, v));
        }
        for i in 0..32u8 {
            let b = ((bits >> (31 - i as u32)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        let p = Ipv4Prefix::new(addr, i + 1).expect("len <= 32");
                        out.push((p, v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic
    /// (network, length) order of the bit path.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: vec![(&self.root, Ipv4Prefix::DEFAULT)],
        }
    }
}

/// Two tries are equal when they hold the same `(prefix, value)` set —
/// iteration order is canonical (bit-path order), so a zipped walk
/// decides it. Structural leftovers (interior nodes kept by `remove`)
/// do not participate.
impl<V: PartialEq> PartialEq for PrefixTrie<V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((pa, va), (pb, vb))| pa == pb && va == vb)
    }
}

impl<V: Eq> Eq for PrefixTrie<V> {}

/// Iterator over trie entries; see [`PrefixTrie::iter`].
pub struct Iter<'a, V> {
    stack: Vec<(&'a Node<V>, Ipv4Prefix)>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Ipv4Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, prefix)) = self.stack.pop() {
            // Push children in reverse so the 0-branch is visited first.
            if prefix.len() < 32 {
                if let Some((lo, hi)) = prefix.split() {
                    if let Some(c) = node.children[1].as_deref() {
                        self.stack.push((c, hi));
                    }
                    if let Some(c) = node.children[0].as_deref() {
                        self.stack.push((c, lo));
                    }
                }
            }
            if let Some(v) = node.value.as_ref() {
                return Some((prefix, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), vec![1]);
        t.get_mut(&p("10.0.0.0/8")).unwrap().push(2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&vec![1, 2]));
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.9.0.0/16"), "sixteen");
        t.insert(p("10.9.1.0/24"), "twentyfour");

        let cases = [
            ("10.9.1.5", "twentyfour", 24u8),
            ("10.9.2.5", "sixteen", 16),
            ("10.8.0.1", "eight", 8),
            ("11.0.0.1", "default", 0),
        ];
        for (addr, want, len) in cases {
            let (pfx, v) = t.longest_match(addr.parse().unwrap()).unwrap();
            assert_eq!(*v, want, "addr {addr}");
            assert_eq!(pfx.len(), len, "addr {addr}");
        }
    }

    #[test]
    fn longest_match_empty_and_miss() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        assert!(t.longest_match("1.2.3.4".parse().unwrap()).is_none());

        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert!(t.longest_match("11.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn matches_returns_all_covering() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.9.0.0/16"), 16);
        let ms = t.matches("10.9.0.1".parse().unwrap());
        let lens: Vec<u8> = ms.iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![0, 8, 16]);
    }

    #[test]
    fn host_route_roundtrip() {
        let mut t = PrefixTrie::new();
        let host = p("192.0.2.55/32");
        t.insert(host, "host");
        let (pfx, v) = t.longest_match("192.0.2.55".parse().unwrap()).unwrap();
        assert_eq!(pfx, host);
        assert_eq!(*v, "host");
        assert!(t.longest_match("192.0.2.54".parse().unwrap()).is_none());
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = PrefixTrie::new();
        let prefixes = [
            p("10.0.0.0/8"),
            p("10.9.0.0/16"),
            p("172.16.0.0/12"),
            p("0.0.0.0/0"),
        ];
        for (i, pre) in prefixes.iter().enumerate() {
            t.insert(*pre, i);
        }
        let got: Vec<Ipv4Prefix> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(got.len(), prefixes.len());
        for pre in prefixes {
            assert!(got.contains(&pre), "{pre} missing from iter");
        }
        // Default route must come first (root before descendants).
        assert_eq!(got[0], p("0.0.0.0/0"));
    }
}
