//! Focused `opeer-net` checks: `PrefixTrie` longest-prefix-match
//! against a linear-scan oracle, and `Ipv4Prefix` boundary behaviour
//! (`/0`, `/32`, host-bit masking).
//!
//! These complement the property suite in the workspace root's
//! `tests/properties.rs`: deterministic, corner-case-heavy, and
//! runnable with `cargo test -p opeer-net`.

use opeer_net::{Ipv4Prefix, PrefixTrie};
use std::net::Ipv4Addr;

/// Deterministic pseudo-random u32s (SplitMix64-derived) with no RNG
/// dependency, so the oracle sweep covers scattered addresses.
fn mixed(i: u64) -> u32 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// The oracle: scan every stored prefix, keep the longest that
/// contains the address.
fn oracle_lookup(entries: &[(Ipv4Prefix, u32)], addr: Ipv4Addr) -> Option<(Ipv4Prefix, u32)> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|&(p, v)| (p, v))
}

#[test]
fn trie_lpm_matches_linear_oracle_on_structured_table() {
    // A routing-table-shaped set: nested prefixes, siblings, a default
    // route, and host routes.
    let table: Vec<(Ipv4Prefix, u32)> = [
        ("0.0.0.0/0", 1),
        ("10.0.0.0/8", 2),
        ("10.64.0.0/10", 3),
        ("10.64.0.0/16", 4),
        ("10.64.128.0/17", 5),
        ("10.64.128.77/32", 6),
        ("10.128.0.0/9", 7),
        ("192.168.0.0/16", 8),
        ("192.168.1.0/24", 9),
        ("192.168.1.128/25", 10),
        ("203.0.113.0/24", 11),
    ]
    .into_iter()
    .map(|(s, v)| (s.parse().expect("valid CIDR"), v))
    .collect();

    let mut trie = PrefixTrie::new();
    for (p, v) in &table {
        assert_eq!(trie.insert(*p, *v), None, "duplicate insert of {p}");
    }
    assert_eq!(trie.len(), table.len());

    // Every network/broadcast/±1 boundary of every prefix, plus a
    // scattered sweep.
    let mut probes: Vec<Ipv4Addr> = Vec::new();
    for (p, _) in &table {
        let lo = u32::from(p.network());
        let hi = u32::from(p.broadcast());
        for a in [
            lo.wrapping_sub(1),
            lo,
            lo.wrapping_add(1),
            hi.wrapping_sub(1),
            hi,
            hi.wrapping_add(1),
        ] {
            probes.push(Ipv4Addr::from(a));
        }
    }
    probes.extend((0..4096u64).map(|i| Ipv4Addr::from(mixed(i))));

    for addr in probes {
        let got = trie.longest_match(addr).map(|(p, v)| (p, *v));
        let want = oracle_lookup(&table, addr);
        assert_eq!(got, want, "LPM mismatch for {addr}");
    }
}

#[test]
fn trie_lpm_matches_oracle_under_inserts_and_removes() {
    // Grow a table from scattered bits, checking after every mutation
    // batch; then shrink it back down.
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    let mut entries: Vec<(Ipv4Prefix, u32)> = Vec::new();
    for i in 0..160u64 {
        let len = (mixed(i.wrapping_mul(31)) % 33) as u8;
        let p = Ipv4Prefix::new(Ipv4Addr::from(mixed(i)), len).expect("len ≤ 32");
        let v = mixed(i ^ 0xFFFF) % 1000;
        let prev = trie.insert(p, v);
        if let Some(slot) = entries.iter_mut().find(|(q, _)| *q == p) {
            assert_eq!(prev, Some(slot.1), "insert must return the shadowed value");
            slot.1 = v;
        } else {
            assert_eq!(prev, None);
            entries.push((p, v));
        }
        if i % 16 == 15 {
            for j in 0..64u64 {
                let addr = Ipv4Addr::from(mixed(i.wrapping_mul(1000).wrapping_add(j)));
                let got = trie.longest_match(addr).map(|(p, v)| (p, *v));
                assert_eq!(got, oracle_lookup(&entries, addr), "grow phase, {addr}");
            }
        }
    }
    // Remove half, verify shadowed routes resurface.
    let removed: Vec<(Ipv4Prefix, u32)> = entries.iter().step_by(2).copied().collect();
    for (p, v) in &removed {
        assert_eq!(trie.remove(p), Some(*v));
        entries.retain(|(q, _)| q != p);
    }
    assert_eq!(trie.len(), entries.len());
    for i in 0..2048u64 {
        let addr = Ipv4Addr::from(mixed(i.wrapping_add(7_000_000)));
        let got = trie.longest_match(addr).map(|(p, v)| (p, *v));
        assert_eq!(got, oracle_lookup(&entries, addr), "shrink phase, {addr}");
    }
}

#[test]
fn default_route_matches_everything_and_only_as_fallback() {
    let mut trie = PrefixTrie::new();
    trie.insert(Ipv4Prefix::DEFAULT, 0u32);
    trie.insert("198.51.100.0/24".parse().expect("valid"), 1);
    for addr in [
        Ipv4Addr::UNSPECIFIED,
        Ipv4Addr::new(255, 255, 255, 255),
        Ipv4Addr::new(8, 8, 8, 8),
    ] {
        assert_eq!(trie.longest_match(addr).map(|(_, v)| *v), Some(0));
    }
    assert_eq!(
        trie.longest_match(Ipv4Addr::new(198, 51, 100, 200))
            .map(|(_, v)| *v),
        Some(1),
        "more-specific must win over the default route"
    );
}

#[test]
fn prefix_len_0_boundaries() {
    let all: Ipv4Prefix = "0.0.0.0/0".parse().expect("valid");
    assert_eq!(all, Ipv4Prefix::DEFAULT);
    assert_eq!(all.len(), 0);
    assert!(all.is_default());
    assert_eq!(all.num_addresses(), 1u64 << 32);
    assert_eq!(all.network(), Ipv4Addr::UNSPECIFIED);
    assert_eq!(all.broadcast(), Ipv4Addr::new(255, 255, 255, 255));
    assert_eq!(all.netmask(), Ipv4Addr::UNSPECIFIED);
    assert!(all.contains(Ipv4Addr::UNSPECIFIED));
    assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
    // /0 with nonzero host bits canonicalises to 0.0.0.0/0.
    let messy = Ipv4Prefix::new(Ipv4Addr::new(203, 0, 113, 9), 0).expect("valid");
    assert_eq!(messy, all);
    assert_eq!(all.to_string(), "0.0.0.0/0");
}

#[test]
fn prefix_len_32_boundaries() {
    let host: Ipv4Prefix = "203.0.113.7/32".parse().expect("valid");
    assert_eq!(host.len(), 32);
    assert_eq!(host.num_addresses(), 1);
    assert_eq!(host.network(), host.broadcast());
    assert_eq!(host.netmask(), Ipv4Addr::new(255, 255, 255, 255));
    assert!(host.contains(Ipv4Addr::new(203, 0, 113, 7)));
    assert!(!host.contains(Ipv4Addr::new(203, 0, 113, 8)));
    assert_eq!(host.split(), None, "a /32 cannot split");
    assert_eq!(host.addr_at(0), Some(Ipv4Addr::new(203, 0, 113, 7)));
    assert_eq!(host.addr_at(1), None);
    // A bare address parses as its host route.
    assert_eq!("203.0.113.7".parse::<Ipv4Prefix>().expect("valid"), host);
    // 33 is out of range everywhere.
    assert!(Ipv4Prefix::new(Ipv4Addr::UNSPECIFIED, 33).is_none());
    assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
}

#[test]
fn host_bits_are_masked_on_every_construction_path() {
    for (messy, canonical) in [
        ("10.1.2.3/16", "10.1.0.0/16"),
        ("10.1.2.3/24", "10.1.2.0/24"),
        ("255.255.255.255/1", "128.0.0.0/1"),
        ("203.0.113.129/25", "203.0.113.128/25"),
    ] {
        let parsed: Ipv4Prefix = messy.parse().expect("valid");
        let direct = {
            let (addr, len) = messy.split_once('/').expect("has /");
            Ipv4Prefix::new(addr.parse().expect("addr"), len.parse().expect("len")).expect("valid")
        };
        let want: Ipv4Prefix = canonical.parse().expect("valid");
        assert_eq!(parsed, want, "FromStr must canonicalise {messy}");
        assert_eq!(direct, want, "new() must canonicalise {messy}");
        assert_eq!(parsed.to_string(), canonical, "Display shows masked form");
        assert!(parsed.contains(parsed.network()));
    }
    // Masking is idempotent: reconstructing from the canonical network
    // address changes nothing.
    let p: Ipv4Prefix = "172.16.99.0/20".parse().expect("valid");
    assert_eq!(Ipv4Prefix::new(p.network(), p.len()), Some(p));
}
