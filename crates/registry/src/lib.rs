//! # opeer-registry — the observable data layer
//!
//! The inference methodology never sees the ground truth; it sees what the
//! paper saw: IXP websites (Euro-IX machine-readable exports), Hurricane
//! Electric, PeeringDB, Packet Clearing House, Inflect, and best-effort
//! validation lists from operators and websites (§3). This crate derives
//! those sources from the ground-truth [`opeer_topology::World`] through
//! per-source noise models — coverage gaps, stale rows, outright errors —
//! and then fuses them exactly as §3.2 prescribes:
//!
//! > `IXP websites > HE > PDB > PCH`
//!
//! The outputs are:
//!
//! * [`ObservedWorld`] — the fused dataset the inference pipeline runs on:
//!   IXP prefixes and interfaces (IP → member ASN), port capacities and
//!   minimum physical capacities (`Cmin`), facility lists with
//!   coordinates, and AS-to-facility colocation (with the documented
//!   18 %-missing / 5 %-spurious artifacts of Fig. 5).
//! * [`Table1Stats`] — the per-source total/unique/conflict accounting of
//!   Table 1.
//! * [`ValidationDataset`] — the 15-IXP control/test validation lists of
//!   Table 2, sampled at the operators' coverage (they know their
//!   reseller ports, so remote peers are over-represented).
//! * [`euroix`] — a real serde schema for the Euro-IX-style JSON export,
//!   so the website ingestion path exercises actual parsing.

#![warn(missing_docs)]

pub mod euroix;
pub mod facilities;
pub mod fusion;
pub mod observed;
pub mod sources;
pub mod validation;

pub use fusion::{build_observed_world, RegistryConfig, Table1Stats};
pub use observed::{ObservedIxp, ObservedWorld};
pub use sources::{SourceKind, SourceView};
pub use validation::{ValidationDataset, ValidationEntry, ValidationIxp};
