//! Source fusion with the paper's preference order, and Table 1.
//!
//! Conflicting rows are resolved by `Websites > HE > PDB > PCH` (§3.2);
//! along the way the fusion counts, per source, the total rows it
//! contributed, the rows only it knew, and the rows where it disagreed
//! with a higher-preference source — Table 1's three column groups.

use crate::euroix;
use crate::facilities::{build_colocation, FacilityNoise};
use crate::observed::{ObservedIxp, ObservedWorld};
use crate::sources::{generate_source, SourceKind, SourceView};
use crate::validation::build_validation;
use opeer_net::{Asn, Ipv4Prefix};
use opeer_topology::{IxpId, World};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Configuration of the whole registry build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryConfig {
    /// Seed for all noise draws.
    pub seed: u64,
    /// Colocation noise parameters.
    pub facility_noise: FacilityNoise,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            seed: 0x51,
            facility_noise: FacilityNoise::default(),
        }
    }
}

/// Per-source Table 1 row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceStat {
    /// Prefix rows contributed.
    pub prefixes_total: usize,
    /// Prefix rows only this source had.
    pub prefixes_unique: usize,
    /// Prefix rows disagreeing with a higher-preference source.
    pub prefix_conflicts: usize,
    /// Interface rows contributed.
    pub ifaces_total: usize,
    /// Interface rows only this source had.
    pub ifaces_unique: usize,
    /// Interface rows disagreeing with a higher-preference source.
    pub iface_conflicts: usize,
}

/// Table 1: the per-source dataset accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Stats {
    /// Rows in source-preference order.
    pub per_source: BTreeMap<SourceKind, SourceStat>,
    /// Distinct IXP prefixes after fusion.
    pub total_prefixes: usize,
    /// Distinct interface rows after fusion.
    pub total_interfaces: usize,
    /// Distinct IXPs after fusion.
    pub total_ixps: usize,
}

impl Table1Stats {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Source      | IXP Prefixes (tot/uniq/conflict) | IXP Interfaces (tot/uniq/conflict)\n",
        );
        for kind in SourceKind::ORDERED {
            if let Some(s) = self.per_source.get(&kind) {
                out.push_str(&format!(
                    "{:<11} | {:>6} {:>6} {:>6}             | {:>7} {:>7} {:>7}\n",
                    format!("{kind:?}"),
                    s.prefixes_total,
                    s.prefixes_unique,
                    s.prefix_conflicts,
                    s.ifaces_total,
                    s.ifaces_unique,
                    s.iface_conflicts
                ));
            }
        }
        out.push_str(&format!(
            "Total       | {:>6} prefixes ({} IXPs)       | {:>7} interfaces\n",
            self.total_prefixes, self.total_ixps, self.total_interfaces
        ));
        out
    }
}

/// The website view, generated through the real Euro-IX JSON path:
/// export → JSON → parse → ingest. Only the named (publishing) IXPs are
/// covered, mirroring the paper's 42-prefix website column.
fn website_view(world: &World) -> SourceView {
    let mut view = SourceView {
        kind: Some(SourceKind::Websites),
        ..Default::default()
    };
    for (i, ixp) in world.ixps.iter().enumerate() {
        // Publishing IXPs: the named set (studied or holding validation
        // data); generated filler IXPs don't run member exports.
        let publishes = ixp.studied || ixp.validation != opeer_topology::ValidationRole::None;
        if !publishes {
            continue;
        }
        let json = euroix::to_json(&euroix::export_ixp(world, IxpId::from_index(i)));
        let export = euroix::from_json(&json).expect("own export parses");
        let rec = &export.ixp_list[0];
        let prefixes: Vec<Ipv4Prefix> = rec
            .peering_lans
            .iter()
            .filter_map(|s| s.parse().ok())
            .collect();
        view.prefixes.insert(rec.shortname.clone(), prefixes);
        let mut ifaces = BTreeMap::new();
        let mut caps = BTreeMap::new();
        for m in &export.member_list {
            for c in &m.connection_list {
                for v in &c.vlan_list {
                    if let Ok(ip) = v.ipv4.parse::<Ipv4Addr>() {
                        ifaces.insert(ip, Asn::new(m.asnum));
                    }
                }
                caps.insert(Asn::new(m.asnum), c.if_speed);
            }
        }
        view.interfaces.insert(rec.shortname.clone(), ifaces);
        view.capacities.insert(rec.shortname.clone(), caps);
    }
    view
}

/// Builds the full observed world: generates all four sources, fuses
/// them, attaches colocation, capacities, pricing (`Cmin`) and the
/// validation dataset.
pub fn build_observed_world(world: &World, cfg: &RegistryConfig) -> (ObservedWorld, Table1Stats) {
    let views: Vec<SourceView> = vec![
        website_view(world),
        generate_source(world, SourceKind::He, cfg.seed),
        generate_source(world, SourceKind::Pdb, cfg.seed),
        generate_source(world, SourceKind::Pch, cfg.seed),
    ];

    let mut stats = Table1Stats::default();
    for kind in SourceKind::ORDERED {
        stats.per_source.insert(kind, SourceStat::default());
    }

    // Union of IXP names across sources.
    let mut names: BTreeSet<String> = BTreeSet::new();
    for v in &views {
        names.extend(v.prefixes.keys().cloned());
        names.extend(v.interfaces.keys().cloned());
    }

    // Fuse per IXP.
    let mut ow = ObservedWorld::default();
    for name in &names {
        let mut fused = ObservedIxp {
            name: name.clone(),
            ..Default::default()
        };

        // --- prefixes ---
        let mut winner_prefixes: Option<(SourceKind, Vec<Ipv4Prefix>)> = None;
        for v in &views {
            let kind = v.kind.expect("views are tagged");
            if let Some(p) = v.prefixes.get(name) {
                let stat = stats.per_source.get_mut(&kind).expect("all kinds present");
                stat.prefixes_total += p.len();
                match &winner_prefixes {
                    None => winner_prefixes = Some((kind, p.clone())),
                    Some((_, w)) => {
                        if w != p {
                            stat.prefix_conflicts += 1;
                        }
                    }
                }
            }
        }
        // uniqueness: counted after the loop below (needs presence map).
        let present_in: Vec<SourceKind> = views
            .iter()
            .filter(|v| v.prefixes.contains_key(name))
            .map(|v| v.kind.expect("tagged"))
            .collect();
        if present_in.len() == 1 {
            stats
                .per_source
                .get_mut(&present_in[0])
                .expect("all kinds present")
                .prefixes_unique += 1;
        }
        if let Some((_, p)) = winner_prefixes {
            fused.prefixes = p;
        }

        // --- interfaces ---
        let mut iface_rows: BTreeMap<Ipv4Addr, (SourceKind, Asn)> = BTreeMap::new();
        let mut iface_presence: BTreeMap<Ipv4Addr, usize> = BTreeMap::new();
        for v in &views {
            let kind = v.kind.expect("tagged");
            if let Some(rows) = v.interfaces.get(name) {
                let stat = stats.per_source.get_mut(&kind).expect("all kinds present");
                stat.ifaces_total += rows.len();
                for (&addr, &asn) in rows {
                    *iface_presence.entry(addr).or_insert(0) += 1;
                    match iface_rows.get(&addr) {
                        None => {
                            iface_rows.insert(addr, (kind, asn));
                        }
                        Some(&(_, winner_asn)) => {
                            if winner_asn != asn {
                                stat.iface_conflicts += 1;
                            }
                        }
                    }
                }
            }
        }
        // Unique rows: addresses seen in exactly one source — attribute to
        // the winning (only) source.
        for (&addr, &count) in &iface_presence {
            if count == 1 {
                let (kind, _) = iface_rows[&addr];
                stats
                    .per_source
                    .get_mut(&kind)
                    .expect("all kinds present")
                    .ifaces_unique += 1;
            }
        }
        fused.interfaces = iface_rows
            .into_iter()
            .map(|(a, (_, asn))| (a, asn))
            .collect();

        // --- capacities: first source in preference order wins ---
        for v in &views {
            if let Some(caps) = v.capacities.get(name) {
                for (&asn, &c) in caps {
                    fused.port_capacity.entry(asn).or_insert(c);
                }
            }
        }

        ow.ixps.push(fused);
    }

    // Per-IXP metadata from the ground truth's *public* side: pricing
    // pages and route-server addresses are on the websites.
    for fused in &mut ow.ixps {
        if let Some(i) = world.ixps.iter().position(|x| x.name == fused.name) {
            let x = &world.ixps[i];
            let publishes = x.studied || x.validation != opeer_topology::ValidationRole::None;
            if publishes {
                fused.cmin_mbps = Some(x.min_physical_capacity_mbps);
                fused.capacity_options = x.capacity_options_mbps.clone();
                fused.route_server_ip = Some(x.route_server_ip);
            } else if !fused.port_capacity.is_empty() {
                // PDB-derived capacity floor: the smallest *published
                // physical* option; resellers may exist unnoticed.
                fused.cmin_mbps = Some(1_000);
            }
            fused.studied = x.studied;
        }
    }

    // Colocation + validation.
    let colo = build_colocation(world, cfg.facility_noise, cfg.seed);
    ow.facilities = colo.facilities;
    ow.as_facilities = colo.as_facilities;
    for fused in &mut ow.ixps {
        if let Some(list) = colo.ixp_facilities.get(&fused.name) {
            fused.facility_idxs = list.clone();
        }
    }
    ow.validation = build_validation(world, cfg.seed);
    ow.rebuild_indexes();

    stats.total_prefixes = ow.ixps.iter().map(|x| x.prefixes.len()).sum();
    stats.total_interfaces = ow.total_interfaces();
    stats.total_ixps = ow.ixps.len();
    (ow, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    fn build() -> (World, ObservedWorld, Table1Stats) {
        let w = WorldConfig::small(53).generate();
        let (ow, stats) = build_observed_world(&w, &RegistryConfig::default());
        (w, ow, stats)
    }

    #[test]
    fn websites_never_conflict_and_have_capacities() {
        let (_w, ow, stats) = build();
        let web = stats.per_source[&SourceKind::Websites];
        assert_eq!(web.iface_conflicts, 0, "websites are the preference root");
        assert_eq!(web.prefix_conflicts, 0);
        let ams = ow.ixp_by_name("AMS-IX").expect("AMS-IX observed");
        assert!(!ow.ixps[ams].port_capacity.is_empty());
        assert_eq!(ow.ixps[ams].cmin_mbps, Some(1_000));
    }

    #[test]
    fn he_contributes_most_interfaces_among_secondaries() {
        let (_w, _ow, stats) = build();
        let he = stats.per_source[&SourceKind::He].ifaces_total;
        let pch = stats.per_source[&SourceKind::Pch].ifaces_total;
        assert!(he > pch, "HE {he} vs PCH {pch}");
    }

    #[test]
    fn conflicts_are_rare_but_present() {
        let (_w, _ow, stats) = build();
        let mut conflicts = 0usize;
        let mut total = 0usize;
        for kind in [SourceKind::He, SourceKind::Pdb, SourceKind::Pch] {
            conflicts += stats.per_source[&kind].iface_conflicts;
            total += stats.per_source[&kind].ifaces_total;
        }
        let rate = conflicts as f64 / total.max(1) as f64;
        assert!(rate < 0.02, "conflict rate {rate}");
    }

    #[test]
    fn fused_interfaces_mostly_match_truth() {
        let (w, ow, _stats) = build();
        let mut wrong = 0usize;
        let mut total = 0usize;
        for ixp in &ow.ixps {
            for (&addr, &asn) in &ixp.interfaces {
                let Some(ifc) = w.iface_by_addr(addr) else {
                    continue;
                };
                let owner = w.routers[w.interfaces[ifc.index()].router.index()].owner;
                total += 1;
                if w.ases[owner.index()].asn != asn {
                    wrong += 1;
                }
            }
        }
        assert!(total > 100);
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.01, "fused error rate {rate}");
    }

    #[test]
    fn observed_world_covers_most_ixps() {
        let (w, ow, stats) = build();
        assert!(ow.ixps.len() as f64 > w.ixps.len() as f64 * 0.85);
        assert_eq!(stats.total_ixps, ow.ixps.len());
        assert!(stats.total_interfaces > 0);
        let rendered = stats.render();
        assert!(rendered.contains("Websites"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn validation_attached() {
        let (_w, ow, _stats) = build();
        assert_eq!(ow.validation.ixps.len(), 15);
    }

    #[test]
    fn studied_ixps_flagged() {
        let (w, ow, _stats) = build();
        let studied_truth = w.ixps.iter().filter(|x| x.studied).count();
        let studied_obs = ow.ixps.iter().filter(|x| x.studied).count();
        assert_eq!(studied_truth, studied_obs);
    }
}
