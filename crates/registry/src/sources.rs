//! The four registry sources and their noise models.
//!
//! §3.2 fuses IXP websites, Hurricane Electric, PeeringDB and PCH.
//! Table 1 quantifies their quality: websites are authoritative but cover
//! few IXPs; HE covers the most interfaces; PDB covers the most IXPs; PCH
//! is sparse; each secondary source carries a small rate of conflicting
//! rows (~0.27–0.37 % of interfaces). The [`SourceView`] generators below
//! derive each source from the ground truth through exactly those knobs.

use opeer_net::{Asn, Ipv4Prefix};
use opeer_topology::routing::stable_hash;
use opeer_topology::World;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The four fused sources, in the paper's preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// IXP websites (Euro-IX JSON exports) — most reliable.
    Websites,
    /// Hurricane Electric's exchange report.
    He,
    /// PeeringDB.
    Pdb,
    /// Packet Clearing House.
    Pch,
}

impl SourceKind {
    /// All sources in preference order.
    pub const ORDERED: [SourceKind; 4] = [
        SourceKind::Websites,
        SourceKind::He,
        SourceKind::Pdb,
        SourceKind::Pch,
    ];
}

/// Per-source noise parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SourceNoise {
    /// Fraction of IXPs the source covers at all.
    pub ixp_coverage: f64,
    /// Fraction of a covered IXP's interfaces the source lists.
    pub iface_coverage: f64,
    /// Probability that a listed interface carries the wrong ASN.
    pub iface_error: f64,
    /// Probability that the source lists a slightly-wrong LAN prefix.
    pub prefix_error: f64,
    /// Whether the source records port capacities, and if so the
    /// fraction of members covered.
    pub capacity_coverage: f64,
    /// Probability that a recorded capacity is stale (wrong tier).
    pub capacity_stale: f64,
}

/// Default noise per source, calibrated against Table 1.
pub fn default_noise(kind: SourceKind) -> SourceNoise {
    match kind {
        SourceKind::Websites => SourceNoise {
            ixp_coverage: 1.0, // of the IXPs that publish exports (named set)
            iface_coverage: 1.0,
            iface_error: 0.0,
            prefix_error: 0.0,
            capacity_coverage: 1.0,
            capacity_stale: 0.0,
        },
        SourceKind::He => SourceNoise {
            ixp_coverage: 0.61,
            iface_coverage: 0.95,
            iface_error: 0.0027,
            prefix_error: 0.002,
            capacity_coverage: 0.0,
            capacity_stale: 0.0,
        },
        SourceKind::Pdb => SourceNoise {
            ixp_coverage: 0.90,
            iface_coverage: 0.70,
            iface_error: 0.0028,
            prefix_error: 0.0015,
            capacity_coverage: 0.80,
            capacity_stale: 0.05,
        },
        SourceKind::Pch => SourceNoise {
            ixp_coverage: 0.66,
            iface_coverage: 0.20,
            iface_error: 0.0037,
            prefix_error: 0.002,
            capacity_coverage: 0.0,
            capacity_stale: 0.0,
        },
    }
}

/// One source's view of the IXP ecosystem, keyed by IXP name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SourceView {
    /// Which source this is.
    pub kind: Option<SourceKind>,
    /// Peering-LAN prefixes per IXP.
    pub prefixes: BTreeMap<String, Vec<Ipv4Prefix>>,
    /// Interface assignments per IXP.
    pub interfaces: BTreeMap<String, BTreeMap<Ipv4Addr, Asn>>,
    /// Port capacities per IXP (Mbps per member ASN).
    pub capacities: BTreeMap<String, BTreeMap<Asn, u32>>,
}

/// Generates a secondary source (HE/PDB/PCH) from the ground truth.
/// (The website view is generated through the Euro-IX JSON path in
/// [`crate::fusion`], not here.)
pub fn generate_source(world: &World, kind: SourceKind, seed: u64) -> SourceView {
    let noise = default_noise(kind);
    let tag = kind as u64 + 101;
    let month = world.observation_month;
    let mut view = SourceView {
        kind: Some(kind),
        ..Default::default()
    };

    for (i, ixp) in world.ixps.iter().enumerate() {
        if unit(seed, &[tag, i as u64, 1]) >= noise.ixp_coverage {
            continue;
        }
        // Prefix row, occasionally wrong (shifted LAN).
        let prefix = if unit(seed, &[tag, i as u64, 2]) < noise.prefix_error {
            shift_prefix(ixp.peering_lan)
        } else {
            ixp.peering_lan
        };
        view.prefixes.insert(ixp.name.clone(), vec![prefix]);

        let mut ifaces = BTreeMap::new();
        let mut caps = BTreeMap::new();
        let member_asns: Vec<Asn> = world
            .memberships_of_ixp(opeer_topology::IxpId::from_index(i))
            .iter()
            .map(|&mid| world.ases[world.memberships[mid.index()].member.index()].asn)
            .collect();
        for &mid in world.memberships_of_ixp(opeer_topology::IxpId::from_index(i)) {
            let m = &world.memberships[mid.index()];
            if !m.active_at(month) {
                continue;
            }
            let addr = world.interfaces[m.iface.index()].addr;
            let key = u64::from(u32::from(addr));
            if unit(seed, &[tag, key, 3]) >= noise.iface_coverage {
                continue;
            }
            let true_asn = world.ases[m.member.index()].asn;
            let asn = if unit(seed, &[tag, key, 4]) < noise.iface_error {
                // Wrong row: another member's ASN (a stale reassignment).
                let pick = (stable_hash(&[seed, tag, key, 5]) as usize) % member_asns.len().max(1);
                let wrong = member_asns.get(pick).copied().unwrap_or(true_asn);
                if wrong == true_asn {
                    Asn::new(true_asn.value().wrapping_add(1))
                } else {
                    wrong
                }
            } else {
                true_asn
            };
            ifaces.insert(addr, asn);

            if noise.capacity_coverage > 0.0 && unit(seed, &[tag, key, 6]) < noise.capacity_coverage
            {
                let cap = if unit(seed, &[tag, key, 7]) < noise.capacity_stale {
                    stale_capacity(m.port_mbps, stable_hash(&[seed, tag, key, 8]))
                } else {
                    m.port_mbps
                };
                caps.insert(asn, cap);
            }
        }
        if !ifaces.is_empty() {
            view.interfaces.insert(ixp.name.clone(), ifaces);
        }
        if !caps.is_empty() {
            view.capacities.insert(ixp.name.clone(), caps);
        }
    }
    view
}

fn unit(seed: u64, words: &[u64]) -> f64 {
    let mut v = vec![seed];
    v.extend_from_slice(words);
    (stable_hash(&v) >> 11) as f64 / (1u64 << 53) as f64
}

fn shift_prefix(p: Ipv4Prefix) -> Ipv4Prefix {
    let shifted = u32::from(p.network()).wrapping_add(p.num_addresses() as u32);
    Ipv4Prefix::new(shifted.into(), p.len()).unwrap_or(p)
}

fn stale_capacity(true_mbps: u32, h: u64) -> u32 {
    let options = [100, 500, 1_000, 10_000];
    let pick = options[(h as usize) % options.len()];
    if pick == true_mbps {
        options[(h as usize + 1) % options.len()]
    } else {
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn sources_differ_in_coverage() {
        let w = WorldConfig::small(41).generate();
        let he = generate_source(&w, SourceKind::He, 1);
        let pdb = generate_source(&w, SourceKind::Pdb, 1);
        let pch = generate_source(&w, SourceKind::Pch, 1);
        // PDB covers the most IXPs; PCH lists the fewest interfaces.
        assert!(pdb.prefixes.len() > he.prefixes.len());
        assert!(pdb.prefixes.len() > pch.prefixes.len());
        let total = |v: &SourceView| -> usize { v.interfaces.values().map(BTreeMap::len).sum() };
        assert!(
            total(&he) > total(&pch),
            "HE {} vs PCH {}",
            total(&he),
            total(&pch)
        );
    }

    #[test]
    fn error_rates_are_small_but_nonzero() {
        let w = WorldConfig::small(41).generate();
        let pdb = generate_source(&w, SourceKind::Pdb, 1);
        let mut errors = 0usize;
        let mut total = 0usize;
        for ifaces in pdb.interfaces.values() {
            for (&addr, &asn) in ifaces {
                total += 1;
                let ifc = w.iface_by_addr(addr).expect("addr from world");
                let owner = w.routers[w.interfaces[ifc.index()].router.index()].owner;
                if w.ases[owner.index()].asn != asn {
                    errors += 1;
                }
            }
        }
        let rate = errors as f64 / total.max(1) as f64;
        assert!(rate < 0.02, "error rate {rate} too high");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = WorldConfig::small(41).generate();
        let a = generate_source(&w, SourceKind::He, 7);
        let b = generate_source(&w, SourceKind::He, 7);
        assert_eq!(a.prefixes, b.prefixes);
        assert_eq!(a.interfaces, b.interfaces);
        let c = generate_source(&w, SourceKind::He, 8);
        assert_ne!(a.interfaces, c.interfaces, "seed had no effect");
    }

    #[test]
    fn shifted_prefix_differs() {
        let p: Ipv4Prefix = "185.0.8.0/21".parse().expect("valid");
        let s = shift_prefix(p);
        assert_ne!(p, s);
        assert_eq!(s.len(), 21);
    }

    #[test]
    fn stale_capacity_never_matches_truth() {
        for h in 0..40u64 {
            assert_ne!(stale_capacity(1_000, h), 1_000);
            assert_ne!(stale_capacity(100, h), 100);
        }
    }
}
