//! The validation dataset (Table 2).
//!
//! Fifteen IXPs have best-effort local/remote lists: six straight from
//! operators, nine scraped from websites that publish member port types.
//! The lists are *partial* — operators know which ports are resold but
//! not what happens "beyond that cable", so remote peers are
//! over-represented relative to their population. The per-IXP sampling
//! fractions below are taken directly from Table 2
//! (validated-local / validated-remote vs. total members) so the dataset
//! reproduces at any world scale.

use opeer_net::Asn;
use opeer_topology::routing::stable_hash;
use opeer_topology::{IxpId, ValidationRole, World};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One validated peer interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationEntry {
    /// Peering-LAN interface address.
    pub addr: Ipv4Addr,
    /// Member ASN.
    pub asn: Asn,
    /// `true` = remote (Definition 1), `false` = local.
    pub remote: bool,
}

/// Validation data for one IXP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationIxp {
    /// IXP name.
    pub name: String,
    /// Control or test subset.
    pub role: ValidationRole,
    /// Validated entries (interface level; `VDR ∩ VDL = ∅` by
    /// construction, Table 3).
    pub entries: Vec<ValidationEntry>,
}

impl ValidationIxp {
    /// Count of validated locals.
    pub fn locals(&self) -> usize {
        self.entries.iter().filter(|e| !e.remote).count()
    }

    /// Count of validated remotes.
    pub fn remotes(&self) -> usize {
        self.entries.iter().filter(|e| e.remote).count()
    }
}

/// The whole Table 2 dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidationDataset {
    /// Per-IXP lists.
    pub ixps: Vec<ValidationIxp>,
}

impl ValidationDataset {
    /// All IXPs of one role.
    pub fn of_role(&self, role: ValidationRole) -> impl Iterator<Item = &ValidationIxp> {
        self.ixps.iter().filter(move |v| v.role == role)
    }

    /// Looks up the validation verdict for an interface address.
    pub fn verdict(&self, addr: Ipv4Addr) -> Option<bool> {
        for v in &self.ixps {
            for e in &v.entries {
                if e.addr == addr {
                    return Some(e.remote);
                }
            }
        }
        None
    }

    /// Totals: (validated, locals, remotes).
    pub fn totals(&self) -> (usize, usize, usize) {
        let mut l = 0;
        let mut r = 0;
        for v in &self.ixps {
            l += v.locals();
            r += v.remotes();
        }
        (l + r, l, r)
    }
}

/// Table 2's validated-local / validated-remote counts against total
/// members, per IXP. Used as sampling fractions.
const TABLE2: &[(&str, usize, usize, usize)] = &[
    // (name, total members, validated local, validated remote)
    ("AMS-IX", 878, 258, 205),
    ("DE-CIX FRA", 795, 103, 220),
    ("LINX LON", 770, 71, 99),
    ("DE-CIX NYC", 162, 59, 21),
    ("LINX MAN", 99, 17, 20),
    ("LINX NoVA", 48, 12, 9),
    ("EPIX KAT", 465, 135, 98),
    ("EPIX WAR", 308, 93, 77),
    ("France-IX PAR", 402, 127, 165),
    ("Seattle IX", 296, 180, 66),
    ("Any2 LA", 299, 147, 65),
    ("D.Realty ATL", 142, 42, 43),
    ("France-IX MRS", 77, 19, 12),
    ("AMS-IX HK", 46, 14, 10),
    ("AMS-IX SF", 36, 16, 7),
];

/// Builds the validation dataset by sampling each Table-2 IXP's active
/// members at the published per-class coverage.
pub fn build_validation(world: &World, seed: u64) -> ValidationDataset {
    let month = world.observation_month;
    let mut out = ValidationDataset::default();
    for (i, ixp) in world.ixps.iter().enumerate() {
        if ixp.validation == ValidationRole::None {
            continue;
        }
        let Some(&(_, total, vl, vr)) = TABLE2.iter().find(|row| row.0 == ixp.name) else {
            continue;
        };
        let frac_local = vl as f64 / total as f64;
        let frac_remote = vr as f64 / total as f64;

        let mut locals: Vec<(Ipv4Addr, Asn)> = Vec::new();
        let mut remotes: Vec<(Ipv4Addr, Asn)> = Vec::new();
        for &mid in world.memberships_of_ixp(IxpId::from_index(i)) {
            let m = &world.memberships[mid.index()];
            if !m.active_at(month) {
                continue;
            }
            let addr = world.interfaces[m.iface.index()].addr;
            let asn = world.ases[m.member.index()].asn;
            if m.truth.is_remote() {
                remotes.push((addr, asn));
            } else {
                locals.push((addr, asn));
            }
        }
        let members = locals.len() + remotes.len();
        let n_local = ((members as f64) * frac_local).round() as usize;
        let n_remote = ((members as f64) * frac_remote).round() as usize;

        let mut entries = Vec::new();
        for (cls, pool, n, remote) in [
            (1u64, &mut locals, n_local, false),
            (2u64, &mut remotes, n_remote, true),
        ] {
            // Deterministic shuffle by hash order.
            pool.sort_by_key(|&(addr, _)| {
                stable_hash(&[seed, i as u64, cls, u64::from(u32::from(addr))])
            });
            for &(addr, asn) in pool.iter().take(n) {
                entries.push(ValidationEntry { addr, asn, remote });
            }
        }
        entries.sort_by_key(|e| e.addr);
        out.ixps.push(ValidationIxp {
            name: ixp.name.clone(),
            role: ixp.validation,
            entries,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn fifteen_ixps_with_roles() {
        let w = WorldConfig::small(47).generate();
        let v = build_validation(&w, 3);
        assert_eq!(v.ixps.len(), 15);
        assert_eq!(v.of_role(ValidationRole::Test).count(), 8);
        assert_eq!(v.of_role(ValidationRole::Control).count(), 7);
    }

    #[test]
    fn entries_match_ground_truth_labels() {
        let w = WorldConfig::small(47).generate();
        let v = build_validation(&w, 3);
        for vixp in &v.ixps {
            for e in &vixp.entries {
                let ifc = w.iface_by_addr(e.addr).expect("validated iface exists");
                let mid = w.membership_of_iface(ifc).expect("LAN iface");
                let truth_remote = w.memberships[mid.index()].truth.is_remote();
                assert_eq!(e.remote, truth_remote, "operator label must be truth");
            }
        }
    }

    #[test]
    fn coverage_is_partial() {
        let w = WorldConfig::small(47).generate();
        let v = build_validation(&w, 3);
        for vixp in &v.ixps {
            let ixp_idx = w
                .ixps
                .iter()
                .position(|x| x.name == vixp.name)
                .expect("IXP exists");
            let members = w
                .active_memberships_of_ixp(IxpId::from_index(ixp_idx))
                .len();
            assert!(
                vixp.entries.len() < members || members < 5,
                "{}: validated {} of {} members — should be partial",
                vixp.name,
                vixp.entries.len(),
                members
            );
        }
    }

    #[test]
    fn no_interface_validated_twice() {
        let w = WorldConfig::small(47).generate();
        let v = build_validation(&w, 3);
        let mut seen = std::collections::HashSet::new();
        for vixp in &v.ixps {
            for e in &vixp.entries {
                assert!(seen.insert(e.addr), "duplicate validated addr {}", e.addr);
            }
        }
    }

    #[test]
    fn verdict_lookup() {
        let w = WorldConfig::small(47).generate();
        let v = build_validation(&w, 3);
        let first = v.ixps[0].entries.first().expect("entries exist");
        assert_eq!(v.verdict(first.addr), Some(first.remote));
        assert_eq!(v.verdict("9.9.9.9".parse().expect("valid")), None);
    }
}
