//! Euro-IX-style machine-readable IXP export (the "IX-F Member Export").
//!
//! The paper's highest-preference source is the IXP websites, which
//! publish member lists in the Euro-IX JSON schema (§3.2 \[52\]). This
//! module implements a faithful subset of that schema with serde so the
//! website ingestion path runs through genuine JSON serialisation and
//! parsing — the same code would ingest a real `member-export.json`.

use opeer_topology::{IxpId, World};
use serde::{Deserialize, Serialize};

/// Root of a member export document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberExport {
    /// Schema version tag (the real exports use e.g. "1.0").
    pub version: String,
    /// Exporting IXP list (one per document here).
    pub ixp_list: Vec<IxpRecord>,
    /// Member list.
    pub member_list: Vec<MemberRecord>,
}

/// The exporting IXP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IxpRecord {
    /// IXP short name.
    pub shortname: String,
    /// IPv4 peering LAN prefixes, CIDR strings.
    pub peering_lans: Vec<String>,
    /// Published physical port capacities, Mbps.
    pub capacity_options_mbps: Vec<u32>,
    /// Minimum physical capacity from the pricing page, Mbps.
    pub min_capacity_mbps: u32,
    /// Facility names where the switch fabric is present.
    pub facilities: Vec<String>,
}

/// One member AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberRecord {
    /// Member ASN (numeric, as in the IX-F schema).
    pub asnum: u32,
    /// Connections (one per port).
    pub connection_list: Vec<ConnectionRecord>,
}

/// One port/connection of a member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectionRecord {
    /// Port speed in Mbps.
    pub if_speed: u32,
    /// VLAN interface addresses.
    pub vlan_list: Vec<VlanRecord>,
}

/// Addressing of one VLAN attachment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VlanRecord {
    /// IPv4 address on the peering LAN.
    pub ipv4: String,
}

/// Exports the website view of one IXP from the ground truth. This is
/// what the IXP itself publishes, so it is complete and correct — the
/// paper treats websites as the most reliable source for exactly that
/// reason.
pub fn export_ixp(world: &World, ixp: IxpId) -> MemberExport {
    let x = &world.ixps[ixp.index()];
    let month = world.observation_month;
    let mut members: std::collections::BTreeMap<u32, MemberRecord> = Default::default();
    for &mid in world.memberships_of_ixp(ixp) {
        let m = &world.memberships[mid.index()];
        if !m.active_at(month) {
            continue;
        }
        let asn = world.ases[m.member.index()].asn.value();
        let addr = world.interfaces[m.iface.index()].addr;
        members
            .entry(asn)
            .or_insert_with(|| MemberRecord {
                asnum: asn,
                connection_list: Vec::new(),
            })
            .connection_list
            .push(ConnectionRecord {
                if_speed: m.port_mbps,
                vlan_list: vec![VlanRecord {
                    ipv4: addr.to_string(),
                }],
            });
    }
    MemberExport {
        version: "1.0".to_string(),
        ixp_list: vec![IxpRecord {
            shortname: x.name.clone(),
            peering_lans: vec![x.peering_lan.to_string()],
            capacity_options_mbps: x.capacity_options_mbps.clone(),
            min_capacity_mbps: x.min_physical_capacity_mbps,
            facilities: x
                .facilities
                .iter()
                .map(|f| world.facilities[f.index()].name.clone())
                .collect(),
        }],
        member_list: members.into_values().collect(),
    }
}

/// Serialises an export to JSON.
pub fn to_json(export: &MemberExport) -> String {
    serde_json::to_string_pretty(export).expect("export is serialisable")
}

/// Parses an export from JSON.
pub fn from_json(s: &str) -> Result<MemberExport, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn export_roundtrips_through_json() {
        let w = WorldConfig::small(37).generate();
        let ams = w
            .ixps
            .iter()
            .position(|x| x.name == "AMS-IX")
            .expect("AMS-IX");
        let export = export_ixp(&w, IxpId::from_index(ams));
        assert_eq!(export.ixp_list[0].shortname, "AMS-IX");
        assert!(!export.member_list.is_empty());
        let js = to_json(&export);
        let back = from_json(&js).expect("roundtrip parses");
        assert_eq!(back.member_list.len(), export.member_list.len());
        assert_eq!(
            back.ixp_list[0].peering_lans,
            export.ixp_list[0].peering_lans
        );
    }

    #[test]
    fn export_addresses_live_on_the_lan() {
        let w = WorldConfig::small(37).generate();
        let export = export_ixp(&w, opeer_topology::IxpId::from_index(0));
        let lan: opeer_net::Ipv4Prefix = export.ixp_list[0].peering_lans[0]
            .parse()
            .expect("valid CIDR");
        for m in &export.member_list {
            for c in &m.connection_list {
                for v in &c.vlan_list {
                    let ip: std::net::Ipv4Addr = v.ipv4.parse().expect("valid address");
                    assert!(lan.contains(ip), "{ip} outside {lan}");
                }
            }
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("{\"version\": 1}").is_err());
        assert!(from_json("not json at all").is_err());
    }
}
