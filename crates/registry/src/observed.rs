//! The fused observable dataset.
//!
//! [`ObservedWorld`] is the *only* input the inference pipeline gets
//! besides measurements. Identity keys are observable ones: ASNs,
//! interface addresses, facility names — never ground-truth arena ids.

use crate::validation::ValidationDataset;
use opeer_geo::GeoPoint;
use opeer_net::{Asn, Ipv4Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A facility row in the fused colocation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservedFacility {
    /// Facility name (the cross-source join key, as in PDB/Inflect).
    pub name: String,
    /// Coordinates after Inflect correction (§3.4).
    pub location: GeoPoint,
    /// Whether the PDB coordinates had to be corrected via Inflect.
    pub corrected: bool,
}

/// One IXP as the registries describe it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObservedIxp {
    /// IXP name.
    pub name: String,
    /// Peering-LAN prefixes.
    pub prefixes: Vec<Ipv4Prefix>,
    /// Route server address, when published.
    pub route_server_ip: Option<Ipv4Addr>,
    /// Fused interface assignments: LAN address → member ASN.
    pub interfaces: BTreeMap<Ipv4Addr, Asn>,
    /// Observed port capacity per member ASN, Mbps (website JSON or PDB).
    pub port_capacity: BTreeMap<Asn, u32>,
    /// Minimum *physical* port capacity from the pricing page, Mbps
    /// (`Cmin`, §5.1.1); `None` when the pricing page is unavailable.
    pub cmin_mbps: Option<u32>,
    /// Published physical capacity options, Mbps.
    pub capacity_options: Vec<u32>,
    /// Indices into [`ObservedWorld::facilities`] where the IXP deploys
    /// fabric (fused PDB + website augmentation).
    pub facility_idxs: Vec<usize>,
    /// Whether this IXP is in the §6 study set (has usable VPs).
    pub studied: bool,
}

impl ObservedIxp {
    /// Number of distinct member ASNs.
    pub fn member_count(&self) -> usize {
        let set: std::collections::BTreeSet<Asn> = self.interfaces.values().copied().collect();
        set.len()
    }
}

/// The full fused dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObservedWorld {
    /// IXPs (index = observed IXP id).
    pub ixps: Vec<ObservedIxp>,
    /// Facility rows (deduplicated by name).
    pub facilities: Vec<ObservedFacility>,
    /// Colocation: ASN → facility indices. Absent key = no record at all
    /// (Fig. 5's "N/A" class).
    pub as_facilities: BTreeMap<Asn, Vec<usize>>,
    /// Validation lists (Table 2).
    pub validation: ValidationDataset,
    #[serde(skip)]
    lan_trie: PrefixTrie<usize>,
}

/// Equality over the fused *data* only: the LAN trie is a derived index
/// (rebuilt from `ixps[i].prefixes` by [`ObservedWorld::rebuild_indexes`])
/// and cannot disagree when the prefixes agree.
impl PartialEq for ObservedWorld {
    fn eq(&self, other: &Self) -> bool {
        self.ixps == other.ixps
            && self.facilities == other.facilities
            && self.as_facilities == other.as_facilities
            && self.validation == other.validation
    }
}

impl ObservedWorld {
    /// Rebuilds the LAN-prefix lookup trie (called by the builder).
    pub fn rebuild_indexes(&mut self) {
        self.lan_trie = PrefixTrie::new();
        for (i, ixp) in self.ixps.iter().enumerate() {
            for p in &ixp.prefixes {
                self.lan_trie.insert(*p, i);
            }
        }
    }

    /// The observed IXP whose peering LAN contains `addr`.
    pub fn ixp_of_addr(&self, addr: Ipv4Addr) -> Option<usize> {
        self.lan_trie.longest_match(addr).map(|(_, v)| *v)
    }

    /// The member ASN assigned to a peering-LAN address, with its IXP.
    pub fn member_of_addr(&self, addr: Ipv4Addr) -> Option<(usize, Asn)> {
        let ixp = self.ixp_of_addr(addr)?;
        let asn = *self.ixps[ixp].interfaces.get(&addr)?;
        Some((ixp, asn))
    }

    /// Facility indices where an AS is present (empty slice = record with
    /// no facilities; `None` = no record).
    pub fn facilities_of_as(&self, asn: Asn) -> Option<&[usize]> {
        self.as_facilities.get(&asn).map(Vec::as_slice)
    }

    /// Common facilities of an AS and an IXP (by observed index).
    pub fn common_facilities(&self, asn: Asn, ixp: usize) -> Vec<usize> {
        let Some(af) = self.facilities_of_as(asn) else {
            return Vec::new();
        };
        af.iter()
            .copied()
            .filter(|f| self.ixps[ixp].facility_idxs.contains(f))
            .collect()
    }

    /// Looks up an observed IXP by name.
    pub fn ixp_by_name(&self, name: &str) -> Option<usize> {
        self.ixps.iter().position(|x| x.name == name)
    }

    /// Total interface rows across IXPs.
    pub fn total_interfaces(&self) -> usize {
        self.ixps.iter().map(|x| x.interfaces.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_lookup_after_rebuild() {
        let mut ow = ObservedWorld::default();
        let mut ixp = ObservedIxp {
            name: "TEST-IX".into(),
            prefixes: vec!["185.1.0.0/22".parse().expect("valid")],
            ..Default::default()
        };
        ixp.interfaces
            .insert("185.1.0.10".parse().expect("valid"), Asn::new(65001));
        ow.ixps.push(ixp);
        ow.rebuild_indexes();
        assert_eq!(ow.ixp_of_addr("185.1.1.1".parse().expect("valid")), Some(0));
        assert_eq!(
            ow.member_of_addr("185.1.0.10".parse().expect("valid")),
            Some((0, Asn::new(65001)))
        );
        assert_eq!(
            ow.member_of_addr("185.1.0.11".parse().expect("valid")),
            None
        );
        assert_eq!(ow.ixp_of_addr("10.0.0.1".parse().expect("valid")), None);
    }

    #[test]
    fn member_count_dedups_asns() {
        let mut ixp = ObservedIxp::default();
        ixp.interfaces
            .insert("185.1.0.10".parse().expect("valid"), Asn::new(1));
        ixp.interfaces
            .insert("185.1.0.11".parse().expect("valid"), Asn::new(1));
        ixp.interfaces
            .insert("185.1.0.12".parse().expect("valid"), Asn::new(2));
        assert_eq!(ixp.member_count(), 2);
    }

    #[test]
    fn common_facilities_requires_record() {
        let mut ow = ObservedWorld::default();
        ow.ixps.push(ObservedIxp {
            facility_idxs: vec![0, 1],
            ..Default::default()
        });
        assert!(ow.common_facilities(Asn::new(5), 0).is_empty());
        ow.as_facilities.insert(Asn::new(5), vec![1, 7]);
        assert_eq!(ow.common_facilities(Asn::new(5), 0), vec![1]);
    }
}
