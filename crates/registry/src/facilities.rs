//! The colocation dataset: facilities, IXP fabric lists, AS presence.
//!
//! §3.4: facility rows come from PDB with coordinates verified through
//! Inflect (which corrects a good fraction of them); IXP facility lists
//! are augmented from the websites of the 50 largest IXPs (adding ~48 %
//! more data); AS-to-facility presence is incomplete and sometimes
//! spurious — Fig. 5 shows 18 % of remote peers with no data at all and
//! 5 % apparently colocated (reseller-facility artifacts). All of those
//! artifact classes are generated here, with rates in
//! [`FacilityNoise`].

use crate::observed::ObservedFacility;
use opeer_geo::GeoPoint;
use opeer_net::Asn;
use opeer_topology::routing::stable_hash;
use opeer_topology::{FacilityId, World};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Noise parameters of the colocation dataset.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FacilityNoise {
    /// Fraction of facilities with a PDB row at all.
    pub facility_coverage: f64,
    /// Probability the PDB coordinates are wrong (off by 30–300 km).
    pub coords_wrong: f64,
    /// Probability Inflect corrects wrong coordinates.
    pub inflect_fixes: f64,
    /// Number of top IXPs (by member count) whose facility lists are
    /// completed from their websites.
    pub website_top_n: usize,
    /// Probability PDB lists each facility of a non-top IXP.
    pub ixp_facility_coverage: f64,
    /// Probability an AS has a colocation record at all.
    pub as_record_coverage: f64,
    /// Probability each true facility appears in the AS's record.
    pub as_facility_coverage: f64,
    /// Probability of one spurious extra facility in an AS's record.
    pub as_spurious: f64,
}

impl Default for FacilityNoise {
    fn default() -> Self {
        FacilityNoise {
            facility_coverage: 0.98,
            coords_wrong: 0.30,
            inflect_fixes: 0.95,
            website_top_n: 50,
            ixp_facility_coverage: 0.85,
            as_record_coverage: 0.82,
            as_facility_coverage: 0.93,
            as_spurious: 0.02,
        }
    }
}

/// The built colocation dataset, pre-fusion into [`crate::ObservedWorld`].
#[derive(Debug, Clone, Default)]
pub struct ColocationData {
    /// Facility rows.
    pub facilities: Vec<ObservedFacility>,
    /// Ground-truth facility → observed index (experiments only; the
    /// inference never sees it).
    pub truth_to_observed: BTreeMap<FacilityId, usize>,
    /// IXP name → observed facility indices.
    pub ixp_facilities: BTreeMap<String, Vec<usize>>,
    /// ASN → observed facility indices.
    pub as_facilities: BTreeMap<Asn, Vec<usize>>,
}

/// Builds the colocation dataset from the ground truth.
pub fn build_colocation(world: &World, noise: FacilityNoise, seed: u64) -> ColocationData {
    let mut data = ColocationData::default();

    // Facility rows with the PDB/Inflect coordinate pipeline.
    for (i, f) in world.facilities.iter().enumerate() {
        if unit(seed, &[1, i as u64]) >= noise.facility_coverage {
            continue;
        }
        let wrong = unit(seed, &[2, i as u64]) < noise.coords_wrong;
        let fixed = wrong && unit(seed, &[3, i as u64]) < noise.inflect_fixes;
        let location = if wrong && !fixed {
            offset_point(f.location, seed, i as u64)
        } else {
            f.location
        };
        let idx = data.facilities.len();
        data.facilities.push(ObservedFacility {
            name: f.name.clone(),
            location,
            corrected: fixed,
        });
        data.truth_to_observed
            .insert(FacilityId::from_index(i), idx);
    }

    // IXP facility lists: top-N complete (website augmentation), the rest
    // partially covered by PDB.
    let mut by_members: Vec<(usize, usize)> = world
        .ixps
        .iter()
        .enumerate()
        .map(|(i, _)| {
            (
                i,
                world
                    .memberships_of_ixp(opeer_topology::IxpId::from_index(i))
                    .len(),
            )
        })
        .collect();
    by_members.sort_by_key(|&(i, n)| (std::cmp::Reverse(n), i));
    let top: std::collections::HashSet<usize> = by_members
        .iter()
        .take(noise.website_top_n)
        .map(|&(i, _)| i)
        .collect();
    for (i, ixp) in world.ixps.iter().enumerate() {
        let mut list = Vec::new();
        for &f in &ixp.facilities {
            let listed = top.contains(&i)
                || unit(seed, &[4, i as u64, u64::from(f.0)]) < noise.ixp_facility_coverage;
            if listed {
                if let Some(&idx) = data.truth_to_observed.get(&f) {
                    list.push(idx);
                }
            }
        }
        // An IXP always knows at least one of its own facilities.
        if list.is_empty() {
            if let Some(&idx) = data.truth_to_observed.get(&ixp.anchor_facility) {
                list.push(idx);
            }
        }
        data.ixp_facilities.insert(ixp.name.clone(), list);
    }

    // AS colocation records.
    for (i, a) in world.ases.iter().enumerate() {
        if unit(seed, &[5, i as u64]) >= noise.as_record_coverage {
            continue; // Fig. 5's "no data" class
        }
        let mut list = Vec::new();
        for &f in &a.facilities {
            if unit(seed, &[6, i as u64, u64::from(f.0)]) < noise.as_facility_coverage {
                if let Some(&idx) = data.truth_to_observed.get(&f) {
                    list.push(idx);
                }
            }
        }
        if unit(seed, &[7, i as u64]) < noise.as_spurious && !data.facilities.is_empty() {
            let pick = (stable_hash(&[seed, 8, i as u64]) as usize) % data.facilities.len();
            if !list.contains(&pick) {
                list.push(pick);
            }
        }
        data.as_facilities.insert(a.asn, list);
    }
    data
}

fn unit(seed: u64, words: &[u64]) -> f64 {
    let mut v = vec![seed, 0xFAC];
    v.extend_from_slice(words);
    (stable_hash(&v) >> 11) as f64 / (1u64 << 53) as f64
}

/// Displaces a point by 30–300 km (wrong-coordinates artifact).
fn offset_point(p: GeoPoint, seed: u64, k: u64) -> GeoPoint {
    let u1 = unit(seed, &[9, k]);
    let u2 = unit(seed, &[10, k]);
    let dlat = (u1 - 0.5) * 4.0; // up to ±2° ≈ 220 km
    let dlon = (u2 - 0.5) * 5.0;
    GeoPoint::new((p.lat() + dlat).clamp(-89.0, 89.0), p.lon() + dlon).unwrap_or(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn coverage_rates_hold_roughly() {
        let w = WorldConfig::small(43).generate();
        let d = build_colocation(&w, FacilityNoise::default(), 2);
        let fac_rate = d.facilities.len() as f64 / w.facilities.len() as f64;
        assert!(fac_rate > 0.93, "facility coverage {fac_rate}");
        let rec_rate = d.as_facilities.len() as f64 / w.ases.len() as f64;
        assert!(
            (0.75..0.90).contains(&rec_rate),
            "AS record coverage {rec_rate}"
        );
    }

    #[test]
    fn top_ixps_have_complete_lists() {
        let w = WorldConfig::small(43).generate();
        let d = build_colocation(&w, FacilityNoise::default(), 2);
        // AMS-IX is among the top by members: its observed facility list
        // must match the true one (modulo facilities missing a PDB row).
        let ams = w.ixps.iter().find(|x| x.name == "AMS-IX").expect("AMS-IX");
        let observed = &d.ixp_facilities["AMS-IX"];
        let expected: Vec<usize> = ams
            .facilities
            .iter()
            .filter_map(|f| d.truth_to_observed.get(f).copied())
            .collect();
        assert_eq!(observed, &expected);
    }

    #[test]
    fn some_coordinates_stay_wrong() {
        let w = WorldConfig::small(43).generate();
        let d = build_colocation(&w, FacilityNoise::default(), 2);
        let mut wrong = 0usize;
        for (fid, &idx) in &d.truth_to_observed {
            let true_loc = w.facility_point(*fid);
            if d.facilities[idx].location.distance_km(&true_loc) > 25.0 {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / d.facilities.len() as f64;
        assert!(rate > 0.0, "Inflect fixed everything — artifact class lost");
        assert!(rate < 0.05, "too many wrong coordinates: {rate}");
    }

    #[test]
    fn spurious_and_missing_as_rows_exist() {
        let w = WorldConfig::small(43).generate();
        let d = build_colocation(&w, FacilityNoise::default(), 2);
        let mut missing_rows = 0usize;
        let mut spurious = 0usize;
        for (i, a) in w.ases.iter().enumerate() {
            match d.as_facilities.get(&a.asn) {
                None => missing_rows += 1,
                Some(list) => {
                    let truth: Vec<usize> = a
                        .facilities
                        .iter()
                        .filter_map(|f| d.truth_to_observed.get(f).copied())
                        .collect();
                    if list.iter().any(|f| !truth.contains(f)) {
                        spurious += 1;
                    }
                }
            }
            let _ = i;
        }
        assert!(missing_rows > 0);
        assert!(spurious > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = WorldConfig::small(43).generate();
        let a = build_colocation(&w, FacilityNoise::default(), 2);
        let b = build_colocation(&w, FacilityNoise::default(), 2);
        assert_eq!(a.as_facilities, b.as_facilities);
        assert_eq!(a.facilities.len(), b.facilities.len());
    }
}
