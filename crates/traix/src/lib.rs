//! # opeer-traix — IXP crossing detection in traceroute paths
//!
//! A reimplementation of the traIXroute methodology (\[65\], configured as
//! in §3.3 of the paper): an IXP crossing is announced when a traceroute
//! contains an IP triplet `(IP1, IP2, IP3)` such that
//!
//! 1. `IP2` belongs to an IXP peering LAN and is *assigned* to the same
//!    member AS that owns `IP3`,
//! 2. the AS of `IP1` differs from that AS, and
//! 3. both ASes are members of the IXP owning the LAN.
//!
//! Besides full crossings, the crate extracts the two weaker signals the
//! inference pipeline feeds on:
//!
//! * [`member_ixp_pairs`] — hop pairs `{IPx, IPixp}` where an interface
//!   of a member AS immediately precedes an IXP address (§5.2 step 4's
//!   raw material for multi-IXP router discovery);
//! * [`private_as_links`] — consecutive-hop AS adjacencies *not* crossing
//!   any IXP LAN (§5.2 step 5's private-interconnection set).
//!
//! Inputs are plain hop-address lists plus two lookup structures, so the
//! crate stays independent of how paths were obtained — simulated here,
//! but a real MRT/warts ingester could feed the same API.

use opeer_net::{Asn, IpToAsMap, Ipv4Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Opaque IXP identifier within a [`IxpData`] set (index-like).
pub type IxpRef = u32;

/// The IXP-side lookup data traIXroute needs.
#[derive(Debug, Clone, Default)]
pub struct IxpData {
    lans: PrefixTrie<IxpRef>,
    iface_owner: HashMap<Ipv4Addr, (IxpRef, Asn)>,
    members: BTreeMap<IxpRef, BTreeSet<Asn>>,
}

impl IxpData {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an IXP with its peering LAN prefixes.
    pub fn add_ixp(&mut self, ixp: IxpRef, prefixes: &[Ipv4Prefix]) {
        for p in prefixes {
            self.lans.insert(*p, ixp);
        }
        self.members.entry(ixp).or_default();
    }

    /// Registers a member's LAN interface assignment.
    pub fn add_interface(&mut self, ixp: IxpRef, addr: Ipv4Addr, member: Asn) {
        self.iface_owner.insert(addr, (ixp, member));
        self.members.entry(ixp).or_default().insert(member);
    }

    /// The IXP whose LAN contains `addr`.
    pub fn ixp_of(&self, addr: Ipv4Addr) -> Option<IxpRef> {
        self.lans.longest_match(addr).map(|(_, v)| *v)
    }

    /// The member AS an IXP address is assigned to.
    pub fn assignee(&self, addr: Ipv4Addr) -> Option<(IxpRef, Asn)> {
        self.iface_owner.get(&addr).copied()
    }

    /// Whether `asn` is a member of `ixp`.
    pub fn is_member(&self, ixp: IxpRef, asn: Asn) -> bool {
        self.members.get(&ixp).is_some_and(|m| m.contains(&asn))
    }
}

/// Maps any address to its AS: IXP assignments first (the paper resolves
/// IXP IPs through the interface dataset, not BGP), then longest-prefix
/// match over announced space.
pub fn addr_to_as(addr: Ipv4Addr, data: &IxpData, ip2as: &IpToAsMap) -> Option<Asn> {
    if let Some((_, asn)) = data.assignee(addr) {
        return Some(asn);
    }
    ip2as.unique_origin(addr)
}

/// A detected IXP crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossing {
    /// The IXP crossed.
    pub ixp: IxpRef,
    /// Member AS on the near side (`IP1`).
    pub from: Asn,
    /// Member AS on the far side (assignee of `IP2`, owner of `IP3`).
    pub to: Asn,
    /// The IXP LAN address observed (`IP2`).
    pub lan_addr: Ipv4Addr,
    /// Index of `IP2` in the hop list.
    pub position: usize,
}

/// Detects IXP crossings in one hop-address list (entries may be `None`
/// for non-responding TTLs; windows containing gaps are skipped, as a
/// real traIXroute must).
pub fn detect_crossings(
    hops: &[Option<Ipv4Addr>],
    data: &IxpData,
    ip2as: &IpToAsMap,
) -> Vec<Crossing> {
    let mut out = Vec::new();
    if hops.len() < 3 {
        return out;
    }
    for i in 0..hops.len() - 2 {
        let (Some(a), Some(b), Some(c)) = (hops[i], hops[i + 1], hops[i + 2]) else {
            continue;
        };
        // Condition (i): the middle IP is on an IXP LAN, assigned to the
        // same AS that owns the third IP.
        let Some((ixp, to_asn)) = data.assignee(b) else {
            continue;
        };
        let Some(c_asn) = addr_to_as(c, data, ip2as) else {
            continue;
        };
        if c_asn != to_asn {
            continue;
        }
        // Condition (ii): the first IP belongs to a different AS.
        let Some(from_asn) = addr_to_as(a, data, ip2as) else {
            continue;
        };
        if from_asn == to_asn {
            continue;
        }
        // Condition (iii): both are members of that IXP.
        if !data.is_member(ixp, from_asn) || !data.is_member(ixp, to_asn) {
            continue;
        }
        out.push(Crossing {
            ixp,
            from: from_asn,
            to: to_asn,
            lan_addr: b,
            position: i + 1,
        });
    }
    out
}

/// A `{IPx, IPixp}` observation: a member interface immediately preceding
/// an IXP address (§5.2 step 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberIxpPair {
    /// The member-owned interface (`IPx`).
    pub member_addr: Ipv4Addr,
    /// The AS owning `IPx`.
    pub member: Asn,
    /// The IXP whose address follows.
    pub ixp: IxpRef,
    /// The following IXP LAN address.
    pub lan_addr: Ipv4Addr,
}

/// Extracts all `{IPx, IPixp}` pairs from a hop list: `IPx` must belong
/// (by interface assignment or IP-to-AS) to a member of the IXP whose LAN
/// the next hop sits on.
pub fn member_ixp_pairs(
    hops: &[Option<Ipv4Addr>],
    data: &IxpData,
    ip2as: &IpToAsMap,
) -> Vec<MemberIxpPair> {
    let mut out = Vec::new();
    for w in hops.windows(2) {
        let (Some(x), Some(y)) = (w[0], w[1]) else {
            continue;
        };
        let Some(ixp) = data.ixp_of(y) else { continue };
        let Some(member) = addr_to_as(x, data, ip2as) else {
            continue;
        };
        if data.is_member(ixp, member) {
            out.push(MemberIxpPair {
                member_addr: x,
                member,
                ixp,
                lan_addr: y,
            });
        }
    }
    out
}

/// A private (non-IXP) AS-level adjacency observed between consecutive
/// hops, with the involved interface addresses (§5.2 step 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateHop {
    /// Near-side AS.
    pub a: Asn,
    /// Near-side interface.
    pub a_addr: Ipv4Addr,
    /// Far-side AS.
    pub b: Asn,
    /// Far-side interface (the one whose facility Step 5 votes on).
    pub b_addr: Ipv4Addr,
}

/// Extracts private AS adjacencies: consecutive responding hops in
/// different ASes where *neither* address is on an IXP LAN.
pub fn private_as_links(
    hops: &[Option<Ipv4Addr>],
    data: &IxpData,
    ip2as: &IpToAsMap,
) -> Vec<PrivateHop> {
    let mut out = Vec::new();
    for w in hops.windows(2) {
        let (Some(x), Some(y)) = (w[0], w[1]) else {
            continue;
        };
        if data.ixp_of(x).is_some() || data.ixp_of(y).is_some() {
            continue;
        }
        let (Some(a), Some(b)) = (ip2as.unique_origin(x), ip2as.unique_origin(y)) else {
            continue;
        };
        if a != b {
            out.push(PrivateHop {
                a,
                a_addr: x,
                b,
                b_addr: y,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().expect("valid address")
    }

    fn setup() -> (IxpData, IpToAsMap) {
        let mut data = IxpData::new();
        data.add_ixp(0, &["185.1.0.0/22".parse().expect("valid")]);
        data.add_interface(0, ip("185.1.0.10"), Asn::new(100));
        data.add_interface(0, ip("185.1.0.11"), Asn::new(200));
        let mut ip2as = IpToAsMap::new();
        ip2as.insert("20.0.0.0/16".parse().expect("valid"), Asn::new(100));
        ip2as.insert("20.1.0.0/16".parse().expect("valid"), Asn::new(200));
        ip2as.insert("20.2.0.0/16".parse().expect("valid"), Asn::new(300));
        (data, ip2as)
    }

    #[test]
    fn detects_classic_triplet() {
        let (data, ip2as) = setup();
        // AS200 internal → AS100's LAN iface → AS100 internal.
        let hops = vec![
            Some(ip("20.1.0.1")),
            Some(ip("185.1.0.10")),
            Some(ip("20.0.0.5")),
        ];
        let xs = detect_crossings(&hops, &data, &ip2as);
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].from, Asn::new(200));
        assert_eq!(xs[0].to, Asn::new(100));
        assert_eq!(xs[0].position, 1);
    }

    #[test]
    fn rejects_when_third_hop_is_foreign() {
        let (data, ip2as) = setup();
        // Third hop in AS300 ≠ assignee AS100: condition (i) fails.
        let hops = vec![
            Some(ip("20.1.0.1")),
            Some(ip("185.1.0.10")),
            Some(ip("20.2.0.5")),
        ];
        assert!(detect_crossings(&hops, &data, &ip2as).is_empty());
    }

    #[test]
    fn rejects_non_member_first_hop() {
        let (data, ip2as) = setup();
        // AS300 is not an IXP member: condition (iii) fails.
        let hops = vec![
            Some(ip("20.2.0.1")),
            Some(ip("185.1.0.10")),
            Some(ip("20.0.0.5")),
        ];
        assert!(detect_crossings(&hops, &data, &ip2as).is_empty());
    }

    #[test]
    fn rejects_same_as_on_both_sides() {
        let (data, ip2as) = setup();
        let hops = vec![
            Some(ip("20.0.0.1")),
            Some(ip("185.1.0.10")),
            Some(ip("20.0.0.5")),
        ];
        assert!(detect_crossings(&hops, &data, &ip2as).is_empty());
    }

    #[test]
    fn gaps_break_triplets() {
        let (data, ip2as) = setup();
        let hops = vec![
            Some(ip("20.1.0.1")),
            None,
            Some(ip("185.1.0.10")),
            Some(ip("20.0.0.5")),
        ];
        assert!(detect_crossings(&hops, &data, &ip2as).is_empty());
    }

    #[test]
    fn unassigned_lan_addr_not_a_crossing() {
        let (data, ip2as) = setup();
        // 185.1.0.99 is on the LAN but not in the interface dataset.
        let hops = vec![
            Some(ip("20.1.0.1")),
            Some(ip("185.1.0.99")),
            Some(ip("20.0.0.5")),
        ];
        assert!(detect_crossings(&hops, &data, &ip2as).is_empty());
    }

    #[test]
    fn member_pairs_from_lan_and_internal_addresses() {
        let (data, ip2as) = setup();
        // A member's own LAN iface preceding another LAN iface (the
        // multi-IXP-router signature: one box, two IXPs).
        let hops = vec![Some(ip("185.1.0.11")), Some(ip("185.1.0.10"))];
        let pairs = member_ixp_pairs(&hops, &data, &ip2as);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].member, Asn::new(200));
        assert_eq!(pairs[0].ixp, 0);

        // An internal address preceding a LAN iface.
        let hops = vec![Some(ip("20.1.0.7")), Some(ip("185.1.0.10"))];
        let pairs = member_ixp_pairs(&hops, &data, &ip2as);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].member_addr, ip("20.1.0.7"));
    }

    #[test]
    fn non_member_predecessor_yields_no_pair() {
        let (data, ip2as) = setup();
        let hops = vec![Some(ip("20.2.0.7")), Some(ip("185.1.0.10"))];
        assert!(member_ixp_pairs(&hops, &data, &ip2as).is_empty());
    }

    #[test]
    fn private_links_skip_ixp_hops() {
        let (data, ip2as) = setup();
        let hops = vec![
            Some(ip("20.0.0.1")),
            Some(ip("20.1.0.1")),   // AS100→AS200 private
            Some(ip("185.1.0.10")), // LAN hop: next window skipped
            Some(ip("20.0.0.2")),
            Some(ip("20.2.0.9")), // AS100→AS300 private
        ];
        let links = private_as_links(&hops, &data, &ip2as);
        assert_eq!(links.len(), 2);
        assert_eq!((links[0].a, links[0].b), (Asn::new(100), Asn::new(200)));
        assert_eq!((links[1].a, links[1].b), (Asn::new(100), Asn::new(300)));
    }

    #[test]
    fn addr_to_as_prefers_interface_assignment() {
        let (data, ip2as) = setup();
        // LAN addresses resolve through the assignment dataset...
        assert_eq!(
            addr_to_as(ip("185.1.0.11"), &data, &ip2as),
            Some(Asn::new(200))
        );
        // ...and ordinary addresses through longest-prefix match.
        assert_eq!(
            addr_to_as(ip("20.2.0.1"), &data, &ip2as),
            Some(Asn::new(300))
        );
        assert_eq!(addr_to_as(ip("9.9.9.9"), &data, &ip2as), None);
    }
}
