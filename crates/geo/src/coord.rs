//! WGS-84 coordinates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the WGS-84 ellipsoid, in decimal degrees.
///
/// Latitude is clamped-validated to `[-90, 90]`; longitude is normalised to
/// `(-180, 180]` so that registry rows using `0..360` conventions compare
/// equal to their signed twins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point, returning `None` for non-finite or out-of-range
    /// latitude. Longitude is normalised rather than rejected.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Option<Self> {
        if !lat_deg.is_finite() || !lon_deg.is_finite() || !(-90.0..=90.0).contains(&lat_deg) {
            return None;
        }
        Some(GeoPoint {
            lat_deg,
            lon_deg: normalize_lon(lon_deg),
        })
    }

    /// Latitude in decimal degrees, `[-90, 90]`.
    pub const fn lat(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in decimal degrees, `(-180, 180]`.
    pub const fn lon(&self) -> f64 {
        self.lon_deg
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat_deg.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon_deg.to_radians()
    }

    /// Geodesic distance to `other` in metres (see [`crate::geodesic`]).
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        crate::geodesic::distance_m(*self, *other)
    }

    /// Geodesic distance to `other` in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        self.distance_m(other) / 1000.0
    }
}

fn normalize_lon(lon: f64) -> f64 {
    let mut l = lon % 360.0;
    if l > 180.0 {
        l -= 360.0;
    } else if l <= -180.0 {
        l += 360.0;
    }
    l
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let p = GeoPoint::new(52.3, 4.9).unwrap(); // Amsterdam
        assert_eq!(p.lat(), 52.3);
        assert_eq!(p.lon(), 4.9);
    }

    #[test]
    fn rejects_bad_latitude() {
        assert!(GeoPoint::new(90.1, 0.0).is_none());
        assert!(GeoPoint::new(-90.1, 0.0).is_none());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_none());
        assert!(GeoPoint::new(0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn normalises_longitude() {
        assert_eq!(GeoPoint::new(0.0, 190.0).unwrap().lon(), -170.0);
        assert_eq!(GeoPoint::new(0.0, -190.0).unwrap().lon(), 170.0);
        assert_eq!(GeoPoint::new(0.0, 360.0).unwrap().lon(), 0.0);
        assert_eq!(GeoPoint::new(0.0, 180.0).unwrap().lon(), 180.0);
        assert_eq!(GeoPoint::new(0.0, -180.0).unwrap().lon(), 180.0);
    }

    #[test]
    fn poles_are_valid() {
        assert!(GeoPoint::new(90.0, 0.0).is_some());
        assert!(GeoPoint::new(-90.0, 123.0).is_some());
    }
}
