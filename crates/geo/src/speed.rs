//! The RTT⇄distance feasibility model (paper §5.2 step 3, Fig. 6, Fig. 7).
//!
//! Two empirical speed bounds convert a minimum RTT into a feasible
//! distance annulus around the vantage point:
//!
//! * **Upper bound** — Katz-Bassett et al. \[54\]: end-to-end probe packets
//!   cover at most `vmax = (4/9)·c` of ground distance per unit of RTT.
//!   The paper applies this to the *full* RTT (its Fig. 7 worked example:
//!   4 ms → dmax ≈ 533 km), so `dmax = vmax · rtt`.
//! * **Lower bound** — a logarithmic fit to Y.1731 inter-facility delay
//!   measurements (Fig. 6): `vmin(d) = A · (ln d[km] − 3)` m/s. Short paths
//!   can be arbitrarily slow (switch/router processing dominates), long
//!   paths cannot: a 4 ms RTT cannot come from a 50 km target. `dmin` is
//!   the largest self-consistent solution of `d = vmin(d) · rtt`, or 0
//!   when no solution exists (RTT below ≈2 ms constrains nothing), which
//!   reproduces the paper's observation that RTTs above ≈2 ms are a strong
//!   remoteness signal while lower RTTs are inconclusive.
//!
//! The published fit constant is typeset as `10⁷·(ln d − 3)`; the figure's
//! axis units are not recoverable from the text, so the default `A` here is
//! refit to the paper's own worked example (4 ms → dmin ≈ 299 km). See
//! DESIGN.md §5.

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// A feasible distance range (annulus) around a vantage point, km.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Annulus {
    /// Inner radius: the target cannot be closer than this.
    pub min_km: f64,
    /// Outer radius: the target cannot be farther than this.
    pub max_km: f64,
}

impl Annulus {
    /// Whether a point at `d_km` from the vantage point is inside the
    /// annulus (inclusive on both edges).
    pub fn contains(&self, d_km: f64) -> bool {
        d_km >= self.min_km && d_km <= self.max_km
    }

    /// Width of the annulus in km.
    pub fn width_km(&self) -> f64 {
        (self.max_km - self.min_km).max(0.0)
    }
}

/// The two-sided speed model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedModel {
    /// Maximum effective ground speed per unit RTT, m/s.
    pub v_max_m_s: f64,
    /// Fit coefficient `A` of `vmin(d) = A·(ln d[km] − ln_offset)`, m/s.
    pub v_min_coeff_m_s: f64,
    /// Fit offset (the paper's `3`).
    pub v_min_ln_offset: f64,
    /// Saturation value of the lower bound, m/s. The published fit was made
    /// on intra-European Y.1731 samples (≲ 2500 km); extrapolating the
    /// logarithm past its data range would cross `vmax` and invert the
    /// annulus, so the lower bound flattens here instead — long-haul paths
    /// are never assumed to be more than ~60 % light-speed efficient.
    pub v_min_saturation_m_s: f64,
}

impl Default for SpeedModel {
    fn default() -> Self {
        SpeedModel {
            v_max_m_s: 4.0 / 9.0 * SPEED_OF_LIGHT_M_S,
            v_min_coeff_m_s: 2.77e7,
            v_min_ln_offset: 3.0,
            v_min_saturation_m_s: 8.0e7,
        }
    }
}

impl SpeedModel {
    /// The lower speed bound at distance `d_km`, in m/s. Negative values
    /// (short distances, where the fit constrains nothing) are clamped to
    /// zero; long distances saturate at `v_min_saturation_m_s`.
    pub fn v_min_m_s(&self, d_km: f64) -> f64 {
        if d_km <= 0.0 {
            return 0.0;
        }
        (self.v_min_coeff_m_s * (d_km.ln() - self.v_min_ln_offset))
            .clamp(0.0, self.v_min_saturation_m_s)
    }

    /// Maximum feasible distance for an RTT, km: `vmax · rtt`.
    pub fn d_max_km(&self, rtt_ms: f64) -> f64 {
        if rtt_ms <= 0.0 {
            return 0.0;
        }
        self.v_max_m_s * (rtt_ms / 1000.0) / 1000.0
    }

    /// Minimum feasible distance for an RTT, km: the largest fixed point of
    /// `d = vmin(d)·rtt`, found by damped iteration from `d_max`; 0 when
    /// the RTT is too small to constrain proximity (below ≈2 ms with the
    /// default fit).
    pub fn d_min_km(&self, rtt_ms: f64) -> f64 {
        if rtt_ms <= 0.0 {
            return 0.0;
        }
        let t_s = rtt_ms / 1000.0;
        let mut d_km = self.d_max_km(rtt_ms);
        for _ in 0..200 {
            let next = self.v_min_m_s(d_km) * t_s / 1000.0;
            if next <= f64::EPSILON {
                return 0.0;
            }
            if (next - d_km).abs() < 1e-9 {
                return next;
            }
            d_km = next;
        }
        d_km
    }

    /// The feasibility annulus for a minimum RTT in milliseconds.
    pub fn feasible_annulus_ms(&self, rtt_ms: f64) -> Annulus {
        Annulus {
            min_km: self.d_min_km(rtt_ms),
            max_km: self.d_max_km(rtt_ms),
        }
    }

    /// The annulus for a looking glass that rounds RTTs *up* to integer
    /// milliseconds (§6.1): the outer radius uses the rounded value, the
    /// inner radius uses `rtt − 1 ms` (`RTT′min` in the paper).
    pub fn feasible_annulus_rounded_ms(&self, rtt_ms: f64) -> Annulus {
        Annulus {
            min_km: self.d_min_km((rtt_ms - 1.0).max(0.0)),
            max_km: self.d_max_km(rtt_ms),
        }
    }

    /// Whether a target at `d_km` is consistent with an observed `rtt_ms`.
    pub fn is_distance_feasible(&self, d_km: f64, rtt_ms: f64) -> bool {
        self.feasible_annulus_ms(rtt_ms).contains(d_km)
    }

    /// The smallest RTT (ms) physically possible to a target at `d_km`:
    /// straight-line travel at `vmax`.
    pub fn min_rtt_ms_for_distance(&self, d_km: f64) -> f64 {
        d_km * 1000.0 / self.v_max_m_s * 1000.0
    }

    /// The largest plausible RTT (ms) to a target at `d_km` under the lower
    /// speed bound, or `None` when the bound does not constrain (short
    /// distances where `vmin ≤ 0`).
    pub fn max_rtt_ms_for_distance(&self, d_km: f64) -> Option<f64> {
        let v = self.v_min_m_s(d_km);
        if v <= 0.0 {
            None
        } else {
            Some(d_km * 1000.0 / v * 1000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_worked_example() {
        // §5.2: RTTmin = 4 ms from an Amsterdam VP → annulus ≈ [299, 532] km.
        let m = SpeedModel::default();
        let a = m.feasible_annulus_ms(4.0);
        assert!((a.max_km - 532.9).abs() < 2.0, "dmax {}", a.max_km);
        assert!((a.min_km - 299.0).abs() < 10.0, "dmin {}", a.min_km);
        // London (~360 km) and Frankfurt (~365 km) feasible; Amsterdam (0 km)
        // and Vienna (~960 km) not.
        assert!(a.contains(360.0));
        assert!(a.contains(365.0));
        assert!(!a.contains(0.0));
        assert!(!a.contains(960.0));
    }

    #[test]
    fn small_rtt_has_no_inner_bound() {
        let m = SpeedModel::default();
        // Below ~2 ms the fit cannot exclude proximity: a 1 ms RTT is
        // consistent with a colocated router (0 km) — 18% of remote peers
        // are within 1 ms of the IXP (Fig. 1b) and conversely locals with
        // sub-ms RTTs keep their own facility feasible.
        assert_eq!(m.d_min_km(1.0), 0.0);
        assert_eq!(m.d_min_km(0.3), 0.0);
        assert!(m.is_distance_feasible(0.0, 0.5));
        assert!(m.is_distance_feasible(0.0, 1.0));
    }

    #[test]
    fn two_ms_is_the_remoteness_knee() {
        // §4.1: "RTT values above 2 ms are a very strong indication of
        // remote peers". The fit's critical RTT sits just below 2 ms.
        let m = SpeedModel::default();
        assert_eq!(m.d_min_km(1.8), 0.0);
        assert!(m.d_min_km(2.1) > 40.0);
    }

    #[test]
    fn dmax_scales_linearly() {
        let m = SpeedModel::default();
        let d1 = m.d_max_km(1.0);
        let d10 = m.d_max_km(10.0);
        assert!((d10 / d1 - 10.0).abs() < 1e-9);
        // 1 ms ≈ 133 km at 4/9·c over the full RTT.
        assert!((d1 - 133.2).abs() < 0.5, "got {d1}");
    }

    #[test]
    fn zero_and_negative_rtt() {
        let m = SpeedModel::default();
        assert_eq!(m.d_max_km(0.0), 0.0);
        assert_eq!(m.d_min_km(0.0), 0.0);
        assert_eq!(m.d_max_km(-1.0), 0.0);
        let a = m.feasible_annulus_ms(0.0);
        assert!(a.contains(0.0));
        assert!(!a.contains(1.0));
    }

    #[test]
    fn annulus_nesting_monotone() {
        // Larger RTT ⇒ outer radius grows; inner radius grows once past the
        // critical RTT.
        let m = SpeedModel::default();
        let mut prev_max = 0.0;
        let mut prev_min = 0.0;
        for rtt in [1.0, 2.0, 3.0, 5.0, 10.0, 50.0, 100.0] {
            let a = m.feasible_annulus_ms(rtt);
            assert!(a.max_km >= prev_max);
            assert!(a.min_km >= prev_min, "rtt {rtt}: {} < {prev_min}", a.min_km);
            assert!(a.min_km <= a.max_km);
            prev_max = a.max_km;
            prev_min = a.min_km;
        }
    }

    #[test]
    fn rounded_lg_annulus_widens_inward() {
        let m = SpeedModel::default();
        let exact = m.feasible_annulus_ms(4.0);
        let rounded = m.feasible_annulus_rounded_ms(4.0);
        assert_eq!(exact.max_km, rounded.max_km);
        assert!(rounded.min_km < exact.min_km);
        // A 1 ms LG reading constrains nothing inward.
        let one = m.feasible_annulus_rounded_ms(1.0);
        assert_eq!(one.min_km, 0.0);
    }

    #[test]
    fn rtt_bounds_for_distance_are_consistent() {
        let m = SpeedModel::default();
        let d = 400.0;
        let lo = m.min_rtt_ms_for_distance(d);
        let hi = m.max_rtt_ms_for_distance(d).unwrap();
        assert!(lo < hi);
        // Any RTT between the bounds must consider d feasible.
        let mid = (lo + hi) / 2.0;
        assert!(m.is_distance_feasible(d, mid), "d={d} rtt={mid}");
        // Short distances have no upper RTT bound.
        assert!(m.max_rtt_ms_for_distance(10.0).is_none());
    }

    #[test]
    fn fig6_shape_vmin_below_vmax() {
        let m = SpeedModel::default();
        for d in [30.0, 100.0, 500.0, 2000.0, 10000.0] {
            assert!(m.v_min_m_s(d) < m.v_max_m_s, "d={d}");
        }
        // vmin grows with distance (long paths are relatively direct).
        assert!(m.v_min_m_s(1000.0) > m.v_min_m_s(100.0));
    }

    #[test]
    fn annulus_width() {
        let a = Annulus {
            min_km: 100.0,
            max_km: 250.0,
        };
        assert_eq!(a.width_km(), 150.0);
        let degenerate = Annulus {
            min_km: 5.0,
            max_km: 2.0,
        };
        assert_eq!(degenerate.width_km(), 0.0);
    }
}
