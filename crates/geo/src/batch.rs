//! Bulk geodesic evaluation over contiguous point arrays.
//!
//! Step 3 of the methodology evaluates every consolidated observation
//! against the *same* facility array: the per-observation work is "for
//! each facility, is the VP→facility distance inside the annulus?".
//! Done naively this recomputes an ellipsoidal inverse geodesic per
//! (observation, facility) pair even though a handful of vantage-point
//! locations serve thousands of observations.
//!
//! This module provides the flat building block: fill a dense `f64` row
//! of distances from one reference point to a contiguous origin array,
//! exactly one [`GeoPoint::distance_km`] call per origin, in origin
//! order. Because each entry is produced by the *same* pure call the
//! per-lookup code would have made, consumers that read the row instead
//! of recomputing stay bit-identical — the row is a cache, not an
//! approximation.

use crate::coord::GeoPoint;
use crate::speed::Annulus;

/// Distances (km) from every point of `origins` to `to`, in origin
/// order. Each entry is `origins[i].distance_km(to)` — the same call,
/// same argument order, same IEEE result as an unbatched probe.
pub fn distances_km(origins: &[GeoPoint], to: &GeoPoint) -> Vec<f64> {
    origins.iter().map(|p| p.distance_km(to)).collect()
}

/// How many of `distances` fall inside the annulus (inclusive, matching
/// [`Annulus::contains`]).
pub fn count_in_annulus(distances: &[f64], annulus: &Annulus) -> usize {
    distances.iter().filter(|&&d| annulus.contains(d)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).expect("valid")
    }

    #[test]
    fn rows_match_unbatched_probes_bit_for_bit() {
        let origins = [
            p(52.37, 4.89),
            p(50.11, 8.68),
            p(51.51, -0.13),
            p(40.71, -74.0),
        ];
        let vp = p(48.86, 2.35);
        let row = distances_km(&origins, &vp);
        assert_eq!(row.len(), origins.len());
        for (i, o) in origins.iter().enumerate() {
            // Bit equality, not approximate equality: the batch row must
            // be substitutable for the per-lookup call.
            assert_eq!(row[i].to_bits(), o.distance_km(&vp).to_bits(), "origin {i}");
        }
    }

    #[test]
    fn annulus_counting_is_inclusive() {
        let distances = [10.0, 20.0, 30.0, 40.0];
        let annulus = Annulus {
            min_km: 20.0,
            max_km: 30.0,
        };
        assert_eq!(count_in_annulus(&distances, &annulus), 2);
    }
}
