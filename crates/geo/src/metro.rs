//! Metropolitan-area clustering of facilities.
//!
//! The paper defines a metropolitan area as a disk of 100 km diameter
//! (§2 fn. 2) and classifies an IXP as *wide-area* when its switching
//! fabric spans facilities more than 50 km apart — i.e. facilities in
//! different metro areas (§4.2). Because facility rows name cities
//! inconsistently, the classification works on geodesic distances between
//! coordinates, not on city strings.
//!
//! Clustering is single-linkage over the "within `threshold_km`" relation,
//! implemented with a union-find over all point pairs. O(n²) pair checks
//! are fine at facility scale (≤ a few thousand points per IXP/operator).

use crate::coord::GeoPoint;
use crate::geodesic::distance_km;

/// The paper's threshold: facilities more than 50 km apart are in
/// different metropolitan areas.
pub const DEFAULT_METRO_THRESHOLD_KM: f64 = 50.0;

/// Union-find based single-linkage clusterer.
///
/// ```
/// use opeer_geo::{GeoPoint, MetroClusterer};
///
/// let ams1 = GeoPoint::new(52.37, 4.90).unwrap();
/// let ams2 = GeoPoint::new(52.30, 4.94).unwrap(); // ~9 km away
/// let fra = GeoPoint::new(50.11, 8.68).unwrap();  // ~360 km away
///
/// let clusters = MetroClusterer::default().cluster(&[ams1, ams2, fra]);
/// assert_eq!(clusters.num_clusters(), 2);
/// assert_eq!(clusters.cluster_of(0), clusters.cluster_of(1));
/// assert_ne!(clusters.cluster_of(0), clusters.cluster_of(2));
/// ```
#[derive(Debug, Clone)]
pub struct MetroClusterer {
    threshold_km: f64,
}

impl Default for MetroClusterer {
    fn default() -> Self {
        MetroClusterer {
            threshold_km: DEFAULT_METRO_THRESHOLD_KM,
        }
    }
}

impl MetroClusterer {
    /// Creates a clusterer with a custom linkage threshold in km.
    pub fn new(threshold_km: f64) -> Self {
        MetroClusterer { threshold_km }
    }

    /// Clusters `points`; indices in the result refer to positions in the
    /// input slice.
    pub fn cluster(&self, points: &[GeoPoint]) -> Clusters {
        let mut uf = UnionFind::new(points.len());
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if distance_km(points[i], points[j]) <= self.threshold_km {
                    uf.union(i, j);
                }
            }
        }
        Clusters::from_union_find(uf)
    }
}

/// Result of a clustering run: a cluster id per input point.
#[derive(Debug, Clone)]
pub struct Clusters {
    /// Dense cluster id (0-based) per input index.
    assignment: Vec<usize>,
    num_clusters: usize,
}

impl Clusters {
    fn from_union_find(mut uf: UnionFind) -> Self {
        let n = uf.parent.len();
        let mut dense = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(n);
        for i in 0..n {
            let root = uf.find(i);
            let next = dense.len();
            let id = *dense.entry(root).or_insert(next);
            assignment.push(id);
        }
        Clusters {
            assignment,
            num_clusters: dense.len(),
        }
    }

    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Cluster id of input point `idx`.
    pub fn cluster_of(&self, idx: usize) -> usize {
        self.assignment[idx]
    }

    /// Members of each cluster, as input indices.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (idx, &c) in self.assignment.iter().enumerate() {
            out[c].push(idx);
        }
        out
    }

    /// Whether the points span more than one metro area — the paper's
    /// *wide-area* test when applied to one IXP's facilities.
    pub fn is_wide_area(&self) -> bool {
        self.num_clusters > 1
    }
}

/// Maximum geodesic distance between any two of `points`, in km
/// (0 for fewer than two points). Used by the Fig. 2b experiment
/// ("max distance between IXP facilities vs. number of members").
pub fn max_pairwise_distance_km(points: &[GeoPoint]) -> f64 {
    let mut max = 0.0f64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            max = max.max(distance_km(points[i], points[j]));
        }
    }
    max
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn empty_and_singleton() {
        let c = MetroClusterer::default().cluster(&[]);
        assert_eq!(c.num_clusters(), 0);
        assert!(!c.is_wide_area());

        let c = MetroClusterer::default().cluster(&[pt(52.0, 4.0)]);
        assert_eq!(c.num_clusters(), 1);
        assert!(!c.is_wide_area());
    }

    #[test]
    fn transitive_chaining_links_clusters() {
        // A chain of points each 40 km apart: single linkage joins all,
        // even though the endpoints are > 50 km apart.
        let base = pt(52.0, 4.0);
        let step = 40.0 / 111.0; // ~40 km in latitude degrees
        let chain: Vec<GeoPoint> = (0..4).map(|i| pt(52.0 + step * i as f64, 4.0)).collect();
        assert!(distance_km(chain[0], chain[3]) > 50.0);
        let c = MetroClusterer::default().cluster(&chain);
        assert_eq!(c.num_clusters(), 1);
        let _ = base;
    }

    #[test]
    fn wide_area_detection() {
        // NL-IX-like: Amsterdam + London + Bucharest.
        let pts = [pt(52.37, 4.9), pt(51.51, -0.13), pt(44.43, 26.1)];
        let c = MetroClusterer::default().cluster(&pts);
        assert!(c.is_wide_area());
        assert_eq!(c.num_clusters(), 3);

        // DE-CIX-FRA-like: many facilities in one metro.
        let pts = [pt(50.11, 8.68), pt(50.09, 8.74), pt(50.13, 8.60)];
        let c = MetroClusterer::default().cluster(&pts);
        assert!(!c.is_wide_area());
    }

    #[test]
    fn members_partition_input() {
        let pts = [pt(52.37, 4.9), pt(52.35, 4.95), pt(51.51, -0.13)];
        let c = MetroClusterer::default().cluster(&pts);
        let members = c.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
        assert_eq!(members.len(), c.num_clusters());
    }

    #[test]
    fn max_pairwise() {
        assert_eq!(max_pairwise_distance_km(&[]), 0.0);
        assert_eq!(max_pairwise_distance_km(&[pt(0.0, 0.0)]), 0.0);
        let d = max_pairwise_distance_km(&[pt(51.51, -0.13), pt(44.43, 26.1), pt(50.11, 8.68)]);
        assert!(d > 1300.0, "LON-BUH should dominate, got {d}");
    }

    #[test]
    fn custom_threshold() {
        let a = pt(52.0, 4.0);
        let b = pt(52.0, 4.0 + 80.0 / 68.0); // ~80 km east at 52°N
        let near = MetroClusterer::new(100.0).cluster(&[a, b]);
        assert_eq!(near.num_clusters(), 1);
        let strict = MetroClusterer::new(50.0).cluster(&[a, b]);
        assert_eq!(strict.num_clusters(), 2);
    }
}
