//! Ellipsoidal and spherical distance computations.
//!
//! The precise engine is Vincenty's inverse formula on the WGS-84
//! ellipsoid, accurate to ~0.5 mm for all point pairs at which the
//! iteration converges (everything except near-antipodal pairs). For the
//! rare non-convergent near-antipodal case — which does not occur between
//! real IXP facilities and vantage points — [`distance_m`] falls back to
//! the haversine great-circle distance on the mean-radius sphere and the
//! error stays below the ellipsoidal flattening bound (~0.56 %, i.e. far
//! below the paper's 50 km metro threshold at those distances).

use crate::coord::GeoPoint;

/// WGS-84 semi-major axis, metres.
pub const WGS84_A: f64 = 6_378_137.0;
/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;
/// WGS-84 semi-minor axis, metres.
pub const WGS84_B: f64 = WGS84_A * (1.0 - WGS84_F);
/// Mean Earth radius (IUGG), metres — used by the haversine fallback.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Haversine great-circle distance in metres on the mean-radius sphere.
pub fn haversine_m(p1: GeoPoint, p2: GeoPoint) -> f64 {
    let (lat1, lon1) = (p1.lat_rad(), p1.lon_rad());
    let (lat2, lon2) = (p2.lat_rad(), p2.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin()
}

/// Vincenty's inverse formula on WGS-84: distance in metres, or `None` if
/// the iteration fails to converge (near-antipodal pairs).
pub fn vincenty_inverse_m(p1: GeoPoint, p2: GeoPoint) -> Option<f64> {
    let (lat1, lon1) = (p1.lat_rad(), p1.lon_rad());
    let (lat2, lon2) = (p2.lat_rad(), p2.lon_rad());
    if (lat1 - lat2).abs() < 1e-15 && (lon1 - lon2).abs() < 1e-15 {
        return Some(0.0);
    }

    let f = WGS84_F;
    let l = lon2 - lon1;
    let u1 = ((1.0 - f) * lat1.tan()).atan();
    let u2 = ((1.0 - f) * lat2.tan()).atan();
    let (sin_u1, cos_u1) = u1.sin_cos();
    let (sin_u2, cos_u2) = u2.sin_cos();

    let mut lambda = l;
    let mut iter = 0;
    let (sin_sigma, cos_sigma, sigma, cos_sq_alpha, cos_2sigma_m) = loop {
        let (sin_lambda, cos_lambda) = lambda.sin_cos();
        let sin_sigma = ((cos_u2 * sin_lambda).powi(2)
            + (cos_u1 * sin_u2 - sin_u1 * cos_u2 * cos_lambda).powi(2))
        .sqrt();
        if sin_sigma == 0.0 {
            // Coincident points.
            return Some(0.0);
        }
        let cos_sigma = sin_u1 * sin_u2 + cos_u1 * cos_u2 * cos_lambda;
        let sigma = sin_sigma.atan2(cos_sigma);
        let sin_alpha = cos_u1 * cos_u2 * sin_lambda / sin_sigma;
        let cos_sq_alpha = 1.0 - sin_alpha * sin_alpha;
        // Equatorial line: cos²α = 0.
        let cos_2sigma_m = if cos_sq_alpha.abs() < 1e-12 {
            0.0
        } else {
            cos_sigma - 2.0 * sin_u1 * sin_u2 / cos_sq_alpha
        };
        let c = f / 16.0 * cos_sq_alpha * (4.0 + f * (4.0 - 3.0 * cos_sq_alpha));
        let lambda_prev = lambda;
        lambda = l
            + (1.0 - c)
                * f
                * sin_alpha
                * (sigma
                    + c * sin_sigma
                        * (cos_2sigma_m
                            + c * cos_sigma * (-1.0 + 2.0 * cos_2sigma_m * cos_2sigma_m)));
        if (lambda - lambda_prev).abs() < 1e-12 {
            break (sin_sigma, cos_sigma, sigma, cos_sq_alpha, cos_2sigma_m);
        }
        iter += 1;
        if iter > 200 {
            return None; // near-antipodal: no convergence
        }
    };

    let u_sq = cos_sq_alpha * (WGS84_A * WGS84_A - WGS84_B * WGS84_B) / (WGS84_B * WGS84_B);
    let a_coef = 1.0 + u_sq / 16384.0 * (4096.0 + u_sq * (-768.0 + u_sq * (320.0 - 175.0 * u_sq)));
    let b_coef = u_sq / 1024.0 * (256.0 + u_sq * (-128.0 + u_sq * (74.0 - 47.0 * u_sq)));
    let delta_sigma = b_coef
        * sin_sigma
        * (cos_2sigma_m
            + b_coef / 4.0
                * (cos_sigma * (-1.0 + 2.0 * cos_2sigma_m * cos_2sigma_m)
                    - b_coef / 6.0
                        * cos_2sigma_m
                        * (-3.0 + 4.0 * sin_sigma * sin_sigma)
                        * (-3.0 + 4.0 * cos_2sigma_m * cos_2sigma_m)));
    Some(WGS84_B * a_coef * (sigma - delta_sigma))
}

/// Geodesic distance in metres: Vincenty when it converges, haversine
/// otherwise. This is the distance used everywhere in the workspace.
pub fn distance_m(p1: GeoPoint, p2: GeoPoint) -> f64 {
    vincenty_inverse_m(p1, p2).unwrap_or_else(|| haversine_m(p1, p2))
}

/// Geodesic distance in kilometres.
pub fn distance_km(p1: GeoPoint, p2: GeoPoint) -> f64 {
    distance_m(p1, p2) / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    /// Karney (2013), Table: JFK→LHR test pair. Published geodesic distance
    /// is 5 551 759.400 m; Vincenty should land within a metre.
    #[test]
    fn jfk_to_lhr_matches_published_value() {
        let jfk = pt(40.6, -73.8);
        let lhr = pt(51.6, -0.5);
        let d = vincenty_inverse_m(jfk, lhr).unwrap();
        assert!((d - 5_551_759.4).abs() < 1.0, "got {d}");
    }

    /// One degree of longitude along the equator is exactly a·π/180 because
    /// the equator is a geodesic of the ellipsoid.
    #[test]
    fn equatorial_degree() {
        let d = vincenty_inverse_m(pt(0.0, 0.0), pt(0.0, 1.0)).unwrap();
        let expect = WGS84_A * std::f64::consts::PI / 180.0;
        assert!((d - expect).abs() < 0.01, "got {d}, want {expect}");
    }

    /// The quarter meridian of WGS-84 is 10 001 965.729 m.
    #[test]
    fn quarter_meridian() {
        let d = vincenty_inverse_m(pt(0.0, 0.0), pt(90.0, 0.0)).unwrap();
        assert!((d - 10_001_965.729).abs() < 0.5, "got {d}");
    }

    #[test]
    fn zero_for_coincident_points() {
        let p = pt(52.37, 4.9);
        assert_eq!(vincenty_inverse_m(p, p), Some(0.0));
        assert_eq!(distance_m(p, p), 0.0);
        assert_eq!(haversine_m(p, p), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pt(52.37, 4.9); // Amsterdam
        let b = pt(50.11, 8.68); // Frankfurt
        let d1 = distance_m(a, b);
        let d2 = distance_m(b, a);
        assert!((d1 - d2).abs() < 1e-6);
        // AMS-FRA is ~360 km as the crow flies.
        assert!((d1 / 1000.0 - 360.0).abs() < 15.0, "got {} km", d1 / 1000.0);
    }

    #[test]
    fn haversine_close_to_vincenty_mid_latitudes() {
        let a = pt(48.85, 2.35); // Paris
        let b = pt(41.9, 12.5); // Rome
        let hv = haversine_m(a, b);
        let vc = vincenty_inverse_m(a, b).unwrap();
        let rel = (hv - vc).abs() / vc;
        assert!(rel < 0.006, "relative error {rel}");
    }

    #[test]
    fn antipodal_falls_back_to_haversine() {
        // Exactly antipodal points on the equator: Vincenty cannot converge,
        // distance_m must still return roughly half the circumference.
        let a = pt(0.0, 0.0);
        let b = pt(0.0, 179.9999);
        let d = distance_m(a, b);
        assert!(d > 19_000_000.0, "got {d}");
    }

    #[test]
    fn dateline_crossing_is_short() {
        let west = pt(0.0, 179.9);
        let east = pt(0.0, -179.9);
        let d = distance_km(west, east);
        assert!(d < 30.0, "got {d} km; dateline not handled");
    }

    #[test]
    fn london_bucharest_over_1300km() {
        // §4.2: NL-IX facilities in London and Bucharest are over 1300 km
        // apart.
        let lon = pt(51.507, -0.128);
        let buc = pt(44.426, 26.102);
        let d = distance_km(lon, buc);
        assert!(d > 1300.0 && d < 2300.0, "got {d} km");
    }
}
