//! # opeer-geo — geodesy and delay-geography for remote peering inference
//!
//! The paper's Step 3 ("colocation-informed RTT interpretation", §5.2) turns
//! a measured minimum RTT into a *feasibility annulus* around the vantage
//! point and intersects it with the locations of IXP facilities. This crate
//! provides everything that computation needs:
//!
//! * [`GeoPoint`] — validated WGS-84 coordinates.
//! * [`geodesic`] — ellipsoidal inverse geodesic (Vincenty's formula with a
//!   spherical fallback near the antipodal singularity) and the haversine
//!   great-circle distance. The paper applies Karney's method \[53\] to
//!   facility coordinates; Vincenty agrees with Karney to well under a
//!   millimetre over the facility/VP distances in this workload (< 20 Mm,
//!   non-antipodal), and is verifiable against published test vectors.
//! * [`metro`] — metropolitan-area clustering: the paper treats a metro
//!   area as a 100 km disk and calls facilities more than 50 km apart
//!   "different metropolitan areas" (§2 fn. 2, §4.2).
//! * [`batch`] — bulk geodesic evaluation over contiguous point arrays:
//!   dense distance rows that make step 3's per-shard feasibility checks
//!   array scans instead of per-lookup recomputation.
//! * [`speed`] — the RTT⇄distance feasibility model: packets travel at most
//!   at `vmax = (4/9)·c` (Katz-Bassett et al. \[54\]) and, per the paper's fit
//!   to Y.1731 inter-facility delays, at least at `vmin(d) = A·(ln d − 3)`
//!   (Fig. 6), giving the `[dmin, dmax]` annulus of Fig. 7.
//!
//! ## Example: the paper's Fig. 7 worked example
//!
//! A 4 ms minimum RTT from an Amsterdam VP puts the target's router in an
//! annulus roughly 300–530 km away — London and Frankfurt are feasible,
//! Amsterdam itself is not:
//!
//! ```
//! use opeer_geo::speed::SpeedModel;
//!
//! let model = SpeedModel::default();
//! let annulus = model.feasible_annulus_ms(4.0);
//! assert!((annulus.min_km - 299.0).abs() < 30.0);
//! assert!((annulus.max_km - 533.0).abs() < 5.0);
//! ```

pub mod batch;
pub mod coord;
pub mod geodesic;
pub mod metro;
pub mod speed;

pub use batch::distances_km as batch_distances_km;
pub use coord::GeoPoint;
pub use geodesic::{distance_km, distance_m, haversine_m, vincenty_inverse_m};
pub use metro::{max_pairwise_distance_km, MetroClusterer};
pub use speed::{Annulus, SpeedModel};
