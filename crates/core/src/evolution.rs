//! Longitudinal analysis of remote peering (§6.3, Fig. 12a).
//!
//! Thin analysis layer over the membership timeline: monthly local/remote
//! member counts at the five tracked IXPs, growth-ratio statistics (the
//! paper: remote joins ≈ 2× local joins, remote departure *rate* ≈ +25 %)
//! and the remote→local switchers (18 cases in the paper's window).
//!
//! The counts come from the world's timeline because the paper, too,
//! derives them from archived membership observations over fourteen
//! months rather than from a single inference snapshot; the inference
//! pipeline cross-validates the *current* month.

use opeer_topology::evolution::{
    evolution_ixps, find_switchers, growth_stats, monthly_series, GrowthStats, MonthlyCounts,
    Switcher,
};
use opeer_topology::World;
use serde::{Deserialize, Serialize};

/// The Fig. 12a bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolutionReport {
    /// Names of the tracked IXPs.
    pub ixps: Vec<String>,
    /// Monthly counts over the timeline.
    pub series: Vec<MonthlyCounts>,
    /// Aggregate growth statistics.
    pub stats: GrowthStats,
    /// Remote→local switchers.
    pub switchers: Vec<Switcher>,
}

/// Builds the longitudinal report over the tracked IXPs (§6.3's five:
/// LINX, HKIX, LONAP, THINX, UA-IX).
pub fn evolution_report(world: &World, months: u32) -> EvolutionReport {
    let ixps = evolution_ixps(world);
    let series = monthly_series(world, &ixps, months);
    let stats = growth_stats(&series);
    let switchers = find_switchers(world, &ixps);
    EvolutionReport {
        ixps: ixps
            .iter()
            .map(|&i| world.ixps[i.index()].name.clone())
            .collect(),
        series,
        stats,
        switchers,
    }
}

/// Cumulative growth indexed to the month-0 population (the Fig. 12a
/// y-axis): returns `(month, local index, remote index)` with 1.0 = the
/// starting population.
pub fn growth_index(series: &[MonthlyCounts]) -> Vec<(u32, f64, f64)> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let (l0, r0) = (first.local.max(1) as f64, first.remote.max(1) as f64);
    series
        .iter()
        .map(|c| (c.month, c.local as f64 / l0, c.remote as f64 / r0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn report_reproduces_growth_shape() {
        let w = WorldConfig::small(113).generate();
        let report = evolution_report(&w, 14);
        assert_eq!(report.ixps.len(), 5);
        assert_eq!(report.series.len(), 15);
        assert!(!report.switchers.is_empty());
        // The 2:1 remote-join claim is asserted statistically over the
        // whole world in opeer-topology (five small-scale IXPs are too
        // few draws); here the report must at least be internally
        // consistent: counts move exactly by joins minus departures.
        for w2 in report.series.windows(2) {
            let (a, b) = (w2[0], w2[1]);
            assert_eq!(
                b.remote as i64 - a.remote as i64,
                b.remote_joins as i64 - b.remote_departures as i64
            );
        }
        assert!(report.stats.join_ratio.is_some(), "in-window joins exist");
    }

    #[test]
    fn growth_index_starts_at_one() {
        let w = WorldConfig::small(113).generate();
        let report = evolution_report(&w, 14);
        let idx = growth_index(&report.series);
        let (m, l, r) = idx[0];
        assert_eq!(m, 0);
        assert!((l - 1.0).abs() < 1e-9);
        assert!((r - 1.0).abs() < 1e-9);
    }
}
