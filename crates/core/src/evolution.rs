//! Longitudinal analysis of remote peering (§6.3, Fig. 12a).
//!
//! Thin analysis layer over the membership timeline: monthly local/remote
//! member counts at the five tracked IXPs, growth-ratio statistics (the
//! paper: remote joins ≈ 2× local joins, remote departure *rate* ≈ +25 %)
//! and the remote→local switchers (18 cases in the paper's window).
//!
//! The counts come from the world's timeline because the paper, too,
//! derives them from archived membership observations over fourteen
//! months rather than from a single inference snapshot; the inference
//! pipeline cross-validates the *current* month.

use crate::incremental::InputDelta;
use crate::input::default_configs;
use opeer_measure::campaign::{run_campaign, CampaignConfig};
use opeer_measure::traceroute::{build_corpus, CorpusConfig};
use opeer_measure::vp::discover_vps;
use opeer_registry::{build_observed_world, ObservedWorld, Table1Stats};
use opeer_topology::evolution::{
    evolution_ixps, find_switchers, growth_stats, monthly_series, GrowthStats, MonthlyCounts,
    Switcher,
};
use opeer_topology::World;
use serde::{Deserialize, Serialize};
use std::ops::RangeInclusive;

/// The Fig. 12a bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolutionReport {
    /// Names of the tracked IXPs.
    pub ixps: Vec<String>,
    /// Monthly counts over the timeline.
    pub series: Vec<MonthlyCounts>,
    /// Aggregate growth statistics.
    pub stats: GrowthStats,
    /// Remote→local switchers.
    pub switchers: Vec<Switcher>,
}

/// Builds the longitudinal report over the tracked IXPs (§6.3's five:
/// LINX, HKIX, LONAP, THINX, UA-IX).
pub fn evolution_report(world: &World, months: u32) -> EvolutionReport {
    let ixps = evolution_ixps(world);
    let series = monthly_series(world, &ixps, months);
    let stats = growth_stats(&series);
    let switchers = find_switchers(world, &ixps);
    EvolutionReport {
        ixps: ixps
            .iter()
            .map(|&i| world.ixps[i.index()].name.clone())
            .collect(),
        series,
        stats,
        switchers,
    }
}

/// Cumulative growth indexed to the month-0 population (the Fig. 12a
/// y-axis): returns `(month, local index, remote index)` with 1.0 = the
/// starting population.
pub fn growth_index(series: &[MonthlyCounts]) -> Vec<(u32, f64, f64)> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let (l0, r0) = (first.local.max(1) as f64, first.remote.max(1) as f64);
    series
        .iter()
        .map(|c| (c.month, c.local as f64 / l0, c.remote as f64 / r0))
        .collect()
}

// ---------------------------------------------------------------------
// monthly world revisions → epoch deltas (the archive driver)
// ---------------------------------------------------------------------

/// The world as observed in `month`: the same topology with the
/// observation window moved, so registry fusion, campaign targeting,
/// and corpus planning all see the memberships active that month.
fn world_at_month(world: &World, month: u32) -> World {
    let mut w = world.clone();
    w.observation_month = month;
    w
}

/// Derives the per-month measurement seed from the master seed. Month
/// campaigns must not share RNG streams (two identical campaigns would
/// be a measurement artifact, not a new month), so each month gets a
/// splitmix-style decorrelated seed; the registry keeps the *master*
/// seed so fusion noise stays fixed and month-over-month registry diffs
/// are membership-driven.
fn month_seed(seed: u64, month: u32) -> u64 {
    seed ^ (u64::from(month) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The fused registry dataset as observed in `month` (master-seed
/// fusion noise — see [`month_seed`]).
fn month_registry(world: &World, seed: u64, month: u32) -> (ObservedWorld, Table1Stats) {
    let (registry_cfg, _, _) = default_configs(seed);
    build_observed_world(&world_at_month(world, month), &registry_cfg)
}

/// One month of the longitudinal replay as an epoch delta: that month's
/// ping campaign and traceroute corpus, plus a registry revision when
/// the fused dataset changed since the previous month (month 0 always
/// carries one, establishing the window's registry).
///
/// This is a **pure function of `(world, seed, month)`** — the registry
/// diff compares against an internally derived previous month, never
/// against emission history — which is what makes the stream
/// prefix-consistent: replaying months `0..=k` and then `k+1..=n`
/// produces exactly the deltas of one `0..=n` session
/// (`tests/determinism_snapshot.rs` pins this along with the seed-42
/// stream shape). Feed the deltas to a
/// [`SnapshotArchive`](crate::archive::SnapshotArchive) over a service
/// built from [`InferenceInput::assemble_base`](crate::input::InferenceInput::assemble_base)
/// on the month-0 world to grow an epoch-per-month history.
pub fn monthly_delta(world: &World, seed: u64, month: u32) -> InputDelta {
    let (observed, table1) = month_registry(world, seed, month);
    let registry_changed = month == 0 || {
        let (prev_obs, prev_t1) = month_registry(world, seed, month - 1);
        observed != prev_obs || table1 != prev_t1
    };
    let delta = monthly_measurements(world, seed, month);
    if registry_changed {
        InputDelta {
            registry: Some(Box::new((observed, table1))),
            ..delta
        }
    } else {
        delta
    }
}

/// The measurement half of [`monthly_delta`]: the month's campaign and
/// corpus under the decorrelated [`month_seed`].
fn monthly_measurements(world: &World, seed: u64, month: u32) -> InputDelta {
    let mw = world_at_month(world, month);
    let mseed = month_seed(seed, month);
    let vps = discover_vps(&mw, mseed);
    let campaign = run_campaign(&mw, &vps, CampaignConfig::study(mseed));
    let corpus = build_corpus(
        &mw,
        CorpusConfig {
            seed: mseed,
            ..CorpusConfig::default()
        },
    );
    InputDelta::campaign(campaign).with_corpus(corpus)
}

/// [`monthly_delta`] over an inclusive month range, one delta per
/// month, ascending. The registry chain is computed once per month pair
/// (not twice), but the emitted stream is byte-identical to calling
/// [`monthly_delta`] month by month.
pub fn monthly_deltas(world: &World, seed: u64, months: RangeInclusive<u32>) -> Vec<InputDelta> {
    let mut prev: Option<(ObservedWorld, Table1Stats)> = None;
    let mut deltas = Vec::new();
    for month in months {
        let (observed, table1) = month_registry(world, seed, month);
        let previous = match (month, prev.take()) {
            (0, _) => None,
            (_, Some(cached)) => Some(cached),
            (m, None) => Some(month_registry(world, seed, m - 1)),
        };
        let changed = match &previous {
            None => true,
            Some((prev_obs, prev_t1)) => observed != *prev_obs || table1 != *prev_t1,
        };
        let delta = monthly_measurements(world, seed, month);
        if changed {
            deltas.push(InputDelta {
                registry: Some(Box::new((observed.clone(), table1.clone()))),
                ..delta
            });
        } else {
            deltas.push(delta);
        }
        prev = Some((observed, table1));
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn report_reproduces_growth_shape() {
        let w = WorldConfig::small(113).generate();
        let report = evolution_report(&w, 14);
        assert_eq!(report.ixps.len(), 5);
        assert_eq!(report.series.len(), 15);
        assert!(!report.switchers.is_empty());
        // The 2:1 remote-join claim is asserted statistically over the
        // whole world in opeer-topology (five small-scale IXPs are too
        // few draws); here the report must at least be internally
        // consistent: counts move exactly by joins minus departures.
        for w2 in report.series.windows(2) {
            let (a, b) = (w2[0], w2[1]);
            assert_eq!(
                b.remote as i64 - a.remote as i64,
                b.remote_joins as i64 - b.remote_departures as i64
            );
        }
        assert!(report.stats.join_ratio.is_some(), "in-window joins exist");
    }

    #[test]
    fn report_is_pinned_on_seed_42() {
        // Exact per-field pin (same spirit as tests/determinism_snapshot.rs):
        // a refactor that re-rolls the timeline or re-derives the stats
        // differently trips this even when the growth *shape* survives.
        // Regenerate by printing the actual report on a change that
        // intentionally re-rolls worlds.
        let w = WorldConfig::small(42).generate();
        let report = evolution_report(&w, 14);
        assert_eq!(report.ixps, ["LINX LON", "HKIX", "LONAP", "THINX", "UA-IX"]);
        assert_eq!(report.switchers.len(), 4);
        assert_eq!(report.stats.local_joins, 10);
        assert_eq!(report.stats.remote_joins, 7);
        assert_eq!(report.stats.local_departures, 3);
        assert_eq!(report.stats.remote_departures, 5);
        assert_eq!(report.stats.join_ratio, Some(0.7));
        assert_eq!(report.stats.departure_rate_ratio, Some(6.875));
        let first = report.series.first().expect("month 0 exists");
        assert_eq!((first.local, first.remote), (66, 16));
        let last = report.series.last().expect("month 14 exists");
        assert_eq!((last.month, last.local, last.remote), (14, 73, 18));
        let idx = growth_index(&report.series);
        let (m, l, r) = *idx.last().expect("index non-empty");
        assert_eq!(m, 14);
        assert!((l - 73.0 / 66.0).abs() < 1e-12, "local index {l}");
        assert!((r - 18.0 / 16.0).abs() < 1e-12, "remote index {r}");
    }

    #[test]
    fn monthly_reports_are_prefix_consistent_like_epochs() {
        // The longitudinal window is the archive analogue of streaming
        // epochs: extending the window by a month must extend the series
        // without rewriting history, so an incremental consumer that
        // keeps the previous months' rows stays byte-identical to a
        // from-scratch report.
        let w = WorldConfig::small(42).generate();
        let full = evolution_report(&w, 14);
        for months in [0u32, 1, 7, 13] {
            let partial = evolution_report(&w, months);
            assert_eq!(partial.ixps, full.ixps);
            assert_eq!(
                partial.series.as_slice(),
                &full.series[..=months as usize],
                "window of {months} months is not a prefix"
            );
            let idx_partial = growth_index(&partial.series);
            let idx_full = growth_index(&full.series);
            assert_eq!(idx_partial.as_slice(), &idx_full[..=months as usize]);
        }
    }

    #[test]
    fn monthly_deltas_match_the_pure_per_month_function() {
        // The batched emitter caches the registry chain; the emitted
        // stream must still be byte-identical to calling the pure
        // per-month function — that equivalence is what prefix
        // consistency rides on.
        let w = WorldConfig::small(42).generate();
        let stream = monthly_deltas(&w, 42, 0..=4);
        assert_eq!(stream.len(), 5);
        assert!(
            stream[0].registry.is_some(),
            "month 0 must establish the registry"
        );
        for (m, d) in stream.iter().enumerate() {
            let single = monthly_delta(&w, 42, m as u32);
            assert_eq!(single.campaign, d.campaign, "month {m} campaign");
            assert_eq!(single.corpus, d.corpus, "month {m} corpus");
            assert_eq!(
                single.registry.as_deref(),
                d.registry.as_deref(),
                "month {m} registry"
            );
        }
        // Months must not share measurement RNG streams.
        assert_ne!(stream[0].campaign, stream[1].campaign);
    }

    #[test]
    fn growth_index_starts_at_one() {
        let w = WorldConfig::small(113).generate();
        let report = evolution_report(&w, 14);
        let idx = growth_index(&report.series);
        let (m, l, r) = idx[0];
        assert_eq!(m, 0);
        assert!((l - 1.0).abs() < 1e-9);
        assert!((r - 1.0).abs() < 1e-9);
    }
}
