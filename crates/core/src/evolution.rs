//! Longitudinal analysis of remote peering (§6.3, Fig. 12a).
//!
//! Thin analysis layer over the membership timeline: monthly local/remote
//! member counts at the five tracked IXPs, growth-ratio statistics (the
//! paper: remote joins ≈ 2× local joins, remote departure *rate* ≈ +25 %)
//! and the remote→local switchers (18 cases in the paper's window).
//!
//! The counts come from the world's timeline because the paper, too,
//! derives them from archived membership observations over fourteen
//! months rather than from a single inference snapshot; the inference
//! pipeline cross-validates the *current* month.

use opeer_topology::evolution::{
    evolution_ixps, find_switchers, growth_stats, monthly_series, GrowthStats, MonthlyCounts,
    Switcher,
};
use opeer_topology::World;
use serde::{Deserialize, Serialize};

/// The Fig. 12a bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvolutionReport {
    /// Names of the tracked IXPs.
    pub ixps: Vec<String>,
    /// Monthly counts over the timeline.
    pub series: Vec<MonthlyCounts>,
    /// Aggregate growth statistics.
    pub stats: GrowthStats,
    /// Remote→local switchers.
    pub switchers: Vec<Switcher>,
}

/// Builds the longitudinal report over the tracked IXPs (§6.3's five:
/// LINX, HKIX, LONAP, THINX, UA-IX).
pub fn evolution_report(world: &World, months: u32) -> EvolutionReport {
    let ixps = evolution_ixps(world);
    let series = monthly_series(world, &ixps, months);
    let stats = growth_stats(&series);
    let switchers = find_switchers(world, &ixps);
    EvolutionReport {
        ixps: ixps
            .iter()
            .map(|&i| world.ixps[i.index()].name.clone())
            .collect(),
        series,
        stats,
        switchers,
    }
}

/// Cumulative growth indexed to the month-0 population (the Fig. 12a
/// y-axis): returns `(month, local index, remote index)` with 1.0 = the
/// starting population.
pub fn growth_index(series: &[MonthlyCounts]) -> Vec<(u32, f64, f64)> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let (l0, r0) = (first.local.max(1) as f64, first.remote.max(1) as f64);
    series
        .iter()
        .map(|c| (c.month, c.local as f64 / l0, c.remote as f64 / r0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn report_reproduces_growth_shape() {
        let w = WorldConfig::small(113).generate();
        let report = evolution_report(&w, 14);
        assert_eq!(report.ixps.len(), 5);
        assert_eq!(report.series.len(), 15);
        assert!(!report.switchers.is_empty());
        // The 2:1 remote-join claim is asserted statistically over the
        // whole world in opeer-topology (five small-scale IXPs are too
        // few draws); here the report must at least be internally
        // consistent: counts move exactly by joins minus departures.
        for w2 in report.series.windows(2) {
            let (a, b) = (w2[0], w2[1]);
            assert_eq!(
                b.remote as i64 - a.remote as i64,
                b.remote_joins as i64 - b.remote_departures as i64
            );
        }
        assert!(report.stats.join_ratio.is_some(), "in-window joins exist");
    }

    #[test]
    fn report_is_pinned_on_seed_42() {
        // Exact per-field pin (same spirit as tests/determinism_snapshot.rs):
        // a refactor that re-rolls the timeline or re-derives the stats
        // differently trips this even when the growth *shape* survives.
        // Regenerate by printing the actual report on a change that
        // intentionally re-rolls worlds.
        let w = WorldConfig::small(42).generate();
        let report = evolution_report(&w, 14);
        assert_eq!(report.ixps, ["LINX LON", "HKIX", "LONAP", "THINX", "UA-IX"]);
        assert_eq!(report.switchers.len(), 4);
        assert_eq!(report.stats.local_joins, 10);
        assert_eq!(report.stats.remote_joins, 7);
        assert_eq!(report.stats.local_departures, 3);
        assert_eq!(report.stats.remote_departures, 5);
        assert_eq!(report.stats.join_ratio, Some(0.7));
        assert_eq!(report.stats.departure_rate_ratio, Some(6.875));
        let first = report.series.first().expect("month 0 exists");
        assert_eq!((first.local, first.remote), (66, 16));
        let last = report.series.last().expect("month 14 exists");
        assert_eq!((last.month, last.local, last.remote), (14, 73, 18));
        let idx = growth_index(&report.series);
        let (m, l, r) = *idx.last().expect("index non-empty");
        assert_eq!(m, 14);
        assert!((l - 73.0 / 66.0).abs() < 1e-12, "local index {l}");
        assert!((r - 18.0 / 16.0).abs() < 1e-12, "remote index {r}");
    }

    #[test]
    fn monthly_reports_are_prefix_consistent_like_epochs() {
        // The longitudinal window is the archive analogue of streaming
        // epochs: extending the window by a month must extend the series
        // without rewriting history, so an incremental consumer that
        // keeps the previous months' rows stays byte-identical to a
        // from-scratch report.
        let w = WorldConfig::small(42).generate();
        let full = evolution_report(&w, 14);
        for months in [0u32, 1, 7, 13] {
            let partial = evolution_report(&w, months);
            assert_eq!(partial.ixps, full.ixps);
            assert_eq!(
                partial.series.as_slice(),
                &full.series[..=months as usize],
                "window of {months} months is not a prefix"
            );
            let idx_partial = growth_index(&partial.series);
            let idx_full = growth_index(&full.series);
            assert_eq!(idx_partial.as_slice(), &idx_full[..=months as usize]);
        }
    }

    #[test]
    fn growth_index_starts_at_one() {
        let w = WorldConfig::small(113).generate();
        let report = evolution_report(&w, 14);
        let idx = growth_index(&report.series);
        let (m, l, r) = idx[0];
        assert_eq!(m, 0);
        assert!((l - 1.0).abs() < 1e-9);
        assert!((r - 1.0).abs() < 1e-9);
    }
}
