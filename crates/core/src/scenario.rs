//! Scenario-as-delta: run a what-if world through the incremental
//! pipeline as a single [`InputDelta`] against its baseline.
//!
//! The [`opeer_topology::scenario::Scenario`] transforms preserve the
//! measurement plane (interfaces, addresses, router IP-ID behaviour,
//! VP anchors), so a scenario world differs from its baseline only in
//! ground truth and registry-visible metadata. That makes the cheap
//! path sound: assemble a *measurement-free* base input on the baseline
//! world, then apply one delta carrying the scenario world's registry
//! snapshot plus its re-measured campaign and corpus. The registry
//! revision replaces the fused dataset and triggers a full re-run over
//! the scenario's data — byte-identical to a one-shot
//! [`run_pipeline`](crate::pipeline::run_pipeline) on the scenario
//! world (the fleet's identity gate, and
//! `scenario_epoch_matches_one_shot` below, pin this).
//!
//! [`score_shift`] then compresses baseline → scenario into the fleet's
//! per-cell scenario metrics: remote-share delta, verdict churn and the
//! set of member ASNs whose picture changed.

use crate::engine::ParallelConfig;
use crate::incremental::{IncrementalPipeline, InputDelta};
use crate::input::{default_configs, InferenceInput};
use crate::pipeline::{PipelineConfig, PipelineResult};
use crate::types::Verdict;
use opeer_measure::campaign::run_campaign;
use opeer_measure::traceroute::build_corpus;
use opeer_measure::vp::discover_vps;
use opeer_net::Asn;
use opeer_registry::build_observed_world;
use opeer_topology::World;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Builds the one delta that turns a baseline's measurement-free input
/// into the scenario world's full input: registry revision + campaign +
/// corpus, all measured on `scenario_world` under the shared
/// [`default_configs`] recipe for `seed`.
pub fn scenario_delta(scenario_world: &World, seed: u64) -> InputDelta {
    let (registry_cfg, campaign_cfg, corpus_cfg) = default_configs(seed);
    let (observed, table1) = build_observed_world(scenario_world, &registry_cfg);
    let vps = discover_vps(scenario_world, seed);
    let campaign = run_campaign(scenario_world, &vps, campaign_cfg);
    let corpus = build_corpus(scenario_world, corpus_cfg);
    InputDelta::registry(observed, table1)
        .with_campaign(campaign)
        .with_corpus(corpus)
}

/// Runs a scenario world through the incremental pipeline as one epoch
/// over its baseline, returning the scenario's pipeline result.
///
/// `base_world` anchors the retained input (alias resolution and VP
/// discovery read it); the scenario transforms guarantee the two worlds
/// agree on everything those reads touch, so the result is
/// byte-identical to `run_pipeline(&InferenceInput::assemble(scenario_world, seed), cfg)`.
pub fn run_scenario_epoch(
    base_world: &World,
    scenario_world: &World,
    seed: u64,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> PipelineResult {
    let base = InferenceInput::assemble_base(base_world, seed);
    let mut pipe = IncrementalPipeline::new(base, cfg, par);
    pipe.apply(scenario_delta(scenario_world, seed)).clone()
}

/// Canonical verdict index of a result: `(observed IXP index, address)`
/// → `(ASN, verdict)`.
pub fn verdict_map(result: &PipelineResult) -> BTreeMap<(usize, Ipv4Addr), (Asn, Verdict)> {
    result
        .inferences
        .iter()
        .map(|inf| ((inf.ixp, inf.addr), (inf.asn, inf.verdict)))
        .collect()
}

/// How the remote-peering picture moved between a baseline cell and its
/// scenario cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(crate = "serde")]
pub struct ScenarioShift {
    /// Scenario remote share minus baseline remote share.
    pub remote_share_delta: f64,
    /// Classified interfaces whose verdict flipped Local → Remote.
    pub local_to_remote: usize,
    /// Classified interfaces whose verdict flipped Remote → Local.
    pub remote_to_local: usize,
    /// Interfaces classified only in the scenario run.
    pub appeared: usize,
    /// Interfaces classified only in the baseline run.
    pub disappeared: usize,
    /// Member ASNs touched by any flip, appearance or disappearance.
    pub affected_asns: usize,
}

/// Scores a scenario result against its baseline cell.
pub fn score_shift(base: &PipelineResult, scenario: &PipelineResult) -> ScenarioShift {
    let base_map = verdict_map(base);
    let scen_map = verdict_map(scenario);
    let mut local_to_remote = 0usize;
    let mut remote_to_local = 0usize;
    let mut appeared = 0usize;
    let mut disappeared = 0usize;
    let mut affected: BTreeSet<Asn> = BTreeSet::new();

    for (key, &(asn, sv)) in &scen_map {
        match base_map.get(key) {
            Some(&(_, bv)) => match (bv, sv) {
                (Verdict::Local, Verdict::Remote) => {
                    local_to_remote += 1;
                    affected.insert(asn);
                }
                (Verdict::Remote, Verdict::Local) => {
                    remote_to_local += 1;
                    affected.insert(asn);
                }
                _ => {}
            },
            None => {
                appeared += 1;
                affected.insert(asn);
            }
        }
    }
    for (key, &(asn, _)) in &base_map {
        if !scen_map.contains_key(key) {
            disappeared += 1;
            affected.insert(asn);
        }
    }

    ScenarioShift {
        remote_share_delta: scenario.remote_share() - base.remote_share(),
        local_to_remote,
        remote_to_local,
        appeared,
        disappeared,
        affected_asns: affected.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;
    use opeer_topology::{Scenario, WorldConfig};

    fn tiny() -> World {
        WorldConfig::builder()
            .tweak(|c| {
                *c = WorldConfig::small(5);
                c.scale = 0.02;
                c.n_small_ixps = 6;
                c.n_background_ases = 50;
                c.n_switchers = 2;
            })
            .build()
            .unwrap()
            .generate()
    }

    #[test]
    fn scenario_epoch_matches_one_shot() {
        let base = tiny();
        let name = base.ixps.iter().find(|x| x.studied).unwrap().name.clone();
        let sworld = Scenario::IxpOutage { ixp: name }.apply(&base);
        let cfg = PipelineConfig::default();
        let par = ParallelConfig::new(2);

        let via_delta = run_scenario_epoch(&base, &sworld, 5, &cfg, &par);
        let one_shot = run_pipeline(&InferenceInput::assemble(&sworld, 5), &cfg);
        assert_eq!(via_delta, one_shot, "delta path must equal one-shot");
    }

    #[test]
    fn outage_shift_is_visible_and_scored() {
        let base_world = tiny();
        let name = base_world
            .ixps
            .iter()
            .find(|x| x.studied)
            .unwrap()
            .name
            .clone();
        let cfg = PipelineConfig::default();
        let base = run_pipeline(&InferenceInput::assemble(&base_world, 5), &cfg);
        let sworld = Scenario::IxpOutage { ixp: name }.apply(&base_world);
        let scen = run_pipeline(&InferenceInput::assemble(&sworld, 5), &cfg);
        let shift = score_shift(&base, &scen);
        assert!(
            shift.disappeared > 0,
            "outage must remove classified interfaces"
        );
        assert!(shift.affected_asns > 0);
        // Identity: scoring a run against itself is all-zero.
        let zero = score_shift(&base, &base);
        assert_eq!(
            zero,
            ScenarioShift {
                remote_share_delta: 0.0,
                local_to_remote: 0,
                remote_to_local: 0,
                appeared: 0,
                disappeared: 0,
                affected_asns: 0
            }
        );
    }
}
