//! The sharded parallel execution engine.
//!
//! [`run_pipeline_parallel`] runs the five-step methodology of
//! [`crate::pipeline::run_pipeline`] with the per-IXP / per-target /
//! per-candidate work fanned out over a [`std::thread::scope`] worker
//! pool, and merges the per-shard results **deterministically** so the
//! output is bit-identical to the sequential pass for every thread
//! count. No work queue survives the call; the pool is scoped to one
//! pipeline run.
//!
//! ## Why the merge is exact
//!
//! Each phase shards along the axis where its work is provably
//! independent, then commits in a fixed order:
//!
//! * **Step 1** shards by observed IXP: port-capacity evidence never
//!   leaves its IXP. Shard ledgers are absorbed in IXP order, and
//!   [`crate::steps::Ledger::absorb`] keeps the first writer on
//!   address collisions — the same winner a sequential scan picks.
//! * **Step 2** shards by campaign chunk: the best-observation
//!   preference only replaces an incumbent with a strictly better
//!   candidate, so folding chunk maps in campaign order reproduces the
//!   sequential scan's winners, ties included.
//! * **Step 3** shards by *target* over the merged observation map:
//!   [`crate::steps::step3::evaluate_observation`] is pure per target,
//!   and chunking a sorted map preserves the sequential detail order.
//! * **Step 4** shards its corpus scan by traceroute chunk (set-union
//!   merge is order-independent) and its classification by candidate
//!   ASN: propagation only ever touches the candidate's own LAN
//!   interfaces, so verdicts of other candidates can never feed back.
//!   Outcomes commit in ascending ASN order — the sequential order.
//! * **Step 5** shards by observed IXP against the frozen steps-1–4
//!   ledger: the facility vote never reads the ledger, and each LAN
//!   address is visited once.
//!
//! The worker pool itself is free to schedule shards in any order —
//! results land in per-shard slots and are merged by index, never by
//! completion time.

use crate::input::InferenceInput;
use crate::pipeline::{PipelineConfig, PipelineResult, StepCounts};
use crate::steps::step2::RttObservation;
use crate::steps::step3::Step3Detail;
use crate::steps::{step1, step2, step3, step4, step5, Ledger};
use crate::types::Unclassified;
use opeer_measure::campaign::CampaignConfig;
use opeer_measure::latency::LatencyModel;
use opeer_measure::traceroute::{plan_corpus, CorpusConfig, TracerouteEngine};
use opeer_registry::RegistryConfig;
use opeer_topology::World;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "OPEER_THREADS";

/// Execution configuration of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to run shard tasks on. `1` degenerates to an
    /// in-place sequential pass over the same shard structure.
    pub threads: usize,
}

impl ParallelConfig {
    /// A configuration with an explicit thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }

    /// Reads `OPEER_THREADS`; absent or unparsable values fall back to
    /// the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(Self::available_parallelism);
        ParallelConfig { threads }
    }

    /// The machine's available parallelism (≥ 1).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: Self::available_parallelism(),
        }
    }
}

/// Splits `0..n` into at most `k` contiguous, nearly equal, non-empty
/// ranges (fewer when `n < k`; none when `n == 0`).
///
/// This and [`map_indexed`] are the engine's generic shard-scheduling
/// primitives: any workload whose items are independent along some axis
/// can cut that axis into ranges here, run them via [`map_indexed`],
/// and merge the per-range results in range order for a
/// schedule-independent total. The pipeline phases, the parallel
/// measurement assembly ([`crate::input::InferenceInput::assemble_parallel`]),
/// and future parameter sweeps all shard through this one function.
///
/// Delegates to [`opeer_measure::batch_ranges`] — the same cut points
/// the streaming epoch emitters use — so the partition logic cannot
/// drift between the shard scheduler and the batch layer.
pub fn shard_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    opeer_measure::batch_ranges(n, k)
}

/// Runs `f(0), …, f(n-1)` on up to `threads` scoped worker threads and
/// returns the results **in index order**, regardless of which worker
/// finished first. Workers pull task indices from a shared atomic
/// counter (dynamic load balancing) and deposit each result into its
/// own slot, so scheduling cannot perturb the output. With `threads <=
/// 1` it degenerates to a plain in-place map — no threads are spawned.
///
/// `f` must be pure with respect to shared state (reads are fine;
/// results must depend only on the index). Tasks need not be
/// homogeneous: heterogeneous workloads dispatch on the index (see the
/// parallel assembly fan-out in `crate::input`).
///
/// # Panics
///
/// If a shard task panics, the run aborts: no further task indices are
/// handed out (in-flight shards finish), and once the pool drains the
/// **original panic payload** of the lowest panicking index is re-raised
/// on the calling thread via [`std::panic::resume_unwind`]. Without
/// this, `std::thread::scope`'s implicit join would discard the payload
/// and double-panic with an opaque "a scoped thread panicked". Picking
/// the lowest index keeps the surfaced payload deterministic when
/// several shards fail at once.
pub fn map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                    Ok(r) => *slots[i].lock().expect("result slot poisoned") = Some(r),
                    Err(payload) => {
                        let mut first = panicked.lock().expect("panic slot poisoned");
                        if first.as_ref().is_none_or(|&(j, _)| i < j) {
                            *first = Some((i, payload));
                        }
                        drop(first);
                        // Stop dispatching: queued shards never start.
                        next.store(n, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    if let Some((_, payload)) = panicked.into_inner().expect("panic slot poisoned") {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// One shard's step-3 output.
struct Step3Shard {
    ledger: Ledger,
    details: Vec<Step3Detail>,
}

/// Steps 1–3 output, handed from [`phase_steps123`] to
/// [`phase_steps45`]. Splitting the pipeline here lets the overlapped
/// entry point ([`assemble_and_run_parallel`]) trace the corpus — which
/// steps 1–3 never read — while the early steps run.
struct EarlySteps {
    ledger: Ledger,
    n1: usize,
    n3: usize,
    observations: BTreeMap<Ipv4Addr, RttObservation>,
    step3_details: Vec<Step3Detail>,
}

/// Runs the full §5.2 methodology on a scoped worker pool. The result
/// is bit-identical to [`crate::pipeline::run_pipeline`] on the same
/// input for **any** `par.threads ≥ 1`.
pub fn run_pipeline_parallel(
    input: &InferenceInput<'_>,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> PipelineResult {
    let threads = par.threads.max(1);
    let early = phase_steps123(input, cfg, threads);
    phase_steps45(input, early, cfg, threads)
}

/// Steps 1–3 on the pool: port capacities, campaign consolidation, and
/// the RTT/colocation pass. Reads `input.observed` and `input.campaign`
/// only — never the corpus or `ip2as`.
fn phase_steps123(input: &InferenceInput<'_>, cfg: &PipelineConfig, threads: usize) -> EarlySteps {
    // Over-shard relative to the pool so one slow shard does not
    // serialise the tail; any partition merges identically. Each axis
    // (IXPs, campaign, targets, corpus) shards against its own length —
    // `shard_ranges` clamps to the item count — so an IXP-poor input
    // with a huge campaign or corpus still saturates the pool.
    let n_shards = threads * 4;
    let ixp_shards = shard_ranges(input.observed.ixps.len(), n_shards);

    // ---- step 1: per-IXP shards ----
    let step1_out: Vec<Ledger> = map_indexed(ixp_shards.len(), threads, |i| {
        let mut ledger = Ledger::new();
        step1::apply_to_ixps(input, ixp_shards[i].clone(), &mut ledger);
        ledger
    });
    let mut ledger = Ledger::new();
    let mut n1 = 0;
    for shard in step1_out {
        n1 += ledger.absorb(shard);
    }

    // ---- step 2: per-campaign-chunk shards, folded in campaign order ----
    let campaign_shards = shard_ranges(input.campaign.observations.len(), n_shards);
    let consolidated = map_indexed(campaign_shards.len(), threads, |i| {
        step2::consolidate_chunk(input, campaign_shards[i].clone())
    });
    let mut observations: BTreeMap<Ipv4Addr, RttObservation> = BTreeMap::new();
    for chunk in consolidated {
        step2::merge_consolidated(&mut observations, chunk);
    }

    // ---- step 3: per-target shards over the merged observations ----
    // The consolidated map is copied into a contiguous row array
    // (observations are small `Copy` structs) so shards scan cache-line
    // neighbours instead of chasing tree nodes; order is the map's
    // address order either way.
    let targets: Vec<RttObservation> = observations.values().copied().collect();

    // The VP→facility distance rows, filled on the pool: one row per
    // unique VP location, sharded over the location array. Row i only
    // depends on location i, so any partition assembles identically.
    let origins = step3::FacilityDistances::origins(input);
    let vp_locs = step3::FacilityDistances::unique_vp_locations(targets.iter());
    let row_shards = shard_ranges(vp_locs.len(), n_shards);
    let row_chunks: Vec<Vec<Vec<f64>>> = map_indexed(row_shards.len(), threads, |i| {
        vp_locs[row_shards[i].clone()]
            .iter()
            .map(|vp| opeer_geo::batch::distances_km(&origins, vp))
            .collect()
    });
    let dists =
        step3::FacilityDistances::from_rows(&vp_locs, row_chunks.into_iter().flatten().collect());

    let target_shards = shard_ranges(targets.len(), n_shards);
    let honor = cfg.honor_lg_rounding;
    let step3_out: Vec<Step3Shard> = map_indexed(target_shards.len(), threads, |i| {
        let mut shard = Step3Shard {
            ledger: Ledger::new(),
            details: Vec::with_capacity(target_shards[i].len()),
        };
        for o in &targets[target_shards[i].clone()] {
            let (detail, inference) =
                step3::evaluate_observation_batched(input, o, &cfg.speed, honor, &dists);
            if let Some(inf) = inference {
                shard.ledger.record(inf);
            }
            shard.details.push(detail);
        }
        shard
    });
    let mut step3_details = Vec::with_capacity(targets.len());
    let mut n3 = 0;
    for shard in step3_out {
        n3 += ledger.absorb(shard.ledger);
        step3_details.extend(shard.details);
    }

    EarlySteps {
        ledger,
        n1,
        n3,
        observations,
        step3_details,
    }
}

/// Steps 4–5 plus the residual scan, picking up from [`phase_steps123`]'s
/// frozen ledger. This is the first point that reads `input.corpus` and
/// `input.ip2as`.
fn phase_steps45(
    input: &InferenceInput<'_>,
    early: EarlySteps,
    cfg: &PipelineConfig,
    threads: usize,
) -> PipelineResult {
    let EarlySteps {
        mut ledger,
        n1,
        n3,
        observations,
        step3_details,
    } = early;
    let n_shards = threads * 4;
    let ixp_shards = shard_ranges(input.observed.ixps.len(), n_shards);

    // ---- step 4: corpus scan by chunk, classification by candidate ----
    let details_idx = step4::Step3Index::build(&input.interns, step3_details.iter().copied());
    let data = step4::ixp_data(input);
    let corpus_shards = shard_ranges(input.corpus.len(), n_shards);
    let chunks = map_indexed(corpus_shards.len(), threads, |i| {
        step4::scan_corpus(input, &data, corpus_shards[i].clone())
    });
    let evidence = step4::evidence_from_chunks(input, data, chunks);
    let cands = step4::candidates(&evidence);
    let outcomes = {
        // The frozen steps-1–3 ledger is the only cross-candidate state.
        let priors = &ledger;
        map_indexed(cands.len(), threads, |i| {
            step4::classify_candidate(input, &evidence, cands[i], &details_idx, &cfg.alias, priors)
        })
    };
    let mut multi_ixp_routers = Vec::new();
    let mut n4 = 0;
    for outcome in outcomes {
        for inf in outcome.recorded {
            if ledger.record(inf) {
                n4 += 1;
            }
        }
        multi_ixp_routers.extend(outcome.findings);
    }

    // ---- step 5: corpus harvest by chunk, vote by IXP shard ----
    let ev5_chunks = map_indexed(corpus_shards.len(), threads, |i| {
        step5::harvest_chunk(input, &evidence.data, corpus_shards[i].clone())
    });
    let mut ev5 = step5::PrivateEvidence::default();
    for chunk in ev5_chunks {
        ev5.absorb(chunk);
    }
    let proposals = {
        let priors = &ledger;
        map_indexed(ixp_shards.len(), threads, |i| {
            step5::propose_for_ixps(input, &ev5, &cfg.alias, ixp_shards[i].clone(), priors)
        })
    };
    let mut n5 = 0;
    for shard in proposals {
        for inf in shard {
            if ledger.record(inf) {
                n5 += 1;
            }
        }
    }

    // ---- residual unknowns (cheap; sequential scan keeps the exact
    // sequential emission order) ----
    let mut unclassified = Vec::new();
    for (ixp_idx, ixp) in input.observed.ixps.iter().enumerate() {
        for (&addr, &asn) in &ixp.interfaces {
            if !ledger.known(addr) {
                unclassified.push(Unclassified {
                    addr,
                    ixp: ixp_idx,
                    asn,
                });
            }
        }
    }

    PipelineResult {
        inferences: ledger.all().collect(),
        unclassified,
        observations,
        step3_details,
        multi_ixp_routers,
        counts: StepCounts {
            baseline: 0,
            port_capacity: n1,
            rtt_colo: n3,
            multi_ixp: n4,
            private_links: n5,
        },
    }
}

/// Assembles the measurement inputs **and** runs the inference on one
/// pool, overlapping the two: the traceroute corpus — the dominant
/// assembly cost — is traced on background workers while registry
/// fusion, the ping campaign, the `prefix2as` build, and inference
/// steps 1–3 (which never read the corpus) execute. The corpus joins
/// right before step 4, the first consumer.
///
/// The returned pair is byte-identical to
/// `(InferenceInput::assemble(world, seed), run_pipeline(&input, cfg))`
/// for any `par.threads ≥ 1`: every artifact still merges in its fixed
/// shard order, and the phase split does not change what each step
/// reads.
///
/// Worker accounting: the corpus tracer and the foreground phases each
/// get `par.threads` workers, so the process briefly holds up to
/// `2 × threads` — the corpus pool drains the machine once the (much
/// shorter) foreground phases finish. Scheduling never affects results.
pub fn assemble_and_run_parallel<'w>(
    world: &'w World,
    seed: u64,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> (InferenceInput<'w>, PipelineResult) {
    let (registry, campaign_cfg, corpus_cfg) = crate::input::default_configs(seed);
    assemble_and_run_parallel_with(world, seed, &registry, &campaign_cfg, &corpus_cfg, cfg, par)
}

/// [`assemble_and_run_parallel`] with explicit sub-configurations (the
/// same knobs [`InferenceInput::assemble_with`] takes).
pub fn assemble_and_run_parallel_with<'w>(
    world: &'w World,
    seed: u64,
    registry: &RegistryConfig,
    campaign_cfg: &CampaignConfig,
    corpus_cfg: &CorpusConfig,
    cfg: &PipelineConfig,
    par: &ParallelConfig,
) -> (InferenceInput<'w>, PipelineResult) {
    let threads = par.threads.max(1);
    let plan = plan_corpus(world, corpus_cfg);
    let engine = TracerouteEngine::new(world, LatencyModel::new(corpus_cfg.seed));

    let (mut input, early, corpus) = std::thread::scope(|s| {
        let plan = &plan;
        let engine = &engine;
        let corpus_handle =
            s.spawn(move || InferenceInput::trace_corpus_sharded(plan, engine, threads));
        let input =
            InferenceInput::assemble_parallel_sans_corpus(world, seed, registry, campaign_cfg, par);
        let early = phase_steps123(&input, cfg, threads);
        let corpus = corpus_handle.join().expect("corpus tracer panicked");
        (input, early, corpus)
    });
    input.corpus = corpus;
    let result = phase_steps45(&input, early, cfg, threads);
    (input, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;
    use opeer_topology::WorldConfig;

    #[test]
    fn shard_ranges_partition() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for k in [1usize, 2, 3, 8, 64] {
                let ranges = shard_ranges(n, k);
                if n == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.first().map(|r| r.start), Some(0));
                let mut covered = 0;
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "gap in shard ranges");
                }
                for r in &ranges {
                    covered += r.len();
                    assert!(!r.is_empty(), "empty shard range");
                }
                assert_eq!(covered, n, "shards must cover 0..{n}");
                assert_eq!(ranges.last().map(|r| r.end), Some(n));
            }
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        let out = map_indexed(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_shard_surfaces_original_payload() {
        // A shard panic must abort the run and re-raise the *original*
        // payload on the caller — not std's opaque "a scoped thread
        // panicked" join failure.
        let caught = std::panic::catch_unwind(|| {
            map_indexed(64, 4, |i| {
                if i == 7 {
                    std::panic::panic_any("shard 7 exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate to the caller");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("shard 7 exploded")
        );

        // `panic!` with formatting surfaces as the formatted String.
        let caught = std::panic::catch_unwind(|| {
            map_indexed(16, 3, |i| {
                if i == 5 {
                    panic!("task {i} failed");
                }
                i * 2
            })
        });
        let payload = caught.expect_err("panic must propagate to the caller");
        assert_eq!(
            payload.downcast_ref::<String>().map(String::as_str),
            Some("task 5 failed")
        );

        // The sequential degenerate path (threads <= 1) propagates too.
        let caught = std::panic::catch_unwind(|| {
            map_indexed(4, 1, |i| {
                if i == 2 {
                    std::panic::panic_any(1234usize);
                }
                i
            })
        });
        let payload = caught.expect_err("sequential panic must propagate");
        assert_eq!(payload.downcast_ref::<usize>().copied(), Some(1234));

        // When several shards panic, the lowest index's payload wins —
        // deterministic regardless of which worker hit its panic first.
        for _ in 0..8 {
            let caught = std::panic::catch_unwind(|| {
                map_indexed(32, 4, |i| {
                    if i % 2 == 1 {
                        std::panic::panic_any(i);
                    }
                    i
                })
            });
            let payload = caught.expect_err("panic must propagate");
            let idx = *payload.downcast_ref::<usize>().expect("usize payload");
            assert!(idx % 2 == 1, "payload from a non-panicking shard: {idx}");
            // Index 1 is dispatched before any worker can park the
            // counter, so the winning payload is always shard 1's.
            assert_eq!(idx, 1, "lowest panicking index must win");
        }

        // And the pool still works after all that.
        assert_eq!(map_indexed(10, 4, |i| i + 1), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential_small_world() {
        let world = WorldConfig::small(109).generate();
        let input = InferenceInput::assemble(&world, 109);
        let cfg = PipelineConfig::default();
        let sequential = run_pipeline(&input, &cfg);
        for threads in [1, 2, 3, 8] {
            let parallel = run_pipeline_parallel(&input, &cfg, &ParallelConfig::new(threads));
            assert_eq!(
                parallel, sequential,
                "parallel ({threads} threads) diverged from sequential"
            );
        }
    }

    #[test]
    fn env_config_parses_and_edge_cases() {
        // One test owns OPEER_THREADS for this whole binary: `set_var`
        // concurrent with `getenv` from another test thread would be a
        // libc-level data race, so no other test here may call
        // `from_env` (the cross-binary readers in tests/ run in their
        // own processes).
        let cfg = ParallelConfig::from_env();
        assert!(cfg.threads >= 1);
        assert_eq!(ParallelConfig::new(0).threads, 1);

        let auto = ParallelConfig::available_parallelism();
        let cases: &[(&str, usize)] = &[
            // 0 means "auto": fall back to available parallelism.
            ("0", auto),
            // Garbage and empties fall back too.
            ("banana", auto),
            ("", auto),
            ("-3", auto),
            ("1.5", auto),
            ("0x8", auto),
            // Whitespace around a valid number is tolerated.
            (" 6 ", 6),
            ("2", 2),
            ("64", 64),
        ];
        for &(raw, want) in cases {
            std::env::set_var(THREADS_ENV, raw);
            assert_eq!(
                ParallelConfig::from_env().threads,
                want,
                "OPEER_THREADS={raw:?}"
            );
        }
        std::env::remove_var(THREADS_ENV);
        assert_eq!(ParallelConfig::from_env().threads, auto, "unset");
    }

    #[test]
    fn overlapped_run_matches_sequential_end_to_end() {
        let world = WorldConfig::small(7).generate();
        let seq_input = InferenceInput::assemble(&world, 7);
        let cfg = PipelineConfig::default();
        let seq_result = run_pipeline(&seq_input, &cfg);
        for threads in [1, 3] {
            let (input, result) =
                assemble_and_run_parallel(&world, 7, &cfg, &ParallelConfig::new(threads));
            assert!(
                input.content_eq(&seq_input),
                "overlapped assembly diverged at {threads} threads"
            );
            assert_eq!(
                result, seq_result,
                "overlapped inference diverged at {threads} threads"
            );
        }
    }
}
