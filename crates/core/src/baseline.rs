//! The state-of-the-art baseline: Castro et al. (CoNEXT 2014).
//!
//! One rule: a member interface with `RTTmin` above a threshold (10 ms in
//! the paper) is remote, otherwise local. §4 demonstrates why this fails
//! at scale — wide-area IXPs put *local* members tens of ms away from the
//! VP (false positives), and 40 % of genuinely remote peers sit within
//! 10 ms (false negatives). The baseline is kept runnable so Table 4's
//! comparison regenerates.

use crate::input::InferenceInput;
use crate::steps::step2::{consolidate, RttObservation};
use crate::types::{Inference, Step, Verdict};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The paper's baseline remoteness threshold, ms.
pub const DEFAULT_THRESHOLD_MS: f64 = 10.0;

/// Runs the RTT-threshold baseline over the campaign. Covers exactly the
/// responsive targets.
pub fn run_baseline(input: &InferenceInput<'_>, threshold_ms: f64) -> Vec<Inference> {
    let observations: BTreeMap<Ipv4Addr, RttObservation> = consolidate(input);
    observations
        .values()
        .map(|o| {
            let verdict = if o.min_rtt_ms > threshold_ms {
                Verdict::Remote
            } else {
                Verdict::Local
            };
            Inference {
                addr: o.addr,
                ixp: o.ixp,
                asn: o.asn,
                verdict,
                step: Step::Baseline,
                evidence: format!(
                    "RTTmin {:.2} ms vs {threshold_ms} ms threshold",
                    o.min_rtt_ms
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opeer_topology::WorldConfig;

    #[test]
    fn baseline_covers_responsive_targets_only() {
        let w = WorldConfig::small(107).generate();
        let input = InferenceInput::assemble(&w, 5);
        let inferences = run_baseline(&input, DEFAULT_THRESHOLD_MS);
        assert!(!inferences.is_empty());
        let consolidated = consolidate(&input);
        assert_eq!(inferences.len(), consolidated.len());
    }

    #[test]
    fn misses_nearby_remotes() {
        // The baseline's known failure: remote peers within the threshold
        // are called local.
        let w = WorldConfig::small(107).generate();
        let input = InferenceInput::assemble(&w, 5);
        let inferences = run_baseline(&input, DEFAULT_THRESHOLD_MS);
        let mut fn_count = 0usize;
        for inf in &inferences {
            if inf.verdict == Verdict::Local {
                let Some(ifc) = w.iface_by_addr(inf.addr) else {
                    continue;
                };
                let Some(mid) = w.membership_of_iface(ifc) else {
                    continue;
                };
                if w.memberships[mid.index()].truth.is_remote() {
                    fn_count += 1;
                }
            }
        }
        assert!(
            fn_count > 0,
            "expected nearby remote peers to fool the baseline"
        );
    }

    #[test]
    fn lower_threshold_flags_more_remotes() {
        let w = WorldConfig::small(107).generate();
        let input = InferenceInput::assemble(&w, 5);
        let strict = run_baseline(&input, 2.0);
        let lax = run_baseline(&input, 10.0);
        let remotes = |v: &[Inference]| v.iter().filter(|i| i.verdict.is_remote()).count();
        assert!(remotes(&strict) >= remotes(&lax));
    }
}
