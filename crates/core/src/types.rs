//! Core inference types.

use opeer_net::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The verdict for one member interface at one IXP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Physically patched in an IXP facility, not via a reseller.
    Local,
    /// Remote under Definition 1 (distant and/or through a reseller).
    Remote,
}

impl Verdict {
    /// `true` for [`Verdict::Remote`].
    pub fn is_remote(self) -> bool {
        matches!(self, Verdict::Remote)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Local => write!(f, "local"),
            Verdict::Remote => write!(f, "remote"),
        }
    }
}

/// Which part of the methodology produced an inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Step {
    /// The Castro et al. RTT-threshold baseline (not part of the
    /// combined pipeline; kept for comparison).
    Baseline,
    /// §5.2 step 1 — port capacity vs `Cmin`.
    PortCapacity,
    /// §5.2 steps 2+3 — minimum RTT + colocation annulus.
    RttColo,
    /// §5.2 step 4 — multi-IXP router propagation.
    MultiIxp,
    /// §5.2 step 5 — private-connectivity facility vote.
    PrivateLinks,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Step::Baseline => "baseline-rtt",
            Step::PortCapacity => "port-capacity",
            Step::RttColo => "rtt+colo",
            Step::MultiIxp => "multi-ixp",
            Step::PrivateLinks => "private-links",
        };
        write!(f, "{s}")
    }
}

/// One inference record: an interface of a member at an IXP, classified.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inference {
    /// The member's peering-LAN interface address.
    pub addr: Ipv4Addr,
    /// Observed IXP index (into `ObservedWorld::ixps`).
    pub ixp: usize,
    /// Member ASN.
    pub asn: Asn,
    /// The verdict.
    pub verdict: Verdict,
    /// The step that produced it.
    pub step: Step,
    /// Human-readable evidence trail.
    pub evidence: String,
}

/// A member interface that no step could classify.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unclassified {
    /// The interface address.
    pub addr: Ipv4Addr,
    /// Observed IXP index.
    pub ixp: usize,
    /// Member ASN.
    pub asn: Asn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display_and_predicates() {
        assert_eq!(Verdict::Local.to_string(), "local");
        assert_eq!(Verdict::Remote.to_string(), "remote");
        assert!(Verdict::Remote.is_remote());
        assert!(!Verdict::Local.is_remote());
    }

    #[test]
    fn step_display() {
        assert_eq!(Step::PortCapacity.to_string(), "port-capacity");
        assert_eq!(Step::RttColo.to_string(), "rtt+colo");
    }
}
